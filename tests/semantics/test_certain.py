"""Unit tests for brute-force certain answers by world enumeration."""

import pytest

from repro.algebra import parse_ra
from repro.datamodel import Database, Null, Relation
from repro.semantics import (
    answer_space,
    certain_answers_enumeration,
    certain_boolean,
    possible_answers_enumeration,
    possible_boolean,
)


@pytest.fixture
def r_minus_s_db():
    """R = {1, 2}, S = {⊥}: the paper's running difference example."""
    return Database.from_dict({"R": [(1,), (2,)], "S": [(Null("s"),)]})


def evaluator(expression):
    return lambda world: expression.evaluate(world)


class TestCertainAnswers:
    def test_difference_certain_answer_empty(self, r_minus_s_db):
        query = parse_ra("diff(R, S)")
        certain = certain_answers_enumeration(evaluator(query), r_minus_s_db, semantics="cwa")
        assert certain.rows == frozenset()

    def test_projection_certain_answer(self):
        db = Database.from_dict({"R": [(1, Null("x")), (2, 3)]})
        query = parse_ra("project[#0](R)")
        certain = certain_answers_enumeration(evaluator(query), db, semantics="cwa")
        assert certain.rows == frozenset({(1,), (2,)})

    def test_complete_database_certain_equals_answer(self):
        db = Database.from_dict({"R": [(1, 2), (3, 4)]})
        query = parse_ra("project[#1](R)")
        certain = certain_answers_enumeration(evaluator(query), db, semantics="cwa")
        assert certain.rows == query.evaluate(db).rows

    def test_owa_certain_smaller_than_cwa_for_negation(self):
        db = Database.from_dict({"R": [(1,), (2,)], "S": [(3,)]})
        query = parse_ra("diff(R, S)")
        cwa = certain_answers_enumeration(evaluator(query), db, semantics="cwa")
        owa = certain_answers_enumeration(
            evaluator(query), db, semantics="owa", max_extra_facts=1
        )
        # Under OWA, extra S facts can remove answers, so the certain answer shrinks.
        assert owa.rows <= cwa.rows
        assert cwa.rows == frozenset({(1,), (2,)})

    def test_explicit_domain(self, r_minus_s_db):
        query = parse_ra("R")
        certain = certain_answers_enumeration(
            evaluator(query), r_minus_s_db, semantics="cwa", domain=[1, 2]
        )
        assert certain.rows == frozenset({(1,), (2,)})


class TestPossibleAnswers:
    def test_union_of_worlds(self, r_minus_s_db):
        query = parse_ra("diff(R, S)")
        possible = possible_answers_enumeration(evaluator(query), r_minus_s_db, semantics="cwa")
        assert possible.rows == frozenset({(1,), (2,)})

    def test_possible_contains_certain(self):
        db = Database.from_dict({"R": [(1, Null("x"))]})
        query = parse_ra("project[#1](R)")
        certain = certain_answers_enumeration(evaluator(query), db, semantics="cwa")
        possible = possible_answers_enumeration(evaluator(query), db, semantics="cwa")
        assert certain.rows <= possible.rows


class TestAnswerSpace:
    def test_paper_difference_answer_space(self, r_minus_s_db):
        """Q([[D]]_cwa) = {{1,2}, {1}, {2}} for Q = R − S (Section 2)."""
        query = parse_ra("diff(R, S)")
        space = answer_space(evaluator(query), r_minus_s_db, semantics="cwa")
        assert space == {
            frozenset({(1,), (2,)}),
            frozenset({(1,)}),
            frozenset({(2,)}),
        }


class TestBooleanQueries:
    def test_certain_boolean_true(self):
        db = Database.from_dict({"R": [(1, Null("x"))]})
        # "R is non-empty" holds in every world.
        assert certain_boolean(lambda world: bool(world["R"]), db, semantics="cwa")

    def test_nonemptiness_of_difference_is_certain(self, r_minus_s_db):
        """|R| > |S| guarantees R − S is non-empty in every world (Section 1)."""
        query = parse_ra("diff(R, S)")
        assert certain_boolean(
            lambda world: bool(query.evaluate(world)), r_minus_s_db, semantics="cwa"
        )

    def test_specific_tuple_membership_not_certain(self, r_minus_s_db):
        query = parse_ra("diff(R, S)")
        assert not certain_boolean(
            lambda world: (1,) in query.evaluate(world).rows,
            r_minus_s_db,
            semantics="cwa",
        )

    def test_possible_boolean(self, r_minus_s_db):
        query = parse_ra("diff(R, S)")
        assert possible_boolean(
            lambda world: bool(query.evaluate(world)), r_minus_s_db, semantics="cwa"
        )
        assert not possible_boolean(
            lambda world: len(world["R"]) > 5, r_minus_s_db, semantics="cwa"
        )
