"""Tests for the ``workers=`` fan-out of world-enumeration certain answers."""

from repro.algebra import parse_ra
from repro.datamodel import Database, Null, Relation
from repro.semantics import certain_answers_enumeration, certain_boolean

QUERY = parse_ra("diff(R, S)")
PROJECT = parse_ra("project[#0](R)")


def _database(num_rows=5, num_nulls=2):
    return Database.from_relations(
        [
            Relation.create(
                "R",
                [(i,) for i in range(num_rows)] + [(Null(f"r{i}"),) for i in range(num_nulls)],
                attributes=("A",),
            ),
            Relation.create("S", [(1,), (Null("s0"),)], attributes=("A",)),
        ]
    )


def _nonempty_database():
    return Database.from_relations(
        [
            Relation.create("R", [(1,), (2,), (Null("x"),)], attributes=("A",)),
            Relation.create("S", [], attributes=("A",)),
        ]
    )


class TestParallelCertainAnswers:
    def test_workers_match_sequential(self):
        database = _database()
        sequential = certain_answers_enumeration(QUERY.evaluate, database, "cwa")
        parallel = certain_answers_enumeration(QUERY.evaluate, database, "cwa", workers=2)
        assert sequential == parallel

    def test_workers_match_sequential_nonempty_answer(self):
        database = _nonempty_database()
        sequential = certain_answers_enumeration(PROJECT.evaluate, database, "cwa")
        parallel = certain_answers_enumeration(PROJECT.evaluate, database, "cwa", workers=2)
        assert sequential == parallel
        assert {(1,), (2,)} <= set(parallel.rows)

    def test_unpicklable_query_falls_back_to_sequential(self):
        database = _database(num_rows=3, num_nulls=1)
        unpicklable = lambda world: QUERY.evaluate(world)  # noqa: E731
        sequential = certain_answers_enumeration(QUERY.evaluate, database, "cwa")
        fallback = certain_answers_enumeration(unpicklable, database, "cwa", workers=4)
        assert sequential == fallback

    def test_workers_one_is_sequential(self):
        database = _database(num_rows=3, num_nulls=1)
        assert certain_answers_enumeration(
            QUERY.evaluate, database, "cwa", workers=1
        ) == certain_answers_enumeration(QUERY.evaluate, database, "cwa")


class TestParallelCertainBoolean:
    def test_boolean_matches_sequential(self):
        database = _nonempty_database()
        evaluate = PROJECT.evaluate  # picklable bound method

        def as_bool(world):
            return bool(evaluate(world))

        # module-locals are not picklable either; exercise the fallback
        sequential = certain_boolean(as_bool, database, "cwa")
        parallel = certain_boolean(as_bool, database, "cwa", workers=2)
        assert sequential == parallel is True

    def test_boolean_parallel_false(self):
        database = _database(num_rows=2, num_nulls=1)
        assert (
            certain_boolean(_r_has_at_least_four_rows, database, "cwa", workers=2)
            is certain_boolean(_r_has_at_least_four_rows, database, "cwa")
            is False
        )

    def test_boolean_parallel_true(self):
        database = _database(num_rows=2, num_nulls=1)
        assert certain_boolean(_r_is_nonempty, database, "cwa", workers=2) is True


# module-level so they can cross a process boundary
def _r_has_at_least_four_rows(world):
    return len(world.relation("R")) >= 4


def _r_is_nonempty(world):
    return len(world.relation("R")) > 0
