"""Unit tests for the weak-CWA semantics, worlds, δ-formula and representation system."""

import pytest

from repro.core import wcwa_leq, wcwa_representation_system
from repro.datamodel import Database, Null, Valuation
from repro.logic import adom_closure, delta_wcwa, is_positive, is_ucq
from repro.semantics import default_domain, in_wcwa, owa_worlds, wcwa_worlds, worlds


@pytest.fixture
def incomplete_db():
    return Database.from_dict({"R": [(1, Null("x"))]})


class TestWcwaWorlds:
    def test_no_new_domain_elements(self, incomplete_db):
        for world in wcwa_worlds(incomplete_db, max_extra_facts=1):
            assert world.is_complete()
            assert in_wcwa(incomplete_db, world)

    def test_between_cwa_and_owa(self, incomplete_db):
        domain = default_domain(incomplete_db)
        wcwa = {frozenset(w.facts()) for w in wcwa_worlds(incomplete_db, domain, max_extra_facts=1)}
        owa = {frozenset(w.facts()) for w in owa_worlds(incomplete_db, domain, max_extra_facts=1)}
        assert wcwa <= owa
        # OWA worlds may use fresh constants in the added facts; weak CWA cannot.
        assert wcwa < owa

    def test_extra_facts_over_old_values_allowed(self, incomplete_db):
        domain = default_domain(incomplete_db)
        enumerated = {frozenset(w.facts()) for w in wcwa_worlds(incomplete_db, domain, max_extra_facts=1)}
        base = Valuation({Null("x"): 1}).apply(incomplete_db)
        extended = base.add_facts([("R", (1, 1))])
        assert frozenset(extended.facts()) in enumerated

    def test_dispatch(self, incomplete_db):
        assert list(worlds(incomplete_db, "wcwa", max_extra_facts=0))


class TestDeltaWcwa:
    def test_formula_is_positive_but_not_ucq(self, incomplete_db):
        formula = delta_wcwa(incomplete_db)
        assert is_positive(formula)
        assert not is_ucq(formula)

    def test_models_are_exactly_wcwa(self, incomplete_db):
        formula = delta_wcwa(incomplete_db)
        domain = default_domain(incomplete_db, extra_constants=1)
        pool = list(owa_worlds(incomplete_db, domain, max_extra_facts=1))
        pool.append(Database.from_dict({"R": [(9, 9)]}))
        for world in pool:
            assert formula.holds(world) == in_wcwa(incomplete_db, world)

    def test_adom_closure_alone(self):
        db = Database.from_dict({"R": [(1, 2)]})
        closure = adom_closure(db)
        assert closure.holds(db)
        same_values = db.add_facts([("R", (2, 1))])
        new_value = db.add_facts([("R", (3, 3))])
        assert closure.holds(same_values)
        assert not closure.holds(new_value)


class TestWcwaRepresentationSystem:
    def test_delta_in_fragment(self, incomplete_db):
        system = wcwa_representation_system()
        assert system.in_fragment(system.delta(incomplete_db))

    def test_structural_conditions(self, incomplete_db):
        system = wcwa_representation_system()
        complete = Database.from_dict({"R": [(1, 4)]})
        assert system.domain.condition_reflexivity(complete)
        for world in system.domain.semantics(incomplete_db):
            assert system.domain.condition_dominance(incomplete_db, world)

    def test_delta_defines_semantics(self, incomplete_db):
        system = wcwa_representation_system()
        domain = default_domain(incomplete_db, extra_constants=1)
        pool = list(owa_worlds(incomplete_db, domain, max_extra_facts=1))
        assert system.delta_defines_semantics(incomplete_db, pool)

    def test_ordering_is_onto_homomorphism_based(self, incomplete_db):
        system = wcwa_representation_system()
        more = Valuation({Null("x"): 1}).apply(incomplete_db)
        assert system.domain.less_equal(incomplete_db, more) == wcwa_leq(incomplete_db, more)
