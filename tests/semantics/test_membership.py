"""Unit tests for OWA / CWA / weak-CWA membership."""

import pytest

from repro.datamodel import Database, Null, Valuation
from repro.semantics import in_cwa, in_owa, in_wcwa, is_member


@pytest.fixture
def paper_r():
    """The naive table R of Section 2 as a one-relation database."""
    bot, bot_prime = Null("b"), Null("bp")
    return Database.from_dict({"R": [(bot, 1, bot_prime), (2, bot_prime, bot)]})


class TestPaperExample:
    def test_r1_in_both_semantics(self, paper_r):
        """R1 = {(3,1,4), (2,4,3)} is obtained by ⊥→3, ⊥'→4 (Section 2)."""
        r1 = Database.from_dict({"R": [(3, 1, 4), (2, 4, 3)]})
        assert in_cwa(paper_r, r1)
        assert in_owa(paper_r, r1)

    def test_r2_only_under_owa(self, paper_r):
        """R2 adds the extra tuple (5,6,7): OWA yes, CWA no."""
        r2 = Database.from_dict({"R": [(3, 1, 4), (2, 4, 3), (5, 6, 7)]})
        assert in_owa(paper_r, r2)
        assert not in_cwa(paper_r, r2)

    def test_unrelated_database_in_neither(self, paper_r):
        other = Database.from_dict({"R": [(9, 9, 9)]})
        assert not in_owa(paper_r, other)
        assert not in_cwa(paper_r, other)


class TestGeneralProperties:
    def test_cwa_membership_matches_valuation_application(self):
        null = Null("x")
        db = Database.from_dict({"R": [(1, null)], "S": [(null,)]})
        world = Valuation({null: 9}).apply(db)
        assert in_cwa(db, world)
        assert in_owa(db, world)

    def test_owa_allows_extra_facts_cwa_does_not(self):
        null = Null("x")
        db = Database.from_dict({"R": [(1, null)]})
        world = Valuation({null: 9}).apply(db).add_facts([("R", (7, 7))])
        assert in_owa(db, world)
        assert not in_cwa(db, world)

    def test_complete_database_represents_itself(self):
        db = Database.from_dict({"R": [(1, 2)]})
        assert in_cwa(db, db)
        assert in_owa(db, db)
        assert in_wcwa(db, db)

    def test_wcwa_allows_new_tuples_over_old_values(self):
        null = Null("x")
        db = Database.from_dict({"R": [(1, null)]})
        same_adom = Database.from_dict({"R": [(1, 1)]}).add_facts([("R", (1, 1))])
        extra_tuple_same_adom = Database.from_dict({"R": [(1, 2), (2, 1)]})
        new_value = Database.from_dict({"R": [(1, 2), (3, 3)]})
        assert in_wcwa(db, same_adom)
        assert in_wcwa(db, extra_tuple_same_adom)
        assert not in_wcwa(db, new_value)
        assert in_owa(db, new_value)

    def test_right_hand_side_must_be_complete(self):
        db = Database.from_dict({"R": [(1,)]})
        incomplete = Database.from_dict({"R": [(Null("x"),)]})
        with pytest.raises(ValueError):
            in_cwa(db, incomplete)

    def test_dispatch(self):
        db = Database.from_dict({"R": [(Null("x"),)]})
        world = Database.from_dict({"R": [(1,)]})
        assert is_member(db, world, "cwa")
        assert is_member(db, world, "owa")
        assert is_member(db, world, "wcwa")
        with pytest.raises(ValueError):
            is_member(db, world, "nope")

    def test_cwa_implies_wcwa_implies_owa(self):
        """On a small sample, the three semantics are ordered by inclusion."""
        null = Null("x")
        db = Database.from_dict({"R": [(1, null), (null, 2)]})
        candidates = [
            Database.from_dict({"R": [(1, 3), (3, 2)]}),
            Database.from_dict({"R": [(1, 1), (1, 2)]}),
            Database.from_dict({"R": [(1, 1), (1, 2), (2, 2)]}),
            Database.from_dict({"R": [(1, 1), (1, 2), (5, 5)]}),
            Database.from_dict({"R": [(4, 4)]}),
        ]
        for world in candidates:
            if in_cwa(db, world):
                assert in_wcwa(db, world)
            if in_wcwa(db, world):
                assert in_owa(db, world)
