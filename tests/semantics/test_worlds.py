"""Unit tests for possible-world enumeration."""

import pytest

from repro.datamodel import Database, Null
from repro.semantics import (
    count_cwa_worlds,
    cwa_worlds,
    default_domain,
    owa_worlds,
    worlds,
)


@pytest.fixture
def single_null_db():
    return Database.from_dict({"R": [(1,), (Null("x"),)]})


class TestDefaultDomain:
    def test_contains_constants_and_fresh_values(self, single_null_db):
        domain = default_domain(single_null_db)
        assert 1 in domain
        assert len(domain) == 3  # one constant + (one null + 1) fresh values

    def test_extra_constants_parameter(self, single_null_db):
        domain = default_domain(single_null_db, extra_constants=3)
        assert len(domain) == 4

    def test_explicit_constants_added(self, single_null_db):
        domain = default_domain(single_null_db, constants=["q1", "q2"])
        assert "q1" in domain and "q2" in domain

    def test_no_nulls_still_one_fresh(self):
        db = Database.from_dict({"R": [(1,)]})
        domain = default_domain(db)
        assert len(domain) == 2

    def test_deterministic(self, single_null_db):
        assert default_domain(single_null_db) == default_domain(single_null_db)


class TestCwaWorlds:
    def test_all_worlds_complete(self, single_null_db):
        for world in cwa_worlds(single_null_db):
            assert world.is_complete()

    def test_number_of_worlds(self, single_null_db):
        domain = default_domain(single_null_db)
        enumerated = list(cwa_worlds(single_null_db, domain))
        assert len(enumerated) == len(domain)

    def test_duplicate_worlds_suppressed(self):
        # Both valuations of the null produce sets; instantiating to 1
        # collapses the two facts into one world identical to no other.
        db = Database.from_dict({"R": [(1,), (Null("x"),)]})
        enumerated = list(cwa_worlds(db, domain=[1]))
        assert len(enumerated) == 1
        assert enumerated[0]["R"].rows == frozenset({(1,)})

    def test_complete_database_yields_itself(self):
        db = Database.from_dict({"R": [(1, 2)]})
        enumerated = list(cwa_worlds(db))
        assert enumerated == [db]

    def test_count_upper_bound(self, single_null_db):
        domain = default_domain(single_null_db)
        assert count_cwa_worlds(single_null_db, domain) == len(domain)
        assert len(list(cwa_worlds(single_null_db, domain))) <= count_cwa_worlds(
            single_null_db, domain
        )

    def test_shared_null_instantiated_consistently(self):
        shared = Null("x")
        db = Database.from_dict({"R": [(shared, shared)]})
        for world in cwa_worlds(db):
            row = next(iter(world["R"].rows))
            assert row[0] == row[1]


class TestOwaWorlds:
    def test_superset_of_cwa_worlds(self, single_null_db):
        domain = default_domain(single_null_db, extra_constants=2)
        cwa = {frozenset(w.facts()) for w in cwa_worlds(single_null_db, domain)}
        owa = {frozenset(w.facts()) for w in owa_worlds(single_null_db, domain, max_extra_facts=1)}
        assert cwa <= owa
        assert len(owa) > len(cwa)

    def test_zero_extra_facts_equals_cwa(self, single_null_db):
        domain = default_domain(single_null_db)
        cwa = {frozenset(w.facts()) for w in cwa_worlds(single_null_db, domain)}
        owa = {frozenset(w.facts()) for w in owa_worlds(single_null_db, domain, max_extra_facts=0)}
        assert cwa == owa

    def test_every_owa_world_contains_a_cwa_world(self, single_null_db):
        domain = default_domain(single_null_db)
        cwa = list(cwa_worlds(single_null_db, domain))
        for world in owa_worlds(single_null_db, domain, max_extra_facts=1):
            assert any(world.contains_database(base) for base in cwa)


class TestDispatch:
    def test_worlds_dispatch(self, single_null_db):
        assert list(worlds(single_null_db, "cwa"))
        assert list(worlds(single_null_db, "owa", max_extra_facts=0))

    def test_unknown_semantics(self, single_null_db):
        with pytest.raises(ValueError):
            list(worlds(single_null_db, "nonsense"))
