"""Unit tests for the Imieliński–Lipski algebra on conditional tables."""

import pytest

from repro.algebra import CTableDatabase, ctable_evaluate, parse_ra, predicate_condition
from repro.algebra.predicates import Attr, Comparison, PAnd, PNot, POr, PTrue
from repro.datamodel import (
    ConditionalTable,
    Database,
    Eq,
    FALSE,
    Null,
    Or,
    Relation,
    RelationSchema,
    TRUE,
)
from repro.semantics import answer_space, default_domain


def worlds_from_ctable(table, domain):
    return table.possible_worlds(domain)


def worlds_from_enumeration(query, database, domain):
    return answer_space(query.evaluate, database, semantics="cwa", domain=domain)


def assert_strong_representation(query_text, database):
    """[[Q̂(T)]]_cwa must equal Q([[T]]_cwa) over the default domain."""
    query = parse_ra(query_text)
    domain = default_domain(database)
    ctable = ctable_evaluate(query, CTableDatabase.from_database(database))
    assert worlds_from_ctable(ctable, domain) == worlds_from_enumeration(query, database, domain)


class TestCTableDatabase:
    def test_lifting_a_naive_database(self):
        db = Database.from_dict({"R": [(1, Null("x"))]})
        ctdb = CTableDatabase.from_database(db)
        assert len(ctdb) == 1
        assert len(ctdb["R"]) == 1
        assert ctdb["R"].rows[0].condition is TRUE

    def test_duplicate_table_rejected(self):
        table = ConditionalTable.create("R", [((1,), TRUE)])
        with pytest.raises(ValueError):
            CTableDatabase([table, table])

    def test_unknown_table(self):
        ctdb = CTableDatabase([ConditionalTable.create("R", [((1,), TRUE)])])
        with pytest.raises(KeyError):
            ctdb.table("S")
        assert "R" in ctdb
        assert "S" not in ctdb

    def test_nulls_and_constants(self):
        bot = Null("b")
        table = ConditionalTable.create("R", [((1, bot), Eq(bot, 1))])
        ctdb = CTableDatabase([table])
        assert ctdb.nulls() == {bot}
        assert ctdb.constants() == {1}
        assert bot in ctdb.active_domain()

    def test_global_condition_conjunction(self):
        bot = Null("b")
        table = ConditionalTable.create("R", [((1,), TRUE)], global_condition=Eq(bot, 0))
        other = ConditionalTable.create("S", [((2,), TRUE)])
        ctdb = CTableDatabase([table, other])
        assert ctdb.global_condition() == Eq(bot, 0)


class TestPredicateCondition:
    SCHEMA = RelationSchema("R", ("a", "b"))

    def test_equality_with_constant(self):
        condition = predicate_condition(Comparison(Attr("a"), "=", 1), (Null("x"), 2), self.SCHEMA)
        assert condition == Eq(Null("x"), 1)

    def test_equality_between_constants_folds(self):
        assert predicate_condition(Comparison(Attr("a"), "=", 1), (1, 2), self.SCHEMA) is TRUE
        assert predicate_condition(Comparison(Attr("a"), "=", 9), (1, 2), self.SCHEMA) is FALSE

    def test_boolean_structure(self):
        predicate = POr(
            (Comparison(Attr("a"), "=", 1), PNot(Comparison(Attr("b"), "=", 2)))
        )
        condition = predicate_condition(predicate, (Null("x"), Null("y")), self.SCHEMA)
        assert Null("x") in condition.nulls()
        assert Null("y") in condition.nulls()

    def test_true_predicate(self):
        assert predicate_condition(PTrue(), (1, 2), self.SCHEMA) is TRUE

    def test_order_comparison_on_null_rejected(self):
        with pytest.raises(ValueError):
            predicate_condition(Comparison(Attr("a"), "<", 5), (Null("x"), 2), self.SCHEMA)

    def test_order_comparison_on_constants_folds(self):
        assert predicate_condition(Comparison(Attr("a"), "<", 5), (1, 2), self.SCHEMA) is TRUE


class TestStrongRepresentation:
    """Every operator must represent Q([[T]]_cwa) exactly (strong representation)."""

    def test_selection(self):
        db = Database.from_dict({"R": [(Null("x"), 1), (2, 2)]})
        assert_strong_representation("select[#0 = 2](R)", db)

    def test_selection_on_null_against_constant(self):
        db = Database.from_dict({"R": [(Null("x"), 1)]})
        assert_strong_representation("select[#0 = 7](R)", db)

    def test_projection(self):
        db = Database.from_dict({"R": [(Null("x"), 1), (2, Null("y"))]})
        assert_strong_representation("project[#1](R)", db)

    def test_product_and_join(self):
        db = Database.from_dict({"R": [(1, Null("x"))], "S": [(Null("x"),), (3,)]})
        assert_strong_representation("product(R, S)", db)
        assert_strong_representation("join(rename[A(a, b)](R), rename[B(b)](S))", db)

    def test_union(self):
        db = Database.from_dict({"R": [(Null("x"),)], "S": [(1,), (Null("y"),)]})
        assert_strong_representation("union(R, S)", db)

    def test_intersection(self):
        db = Database.from_dict({"R": [(Null("x"),), (1,)], "S": [(1,), (2,)]})
        assert_strong_representation("intersect(R, S)", db)

    def test_difference_paper_example(self):
        """R = {1, 2}, S = {⊥}: the conditional table of Section 2."""
        db = Database.from_dict({"R": [(1,), (2,)], "S": [(Null("s"),)]})
        assert_strong_representation("diff(R, S)", db)

    def test_difference_with_nulls_on_both_sides(self):
        db = Database.from_dict({"R": [(Null("x"),), (1,)], "S": [(Null("y"),), (2,)]})
        assert_strong_representation("diff(R, S)", db)

    def test_division(self):
        db = Database.from_dict(
            {"R": [("a", 1), ("a", Null("x")), ("b", 1)], "S": [(1,), (2,)]}
        )
        assert_strong_representation("divide(R, S)", db)

    def test_composed_query(self):
        db = Database.from_dict({"R": [(1, Null("x")), (2, 2)], "S": [(Null("x"),)]})
        assert_strong_representation("project[#0](diff(R, product(S, S)))", db)


class TestPaperDifferenceTable:
    def test_conditional_answer_table_structure(self):
        """The answer c-table for R − S contains conditionally present 1 and 2."""
        db = Database.from_dict({"R": [(1,), (2,)], "S": [(Null("s"),)]})
        ctable = ctable_evaluate(parse_ra("diff(R, S)"), CTableDatabase.from_database(db))
        values = sorted(row.values for row in ctable)
        assert values == [(1,), (2,)]
        # Neither tuple is unconditional: each carries a ⊥ ≠ c condition.
        assert all(row.condition is not TRUE for row in ctable)
        domain = default_domain(db)
        assert ctable.certain_rows(domain) == set()
        assert ctable.possible_rows(domain) == {(1,), (2,)}

    def test_disjunctive_input_table(self):
        """Evaluating over a genuinely conditional input (the 0-or-1 table)."""
        bot = Null("b")
        table = ConditionalTable.create(
            "C",
            [((1,), Eq(bot, 1)), ((0,), Eq(bot, 0))],
            global_condition=Or((Eq(bot, 0), Eq(bot, 1))),
        )
        ctdb = CTableDatabase([table])
        result = ctable_evaluate(parse_ra("select[#0 = 1](C)"), ctdb)
        worlds = result.possible_worlds([0, 1, 2])
        assert worlds == {frozenset(), frozenset({(1,)})}
