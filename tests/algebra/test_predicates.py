"""Unit tests for selection predicates (two-valued and three-valued)."""

import pytest

from repro.algebra import Attr, Comparison, Const, PAnd, PNot, POr, PTrue, eq, neq
from repro.algebra.predicates import attr, const, kleene_and, kleene_not, kleene_or
from repro.datamodel import Null, RelationSchema


SCHEMA = RelationSchema("R", ("a", "b", "c"))


class TestTerms:
    def test_attr_resolution_by_name_and_position(self):
        assert Attr("b").resolve(SCHEMA) == 1
        assert Attr(2).resolve(SCHEMA) == 2
        assert Attr("a").value((10, 20, 30), SCHEMA) == 10

    def test_const_rejects_none(self):
        with pytest.raises(TypeError):
            Const(None)

    def test_shorthands(self):
        assert attr("a") == Attr("a")
        assert const(5) == Const(5)


class TestComparisonTwoValued:
    def test_equality_between_attribute_and_constant(self):
        predicate = Comparison(Attr("a"), "=", Const(10))
        assert predicate.holds((10, 20, 30), SCHEMA)
        assert not predicate.holds((11, 20, 30), SCHEMA)

    def test_raw_values_coerced_to_constants(self):
        predicate = Comparison(Attr("a"), "=", 10)
        assert predicate.holds((10, 0, 0), SCHEMA)

    def test_attribute_to_attribute(self):
        predicate = Comparison(Attr("a"), "=", Attr("b"))
        assert predicate.holds((5, 5, 0), SCHEMA)
        assert not predicate.holds((5, 6, 0), SCHEMA)

    def test_order_comparisons(self):
        predicate = Comparison(Attr("a"), "<", Attr("b"))
        assert predicate.holds((1, 2, 0), SCHEMA)
        assert not predicate.holds((3, 2, 0), SCHEMA)

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            Comparison(Attr("a"), "~", Const(1))

    def test_naive_equality_on_nulls(self):
        """Under naive evaluation a null equals itself and nothing else."""
        null = Null("x")
        same = Comparison(Attr("a"), "=", Attr("b"))
        assert same.holds((null, null, 0), SCHEMA)
        assert not same.holds((null, Null("y"), 0), SCHEMA)
        assert not Comparison(Attr("a"), "=", Const(1)).holds((null, 0, 0), SCHEMA)

    def test_order_comparison_on_null_raises(self):
        null = Null("x")
        with pytest.raises(TypeError):
            Comparison(Attr("a"), "<", Const(1)).holds((null, 0, 0), SCHEMA)

    def test_negate(self):
        assert Comparison(Attr("a"), "<", Const(1)).negate().op == ">="
        assert Comparison(Attr("a"), "=", Const(1)).negate().op == "!="

    def test_classification(self):
        assert Comparison(Attr("a"), "=", Const(1)).is_positive()
        assert not Comparison(Attr("a"), "!=", Const(1)).is_positive()
        assert Comparison(Attr("a"), "!=", Const(1)).is_equality_only()
        assert not Comparison(Attr("a"), "<", Const(1)).is_equality_only()

    def test_metadata(self):
        predicate = Comparison(Attr("a"), "=", Const(1))
        assert predicate.attributes() == {"a"}
        assert predicate.constants() == {1}


class TestComparisonThreeValued:
    def test_null_operand_gives_unknown(self):
        null = Null("x")
        predicate = Comparison(Attr("a"), "=", Const(1))
        assert predicate.holds3((null, 0, 0), SCHEMA) is None
        assert predicate.holds3((1, 0, 0), SCHEMA) is True
        assert predicate.holds3((2, 0, 0), SCHEMA) is False

    def test_order_comparison_with_null_is_unknown(self):
        null = Null("x")
        predicate = Comparison(Attr("a"), "<", Const(1))
        assert predicate.holds3((null, 0, 0), SCHEMA) is None

    def test_null_to_null_comparison_is_unknown_in_sql(self):
        """SQL: NULL = NULL is unknown, even for the 'same' null."""
        null = Null("x")
        predicate = Comparison(Attr("a"), "=", Attr("b"))
        assert predicate.holds3((null, null, 0), SCHEMA) is None


class TestConnectives:
    def test_and_or_not_two_valued(self):
        p = Comparison(Attr("a"), "=", Const(1))
        q = Comparison(Attr("b"), "=", Const(2))
        assert PAnd((p, q)).holds((1, 2, 0), SCHEMA)
        assert not PAnd((p, q)).holds((1, 3, 0), SCHEMA)
        assert POr((p, q)).holds((1, 3, 0), SCHEMA)
        assert not POr((p, q)).holds((0, 3, 0), SCHEMA)
        assert PNot(p).holds((0, 0, 0), SCHEMA)
        assert PTrue().holds((0, 0, 0), SCHEMA)

    def test_three_valued_connectives_follow_kleene(self):
        null = Null("x")
        p = Comparison(Attr("a"), "=", Const(1))  # unknown on null
        q = Comparison(Attr("b"), "=", Const(2))
        row_unknown_true = (null, 2, 0)
        row_unknown_false = (null, 3, 0)
        assert PAnd((p, q)).holds3(row_unknown_true, SCHEMA) is None
        assert PAnd((p, q)).holds3(row_unknown_false, SCHEMA) is False
        assert POr((p, q)).holds3(row_unknown_true, SCHEMA) is True
        assert POr((p, q)).holds3(row_unknown_false, SCHEMA) is None
        assert PNot(p).holds3(row_unknown_true, SCHEMA) is None

    def test_grant_example_tautology_is_unknown(self):
        """order = 'oid1' OR order <> 'oid1' is unknown on a null (Section 1)."""
        predicate = POr(
            (
                Comparison(Attr("a"), "=", Const("oid1")),
                Comparison(Attr("a"), "!=", Const("oid1")),
            )
        )
        assert predicate.holds3((Null("o"), 0, 0), SCHEMA) is None
        assert predicate.holds3(("oid1", 0, 0), SCHEMA) is True
        assert predicate.holds3(("oid2", 0, 0), SCHEMA) is True

    def test_classification_propagates(self):
        p = Comparison(Attr("a"), "=", Const(1))
        assert PAnd((p, p)).is_positive()
        assert not PNot(p).is_positive()
        assert POr((p, PNot(p))).is_equality_only()

    def test_attribute_and_constant_collection(self):
        p = Comparison(Attr("a"), "=", Const(1))
        q = Comparison(Attr("b"), "=", Const(2))
        assert PAnd((p, q)).attributes() == {"a", "b"}
        assert POr((p, q)).constants() == {1, 2}

    def test_operator_sugar(self):
        p = eq(Attr("a"), 1)
        q = neq(Attr("b"), 2)
        assert (p & q).holds((1, 3, 0), SCHEMA)
        assert (p | q).holds((0, 2, 0), SCHEMA) is False
        assert (~p).holds((0, 0, 0), SCHEMA)


class TestKleeneHelpers:
    def test_kleene_and(self):
        assert kleene_and([True, True]) is True
        assert kleene_and([True, None]) is None
        assert kleene_and([False, None]) is False
        assert kleene_and([]) is True

    def test_kleene_or(self):
        assert kleene_or([False, False]) is False
        assert kleene_or([False, None]) is None
        assert kleene_or([True, None]) is True
        assert kleene_or([]) is False

    def test_kleene_not(self):
        assert kleene_not(True) is False
        assert kleene_not(False) is True
        assert kleene_not(None) is None
