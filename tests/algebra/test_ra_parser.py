"""Unit tests for the RA text parser."""

import pytest

from repro.algebra import (
    Comparison,
    Delta,
    Difference,
    Division,
    Intersection,
    NaturalJoin,
    PAnd,
    PNot,
    POr,
    Product,
    Projection,
    PTrue,
    RAParseError,
    RelationRef,
    Rename,
    Selection,
    Union_,
    parse_predicate,
    parse_ra,
)
from repro.datamodel import Database


@pytest.fixture
def db():
    return Database.from_dict({"R": [(1, 2), (3, 4)], "S": [(2,), (5,)]})


class TestExpressions:
    def test_relation_reference(self):
        assert parse_ra("R") == RelationRef("R")

    def test_delta_and_adom(self):
        assert isinstance(parse_ra("delta"), Delta)
        assert type(parse_ra("adom")).__name__ == "ActiveDomain"

    def test_projection_with_positions_and_names(self, db):
        expr = parse_ra("project[#1](R)")
        assert isinstance(expr, Projection)
        assert expr.evaluate(db).rows == frozenset({(2,), (4,)})
        named = parse_ra("project[o_id, product](Orders)")
        assert named.attributes == ("o_id", "product")

    def test_selection(self, db):
        expr = parse_ra("select[#0 = 1](R)")
        assert isinstance(expr, Selection)
        assert expr.evaluate(db).rows == frozenset({(1, 2)})

    def test_selection_with_string_constant(self):
        expr = parse_ra("select[product = 'pr1'](Orders)")
        assert isinstance(expr.predicate, Comparison)
        assert expr.predicate.right.value == "pr1"

    def test_binary_operators(self):
        assert isinstance(parse_ra("union(R, S)"), Union_)
        assert isinstance(parse_ra("diff(R, S)"), Difference)
        assert isinstance(parse_ra("difference(R, S)"), Difference)
        assert isinstance(parse_ra("intersect(R, S)"), Intersection)
        assert isinstance(parse_ra("product(R, S)"), Product)
        assert isinstance(parse_ra("join(R, S)"), NaturalJoin)
        assert isinstance(parse_ra("divide(R, S)"), Division)

    def test_rename(self):
        expr = parse_ra("rename[X](R)")
        assert isinstance(expr, Rename)
        assert expr.name == "X"
        assert expr.attributes is None
        expr2 = parse_ra("rename[X(a, b)](R)")
        assert expr2.attributes == ("a", "b")

    def test_nesting(self, db):
        expr = parse_ra("diff(project[#0](R), project[#0](select[#0 = 5](S)))")
        assert expr.evaluate(db).rows == frozenset({(1,), (3,)})

    def test_evaluation_round_trip(self, db):
        expr = parse_ra("union(project[#1](R), S)")
        assert expr.evaluate(db).rows == frozenset({(2,), (4,), (5,)})

    def test_errors(self):
        with pytest.raises(RAParseError):
            parse_ra("project[](R)")
        with pytest.raises(RAParseError):
            parse_ra("union(R)")
        with pytest.raises(RAParseError):
            parse_ra("R extra")
        with pytest.raises(RAParseError):
            parse_ra("select[#0 =](R)")
        with pytest.raises(RAParseError):
            parse_ra("")
        with pytest.raises(RAParseError):
            parse_ra("select [#0 = 1] R")


class TestPredicates:
    def test_comparison_operators(self):
        for op_text, op in [("=", "="), ("!=", "!="), ("<>", "!="), ("<", "<"), (">=", ">=")]:
            predicate = parse_predicate(f"#0 {op_text} 3")
            assert isinstance(predicate, Comparison)
            assert predicate.op == op

    def test_number_and_string_terms(self):
        predicate = parse_predicate("price >= 10.5")
        assert predicate.right.value == 10.5
        predicate = parse_predicate("name = 'bob'")
        assert predicate.right.value == "bob"

    def test_boolean_structure(self):
        predicate = parse_predicate("#0 = 1 and #1 = 2 or not #2 = 3")
        assert isinstance(predicate, POr)
        assert isinstance(predicate.operands[0], PAnd)
        assert isinstance(predicate.operands[1], PNot)

    def test_parentheses(self):
        predicate = parse_predicate("#0 = 1 and (#1 = 2 or #1 = 3)")
        assert isinstance(predicate, PAnd)
        assert isinstance(predicate.operands[1], POr)

    def test_true_literal(self):
        assert isinstance(parse_predicate("true"), PTrue)

    def test_attribute_to_attribute(self):
        predicate = parse_predicate("a = b")
        assert predicate.left.ref == "a"
        assert predicate.right.ref == "b"

    def test_trailing_input_rejected(self):
        with pytest.raises(RAParseError):
            parse_predicate("#0 = 1 #1")
