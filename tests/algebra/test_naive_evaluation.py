"""Unit tests for naive evaluation of RA queries over incomplete databases."""

import pytest

from repro.algebra import (
    naive_boolean,
    naive_certain_answers,
    naive_evaluate,
    naive_object_answer,
    parse_ra,
)
from repro.datamodel import Database, Null
from repro.semantics import certain_answers_enumeration


@pytest.fixture
def db_with_nulls():
    return Database.from_dict(
        {
            "R": [(1, Null("x")), (2, 3), (Null("x"), 3)],
            "S": [(3,), (Null("y"),)],
        }
    )


class TestNaiveEvaluate:
    def test_nulls_join_with_themselves(self, db_with_nulls):
        query = parse_ra("select[#0 = #1](product(project[#1](R), S))")
        result = naive_evaluate(query, db_with_nulls)
        assert (3, 3) in result.rows
        assert (Null("x"), Null("x")) not in result.rows  # x never occurs in S

    def test_marked_null_matches_across_relations(self):
        shared = Null("x")
        db = Database.from_dict({"R": [(1, shared)], "S": [(shared,)]})
        query = parse_ra("select[#1 = #2](product(R, S))")
        assert len(naive_evaluate(query, db)) == 1

    def test_projection_keeps_nulls(self, db_with_nulls):
        query = parse_ra("project[#1](R)")
        result = naive_evaluate(query, db_with_nulls)
        assert (Null("x"),) in result.rows

    def test_object_answer_is_plain_naive_answer(self, db_with_nulls):
        query = parse_ra("project[#1](R)")
        assert naive_object_answer(query, db_with_nulls) == naive_evaluate(query, db_with_nulls)


class TestNaiveCertainAnswers:
    def test_drops_tuples_with_nulls(self, db_with_nulls):
        query = parse_ra("project[#1](R)")
        result = naive_certain_answers(query, db_with_nulls)
        assert result.rows == frozenset({(3,)})

    def test_matches_enumeration_for_positive_query(self, db_with_nulls):
        query = parse_ra("project[#0](select[#1 = 3](R))")
        naive = naive_certain_answers(query, db_with_nulls)
        enumerated = certain_answers_enumeration(query.evaluate, db_with_nulls, semantics="cwa")
        assert naive.rows == enumerated.rows

    def test_union_query_matches_enumeration(self, db_with_nulls):
        query = parse_ra("union(project[#0](R), S)")
        naive = naive_certain_answers(query, db_with_nulls)
        enumerated = certain_answers_enumeration(query.evaluate, db_with_nulls, semantics="cwa")
        assert naive.rows == enumerated.rows

    def test_overclaims_for_difference(self):
        """The Section 2 counterexample: π_A(R − S) with R={(1,⊥)}, S={(1,⊥')}."""
        db = Database.from_dict({"R": [(1, Null("b1"))], "S": [(1, Null("b2"))]})
        query = parse_ra("project[#0](diff(R, S))")
        naive = naive_certain_answers(query, db)
        enumerated = certain_answers_enumeration(query.evaluate, db, semantics="cwa")
        assert naive.rows == frozenset({(1,)})
        assert enumerated.rows == frozenset()
        assert naive.rows != enumerated.rows


class TestNaiveBoolean:
    def test_boolean_queries(self, db_with_nulls):
        assert naive_boolean(parse_ra("R"), db_with_nulls)
        assert not naive_boolean(parse_ra("select[#0 = 99](S)"), db_with_nulls)
