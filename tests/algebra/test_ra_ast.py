"""Unit tests for relational-algebra expressions and their evaluation."""

import pytest

from repro.algebra import (
    ActiveDomain,
    Attr,
    Comparison,
    Delta,
    difference,
    divide,
    intersection,
    join,
    product,
    project,
    relation,
    rename,
    select,
    union,
)
from repro.algebra.ast import ConstantRelation, expand_division
from repro.datamodel import Database, Null, Relation


@pytest.fixture
def company_db():
    return Database.from_relations(
        [
            Relation.create(
                "Emp",
                [("alice", "hr"), ("bob", "it"), ("carol", "it")],
                attributes=("name", "dept"),
            ),
            Relation.create("Dept", [("hr",), ("it",)], attributes=("dept",)),
            Relation.create(
                "Managers", [("alice",), ("dave",)], attributes=("name",)
            ),
        ]
    )


class TestLeaves:
    def test_relation_ref(self, company_db):
        assert len(relation("Emp").evaluate(company_db)) == 3
        assert relation("Emp").output_schema(company_db.schema).attributes == ("name", "dept")

    def test_constant_relation(self, company_db):
        literal = ConstantRelation(Relation.create("L", [(1,)]))
        assert literal.evaluate(company_db).rows == frozenset({(1,)})

    def test_delta(self, company_db):
        rows = Delta().evaluate(company_db).rows
        assert ("alice", "alice") in rows
        assert all(a == b for a, b in rows)
        assert len(rows) == len(company_db.active_domain())

    def test_active_domain(self, company_db):
        rows = ActiveDomain().evaluate(company_db).rows
        assert ("hr",) in rows
        assert len(rows) == len(company_db.active_domain())

    def test_relation_names(self, company_db):
        expr = union(project(relation("Emp"), ["name"]), relation("Managers"))
        assert expr.relation_names() == {"Emp", "Managers"}


class TestUnaryOperators:
    def test_selection(self, company_db):
        expr = select(relation("Emp"), Comparison(Attr("dept"), "=", "it"))
        assert expr.evaluate(company_db).rows == frozenset({("bob", "it"), ("carol", "it")})

    def test_projection_by_name_and_position(self, company_db):
        by_name = project(relation("Emp"), ["name"]).evaluate(company_db)
        by_position = project(relation("Emp"), [0]).evaluate(company_db)
        assert by_name.rows == by_position.rows == frozenset(
            {("alice",), ("bob",), ("carol",)}
        )

    def test_projection_reorders_and_duplicates(self, company_db):
        expr = project(relation("Emp"), ["dept", "name", "dept"])
        result = expr.evaluate(company_db)
        assert ("it", "bob", "it") in result.rows
        assert result.arity == 3

    def test_rename(self, company_db):
        expr = rename(relation("Emp"), "Staff", ("who", "where"))
        result = expr.evaluate(company_db)
        assert result.name == "Staff"
        assert result.attributes == ("who", "where")

    def test_rename_arity_mismatch(self, company_db):
        expr = rename(relation("Emp"), "Staff", ("only",))
        with pytest.raises(ValueError):
            expr.evaluate(company_db)


class TestBinaryOperators:
    def test_product(self, company_db):
        expr = product(relation("Dept"), relation("Managers"))
        result = expr.evaluate(company_db)
        assert len(result) == 4
        assert result.arity == 2

    def test_product_attribute_names(self, company_db):
        clashing = product(relation("Emp"), relation("Managers"))
        # 'name' clashes, so the product falls back to positional names.
        assert clashing.output_schema(company_db.schema).attributes == ("#0", "#1", "#2")
        distinct = product(relation("Dept"), relation("Managers"))
        assert distinct.output_schema(company_db.schema).attributes == ("dept", "name")

    def test_natural_join(self, company_db):
        expr = join(relation("Emp"), relation("Dept"))
        result = expr.evaluate(company_db)
        assert len(result) == 3
        assert result.attributes == ("name", "dept")

    def test_natural_join_without_shared_attributes_is_product(self, company_db):
        expr = join(relation("Dept"), relation("Managers"))
        assert len(expr.evaluate(company_db)) == 4

    def test_union(self, company_db):
        expr = union(project(relation("Emp"), ["name"]), relation("Managers"))
        assert expr.evaluate(company_db).rows == frozenset(
            {("alice",), ("bob",), ("carol",), ("dave",)}
        )

    def test_difference(self, company_db):
        expr = difference(project(relation("Emp"), ["name"]), relation("Managers"))
        assert expr.evaluate(company_db).rows == frozenset({("bob",), ("carol",)})

    def test_intersection(self, company_db):
        expr = intersection(project(relation("Emp"), ["name"]), relation("Managers"))
        assert expr.evaluate(company_db).rows == frozenset({("alice",)})

    def test_arity_mismatch_rejected(self, company_db):
        expr = union(relation("Emp"), relation("Dept"))
        with pytest.raises(ValueError):
            expr.evaluate(company_db)


class TestDivision:
    def test_division_by_named_attributes(self, company_db):
        expr = divide(relation("Emp"), relation("Dept"))
        # No employee works in *every* department.
        assert expr.evaluate(company_db).rows == frozenset()

    def test_division_finds_universal_tuples(self):
        db = Database.from_relations(
            [
                Relation.create(
                    "Enroll",
                    [("alice", "db"), ("alice", "os"), ("bob", "db")],
                    attributes=("student", "course"),
                ),
                Relation.create("Courses", [("db",), ("os",)], attributes=("course",)),
            ]
        )
        expr = divide(relation("Enroll"), relation("Courses"))
        assert expr.evaluate(db).rows == frozenset({("alice",)})

    def test_division_positional(self):
        db = Database.from_dict({"R": [("a", 1), ("a", 2), ("b", 1)], "S": [(1,), (2,)]})
        expr = divide(relation("R"), relation("S"))
        assert expr.evaluate(db).rows == frozenset({("a",)})

    def test_division_by_empty_divisor_returns_all_keys(self):
        db = Database.from_relations(
            [
                Relation.create("R", [("a", 1), ("b", 2)]),
                Relation.create("S", [], arity=1),
            ]
        )
        expr = divide(relation("R"), relation("S"))
        assert expr.evaluate(db).rows == frozenset({("a",), ("b",)})

    def test_division_arity_constraints(self, company_db):
        expr = divide(relation("Dept"), relation("Dept"))
        with pytest.raises(ValueError):
            expr.evaluate(company_db)

    def test_expand_division_matches_direct_evaluation(self):
        db = Database.from_dict(
            {"R": [("a", 1), ("a", 2), ("b", 1), ("c", 2)], "S": [(1,), (2,)]}
        )
        expr = divide(relation("R"), relation("S"))
        expanded = expand_division(expr, db.schema)
        assert expanded.evaluate(db).rows == expr.evaluate(db).rows


class TestNaiveBehaviour:
    def test_nulls_behave_as_values(self):
        null = Null("x")
        db = Database.from_dict({"R": [(null, 1), (2, 1)], "S": [(null,), (3,)]})
        expr = join(
            rename(relation("R"), "R", ("a", "b")),
            rename(relation("S"), "S", ("a",)),
        )
        result = expr.evaluate(db)
        assert (null, 1) in result.rows
        assert (2, 1) not in result.rows

    def test_difference_is_syntactic_on_nulls(self):
        db = Database.from_dict({"R": [(Null("x"),), (1,)], "S": [(Null("y"),)]})
        expr = difference(relation("R"), relation("S"))
        assert expr.evaluate(db).rows == frozenset({(Null("x"),), (1,)})


class TestExpressionUtilities:
    def test_walk_visits_all_nodes(self, company_db):
        expr = union(project(relation("Emp"), ["name"]), relation("Managers"))
        kinds = [type(node).__name__ for node in expr.walk()]
        assert kinds.count("RelationRef") == 2
        assert "Projection" in kinds

    def test_fluent_builders(self, company_db):
        expr = relation("Emp").project(["name"]).union(relation("Managers"))
        assert len(expr.evaluate(company_db)) == 4

    def test_str_round_trips_concepts(self, company_db):
        expr = select(relation("Emp"), Comparison(Attr("dept"), "=", "it"))
        assert "select" in str(expr)
        assert "Emp" in str(expr)
