"""Unit tests for the RA fragment classifiers (positive, RA(Δ,π,×,∪), RA_cwa)."""

import pytest

from repro.algebra import (
    Delta,
    Fragment,
    classify,
    divide,
    is_delta_fragment,
    is_positive,
    is_ra_cwa,
    parse_ra,
    project,
    relation,
    uses_difference,
    uses_division,
)
from repro.algebra.ast import Product, Projection, Union_


class TestPositiveFragment:
    def test_spju_queries_are_positive(self):
        assert is_positive(parse_ra("project[#0](select[#1 = 'a'](R))"))
        assert is_positive(parse_ra("union(R, S)"))
        assert is_positive(parse_ra("join(product(R, S), T)"))

    def test_difference_is_not_positive(self):
        assert not is_positive(parse_ra("diff(R, S)"))

    def test_negated_selection_is_not_positive(self):
        assert not is_positive(parse_ra("select[not #0 = 1](R)"))
        assert not is_positive(parse_ra("select[#0 != 1](R)"))

    def test_disjunctive_selection_is_positive(self):
        assert is_positive(parse_ra("select[#0 = 1 or #0 = 2](R)"))

    def test_division_is_not_positive(self):
        assert not is_positive(parse_ra("divide(R, S)"))

    def test_intersection_is_not_positive_syntactically(self):
        # Intersection is expressible positively, but the syntactic checker
        # is conservative and treats only σ, π, ×, ⋈, ∪ as positive nodes.
        assert not is_positive(parse_ra("intersect(R, S)"))


class TestDeltaFragment:
    def test_base_relations_and_delta(self):
        assert is_delta_fragment(parse_ra("R"))
        assert is_delta_fragment(Delta())
        assert is_delta_fragment(parse_ra("project[#0](product(R, delta))"))
        assert is_delta_fragment(parse_ra("union(R, S)"))

    def test_selection_not_in_delta_fragment(self):
        assert not is_delta_fragment(parse_ra("select[#0 = 1](R)"))

    def test_difference_not_in_delta_fragment(self):
        assert not is_delta_fragment(parse_ra("diff(R, S)"))


class TestRaCwa:
    def test_positive_queries_are_ra_cwa(self):
        assert is_ra_cwa(parse_ra("project[#0](select[#1 = 'a'](R))"))

    def test_division_by_base_relation(self):
        assert is_ra_cwa(parse_ra("divide(R, S)"))

    def test_division_by_delta_fragment_query(self):
        divisor = project(Product(relation("S"), Delta()), (0,))
        query = divide(relation("R"), divisor)
        assert is_ra_cwa(query)

    def test_division_by_selection_rejected(self):
        query = divide(relation("R"), parse_ra("select[#0 = 1](S)"))
        assert not is_ra_cwa(query)

    def test_division_inside_positive_context(self):
        query = parse_ra("project[#0](divide(R, S))")
        assert is_ra_cwa(query)

    def test_difference_not_ra_cwa(self):
        assert not is_ra_cwa(parse_ra("diff(R, S)"))
        assert not is_ra_cwa(parse_ra("project[#0](diff(R, S))"))

    def test_nested_division(self):
        query = divide(divide(relation("T"), relation("S")), relation("U"))
        assert is_ra_cwa(query)


class TestClassifier:
    def test_classify_levels(self):
        assert classify(parse_ra("project[#0](R)")) is Fragment.POSITIVE
        assert classify(parse_ra("divide(R, S)")) is Fragment.RA_CWA
        assert classify(parse_ra("diff(R, S)")) is Fragment.FULL

    def test_uses_difference_and_division(self):
        assert uses_difference(parse_ra("project[#0](diff(R, S))"))
        assert not uses_difference(parse_ra("union(R, S)"))
        assert uses_division(parse_ra("divide(R, S)"))
        assert not uses_division(parse_ra("union(R, S)"))
