"""Koch–Olteanu conditioning: factorization, normalization, errors."""

import pytest

from repro.datamodel import And, Eq, Not, Null, Or
from repro.datamodel.condition_kernel import ConditionKernel
from repro.datamodel.conditional import TRUE
from repro.prob import Conditioner, ProbabilityModel, brute_force_confidence
from repro.resilience import InvalidRequestError

X, Y, Z = Null("x"), Null("y"), Null("z")


@pytest.fixture
def model():
    return ProbabilityModel(
        independent={
            X: {1: 0.5, 2: 0.5},
            Y: {1: 0.4, 2: 0.6},
            Z: {1: 0.9, 2: 0.1},
        }
    )


def test_group_disjoint_conjuncts_become_components(model):
    # x-conjunct and y-conjunct touch disjoint groups: two components,
    # P(constraint) is the product of the cached factors.
    conditioner = Conditioner(And((Eq(X, 1), Eq(Y, 2))), model, ConditionKernel())
    assert conditioner.components() == 2
    assert conditioner.normalization == pytest.approx(0.5 * 0.6)


def test_overlapping_conjuncts_merge_into_one_component(model):
    constraint = And((Or((Eq(X, 1), Eq(Y, 1))), Eq(Y, 2)))
    conditioner = Conditioner(constraint, model, ConditionKernel())
    assert conditioner.components() == 1
    assert conditioner.normalization == pytest.approx(
        brute_force_confidence(constraint, model)
    )


def test_independent_components_cancel(model):
    # P(z-condition | x-constraint ∧ y-constraint) = P(z-condition): the
    # untouched components cancel out exactly.
    conditioner = Conditioner(And((Eq(X, 1), Eq(Y, 2))), model, ConditionKernel())
    assert conditioner.probability(Eq(Z, 2)) == pytest.approx(0.1)


def test_touched_component_renormalizes(model):
    conditioner = Conditioner(Eq(X, 1), model, ConditionKernel())
    assert conditioner.probability(Eq(X, 1)) == pytest.approx(1.0)
    assert conditioner.probability(Eq(X, 2)) == pytest.approx(0.0)
    assert conditioner.probability(TRUE) == 1.0


def test_conditional_matches_brute_force(model):
    constraint = Or((Eq(X, 1), Eq(Y, 1)))
    conditioner = Conditioner(constraint, model, ConditionKernel())
    condition = And((Eq(X, 1), Eq(Z, 1)))
    expected = brute_force_confidence(
        And((condition, constraint)), model
    ) / brute_force_confidence(constraint, model)
    assert conditioner.probability(condition) == pytest.approx(expected)


def test_zero_probability_constraint_raises(model):
    with pytest.raises(InvalidRequestError, match="probability zero"):
        Conditioner(And((Eq(X, 1), Eq(X, 2))), model, ConditionKernel())
    with pytest.raises(InvalidRequestError, match="probability zero"):
        Conditioner(Eq(X, 7), model, ConditionKernel())  # off support


def test_ground_conjuncts_fold_into_normalization(model):
    # A certainly-true ground conjunct contributes factor 1 and no
    # component.
    conditioner = Conditioner(And((Not(Eq(1, 2)), Eq(X, 1))), model, ConditionKernel())
    assert conditioner.components() == 1
    assert conditioner.normalization == pytest.approx(0.5)


def test_given_exposes_constraint_for_sampling(model):
    assert Conditioner(TRUE, model, ConditionKernel()).given() is None
    conditioner = Conditioner(Eq(X, 1), model, ConditionKernel())
    assert conditioner.given() is not None
    assert "components" in repr(conditioner)


def test_unmodeled_null_rejected(model):
    with pytest.raises(InvalidRequestError, match="no probability"):
        Conditioner(Eq(Null("other"), 1), model, ConditionKernel())
    conditioner = Conditioner(Eq(X, 1), model, ConditionKernel())
    with pytest.raises(InvalidRequestError, match="no probability"):
        conditioner.probability(Eq(Null("other"), 1))
