"""ProbabilityModel / ExclusiveBlock: construction-time validation and shape."""

import random

import pytest

from repro.datamodel import Null, Valuation
from repro.prob import ExclusiveBlock, ProbabilityModel
from repro.resilience import InvalidRequestError

X, Y, Z = Null("x"), Null("y"), Null("z")


def two_point(a=1, b=2, p=0.5):
    return {a: p, b: 1.0 - p}


class TestValidation:
    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(InvalidRequestError, match="sums to"):
            ProbabilityModel(independent={X: {1: 0.5, 2: 0.4}})

    def test_probabilities_must_be_positive(self):
        with pytest.raises(InvalidRequestError, match="probability"):
            ProbabilityModel(independent={X: {1: 0.0, 2: 1.0}})
        with pytest.raises(InvalidRequestError, match="probability"):
            ProbabilityModel(independent={X: {1: "half", 2: 0.5}})

    def test_supports_must_be_constants(self):
        with pytest.raises(InvalidRequestError, match="constants"):
            ProbabilityModel(independent={X: {Y: 0.5, 2: 0.5}})
        with pytest.raises(InvalidRequestError, match="constants"):
            ProbabilityModel(independent={X: {None: 0.5, 2: 0.5}})

    def test_keys_must_be_nulls(self):
        with pytest.raises(InvalidRequestError, match="maps nulls"):
            ProbabilityModel(independent={"x": two_point()})

    def test_empty_model_rejected(self):
        with pytest.raises(InvalidRequestError, match="at least one"):
            ProbabilityModel()
        with pytest.raises(InvalidRequestError, match="empty"):
            ProbabilityModel(independent={X: {}})

    def test_null_cannot_join_two_groups(self):
        block = ExclusiveBlock([({X: 1, Y: 1}, 0.5), ({X: 2, Y: 2}, 0.5)])
        with pytest.raises(InvalidRequestError, match="more than one"):
            ProbabilityModel(independent={X: two_point()}, blocks=[block])

    def test_block_alternatives_must_share_nulls(self):
        with pytest.raises(InvalidRequestError, match="same nulls"):
            ExclusiveBlock([({X: 1}, 0.5), ({Y: 1}, 0.5)])

    def test_block_rejects_duplicates_and_empty(self):
        with pytest.raises(InvalidRequestError, match="duplicate"):
            ExclusiveBlock([({X: 1}, 0.5), ({X: 1}, 0.5)])
        with pytest.raises(InvalidRequestError, match="at least one"):
            ExclusiveBlock([])


class TestShape:
    @pytest.fixture
    def model(self):
        block = ExclusiveBlock([({Y: 1, Z: 1}, 0.3), ({Y: 2, Z: 1}, 0.2), ({Y: 2, Z: 2}, 0.5)])
        return ProbabilityModel(independent={X: two_point(p=0.7)}, blocks=[block])

    def test_groups_and_representatives(self, model):
        assert model.group(X) == frozenset({X})
        assert model.group(Y) == frozenset({Y, Z})
        assert model.representative(Z) == Y  # smallest name in the block
        assert model.nulls() == frozenset({X, Y, Z})
        assert model.covers([X, Y]) and not model.covers([Null("w")])

    def test_block_marginals_sum_alternatives(self, model):
        assert model.marginal(Y) == pytest.approx({1: 0.3, 2: 0.7})
        assert model.marginal(Z) == pytest.approx({1: 0.5, 2: 0.5})
        assert model.support(X) == (1, 2)

    def test_require_lists_missing_nulls(self, model):
        with pytest.raises(InvalidRequestError, match=r"\['w'\]"):
            model.require([X, Null("w")])

    def test_joint_outcomes_cover_full_groups(self, model):
        # Touching Z pulls in the whole {Y, Z} block.
        outcomes = list(model.joint_outcomes([Z]))
        assert len(outcomes) == 3
        assert all(set(assignment) == {Y, Z} for assignment, _ in outcomes)
        assert sum(p for _, p in outcomes) == pytest.approx(1.0)
        # The empty set yields the single empty world.
        assert list(model.joint_outcomes([])) == [({}, 1.0)]

    def test_world_probability_multiplies_groups(self, model):
        world = Valuation({X: 1, Y: 2, Z: 1})
        assert model.world_probability(world) == pytest.approx(0.7 * 0.2)
        # A joint assignment matching no block alternative has measure zero.
        assert model.world_probability(Valuation({X: 1, Y: 1, Z: 2})) == 0.0

    def test_sample_respects_block_alternatives(self, model):
        rng = random.Random(7)
        for _ in range(50):
            world = model.sample(rng)
            assert model.world_probability(world) > 0.0

    def test_stats_shape(self, model):
        assert model.stats() == {"nulls": 3, "groups": 2, "blocks": 1, "outcomes": 5}
        assert "2 groups" in repr(model)
