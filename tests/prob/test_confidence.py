"""The exact confidence evaluator: decomposition rules, memo, budget."""

import pytest

from repro.datamodel import Eq, Null, Not, Or, And
from repro.datamodel.condition_kernel import ConditionKernel
from repro.datamodel.conditional import FALSE, TRUE
from repro.prob import ExclusiveBlock, ProbabilityModel, brute_force_confidence, confidence
from repro.resilience import Budget, BudgetExceeded, InvalidRequestError, budget_scope

X, Y, Z, W = Null("x"), Null("y"), Null("z"), Null("w")


@pytest.fixture
def model():
    # x, w independent; {y, z} an exclusive block.
    return ProbabilityModel(
        independent={X: {1: 0.6, 2: 0.4}, W: {1: 0.5, 3: 0.5}},
        blocks=[
            ExclusiveBlock(
                [({Y: 1, Z: 1}, 0.3), ({Y: 2, Z: 1}, 0.2), ({Y: 2, Z: 2}, 0.5)]
            )
        ],
    )


@pytest.fixture
def kernel():
    return ConditionKernel()


class TestAtoms:
    def test_constants(self, model, kernel):
        assert confidence(TRUE, model, kernel) == 1.0
        assert confidence(FALSE, model, kernel) == 0.0

    def test_null_equals_constant(self, model, kernel):
        assert confidence(Eq(X, 1), model, kernel) == pytest.approx(0.6)
        assert confidence(Eq(X, 9), model, kernel) == 0.0  # off support

    def test_same_block_atom_sums_matching_alternatives(self, model, kernel):
        # y = z holds in alternatives (1,1) and (2,2): 0.3 + 0.5.
        assert confidence(Eq(Y, Z), model, kernel) == pytest.approx(0.8)

    def test_cross_group_atom_convolves_marginals(self, model, kernel):
        # x = w: only value 1 is shared (0.6 * 0.5).
        assert confidence(Eq(X, W), model, kernel) == pytest.approx(0.3)

    def test_negation_complements(self, model, kernel):
        assert confidence(Not(Eq(X, 1)), model, kernel) == pytest.approx(0.4)

    def test_unmodeled_null_raises(self, model, kernel):
        with pytest.raises(InvalidRequestError, match="no probability"):
            confidence(Eq(Null("other"), 1), model, kernel)


class TestDecomposition:
    def test_independent_and_multiplies(self, model, kernel):
        stats = {}
        p = confidence(And((Eq(X, 1), Eq(W, 3))), model, kernel, stats=stats)
        assert p == pytest.approx(0.6 * 0.5)
        assert stats["independent_ands"] >= 1
        assert stats["shannon_expansions"] == 0

    def test_independent_or_complements(self, model, kernel):
        stats = {}
        p = confidence(Or((Eq(X, 1), Eq(W, 3))), model, kernel, stats=stats)
        assert p == pytest.approx(1.0 - 0.4 * 0.5)
        assert stats["independent_ors"] >= 1

    def test_exclusive_or_sums_without_shannon(self, model, kernel):
        # y = 1 and z = 2 never hold together (no block alternative has
        # both): the evaluator detects the exclusion from the block
        # structure and sums — no Shannon expansion.
        disjunction = Or((Eq(Y, 1), Eq(Z, 2)))
        stats = {}
        p = confidence(disjunction, model, kernel, stats=stats)
        assert p == pytest.approx(0.3 + 0.5)
        assert stats["exclusive_ors"] >= 1
        assert stats["shannon_expansions"] == 0

    def test_exclusive_or_over_pinned_alternatives(self, model, kernel):
        # Conjunctions pinning the block to different alternatives are
        # exclusive too (their inner evaluation may expand, the top-level
        # disjunction must not enumerate cross products).
        disjunction = Or(
            (And((Eq(Y, 1), Eq(Z, 1))), And((Eq(Y, 2), Eq(Z, 2))))
        )
        stats = {}
        p = confidence(disjunction, model, kernel, stats=stats)
        assert p == pytest.approx(0.3 + 0.5)
        assert stats["exclusive_ors"] >= 1

    def test_shared_group_or_takes_shannon(self, model, kernel):
        # Disjuncts overlap on x = 1 (not exclusive, not independent):
        # Shannon expansion over x is the only sound rule.
        condition = Or((And((Eq(X, 1), Eq(Y, 1))), And((Eq(X, 1), Eq(W, 1)))))
        stats = {}
        p = confidence(condition, model, kernel, stats=stats)
        assert p == pytest.approx(brute_force_confidence(condition, model))
        assert p == pytest.approx(0.6 * (0.3 + 0.5 - 0.3 * 0.5))
        assert stats["shannon_expansions"] >= 1

    def test_contradictory_conjunction_is_zero(self, model, kernel):
        assert confidence(And((Eq(X, 1), Eq(X, 2))), model, kernel) == 0.0

    def test_result_clamped_to_unit_interval(self, model, kernel):
        big = Or(tuple(Eq(X, v) for v in (1, 2)))
        assert confidence(big, model, kernel) == 1.0


class TestMemo:
    def test_shared_memo_hits_on_reevaluation(self, model, kernel):
        condition = Or((And((Eq(X, 1), Eq(Y, 1))), And((Eq(X, 1), Eq(W, 1)))))
        first = confidence(condition, model, kernel)
        stats = {}
        second = confidence(condition, model, kernel, stats=stats)
        assert first == second
        assert stats["memo_hits"] >= 1
        assert stats["shannon_expansions"] == 0  # cached, not re-expanded
        assert kernel.stats()["confidence_memo"] > 0

    def test_memo_is_per_model(self, kernel):
        model_a = ProbabilityModel(independent={X: {1: 0.6, 2: 0.4}})
        model_b = ProbabilityModel(independent={X: {1: 0.1, 2: 0.9}})
        assert confidence(Eq(X, 1), model_a, kernel) == pytest.approx(0.6)
        assert confidence(Eq(X, 1), model_b, kernel) == pytest.approx(0.1)

    def test_explicit_memo_override(self, model, kernel):
        memo = {}
        confidence(Eq(X, 1), model, kernel, memo=memo)
        assert len(memo) >= 1
        assert kernel.stats()["confidence_memo"] == 0  # shared table untouched

    def test_clear_drops_confidence_memo(self, model, kernel):
        confidence(Eq(X, 1), model, kernel)
        assert kernel.stats()["confidence_memo"] > 0
        kernel.clear()
        assert kernel.stats()["confidence_memo"] == 0


class TestFrozenKernel:
    def test_frozen_kernel_serves_warmed_memo_readonly(self, model, kernel):
        condition = Or((And((Eq(X, 1), Eq(Y, 1))), And((Eq(X, 1), Eq(W, 1)))))
        warmed = confidence(condition, model, kernel)
        warmed_size = kernel.stats()["confidence_memo"]
        assert warmed_size > 0
        kernel.freeze()
        stats = {}
        assert confidence(condition, model, kernel, stats=stats) == warmed
        assert stats["memo_hits"] >= 1  # served from the frozen base layer
        # The frozen kernel's tables are not mutated by new queries.
        fresh = And((Eq(X, 2), Eq(W, 3)))
        assert confidence(fresh, model, kernel) == pytest.approx(0.4 * 0.5)
        assert kernel.stats()["confidence_memo"] == warmed_size
        assert kernel.memo_trims == 0

    def test_unwarmed_frozen_kernel_still_answers(self, model):
        kernel = ConditionKernel()
        kernel.freeze()
        assert confidence(Eq(X, 1), model, kernel) == pytest.approx(0.6)
        assert kernel.stats()["confidence_memo"] == 0


class TestBudget:
    def test_budget_expiry_raises_mid_expansion(self, model, kernel):
        # Force Shannon (shared x, not exclusive) under a one-world budget.
        condition = Or((And((Eq(X, 1), Eq(Y, 1))), And((Eq(X, 1), Eq(W, 1)))))
        state = Budget(max_worlds=1).start()
        with pytest.raises(BudgetExceeded):
            with budget_scope(state):
                confidence(condition, model, kernel)

    def test_ample_budget_is_untouched(self, model, kernel):
        condition = Or((And((Eq(X, 1), Eq(Y, 1))), And((Eq(X, 1), Eq(W, 1)))))
        state = Budget(max_worlds=10_000).start()
        with budget_scope(state):
            assert confidence(condition, model, kernel) == pytest.approx(
                brute_force_confidence(condition, model)
            )
