"""The session tier of semantics="prob": confidence(), condition_on, budgets."""

import asyncio

import pytest

import repro
from repro import connect
from repro.algebra import parse_ra
from repro.datamodel import And, Database, Eq, Null, Relation
from repro.prob import ExclusiveBlock, ProbabilityModel, brute_force_confidence
from repro.resilience import (
    Budget,
    BudgetExceeded,
    ConfidenceInterval,
    InvalidRequestError,
)
from repro.serve import Server

X, Y = Null("x"), Null("y")
JOIN = parse_ra("join(R, S)")
PROJECT = parse_ra("project[a](join(R, S))")


def make_model():
    return ProbabilityModel(
        independent={X: {1: 0.6, 2: 0.4}, Y: {2: 0.3, 3: 0.7}}
    )


def make_database():
    return Database.from_relations(
        [
            Relation.create("R", [(1, X), (2, 2)], attributes=("a", "b")),
            Relation.create("S", [(Y, "p"), (2, "q")], attributes=("b", "c")),
        ]
    )


@pytest.fixture
def session():
    with connect(make_database(), semantics="prob", model=make_model()) as s:
        yield s


class TestConnectValidation:
    def test_prob_needs_a_model(self):
        with pytest.raises(InvalidRequestError, match="needs a probability model"):
            connect(make_database(), semantics="prob")

    def test_model_must_be_a_probability_model(self):
        with pytest.raises(TypeError, match="ProbabilityModel"):
            connect(make_database(), semantics="prob", model={"x": {1: 1.0}})

    def test_model_requires_prob_semantics(self):
        with pytest.raises(InvalidRequestError, match="only meaningful"):
            connect(make_database(), semantics="cwa", model=make_model())

    def test_confidence_requires_prob_session(self):
        with connect(make_database()) as s:
            with pytest.raises(InvalidRequestError, match="probabilistic session"):
                s.query(JOIN).confidence()
            with pytest.raises(InvalidRequestError, match="probabilistic session"):
                s.query(JOIN).condition_on(Eq(X, 1))


class TestConfidence:
    def test_matches_world_enumeration(self, session):
        ranked = session.query(JOIN).confidence()
        # Worlds: x ∈ {1,2} (0.6/0.4), y ∈ {2,3} (0.3/0.7).
        # R = {(1,x), (2,2)}, S = {(y,p), (2,q)}; join on b.
        expected = {
            (2, 2, "q"): 1.0,          # ground derivation
            (2, 2, "p"): 0.3,          # y = 2
            (1, 2, "q"): 0.4,          # x = 2
            (1, 2, "p"): 0.4 * 0.3,    # x = 2 ∧ y = 2
            (1, 3, "p"): 0.6 * 0.7,    # x = 1... no: x pinned 3? impossible
        }
        # (1, 3, "p") needs x = 3, outside x's support: dropped.
        del expected[(1, 3, "p")]
        assert dict(ranked) == pytest.approx(expected)
        probabilities = [p for _, p in ranked]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_zero_probability_rows_dropped(self, session):
        rows = dict(session.query(JOIN).confidence())
        assert all(p > 0.0 for p in rows.values())
        assert (1, 3, "p") not in rows  # x = 3 is outside the support

    def test_min_p_and_limit(self, session):
        top = session.query(JOIN).confidence(limit=2)
        assert len(top) == 2
        assert top[0] == ((2, 2, "q"), pytest.approx(1.0))
        confident = session.query(JOIN).confidence(min_p=0.35)
        assert all(p >= 0.35 for _, p in confident)
        with pytest.raises(InvalidRequestError, match="limit"):
            session.query(JOIN).confidence(limit=0)

    def test_projection_merges_lineage(self, session):
        ranked = dict(session.query(PROJECT).confidence())
        # (1,) appears iff any join partner for (1, x) exists:
        # x=2 (S has b=2 twice at least via (2,q)) — P = 0.4... but y=2
        # also yields b=2. Oracle-check instead of hand-solving:
        model = make_model()
        total = 0.0
        for assignment, p in model.joint_outcomes(model.nulls()):
            from repro.algebra import naive_evaluate
            from repro.datamodel import Valuation

            world = Valuation(assignment).apply(make_database())
            if (1,) in set(naive_evaluate(PROJECT, world)):
                total += p
        assert ranked[(1,)] == pytest.approx(total)

    def test_certain_and_possible_still_answer_under_cwa(self):
        with connect(make_database(), semantics="prob", model=make_model()) as prob:
            with connect(make_database(), semantics="cwa") as cwa:
                assert prob.query(JOIN).certain() == cwa.query(JOIN).certain()
                assert prob.query(JOIN).possible() == cwa.query(JOIN).possible()
        assert prob.world_semantics == "cwa"

    def test_unmodeled_database_null_raises(self):
        database = Database.from_relations(
            [
                Relation.create("R", [(1, Null("free"))], attributes=("a", "b")),
                Relation.create("S", [(2, "q")], attributes=("b", "c")),
            ]
        )
        with connect(database, semantics="prob", model=make_model()) as s:
            with pytest.raises(InvalidRequestError, match="free"):
                s.query(JOIN).confidence()

    def test_explain_documents_the_estimator(self, session):
        text = session.query(JOIN).explain()
        assert "confidence(): exact decomposition" in text
        assert "2 modeled nulls" in text

    def test_metrics_count_the_prob_path(self, session):
        session.query(JOIN).confidence()
        counters = session.metrics()["counters"]
        assert counters["query.confidence"] >= 1
        assert counters["prob.confidence.candidates"] >= 4
        assert any(name.startswith("prob.decompositions.") for name in counters)


class TestConditionOn:
    def test_conditioning_renormalizes(self, session):
        ranked = dict(session.query(JOIN).condition_on(Eq(X, 2)).confidence())
        # Given x = 2: (1, 2, "q") is certain, (1, 2, "p") has P(y=2).
        assert ranked[(1, 2, "q")] == pytest.approx(1.0)
        assert ranked[(1, 2, "p")] == pytest.approx(0.3)

    def test_chaining_conjoins(self, session):
        query = session.query(JOIN).condition_on(Eq(X, 2)).condition_on(Eq(Y, 2))
        ranked = dict(query.confidence())
        assert ranked[(1, 2, "p")] == pytest.approx(1.0)

    def test_matches_conditional_oracle(self, session):
        constraint = Eq(Y, 2)
        ranked = dict(session.query(JOIN).condition_on(constraint).confidence())
        model = make_model()
        joint = brute_force_confidence(And((Eq(X, 2), constraint)), model)
        assert ranked[(1, 2, "p")] == pytest.approx(
            joint / brute_force_confidence(constraint, model)
        )

    def test_constraint_must_be_a_condition(self, session):
        with pytest.raises(InvalidRequestError, match="Condition"):
            session.query(JOIN).condition_on("x = 1")

    def test_zero_probability_constraint_raises_at_confidence(self, session):
        query = session.query(JOIN).condition_on(Eq(X, 9))
        with pytest.raises(InvalidRequestError, match="probability zero"):
            query.confidence()

    def test_condition_on_does_not_mutate_the_original(self, session):
        base = session.query(JOIN)
        conditioned = base.condition_on(Eq(X, 2))
        assert base._prob_constraint is None
        assert conditioned is not base
        assert dict(base.confidence())[(1, 2, "q")] == pytest.approx(0.4)


class TestBudgetDegradation:
    def entangled_session(self):
        # Every row shares nulls with the others; lineage construction is
        # cheap but exact evaluation needs Shannon expansions.
        database = Database.from_relations(
            [
                Relation.create("R", [(X, Y), (Y, X), (X, 2)], attributes=("a", "b")),
                Relation.create("S", [(Y, "p"), (2, "q")], attributes=("b", "c")),
            ]
        )
        return connect(
            database,
            semantics="prob",
            model=ProbabilityModel(
                independent={X: {1: 0.5, 2: 0.5}, Y: {1: 0.4, 2: 0.6}}
            ),
        )

    def find_degrading_budget(self, session):
        # The smallest max_worlds that survives lineage construction but
        # dies during exact evaluation (deterministic: no clock involved).
        for worlds in range(1, 200):
            query = session.query(JOIN)
            try:
                result = query.confidence(
                    budget=Budget(max_worlds=worlds), seed=17
                )
            except BudgetExceeded:
                continue
            if any(isinstance(p, ConfidenceInterval) for _, p in result):
                return worlds
        raise AssertionError("no budget size degrades this workload")

    def test_degrades_to_monte_carlo_intervals(self):
        with self.entangled_session() as session:
            worlds = self.find_degrading_budget(session)
            query = session.query(JOIN)
            result = query.confidence(budget=Budget(max_worlds=worlds), seed=17)
            exact = dict(session.query(JOIN).confidence())
            intervals = [
                (values, p)
                for values, p in result
                if isinstance(p, ConfidenceInterval)
            ]
            assert intervals
            for values, interval in intervals:
                assert interval.partial
                assert interval.low <= interval.estimate <= interval.high
                # ~5% of answers legitimately miss a 95% interval, so
                # assert estimate accuracy rather than strict coverage.
                assert float(interval) == pytest.approx(exact[values], abs=0.03)
            assert "degraded to Monte Carlo" in query._resilience_verdict
            counters = session.metrics()["counters"]
            assert counters["degrade.monte_carlo"] >= 1
            assert any(name.startswith("budget.expired.") for name in counters)

    def test_on_budget_raise_propagates(self):
        with self.entangled_session() as session:
            worlds = self.find_degrading_budget(session)
            query = session.query(JOIN)
            with pytest.raises(BudgetExceeded):
                query.confidence(
                    budget=Budget(max_worlds=worlds), on_budget="raise"
                )
            assert "on_budget='raise'" in query._resilience_verdict

    def test_budget_death_before_lineage_always_raises(self):
        with self.entangled_session() as session:
            query = session.query(JOIN)
            with pytest.raises(BudgetExceeded):
                query.confidence(budget=Budget(max_worlds=1))
            assert "nothing to estimate" in query._resilience_verdict


class TestFrozenAndServe:
    def test_frozen_session_answers_confidence(self):
        with connect(make_database(), semantics="prob", model=make_model()) as s:
            expected = s.query(JOIN).confidence()
        session = connect(make_database(), semantics="prob", model=make_model())
        try:
            session.freeze(warm=[JOIN])
            assert session.kernel.frozen
            assert session.query(JOIN).confidence() == expected
            # Unwarmed queries stay correct on the frozen kernel.
            assert dict(session.query(PROJECT).confidence())[(2,)] == pytest.approx(1.0)
        finally:
            session.close()

    def test_server_confidence_round_trip(self):
        expected = None
        with connect(make_database(), semantics="prob", model=make_model()) as s:
            expected = s.query(JOIN).confidence()
        server = Server(
            make_database(),
            pool_size=2,
            semantics="prob",
            model=make_model(),
            warm=[JOIN],
        )
        try:

            async def main():
                ranked = await server.confidence(JOIN)
                conditioned = await server.confidence(JOIN, limit=1)
                return ranked, conditioned

            ranked, top = asyncio.run(main())
            assert ranked == expected
            assert len(top) == 1
        finally:
            server.close()

    def test_public_api_exports(self):
        assert repro.ProbabilityModel is ProbabilityModel
        assert repro.ExclusiveBlock is ExclusiveBlock
        assert repro.ConfidenceInterval is ConfidenceInterval
