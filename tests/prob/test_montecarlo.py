"""Monte Carlo estimation: Wilson intervals, rejection sampling, errors."""

import pytest

from repro.datamodel import And, Eq, Null, Or
from repro.prob import ProbabilityModel, monte_carlo_confidence, wilson_interval
from repro.resilience import ConfidenceInterval, InvalidRequestError

X, Y = Null("x"), Null("y")


@pytest.fixture
def model():
    return ProbabilityModel(
        independent={X: {1: 0.5, 2: 0.5}, Y: {1: 0.25, 2: 0.75}}
    )


class TestWilson:
    def test_interval_stays_in_unit_range(self):
        for successes, samples in [(0, 100), (100, 100), (50, 100), (1, 3)]:
            low, high = wilson_interval(successes, samples)
            p = successes / samples
            assert 0.0 <= low <= p <= high <= 1.0

    def test_zero_samples_is_vacuous(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_narrows_with_more_samples(self):
        low_small, high_small = wilson_interval(50, 100)
        low_big, high_big = wilson_interval(5000, 10_000)
        assert high_big - low_big < high_small - low_small


class TestEstimation:
    def test_estimate_is_deterministic_per_seed(self, model):
        condition = Eq(X, 1)
        a = monte_carlo_confidence(condition, model, samples=500, seed=3)
        b = monte_carlo_confidence(condition, model, samples=500, seed=3)
        assert isinstance(a, ConfidenceInterval)
        assert a.partial  # flagged approximate, like every degraded answer
        assert (a.estimate, a.low, a.high) == (b.estimate, b.low, b.high)
        assert a.samples == 500

    def test_interval_contains_truth_on_fixed_seed(self, model):
        interval = monte_carlo_confidence(
            And((Eq(X, 1), Eq(Y, 2))), model, samples=20_000, seed=11
        )
        assert 0.375 in interval
        assert float(interval) == interval.estimate

    def test_rejection_sampling_conditions(self, model):
        # P(x=1 | x=1 ∨ y=1) on a pinned seed; truth = 0.5 / 0.625 = 0.8.
        interval = monte_carlo_confidence(
            Eq(X, 1),
            model,
            samples=20_000,
            seed=5,
            given=Or((Eq(X, 1), Eq(Y, 1))),
        )
        assert 0.8 in interval
        assert interval.samples < 20_000  # rejected worlds don't count

    def test_unsatisfiable_constraint_raises(self, model):
        with pytest.raises(InvalidRequestError, match="rejected every sample"):
            monte_carlo_confidence(
                Eq(X, 1), model, samples=100, seed=0, given=Eq(X, 9)
            )

    def test_sample_count_validated(self, model):
        with pytest.raises(InvalidRequestError, match=">= 1 sample"):
            monte_carlo_confidence(Eq(X, 1), model, samples=0)

    def test_verdict_and_resource_carried(self, model):
        interval = monte_carlo_confidence(
            Eq(X, 1), model, samples=100, seed=1, verdict="budget blew", resource="worlds"
        )
        assert interval.verdict == "budget blew"
        assert interval.resource == "worlds"
        assert "100 samples" in repr(interval)
