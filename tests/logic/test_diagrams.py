"""Unit tests for positive diagrams, δ-formulas and the database/query duality."""

import pytest

from repro.datamodel import Database, Null, Valuation
from repro.logic import (
    RelationAtom,
    database_as_query,
    delta,
    delta_cwa,
    delta_owa,
    domain_closure,
    is_pos_forall_guarded,
    is_ucq,
    positive_diagram,
    tableau_of_query,
)
from repro.logic.formulas import And, Exists, FOQuery, Variable, atom, conj, exists, var
from repro.semantics import cwa_worlds, default_domain, in_cwa, in_owa, owa_worlds


@pytest.fixture
def paper_diagram_db():
    """R = {(1,2), (2,⊥1), (⊥1,⊥2)} from Section 5.2."""
    b1, b2 = Null("1"), Null("2")
    return Database.from_dict({"R": [(1, 2), (2, b1), (b1, b2)]})


class TestPositiveDiagram:
    def test_atoms_and_variables(self, paper_diagram_db):
        diagram, vars_ = positive_diagram(paper_diagram_db)
        atoms = [f for f in diagram.walk() if isinstance(f, RelationAtom)]
        assert len(atoms) == 3
        assert len(vars_) == 2
        assert {v.name for v in vars_} == {"x_1", "x_2"}

    def test_constants_preserved(self, paper_diagram_db):
        diagram, _ = positive_diagram(paper_diagram_db)
        assert {1, 2} <= diagram.constants()

    def test_same_null_same_variable(self):
        shared = Null("s")
        db = Database.from_dict({"R": [(shared, 1)], "S": [(shared,)]})
        diagram, vars_ = positive_diagram(db)
        assert len(vars_) == 1
        atoms = [f for f in diagram.walk() if isinstance(f, RelationAtom)]
        r_atom = next(a for a in atoms if a.name == "R")
        s_atom = next(a for a in atoms if a.name == "S")
        assert r_atom.terms[0] == s_atom.terms[0]

    def test_complete_database_has_no_variables(self):
        db = Database.from_dict({"R": [(1, 2)]})
        diagram, vars_ = positive_diagram(db)
        assert vars_ == []
        assert diagram.free_variables() == set()


class TestDeltaOwa:
    def test_is_a_ucq(self, paper_diagram_db):
        assert is_ucq(delta_owa(paper_diagram_db))

    def test_models_are_exactly_owa_semantics(self):
        """Mod_C(δ_D^owa) = [[D]]_owa, checked over a pool of candidate worlds."""
        null = Null("x")
        db = Database.from_dict({"R": [(1, null), (null, 2)]})
        formula = delta_owa(db)
        domain = default_domain(db, extra_constants=1)
        candidates = list(owa_worlds(db, domain, max_extra_facts=1))
        candidates.append(Database.from_dict({"R": [(9, 9)]}))
        candidates.append(Database.from_dict({"R": [(1, 5)]}))
        for world in candidates:
            assert formula.holds(world) == in_owa(db, world)

    def test_duality_example_section4(self):
        """R = {(1,⊥),(⊥,2)} viewed as Q_R = ∃x R(1,x) ∧ R(x,2)."""
        db = Database.from_dict({"R": [(1, Null("b")), (Null("b"), 2)]})
        query = database_as_query(db)
        satisfying = Database.from_dict({"R": [(1, 7), (7, 2), (5, 5)]})
        failing = Database.from_dict({"R": [(1, 7), (8, 2)]})
        assert query.formula.holds(satisfying) and in_owa(db, satisfying)
        assert not query.formula.holds(failing) and not in_owa(db, failing)


class TestDeltaCwa:
    def test_is_pos_forall_guarded(self, paper_diagram_db):
        assert is_pos_forall_guarded(delta_cwa(paper_diagram_db))

    def test_models_are_exactly_cwa_semantics(self):
        null = Null("x")
        db = Database.from_dict({"R": [(1, null), (null, 2)]})
        formula = delta_cwa(db)
        domain = default_domain(db, extra_constants=1)
        candidates = list(owa_worlds(db, domain, max_extra_facts=1))
        candidates.append(Database.from_dict({"R": [(9, 9)]}))
        for world in candidates:
            assert formula.holds(world) == in_cwa(db, world)

    def test_valuation_image_is_a_model(self):
        null = Null("x")
        db = Database.from_dict({"R": [(1, null)]})
        world = Valuation({null: 4}).apply(db)
        assert delta_cwa(db).holds(world)
        extended = world.add_facts([("R", (6, 6))])
        assert not delta_cwa(db).holds(extended)
        assert delta_owa(db).holds(extended)

    def test_domain_closure_alone(self):
        db = Database.from_dict({"R": [(1, 2)]})
        closure = domain_closure(db)
        assert closure.holds(db)
        assert not closure.holds(db.add_facts([("R", (3, 3))]))

    def test_dispatch(self):
        db = Database.from_dict({"R": [(1, 2)]})
        assert delta(db, "owa").holds(db)
        assert delta(db, "cwa").holds(db)
        with pytest.raises(ValueError):
            delta(db, "bogus")


class TestTableau:
    def test_boolean_query_tableau(self):
        x, y = var("x"), var("y")
        query = FOQuery(exists((x, y), conj(atom("R", x, y), atom("R", y, x))))
        schema = Database.from_dict({"R": [(1, 1)]}).schema
        tableau, head = tableau_of_query(query, schema)
        assert tableau.size() == 2
        assert head == ()
        assert len(tableau.nulls()) == 2

    def test_frozen_head(self):
        x, y = var("x"), var("y")
        query = FOQuery(exists(y, atom("R", x, y)), (x,))
        schema = Database.from_dict({"R": [(1, 1)]}).schema
        tableau, head = tableau_of_query(query, schema, freeze_head=True)
        assert head == ("_frozen_x",)
        assert "_frozen_x" in tableau.constants()

    def test_constants_kept(self):
        x = var("x")
        query = FOQuery(exists(x, atom("R", 1, x)))
        schema = Database.from_dict({"R": [(1, 1)]}).schema
        tableau, _ = tableau_of_query(query, schema)
        assert 1 in tableau.constants()

    def test_non_cq_rejected(self):
        from repro.logic import Not

        query = FOQuery(Not(atom("R", 1, 1)))
        schema = Database.from_dict({"R": [(1, 1)]}).schema
        with pytest.raises(ValueError):
            tableau_of_query(query, schema)

    def test_tableau_inverts_diagram(self):
        """tableau(database_as_query(D)) is isomorphic to D (nulls renamed)."""
        null = Null("q")
        db = Database.from_dict({"R": [(1, null), (null, 2)]})
        query = database_as_query(db)
        tableau, _ = tableau_of_query(query, db.schema)
        from repro.homomorphisms import hom_equivalent

        assert hom_equivalent(db, tableau)
        assert tableau.size() == db.size()
