"""Unit tests for first-order formulas and their active-domain evaluation."""

import pytest

from repro.datamodel import Database, Null
from repro.logic import (
    And,
    Bottom,
    Equality,
    Exists,
    FOQuery,
    Forall,
    Implies,
    Not,
    Or,
    RelationAtom,
    Top,
    Variable,
    atom,
    conj,
    disj,
    equals,
    exists,
    forall,
    var,
    variables,
)


@pytest.fixture
def edge_db():
    return Database.from_dict({"E": [(1, 2), (2, 3), (3, 1)]})


class TestTermsAndConstruction:
    def test_variables_helper(self):
        xs = variables("x y z")
        assert xs == (Variable("x"), Variable("y"), Variable("z"))

    def test_atom_shorthand(self):
        formula = atom("E", var("x"), 3)
        assert formula.name == "E"
        assert formula.free_variables() == {var("x")}
        assert formula.constants() == {3}

    def test_conj_disj_helpers(self):
        assert isinstance(conj(), Top)
        assert isinstance(disj(), Bottom)
        single = atom("E", var("x"), var("y"))
        assert conj(single) is single
        assert isinstance(conj(single, single), And)
        assert isinstance(disj(single, single), Or)

    def test_quantifier_validation(self):
        body = atom("E", var("x"), var("y"))
        with pytest.raises(ValueError):
            Exists((), body)
        with pytest.raises(ValueError):
            Exists((var("x"), var("x")), body)

    def test_free_variables_of_quantified_formula(self):
        formula = exists(var("x"), atom("E", var("x"), var("y")))
        assert formula.free_variables() == {var("y")}

    def test_relation_names(self):
        formula = conj(atom("E", var("x"), var("y")), atom("V", var("x")))
        assert formula.relation_names() == {"E", "V"}

    def test_walk(self):
        formula = exists(var("x"), conj(atom("E", var("x"), var("x")), Top()))
        kinds = [type(node).__name__ for node in formula.walk()]
        assert "Exists" in kinds and "RelationAtom" in kinds and "Top" in kinds


class TestEvaluation:
    def test_atom_and_equality(self, edge_db):
        x, y = var("x"), var("y")
        formula = atom("E", x, y)
        assert formula.holds(edge_db, {x: 1, y: 2})
        assert not formula.holds(edge_db, {x: 2, y: 1})
        assert equals(x, x).holds(edge_db, {x: 1})
        assert not equals(x, y).holds(edge_db, {x: 1, y: 2})

    def test_unbound_variable_raises(self, edge_db):
        with pytest.raises(KeyError):
            atom("E", var("x"), var("y")).holds(edge_db, {var("x"): 1})

    def test_connectives(self, edge_db):
        x = var("x")
        in_e = exists(var("y"), atom("E", x, var("y")))
        assert And((in_e, Top())).holds(edge_db, {x: 1})
        assert Or((Bottom(), in_e)).holds(edge_db, {x: 1})
        assert Not(Bottom()).holds(edge_db)
        assert Implies(Bottom(), Top()).holds(edge_db)
        assert not Implies(Top(), Bottom()).holds(edge_db)

    def test_exists(self, edge_db):
        formula = exists(variables("x y"), conj(atom("E", var("x"), var("y")), equals(var("x"), 2)))
        assert formula.holds(edge_db)

    def test_forall(self, edge_db):
        # every node with an outgoing edge: true in the 3-cycle
        x, y = var("x"), var("y")
        has_out = Implies(exists(y, atom("E", x, y)), exists(y, atom("E", y, x)))
        assert forall(x, has_out).holds(edge_db)

    def test_forall_falsified(self):
        db = Database.from_dict({"E": [(1, 2)]})
        x, y = var("x"), var("y")
        all_have_outgoing = forall(x, exists(y, atom("E", x, y)))
        assert not all_have_outgoing.holds(db)

    def test_active_domain_includes_formula_constants(self):
        db = Database.from_dict({"E": [(1, 2)]})
        # 99 is not in the active domain, but the formula mentions it, so the
        # quantifier can pick it up and the equality below is satisfiable.
        formula = exists(var("x"), equals(var("x"), 99))
        assert formula.holds(db)

    def test_naive_satisfaction_on_nulls(self):
        null = Null("n")
        db = Database.from_dict({"E": [(1, null), (null, 2)]})
        x = var("x")
        formula = exists(x, conj(atom("E", 1, x), atom("E", x, 2)))
        assert formula.holds(db)
        other = exists(x, conj(atom("E", 1, x), atom("E", x, 3)))
        assert not other.holds(db)


class TestFOQuery:
    def test_query_evaluation(self, edge_db):
        x, y = var("x"), var("y")
        query = FOQuery(exists(y, atom("E", x, y)), (x,))
        assert query.evaluate(edge_db).rows == frozenset({(1,), (2,), (3,)})

    def test_binary_head(self, edge_db):
        x, y, z = var("x"), var("y"), var("z")
        two_step = FOQuery(exists(z, conj(atom("E", x, z), atom("E", z, y))), (x, y))
        assert (1, 3) in two_step.evaluate(edge_db).rows

    def test_boolean_query(self, edge_db):
        query = FOQuery(exists(variables("x y"), atom("E", var("x"), var("y"))))
        assert query.boolean(edge_db)
        assert query.evaluate(edge_db).rows == frozenset({()})
        empty = FOQuery(Bottom())
        assert not empty.boolean(edge_db)

    def test_head_must_cover_free_variables(self):
        x, y = var("x"), var("y")
        with pytest.raises(ValueError):
            FOQuery(atom("E", x, y), (x,))
        with pytest.raises(ValueError):
            FOQuery(atom("E", x, y), (x, y, y))

    def test_output_schema_uses_variable_names(self):
        x, y = var("x"), var("y")
        query = FOQuery(atom("E", x, y), (x, y), name="Pairs")
        schema = query.output_schema()
        assert schema.name == "Pairs"
        assert schema.attributes == ("x", "y")

    def test_str(self, edge_db):
        x, y = var("x"), var("y")
        query = FOQuery(atom("E", x, y), (x, y))
        assert "E(x, y)" in str(query)
