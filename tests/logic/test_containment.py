"""Unit tests for conjunctive-query containment and the certain-answer duality."""

import pytest

from repro.datamodel import Database, DatabaseSchema, Null
from repro.logic import (
    FOQuery,
    are_equivalent,
    atom,
    certain_boolean_via_containment,
    conj,
    exists,
    homomorphism_witnesses_containment,
    is_contained,
    is_contained_boolean,
    var,
    variables,
)
from repro.semantics import certain_boolean


SCHEMA = DatabaseSchema.from_arities({"R": 2})
X, Y, Z = var("x"), var("y"), var("z")


def boolean_cq(formula):
    return FOQuery(formula)


class TestBooleanContainment:
    def test_more_constrained_query_is_contained(self):
        symmetric_edge = boolean_cq(exists((X, Y), conj(atom("R", X, Y), atom("R", Y, X))))
        some_edge = boolean_cq(exists((X, Y), atom("R", X, Y)))
        assert is_contained_boolean(symmetric_edge, some_edge, SCHEMA)
        assert not is_contained_boolean(some_edge, symmetric_edge, SCHEMA)

    def test_self_containment(self):
        query = boolean_cq(exists((X, Y), atom("R", X, Y)))
        assert is_contained_boolean(query, query, SCHEMA)

    def test_containment_with_constants(self):
        specific = boolean_cq(exists(X, atom("R", 1, X)))
        generic = boolean_cq(exists((X, Y), atom("R", X, Y)))
        assert is_contained_boolean(specific, generic, SCHEMA)
        assert not is_contained_boolean(generic, specific, SCHEMA)

    def test_path_queries(self):
        path2 = boolean_cq(exists((X, Y, Z), conj(atom("R", X, Y), atom("R", Y, Z))))
        edge = boolean_cq(exists((X, Y), atom("R", X, Y)))
        assert is_contained_boolean(path2, edge, SCHEMA)
        # An edge does not guarantee a 2-path in general...
        assert not is_contained_boolean(edge, path2, SCHEMA)

    def test_non_boolean_rejected(self):
        free = FOQuery(atom("R", X, Y), (X, Y))
        closed = boolean_cq(exists((X, Y), atom("R", X, Y)))
        with pytest.raises(ValueError):
            is_contained_boolean(free, closed, SCHEMA)

    def test_non_cq_rejected(self):
        from repro.logic import Not

        negated = FOQuery(Not(exists((X, Y), atom("R", X, Y))))
        other = boolean_cq(exists((X, Y), atom("R", X, Y)))
        with pytest.raises(ValueError):
            is_contained_boolean(negated, other, SCHEMA)

    def test_hom_witness_agrees_with_containment(self):
        symmetric_edge = boolean_cq(exists((X, Y), conj(atom("R", X, Y), atom("R", Y, X))))
        some_edge = boolean_cq(exists((X, Y), atom("R", X, Y)))
        assert homomorphism_witnesses_containment(symmetric_edge, some_edge, SCHEMA) is not None
        assert homomorphism_witnesses_containment(some_edge, symmetric_edge, SCHEMA) is None


class TestNonBooleanContainment:
    def test_free_variable_containment(self):
        # Q1(x) = ∃y R(x,y) ∧ R(y,x)   ⊆   Q2(x) = ∃y R(x,y)
        q1 = FOQuery(exists(Y, conj(atom("R", X, Y), atom("R", Y, X))), (X,))
        q2 = FOQuery(exists(Y, atom("R", X, Y)), (X,))
        assert is_contained(q1, q2, SCHEMA)
        assert not is_contained(q2, q1, SCHEMA)

    def test_arity_mismatch_rejected(self):
        q1 = FOQuery(exists(Y, atom("R", X, Y)), (X,))
        q2 = FOQuery(atom("R", X, Y), (X, Y))
        with pytest.raises(ValueError):
            is_contained(q1, q2, SCHEMA)

    def test_equivalence(self):
        q1 = FOQuery(exists(Y, atom("R", X, Y)), (X,))
        q2 = FOQuery(exists(Z, atom("R", X, Z)), (X,))
        assert are_equivalent(q1, q2, SCHEMA)


class TestCertainAnswerDuality:
    def test_certain_answer_via_containment_matches_enumeration(self):
        """certain_owa(Q, D) iff D ⊨ Q iff Q_D ⊆ Q (Section 4)."""
        null = Null("n")
        db = Database.from_dict({"R": [(1, null), (null, 2)]})
        query = boolean_cq(exists((X, Y, Z), conj(atom("R", X, Y), atom("R", Y, Z))))
        via_containment = certain_boolean_via_containment(query, db)
        via_naive = query.formula.holds(db)
        via_enumeration = certain_boolean(
            lambda world: query.formula.holds(world), db, semantics="owa", max_extra_facts=0
        )
        assert via_containment is True
        assert via_containment == via_naive == via_enumeration

    def test_negative_case(self):
        null = Null("n")
        db = Database.from_dict({"R": [(1, null)]})
        query = boolean_cq(exists(X, atom("R", X, 2)))
        assert not certain_boolean_via_containment(query, db)
        assert not query.formula.holds(db)

    def test_boolean_required(self):
        q_free = FOQuery(exists(Y, atom("R", X, Y)), (X,))
        db = Database.from_dict({"R": [(1, 2)]})
        with pytest.raises(ValueError):
            certain_boolean_via_containment(q_free, db)
