"""Unit tests for the relational algebra → calculus translation."""

import pytest

from repro.algebra import divide, parse_ra, project, relation
from repro.algebra.ast import Delta
from repro.datamodel import Database, Relation
from repro.logic import (
    FormulaFragment,
    TranslationError,
    classify_formula,
    is_pos_forall_guarded,
    is_ucq,
    ra_to_calculus,
)
from repro.workloads import random_database, random_positive_query


@pytest.fixture
def company_db():
    return Database.from_relations(
        [
            Relation.create(
                "Emp",
                [("alice", "hr"), ("bob", "it"), ("carol", "it")],
                attributes=("name", "dept"),
            ),
            Relation.create("Dept", [("hr",), ("it",)], attributes=("dept",)),
            Relation.create("Managers", [("alice",), ("dave",)], attributes=("name",)),
        ]
    )


def assert_same_answers(expression, database):
    query = ra_to_calculus(expression, database.schema)
    assert frozenset(query.evaluate(database).rows) == frozenset(expression.evaluate(database).rows)


class TestSemanticEquivalence:
    def test_base_relation(self, company_db):
        assert_same_answers(parse_ra("Emp"), company_db)

    def test_selection_and_projection(self, company_db):
        assert_same_answers(parse_ra("project[name](select[dept = 'it'](Emp))"), company_db)

    def test_union_and_product(self, company_db):
        assert_same_answers(parse_ra("union(project[name](Emp), Managers)"), company_db)
        assert_same_answers(parse_ra("product(Dept, Managers)"), company_db)

    def test_natural_join(self, company_db):
        assert_same_answers(parse_ra("join(Emp, Dept)"), company_db)

    def test_difference(self, company_db):
        assert_same_answers(parse_ra("diff(project[name](Emp), Managers)"), company_db)

    def test_intersection(self, company_db):
        assert_same_answers(parse_ra("intersect(project[name](Emp), Managers)"), company_db)

    def test_division(self):
        db = Database.from_relations(
            [
                Relation.create(
                    "Enroll",
                    [("alice", "db"), ("alice", "os"), ("bob", "db"), ("carol", "os")],
                    attributes=("student", "course"),
                ),
                Relation.create("Courses", [("db",), ("os",)], attributes=("course",)),
            ]
        )
        assert_same_answers(divide(relation("Enroll"), relation("Courses")), db)

    def test_delta_and_adom(self, company_db):
        assert_same_answers(Delta(), company_db)
        assert_same_answers(parse_ra("adom"), company_db)

    def test_selection_with_disjunction(self, company_db):
        assert_same_answers(parse_ra("select[dept = 'it' or dept = 'hr'](Emp)"), company_db)

    def test_random_positive_queries(self):
        for seed in range(6):
            db = random_database(num_nulls=0, seed=seed, rows_per_relation=4)
            query = random_positive_query(db.schema, seed=seed)
            assert_same_answers(query, db)


class TestFragmentPreservation:
    def test_positive_ra_translates_to_ucq(self, company_db):
        query = ra_to_calculus(parse_ra("union(project[name](Emp), Managers)"), company_db.schema)
        assert is_ucq(query.formula)

    def test_division_by_base_relation_translates_to_pos_forall_guarded(self):
        schema = Database.from_relations(
            [
                Relation.create("Enroll", [("a", "b")], attributes=("student", "course")),
                Relation.create("Courses", [("b",)], attributes=("course",)),
            ]
        ).schema
        query = ra_to_calculus(divide(relation("Enroll"), relation("Courses")), schema)
        assert is_pos_forall_guarded(query.formula)
        assert classify_formula(query.formula) is FormulaFragment.POS_FORALL_GUARDED

    def test_difference_leaves_safe_fragments(self, company_db):
        query = ra_to_calculus(parse_ra("diff(project[name](Emp), Managers)"), company_db.schema)
        assert not is_ucq(query.formula)
        assert not is_pos_forall_guarded(query.formula)
        assert classify_formula(query.formula) is FormulaFragment.FO


class TestErrors:
    def test_order_comparison_rejected(self, company_db):
        with pytest.raises(TranslationError):
            ra_to_calculus(parse_ra("select[name < 'm'](Emp)"), company_db.schema)

    def test_head_arity_matches_output(self, company_db):
        query = ra_to_calculus(parse_ra("project[name](Emp)"), company_db.schema)
        assert query.arity == 1
        assert query.output_schema().arity == 1
