"""Unit tests for the FO fragment classifiers (CQ, UCQ, Pos, Pos∀G)."""

from repro.logic import (
    FormulaFragment,
    FOQuery,
    Implies,
    Not,
    atom,
    classify_formula,
    classify_query,
    conj,
    disj,
    equals,
    exists,
    forall,
    is_conjunctive,
    is_existential_positive,
    is_pos_forall_guarded,
    is_positive,
    is_ucq,
    var,
    variables,
)


X, Y, Z = var("x"), var("y"), var("z")


class TestConjunctive:
    def test_basic_cq(self):
        formula = exists((X, Y), conj(atom("R", X, Y), atom("S", Y)))
        assert is_conjunctive(formula)
        assert is_ucq(formula)
        assert is_positive(formula)
        assert is_pos_forall_guarded(formula)

    def test_equalities_allowed(self):
        formula = exists(X, conj(atom("R", X, X), equals(X, 1)))
        assert is_conjunctive(formula)

    def test_disjunction_not_cq(self):
        formula = disj(atom("R", X, X), atom("S", X))
        assert not is_conjunctive(formula)
        assert is_ucq(formula)

    def test_negation_not_cq(self):
        assert not is_conjunctive(Not(atom("R", X, X)))

    def test_universal_not_cq(self):
        assert not is_conjunctive(forall(X, atom("R", X, X)))


class TestUCQ:
    def test_union_of_cqs(self):
        formula = disj(
            exists(X, atom("R", X, X)),
            exists((X, Y), conj(atom("R", X, Y), atom("S", Y))),
        )
        assert is_ucq(formula)
        assert is_existential_positive(formula)

    def test_negation_rejected(self):
        assert not is_ucq(Not(atom("R", X, X)))

    def test_universal_rejected(self):
        assert not is_ucq(forall(X, atom("R", X, X)))

    def test_implication_rejected(self):
        assert not is_ucq(Implies(atom("R", X, X), atom("S", X)))


class TestPositive:
    def test_unguarded_universal_is_positive(self):
        formula = forall(X, disj(atom("R", X, X), atom("S", X)))
        assert is_positive(formula)
        assert not is_pos_forall_guarded(formula)

    def test_negation_not_positive(self):
        assert not is_positive(Not(atom("R", X, X)))

    def test_implication_not_positive(self):
        assert not is_positive(Implies(atom("R", X, X), atom("S", X)))


class TestPosForallGuarded:
    def test_guarded_universal(self):
        formula = forall((X, Y), Implies(atom("R", X, Y), atom("S", X)))
        assert is_pos_forall_guarded(formula)
        assert not is_ucq(formula)

    def test_paper_cwa_delta_shape(self):
        """∃x (R(1,x) ∧ ∀y,z (R(y,z) → (y=1 ∧ z=x) ∨ ...)) is Pos∀G (Section 4)."""
        closure = forall(
            (Y, Z),
            Implies(
                atom("R", Y, Z),
                disj(conj(equals(Y, 1), equals(Z, X)), conj(equals(Y, X), equals(Z, 2))),
            ),
        )
        formula = exists(X, conj(atom("R", 1, X), atom("R", X, 2), closure))
        assert is_pos_forall_guarded(formula)

    def test_guard_must_be_an_atom(self):
        formula = forall(X, Implies(conj(atom("R", X, X), atom("S", X)), atom("S", X)))
        assert not is_pos_forall_guarded(formula)

    def test_guard_variables_must_match_quantified(self):
        formula = forall(X, Implies(atom("R", X, Y), atom("S", X)))
        assert not is_pos_forall_guarded(formula)

    def test_guard_variables_must_be_distinct(self):
        formula = forall(X, Implies(atom("R", X, X), atom("S", X)))
        assert not is_pos_forall_guarded(formula)

    def test_guard_with_constants_rejected(self):
        formula = forall(X, Implies(atom("R", X, 1), atom("S", X)))
        assert not is_pos_forall_guarded(formula)

    def test_negation_inside_consequent_rejected(self):
        formula = forall((X, Y), Implies(atom("R", X, Y), Not(atom("S", X))))
        assert not is_pos_forall_guarded(formula)

    def test_nested_guarded_universals(self):
        inner = forall((Y,), Implies(atom("S", Y), atom("T", X, Y)))
        formula = forall((X,), Implies(atom("U", X), inner))
        assert is_pos_forall_guarded(formula)


class TestClassifier:
    def test_levels(self):
        cq = exists(X, atom("R", X, X))
        ucq = disj(cq, exists(X, atom("S", X)))
        guarded = forall((X, Y), Implies(atom("R", X, Y), atom("S", X)))
        positive = forall(X, atom("S", X))
        full = Not(atom("S", X))
        assert classify_formula(cq) is FormulaFragment.CQ
        assert classify_formula(ucq) is FormulaFragment.UCQ
        assert classify_formula(guarded) is FormulaFragment.POS_FORALL_GUARDED
        assert classify_formula(positive) is FormulaFragment.POSITIVE
        assert classify_formula(full) is FormulaFragment.FO

    def test_classify_query_unwraps(self):
        query = FOQuery(exists(X, atom("R", X, X)))
        assert classify_query(query) is FormulaFragment.CQ
        assert classify_query(query.formula) is FormulaFragment.CQ
