"""Unit tests for the SQL engine's three-valued null semantics."""

import pytest

from repro.datamodel import Database, Null, Relation
from repro.sqlnulls import SQLEngine, SQLError, parse_sql, run_sql


@pytest.fixture
def orders_db():
    return Database.from_relations(
        [
            Relation.create(
                "Orders", [("oid1", "pr1"), ("oid2", "pr2")], attributes=("o_id", "product")
            ),
            Relation.create(
                "Pay", [("pid1", Null("o"), 100)], attributes=("p_id", "ord", "amount")
            ),
        ]
    )


@pytest.fixture
def rs_db():
    return Database.from_relations(
        [
            Relation.create("R", [(1,), (2,), (3,)], attributes=("A",)),
            Relation.create("S", [(Null("s"),)], attributes=("A",)),
        ]
    )


class TestBasicEvaluation:
    def test_select_star(self, orders_db):
        rows = run_sql(orders_db, parse_sql("SELECT * FROM Orders"))
        assert sorted(rows) == [("oid1", "pr1"), ("oid2", "pr2")]

    def test_projection_and_selection(self, orders_db):
        rows = run_sql(orders_db, parse_sql("SELECT o_id FROM Orders WHERE product = 'pr2'"))
        assert rows == [("oid2",)]

    def test_cartesian_product(self, orders_db):
        rows = run_sql(orders_db, parse_sql("SELECT o_id, p_id FROM Orders, Pay"))
        assert len(rows) == 2

    def test_join_with_aliases(self, orders_db):
        rows = run_sql(
            orders_db,
            parse_sql("SELECT o.o_id FROM Orders o, Pay p WHERE p.ord = o.o_id"),
        )
        assert rows == []  # the only payment has a null order reference

    def test_distinct(self):
        db = Database.from_relations(
            [Relation.create("R", [(1, "a"), (2, "a")], attributes=("k", "v"))]
        )
        rows = run_sql(db, parse_sql("SELECT DISTINCT v FROM R"))
        assert rows == [("a",)]

    def test_relation_output(self, orders_db):
        engine = SQLEngine(orders_db)
        relation = engine.execute_relation(parse_sql("SELECT o_id FROM Orders"), name="Res")
        assert relation.name == "Res"
        assert relation.rows == frozenset({("oid1",), ("oid2",)})

    def test_numeric_comparisons(self, orders_db):
        rows = run_sql(orders_db, parse_sql("SELECT p_id FROM Pay WHERE amount >= 50"))
        assert rows == [("pid1",)]


class TestNullSemantics:
    def test_comparison_with_null_is_unknown_and_filtered(self, orders_db):
        rows = run_sql(orders_db, parse_sql("SELECT p_id FROM Pay WHERE ord = 'oid1'"))
        assert rows == []

    def test_tautology_filter_drops_null_rows(self, orders_db):
        """Grant's example: order = 'oid1' OR order <> 'oid1' returns nothing."""
        rows = run_sql(
            orders_db, parse_sql("SELECT p_id FROM Pay WHERE ord = 'oid1' OR ord <> 'oid1'")
        )
        assert rows == []

    def test_is_null_finds_the_row(self, orders_db):
        rows = run_sql(orders_db, parse_sql("SELECT p_id FROM Pay WHERE ord IS NULL"))
        assert rows == [("pid1",)]
        rows = run_sql(orders_db, parse_sql("SELECT p_id FROM Pay WHERE ord IS NOT NULL"))
        assert rows == []

    def test_not_in_with_null_subquery_is_empty(self, orders_db):
        """The unpaid-orders query of Section 1 returns no rows."""
        query = parse_sql("SELECT o_id FROM Orders WHERE o_id NOT IN (SELECT ord FROM Pay)")
        assert run_sql(orders_db, query) == []

    def test_not_in_difference_always_empty_with_null(self, rs_db):
        """R − S via NOT IN is empty whenever S contains a null (Section 1)."""
        query = parse_sql("SELECT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)")
        assert run_sql(rs_db, query) == []

    def test_not_in_works_without_nulls(self):
        db = Database.from_relations(
            [
                Relation.create("R", [(1,), (2,), (3,)], attributes=("A",)),
                Relation.create("S", [(2,)], attributes=("A",)),
            ]
        )
        query = parse_sql("SELECT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)")
        assert sorted(run_sql(db, query)) == [(1,), (3,)]

    def test_in_with_matching_constant_still_true(self, rs_db):
        db = rs_db.add_facts([("S", (2,))])
        query = parse_sql("SELECT R.A FROM R WHERE R.A IN (SELECT S.A FROM S)")
        assert sorted(run_sql(db, query)) == [(2,)]

    def test_not_exists_with_correlation_behaves_differently(self, orders_db):
        """NOT EXISTS does not suffer from the NOT IN null trap."""
        query = parse_sql(
            "SELECT o_id FROM Orders WHERE NOT EXISTS "
            "(SELECT p_id FROM Pay WHERE Pay.ord = Orders.o_id)"
        )
        assert sorted(run_sql(orders_db, query)) == [("oid1",), ("oid2",)]

    def test_null_equals_null_is_unknown(self):
        db = Database.from_relations(
            [Relation.create("R", [(Null("a"), Null("a"))], attributes=("x", "y"))]
        )
        rows = run_sql(db, parse_sql("SELECT x FROM R WHERE x = y"))
        assert rows == []


class TestErrors:
    def test_unknown_column(self, orders_db):
        with pytest.raises(SQLError):
            run_sql(orders_db, parse_sql("SELECT nope FROM Orders"))

    def test_unknown_alias(self, orders_db):
        with pytest.raises(SQLError):
            run_sql(orders_db, parse_sql("SELECT z.o_id FROM Orders"))

    def test_ambiguous_column(self):
        db = Database.from_relations(
            [
                Relation.create("R", [(1,)], attributes=("a",)),
                Relation.create("S", [(2,)], attributes=("a",)),
            ]
        )
        with pytest.raises(SQLError):
            run_sql(db, parse_sql("SELECT a FROM R, S"))

    def test_in_subquery_must_return_single_column(self, orders_db):
        query = parse_sql("SELECT o_id FROM Orders WHERE o_id IN (SELECT * FROM Pay)")
        with pytest.raises(SQLError):
            run_sql(orders_db, query)
