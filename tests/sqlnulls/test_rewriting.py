"""Unit tests for the IS NOT NULL certain-answer rewriting of positive SQL."""

import pytest

from repro.algebra import parse_ra
from repro.core import certain_answers_intersection
from repro.datamodel import Database, Null, Relation
from repro.sqlnulls import (
    RewritingError,
    certain_answer_rewriting,
    is_positive_sql,
    parse_sql,
    run_sql,
)


@pytest.fixture
def codd_db():
    """A Codd database (SQL-style nulls: each null occurs once)."""
    return Database.from_relations(
        [
            Relation.create(
                "Emp",
                [("ann", "sales"), ("bob", Null("d1")), ("cat", "it")],
                attributes=("name", "dept"),
            ),
            Relation.create(
                "Dept", [("sales", "london"), ("it", Null("c1"))], attributes=("dept", "city")
            ),
        ]
    )


class TestPositiveFragmentCheck:
    def test_positive_queries(self):
        assert is_positive_sql(parse_sql("SELECT name FROM Emp"))
        assert is_positive_sql(parse_sql("SELECT name FROM Emp WHERE dept = 'it'"))
        assert is_positive_sql(
            parse_sql("SELECT name FROM Emp, Dept WHERE Emp.dept = Dept.dept")
        )
        assert is_positive_sql(
            parse_sql("SELECT name FROM Emp WHERE dept IN (SELECT dept FROM Dept)")
        )
        assert is_positive_sql(
            parse_sql("SELECT name FROM Emp WHERE EXISTS (SELECT dept FROM Dept)")
        )
        assert is_positive_sql(
            parse_sql("SELECT name FROM Emp WHERE dept = 'it' OR dept = 'sales'")
        )

    def test_negative_queries(self):
        assert not is_positive_sql(
            parse_sql("SELECT name FROM Emp WHERE dept NOT IN (SELECT dept FROM Dept)")
        )
        assert not is_positive_sql(parse_sql("SELECT name FROM Emp WHERE NOT dept = 'it'"))
        assert not is_positive_sql(parse_sql("SELECT name FROM Emp WHERE dept <> 'it'"))
        assert not is_positive_sql(parse_sql("SELECT name FROM Emp WHERE dept IS NULL"))
        assert not is_positive_sql(
            parse_sql(
                "SELECT name FROM Emp WHERE dept IN (SELECT dept FROM Dept WHERE NOT city = 'x')"
            )
        )


class TestRewriting:
    def test_adds_guards_for_selected_columns(self, codd_db):
        query = parse_sql("SELECT dept FROM Emp")
        rewritten = certain_answer_rewriting(query, codd_db)
        assert "IS NOT NULL" in str(rewritten)
        assert sorted(run_sql(codd_db, rewritten)) == [("it",), ("sales",)]
        # the original keeps the null row
        assert len(run_sql(codd_db, query)) == 3

    def test_star_queries_guard_every_column(self, codd_db):
        query = parse_sql("SELECT * FROM Dept")
        rewritten = certain_answer_rewriting(query, codd_db)
        assert run_sql(codd_db, rewritten) == [("sales", "london")]

    def test_existing_where_clause_is_preserved(self, codd_db):
        query = parse_sql("SELECT name FROM Emp WHERE dept = 'it'")
        rewritten = certain_answer_rewriting(query, codd_db)
        assert run_sql(codd_db, rewritten) == [("cat",)]

    def test_rejects_non_positive_queries(self, codd_db):
        query = parse_sql("SELECT name FROM Emp WHERE dept NOT IN (SELECT dept FROM Dept)")
        with pytest.raises(RewritingError):
            certain_answer_rewriting(query, codd_db)

    def test_rewriting_without_columns_is_identity(self, codd_db):
        query = parse_sql("SELECT 1 FROM Emp")
        rewritten = certain_answer_rewriting(query, codd_db)
        assert rewritten == query


class TestRewritingComputesCertainAnswers:
    @pytest.mark.parametrize(
        "sql_text,ra_text",
        [
            ("SELECT dept FROM Emp", "project[dept](Emp)"),
            (
                "SELECT name FROM Emp WHERE dept = 'it'",
                "project[name](select[dept = 'it'](Emp))",
            ),
            (
                "SELECT city FROM Emp, Dept WHERE Emp.dept = Dept.dept",
                "project[city](join(Emp, Dept))",
            ),
        ],
    )
    def test_rewritten_sql_equals_certain_answers(self, codd_db, sql_text, ra_text):
        """Running the rewritten query on the 3VL engine = certain answers (Codd dbs)."""
        sql_query = parse_sql(sql_text)
        rewritten = certain_answer_rewriting(sql_query, codd_db)
        sql_answer = set(run_sql(codd_db, rewritten))
        exact = certain_answers_intersection(parse_ra(ra_text), codd_db, semantics="cwa")
        assert sql_answer == set(exact.rows)

    def test_original_sql_differs_from_certain_answers(self, codd_db):
        """Without the rewriting, SQL returns null-carrying tuples that are not certain."""
        sql_answer = run_sql(codd_db, parse_sql("SELECT dept FROM Emp"))
        exact = certain_answers_intersection(
            parse_ra("project[dept](Emp)"), codd_db, semantics="cwa"
        )
        assert len(sql_answer) > len(exact.rows)
