"""The sqlnulls → SQLite bridge must agree with the Python 3VL engine.

``run_sql(db, q, backend="sqlite")`` transliterates the SQL subset onto
real SQLite with marked nulls stored as SQL ``NULL``; the by-the-book
Python evaluator is the oracle.  Output nulls cannot carry marks back out
of SQL, so comparisons normalize every null to one placeholder.
"""

import pytest

from repro.datamodel import Database, Null, Relation
from repro.datamodel.values import is_null
from repro.sqlnulls import (
    SQLError,
    compile_select,
    parse_sql,
    run_sql,
    run_sql_sqlite,
)
from repro.workloads import orders_payments


def _normalized(rows):
    """Bag of rows with every null collapsed to one placeholder."""
    return sorted(
        tuple("NULL" if is_null(value) else value for value in row) for row in rows
    )


def _agree(database, sql_text):
    query = parse_sql(sql_text)
    python_rows = run_sql(database, query)
    sqlite_rows = run_sql(database, query, backend="sqlite")
    assert _normalized(python_rows) == _normalized(sqlite_rows), sql_text
    return python_rows


@pytest.fixture
def db():
    return Database.from_relations(
        [
            Relation.create(
                "Orders",
                [("o1", "widget"), ("o2", "gadget"), ("o3", "widget")],
                attributes=("o_id", "product"),
            ),
            Relation.create(
                "Pay",
                [("p1", "o1", 10), ("p2", Null("u1"), 25), ("p3", "o3", 25), ("p3", "o3", 25)],
                attributes=("p_id", "ord", "amount"),
            ),
        ]
    )


class TestBridgeParity:
    def test_unpaid_orders_not_in_bug(self, db):
        # The Section 1 example: one null in Pay.ord makes NOT IN unknown
        # everywhere, and SQL silently loses every answer — on both the
        # simulated engine and the real one.
        rows = _agree(db, "SELECT o_id FROM Orders WHERE o_id NOT IN (SELECT ord FROM Pay)")
        assert rows == []

    def test_in_subquery(self, db):
        rows = _agree(db, "SELECT o_id FROM Orders WHERE o_id IN (SELECT ord FROM Pay)")
        assert len(rows) == 2

    def test_is_null_and_is_not_null(self, db):
        _agree(db, "SELECT p_id FROM Pay WHERE ord IS NULL")
        _agree(db, "SELECT p_id FROM Pay WHERE ord IS NOT NULL")

    def test_joins_comparisons_and_connectives(self, db):
        _agree(db, "SELECT o_id, amount FROM Orders, Pay WHERE ord = o_id AND amount > 10")
        _agree(db, "SELECT p_id FROM Pay WHERE amount >= 25 OR ord = 'o1'")
        _agree(db, "SELECT p_id FROM Pay WHERE NOT (amount < 25)")

    def test_exists_and_correlation(self, db):
        _agree(
            db,
            "SELECT product FROM Orders WHERE EXISTS "
            "(SELECT p_id FROM Pay WHERE ord = o_id)",
        )
        _agree(
            db,
            "SELECT product FROM Orders WHERE NOT EXISTS "
            "(SELECT p_id FROM Pay WHERE ord = o_id)",
        )

    def test_bag_semantics_and_distinct(self, db):
        duplicated = _agree(db, "SELECT amount FROM Pay WHERE amount = 25")
        assert len(duplicated) == 2  # p2 and p3; the duplicate p3 row is one fact
        _agree(db, "SELECT DISTINCT amount FROM Pay")

    def test_select_star(self, db):
        _agree(db, "SELECT * FROM Pay")

    def test_scaled_scenario(self):
        database = orders_payments(num_orders=30, num_payments=15, null_fraction=0.3, seed=11)
        _agree(
            database,
            "SELECT o_id FROM Orders WHERE o_id NOT IN (SELECT ord FROM Pay)",
        )

    def test_backend_argument_validated(self, db):
        with pytest.raises(ValueError):
            run_sql(db, parse_sql("SELECT * FROM Pay"), backend="oracle")


class TestCompilation:
    def test_compiled_text_is_parameterized(self, db):
        sql, params = compile_select(
            db, parse_sql("SELECT p_id FROM Pay WHERE amount = 25 AND ord = 'o1'")
        )
        assert "?" in sql and params == (25, "o1")
        assert "25" not in sql  # literals never interpolated into text

    def test_unknown_table_rejected(self, db):
        with pytest.raises(SQLError):
            run_sql_sqlite(db, parse_sql("SELECT x FROM Nope"))

    def test_unknown_column_rejected(self, db):
        with pytest.raises(SQLError):
            run_sql_sqlite(db, parse_sql("SELECT nope FROM Pay"))
