"""Unit tests for the SQL-subset parser."""

import pytest

from repro.datamodel import Null
from repro.sqlnulls import (
    ColumnRef,
    ExistsSubquery,
    InSubquery,
    IsNull,
    Literal,
    SQLAnd,
    SQLComparison,
    SQLNot,
    SQLOr,
    SQLParseError,
    SelectQuery,
    parse_sql,
)


class TestBasicQueries:
    def test_select_star(self):
        query = parse_sql("SELECT * FROM Orders")
        assert query.columns == "*"
        assert query.tables[0].name == "Orders"
        assert query.where is None

    def test_select_columns(self):
        query = parse_sql("SELECT o_id, product FROM Orders")
        assert [c.name for c in query.columns] == ["o_id", "product"]

    def test_distinct(self):
        assert parse_sql("SELECT DISTINCT a FROM R").distinct
        assert not parse_sql("SELECT a FROM R").distinct

    def test_qualified_columns_and_aliases(self):
        query = parse_sql("SELECT p.o_id FROM Orders AS p")
        assert query.columns[0] == ColumnRef("o_id", table="p")
        assert query.tables[0].alias == "p"
        query2 = parse_sql("SELECT o.a FROM Orders o")
        assert query2.tables[0].alias == "o"

    def test_multiple_tables(self):
        query = parse_sql("SELECT * FROM R, S, T")
        assert [t.name for t in query.tables] == ["R", "S", "T"]

    def test_case_insensitive_keywords(self):
        query = parse_sql("select a from R where a = 1")
        assert isinstance(query, SelectQuery)
        assert isinstance(query.where, SQLComparison)


class TestConditions:
    def test_comparison_operators(self):
        for op in ("=", "<>", "<", "<=", ">", ">="):
            query = parse_sql(f"SELECT a FROM R WHERE a {op} 3")
            assert query.where.op == op
        assert parse_sql("SELECT a FROM R WHERE a != 3").where.op == "<>"

    def test_literals(self):
        query = parse_sql("SELECT a FROM R WHERE a = 'it''s'")
        assert query.where.right == Literal("it's")
        assert parse_sql("SELECT a FROM R WHERE a = 2.5").where.right == Literal(2.5)
        assert parse_sql("SELECT a FROM R WHERE a = -3").where.right == Literal(-3)

    def test_null_literal(self):
        query = parse_sql("SELECT a FROM R WHERE a = NULL")
        assert isinstance(query.where.right.value, Null)

    def test_and_or_not_structure(self):
        query = parse_sql("SELECT a FROM R WHERE a = 1 AND b = 2 OR NOT c = 3")
        assert isinstance(query.where, SQLOr)
        assert isinstance(query.where.operands[0], SQLAnd)
        assert isinstance(query.where.operands[1], SQLNot)

    def test_parentheses(self):
        query = parse_sql("SELECT a FROM R WHERE a = 1 AND (b = 2 OR c = 3)")
        assert isinstance(query.where, SQLAnd)
        assert isinstance(query.where.operands[1], SQLOr)

    def test_is_null(self):
        query = parse_sql("SELECT a FROM R WHERE a IS NULL")
        assert query.where == IsNull(ColumnRef("a"), negated=False)
        query2 = parse_sql("SELECT a FROM R WHERE a IS NOT NULL")
        assert query2.where == IsNull(ColumnRef("a"), negated=True)

    def test_in_and_not_in(self):
        query = parse_sql("SELECT a FROM R WHERE a IN (SELECT b FROM S)")
        assert isinstance(query.where, InSubquery)
        assert not query.where.negated
        query2 = parse_sql("SELECT a FROM R WHERE a NOT IN (SELECT b FROM S)")
        assert query2.where.negated

    def test_exists_and_not_exists(self):
        query = parse_sql("SELECT a FROM R WHERE EXISTS (SELECT b FROM S)")
        assert isinstance(query.where, ExistsSubquery)
        assert not query.where.negated
        query2 = parse_sql("SELECT a FROM R WHERE NOT EXISTS (SELECT b FROM S WHERE S.b = R.a)")
        assert query2.where.negated

    def test_nested_subqueries(self):
        query = parse_sql(
            "SELECT a FROM R WHERE a IN (SELECT b FROM S WHERE b NOT IN (SELECT c FROM T))"
        )
        inner = query.where.subquery.where
        assert isinstance(inner, InSubquery)
        assert inner.negated

    def test_paper_queries_parse(self):
        parse_sql("SELECT o_id FROM Orders WHERE o_id NOT IN (SELECT ord FROM Pay)")
        parse_sql("SELECT p_id FROM Pay WHERE ord = 'oid1' OR ord <> 'oid1'")
        parse_sql("SELECT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)")


class TestErrors:
    def test_missing_from(self):
        with pytest.raises(SQLParseError):
            parse_sql("SELECT a")

    def test_trailing_input(self):
        with pytest.raises(SQLParseError):
            parse_sql("SELECT a FROM R extra garbage =")

    def test_bad_characters(self):
        with pytest.raises(SQLParseError):
            parse_sql("SELECT a FROM R WHERE a = @")

    def test_keyword_as_scalar(self):
        with pytest.raises(SQLParseError):
            parse_sql("SELECT a FROM R WHERE a = SELECT")

    def test_unterminated_condition(self):
        with pytest.raises(SQLParseError):
            parse_sql("SELECT a FROM R WHERE a =")

    def test_str_round_trip_mentions_structure(self):
        query = parse_sql("SELECT o_id FROM Orders WHERE o_id NOT IN (SELECT ord FROM Pay)")
        text = str(query)
        assert "NOT IN" in text and "SELECT" in text
