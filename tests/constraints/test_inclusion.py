"""Unit tests for inclusion dependencies over incomplete databases."""

import pytest

from repro.constraints import InclusionDependency, foreign_key, referential_integrity_report
from repro.datamodel import Database, Null, Relation
from repro.semantics import certain_boolean, possible_boolean


def _orders_db(pay_rows):
    return Database.from_relations(
        [
            Relation.create("Orders", [("oid1", "pr1"), ("oid2", "pr2")], attributes=("o_id", "product")),
            Relation.create("Pay", pay_rows, attributes=("p_id", "ord", "amount")),
        ]
    )


PAY_FK = InclusionDependency("Pay", ("ord",), "Orders", ("o_id",))


class TestConstruction:
    def test_str(self):
        assert str(PAY_FK) == "Pay[ord] ⊆ Orders[o_id]"

    def test_validation(self):
        with pytest.raises(ValueError):
            InclusionDependency("R", (), "S", ())
        with pytest.raises(ValueError):
            InclusionDependency("R", ("a",), "S", ("a", "b"))

    def test_foreign_key_helper(self):
        fk = foreign_key("Pay", ("ord",), "Orders", ("o_id",))
        assert fk == PAY_FK


class TestNaiveSatisfaction:
    def test_satisfied_when_all_references_resolve(self):
        db = _orders_db([("pid1", "oid1", 100)])
        assert PAY_FK.satisfied_naively(db)
        assert PAY_FK.unmatched_values(db) == []

    def test_violated_by_a_dangling_reference(self):
        db = _orders_db([("pid1", "oid9", 100)])
        assert not PAY_FK.satisfied_naively(db)
        assert PAY_FK.unmatched_values(db) == [("oid9",)]

    def test_null_reference_is_naively_dangling(self):
        db = _orders_db([("pid1", Null("o"), 100)])
        assert not PAY_FK.satisfied_naively(db)

    def test_multi_attribute_ind(self):
        ind = InclusionDependency("R", ("a", "b"), "S", ("x", "y"))
        db = Database.from_relations(
            [
                Relation.create("R", [(1, 2)], attributes=("a", "b")),
                Relation.create("S", [(1, 2), (3, 4)], attributes=("x", "y")),
            ]
        )
        assert ind.satisfied_naively(db)


class TestCertainAndPossibleSatisfaction:
    def test_certain_iff_naive(self):
        resolved = _orders_db([("pid1", "oid1", 100)])
        dangling = _orders_db([("pid1", Null("o"), 100)])
        assert PAY_FK.satisfied_certainly(resolved)
        assert not PAY_FK.satisfied_certainly(dangling)

    def test_null_reference_is_possibly_satisfied(self):
        db = _orders_db([("pid1", Null("o"), 100)])
        assert PAY_FK.satisfied_possibly(db)

    def test_constant_dangling_reference_is_not_possibly_satisfied(self):
        db = _orders_db([("pid1", "oid9", 100)])
        assert not PAY_FK.satisfied_possibly(db)

    def test_shared_null_cannot_satisfy_two_incompatible_references(self):
        # The same unknown order is referenced twice; a single world can
        # still resolve both (they are the same value), so this is possible.
        db = _orders_db([("pid1", Null("o"), 100), ("pid2", Null("o"), 50)])
        assert PAY_FK.satisfied_possibly(db)

    def test_possible_satisfaction_respects_null_sharing_with_rhs(self):
        # Pay references ⊥o while Orders has only ⊥p as key: they can be unified.
        db = Database.from_relations(
            [
                Relation.create("Orders", [(Null("p"), "pr1")], attributes=("o_id", "product")),
                Relation.create("Pay", [("pid1", Null("o"), 10)], attributes=("p_id", "ord", "amount")),
            ]
        )
        assert PAY_FK.satisfied_possibly(db)

    @pytest.mark.parametrize(
        "pay_rows",
        [
            [("pid1", "oid1", 100)],
            [("pid1", Null("o"), 100)],
            [("pid1", "oid9", 100)],
            [("pid1", Null("o"), 100), ("pid2", "oid2", 10)],
        ],
    )
    def test_certain_and_possible_agree_with_world_enumeration(self, pay_rows):
        db = _orders_db(pay_rows)
        check = lambda world: PAY_FK.satisfied_naively(world)
        assert PAY_FK.satisfied_certainly(db) == certain_boolean(check, db, semantics="cwa")
        assert PAY_FK.satisfied_possibly(db) == possible_boolean(check, db, semantics="cwa")


class TestSelfReferencingInd:
    MANAGER = InclusionDependency("Emp", ("manager",), "Emp", ("name",))

    def test_satisfied(self):
        db = Database.from_relations(
            [Relation.create("Emp", [("ann", "bob"), ("bob", "bob")], attributes=("name", "manager"))]
        )
        assert self.MANAGER.satisfied_naively(db)

    def test_possibly_satisfied_through_a_null(self):
        db = Database.from_relations(
            [Relation.create("Emp", [("ann", Null("m"))], attributes=("name", "manager"))]
        )
        assert not self.MANAGER.satisfied_naively(db)
        assert self.MANAGER.satisfied_possibly(db)


class TestReport:
    def test_report_verdicts(self):
        db = _orders_db([("pid1", "oid1", 100), ("pid2", Null("o"), 10), ("pid3", "oid9", 5)])
        report = referential_integrity_report(db, [PAY_FK])
        dependency, verdict, dangling = report[0]
        assert dependency == PAY_FK
        assert verdict == "violated"
        assert ("oid9",) in dangling

    def test_report_possible_verdict(self):
        db = _orders_db([("pid2", Null("o"), 10)])
        _, verdict, _ = referential_integrity_report(db, [PAY_FK])[0]
        assert verdict == "possible"

    def test_report_certain_verdict(self):
        db = _orders_db([("pid1", "oid1", 100)])
        _, verdict, dangling = referential_integrity_report(db, [PAY_FK])[0]
        assert verdict == "certain"
        assert dangling == []
