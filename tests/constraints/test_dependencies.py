"""Unit tests for functional dependencies over incomplete relations."""

import pytest

from repro.constraints import ConstraintSet, FunctionalDependency, key
from repro.datamodel import Database, Null, Relation
from repro.semantics import cwa_worlds, default_domain


def fd(lhs, rhs):
    return FunctionalDependency("R", lhs, rhs)


def db(rows, attributes=("a", "b", "c")):
    return Database.from_relations([Relation.create("R", rows, attributes=attributes)])


def certain_by_enumeration(dependency, database):
    return all(dependency.satisfied_naively(world) for world in cwa_worlds(database))


def possible_by_enumeration(dependency, database):
    return any(dependency.satisfied_naively(world) for world in cwa_worlds(database))


class TestConstruction:
    def test_str(self):
        dependency = fd(("a",), ("b", "c"))
        assert "R" in str(dependency) and "→" in str(dependency)

    def test_rhs_required(self):
        with pytest.raises(ValueError):
            fd(("a",), ())

    def test_key_helper(self):
        constraint = key("R", ("a",), ("a", "b", "c"))
        assert constraint.lhs == ("a",)
        assert set(constraint.rhs) == {"b", "c"}
        with pytest.raises(ValueError):
            key("R", ("a", "b"), ("a", "b"))


class TestCompleteRelations:
    def test_satisfied(self):
        database = db([(1, 2, 3), (2, 2, 4)])
        assert fd(("a",), ("b",)).satisfied_naively(database)
        assert fd(("a",), ("b",)).satisfied_certainly(database)
        assert fd(("a",), ("b",)).satisfied_possibly(database)

    def test_violated(self):
        database = db([(1, 2, 3), (1, 5, 3)])
        dependency = fd(("a",), ("b",))
        assert not dependency.satisfied_naively(database)
        assert not dependency.satisfied_certainly(database)
        assert not dependency.satisfied_possibly(database)
        assert len(dependency.violating_pairs(database)) == 1

    def test_positional_attributes(self):
        database = db([(1, 2, 3), (1, 2, 9)])
        assert FunctionalDependency("R", (0,), (1,)).satisfied_naively(database)
        assert not FunctionalDependency("R", (0,), (2,)).satisfied_naively(database)

    def test_empty_lhs_means_constancy(self):
        constant_column = db([(1, 7, 3), (2, 7, 4)])
        varying_column = db([(1, 7, 3), (2, 8, 4)])
        dependency = fd((), ("b",))
        assert dependency.satisfied_naively(constant_column)
        assert not dependency.satisfied_naively(varying_column)


class TestIncompleteRelations:
    def test_null_breaks_certainty_but_not_possibility(self):
        database = db([(1, 2, 3), (1, Null("x"), 4)])
        dependency = fd(("a",), ("b",))
        # Naive equality sees ⊥ ≠ 2, so naive checking reports a violation ...
        assert not dependency.satisfied_naively(database)
        # ... and indeed the FD fails in the worlds where ⊥ ≠ 2 ...
        assert not dependency.satisfied_certainly(database)
        # ... but the world ⊥ = 2 satisfies it, so it is possibly satisfied.
        assert dependency.satisfied_possibly(database)

    def test_nulls_on_the_left_hand_side(self):
        database = db([(Null("x"), 2, 3), (1, 5, 4)])
        dependency = fd(("a",), ("b",))
        # ⊥ = 1 creates a violation, ⊥ ≠ 1 avoids it
        assert not dependency.satisfied_certainly(database)
        assert dependency.satisfied_possibly(database)

    def test_forced_violation_is_not_even_possible(self):
        database = db([(1, 2, 3), (1, 4, Null("x"))])
        dependency = fd(("a",), ("b",))
        assert not dependency.satisfied_possibly(database)

    def test_same_null_on_both_sides_is_certainly_fine(self):
        shared = Null("s")
        database = db([(1, shared, 3), (1, shared, 4)])
        dependency = fd(("a",), ("b",))
        assert dependency.satisfied_certainly(database)

    def test_rhs_forced_equal_by_lhs_unification(self):
        """If unifying the LHS forces the RHS values together, no world violates."""
        x = Null("x")
        database = db([(x, x, 1), (2, 2, 1)], attributes=("a", "b", "c"))
        dependency = FunctionalDependency("R", ("a",), ("b",))
        # LHS unify forces x = 2, which also makes the b-values equal.
        assert dependency.satisfied_certainly(database)

    def test_shared_null_pulled_in_two_directions(self):
        """A single marked null cannot satisfy two incompatible equalities."""
        x = Null("x")
        database = db(
            [(1, x, 0), (1, 2, 0), (5, x, 0), (5, 3, 0)], attributes=("a", "b", "c")
        )
        dependency = fd(("a",), ("b",))
        # satisfying both pairs needs x = 2 and x = 3 simultaneously
        assert not dependency.satisfied_possibly(database)
        assert not dependency.satisfied_certainly(database)

    @pytest.mark.parametrize(
        "rows",
        [
            [(1, 2, 3), (1, Null("x"), 4)],
            [(Null("x"), 2, 3), (1, 5, 4)],
            [(1, 2, 3), (1, 4, 5)],
            [(1, Null("x"), 3), (1, Null("y"), 4)],
            [(Null("x"), Null("x"), 1), (2, 3, 1)],
        ],
    )
    def test_certain_and_possible_match_world_enumeration(self, rows):
        database = db(rows)
        dependency = fd(("a",), ("b",))
        assert dependency.satisfied_certainly(database) == certain_by_enumeration(
            dependency, database
        )
        assert dependency.satisfied_possibly(database) == possible_by_enumeration(
            dependency, database
        )


class TestConstraintSet:
    def test_bulk_checks_and_report(self):
        database = db([(1, 2, 3), (1, Null("x"), 4), (5, 6, 7), (5, 8, 7)])
        constraints = ConstraintSet([fd(("a",), ("b",)), fd(("a",), ("c",))])
        constraints.add(fd(("c",), ("a",)))
        assert len(constraints) == 3
        assert not constraints.satisfied_certainly(database)
        report = dict(constraints.report(database))
        assert report[fd(("a",), ("b",))] == "violated"  # (5,6,7) vs (5,8,7)
        # a→c: tuples (1,2,3),(1,⊥,4) agree on a but differ on c (two constants).
        assert report[fd(("a",), ("c",))] == "violated"

    def test_report_levels(self):
        database = db([(1, 2, 3), (1, Null("x"), 3), (7, 8, 9)])
        constraints = ConstraintSet([fd(("a",), ("b",)), fd(("a",), ("c",))])
        report = dict(constraints.report(database))
        assert report[fd(("a",), ("b",))] == "possible"
        assert report[fd(("a",), ("c",))] == "certain"
        assert constraints.satisfied_possibly(database)
        assert not constraints.satisfied_certainly(database)
