"""Property tests for the marked-null ⇄ sentinel-constant encoding.

The whole correctness story of the SQL backend rests on two properties of
the sentinel codec:

* **round trip** — ``decode(encode(v)) == v`` for every storable value;
* **injectivity up to naive equality** — ``encode(a) == encode(b)`` iff
  ``a == b`` under naive semantics, so SQL ``=`` over encoded text
  coincides exactly with the engine's equality.  In particular sentinels
  never collide with user constants, including adversarial strings that
  *look* like encodings.
"""

import random

import pytest

from repro.backends import EncodingError, SentinelCodec
from repro.backends.encoding import SQLNullCodec
from repro.datamodel import Null
from repro.datamodel.values import is_null


def _value_pool():
    """A pool of storable values spanning every encoding branch."""
    values = [
        Null("x"),
        Null("y"),
        Null("n1"),
        Null("sql"),
        Null("i42"),  # a null whose *name* mimics an int encoding
        "",
        "a",
        "alice",
        "nx",  # collides with Null("x")'s sentinel only if tags were broken
        "ny",
        "i1",
        "f0.5",
        "o0",
        "s*",
        "\x00weird",
        0,
        1,
        -7,
        42,
        10**20,
        True,
        False,
        1.0,  # == 1 under Python equality: must encode identically to 1
        0.5,
        -2.25,
        1e300,
        (1, 2),  # opaque constants
        ("a", Null("x")),
        frozenset({1, 2}),
        b"bytes",
    ]
    return values


class TestSentinelRoundTrip:
    def test_round_trip_is_identity(self):
        codec = SentinelCodec()
        for value in _value_pool():
            decoded = codec.decode(codec.encode(value))
            assert decoded == value, value
            assert is_null(decoded) == is_null(value)

    def test_round_trip_interns_nulls(self):
        codec = SentinelCodec()
        null = Null("shared")
        first = codec.decode(codec.encode(null))
        second = codec.decode(codec.encode(Null("shared")))
        assert first is second

    def test_randomized_round_trip(self):
        rng = random.Random(7)
        codec = SentinelCodec()
        for _ in range(500):
            kind = rng.randrange(5)
            if kind == 0:
                value = Null("".join(rng.choices("abcxyz0123", k=rng.randrange(1, 8))))
            elif kind == 1:
                value = "".join(rng.choices("nsifo:\x00abc123", k=rng.randrange(0, 10)))
            elif kind == 2:
                value = rng.randrange(-(10**9), 10**9)
            elif kind == 3:
                value = rng.uniform(-1e6, 1e6)
            else:
                value = (rng.randrange(10), "".join(rng.choices("ab", k=3)))
            assert codec.decode(codec.encode(value)) == value

    def test_row_round_trip(self):
        codec = SentinelCodec()
        row = (Null("x"), "nx", 1, 1.5, (1, 2))
        assert codec.decode_row(codec.encode_row(row)) == row


class TestSentinelInjectivity:
    def test_encodings_agree_with_naive_equality(self):
        codec = SentinelCodec()
        pool = _value_pool()
        for a in pool:
            for b in pool:
                same_encoding = codec.encode(a) == codec.encode(b)
                assert same_encoding == (a == b), (a, b)

    def test_sentinels_never_collide_with_user_constants(self):
        codec = SentinelCodec()
        constants = [v for v in _value_pool() if not is_null(v)]
        nulls = [v for v in _value_pool() if is_null(v)]
        null_encodings = {codec.encode(n) for n in nulls}
        for constant in constants:
            assert codec.encode(constant) not in null_encodings

    def test_python_numeric_equality_is_preserved(self):
        # 1 == 1.0 == True in Python (and in interned relation rows), so
        # the backend must map all three to one SQL value.
        codec = SentinelCodec()
        assert codec.encode(1) == codec.encode(1.0) == codec.encode(True)
        assert codec.encode(0) == codec.encode(0.0) == codec.encode(False)
        assert codec.encode(1) != codec.encode(1.5)
        assert codec.encode(1) != codec.encode("1")

    def test_nan_rejected(self):
        with pytest.raises(EncodingError):
            SentinelCodec().encode(float("nan"))

    def test_unknown_opaque_token_rejected(self):
        with pytest.raises(EncodingError):
            SentinelCodec().decode("o999")

    def test_non_text_rejected_on_decode(self):
        with pytest.raises(EncodingError):
            SentinelCodec().decode(17)


class TestSQLNullCodec:
    def test_marked_nulls_become_sql_null(self):
        codec = SQLNullCodec()
        assert codec.encode(Null("x")) is None
        assert codec.encode("a") == "a"
        assert codec.encode(3) == 3

    def test_decode_null_is_fresh_mark(self):
        codec = SQLNullCodec()
        first, second = codec.decode(None), codec.decode(None)
        assert is_null(first) and is_null(second)
        assert first != second  # Codd nulls: every occurrence its own mark

    def test_opaque_constants_rejected(self):
        with pytest.raises(EncodingError):
            SQLNullCodec().encode((1, 2))
