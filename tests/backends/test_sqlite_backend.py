"""Unit tests for the SQLite backend: DDL, load/extract, plans, fallback."""

import pytest

from repro.algebra import parse_ra
from repro.algebra.ast import (
    ActiveDomain,
    ConstantRelation,
    Delta,
    Division,
    Projection,
    RAExpression,
    join,
    product,
    project,
    relation,
    rename,
    select,
    union,
)
from repro.algebra.predicates import Attr, Comparison, PNot, POr, eq
from repro.backends import (
    ANALYSIS_CACHE_KEY,
    SQLiteBackend,
    UnsupportedPlanError,
    backend_for,
    compile_logical_plan,
)
from repro.backends.encoding import SentinelCodec
from repro.core import certain_answers
from repro.datamodel import Database, Null, Relation
from repro.engine import compile_plan
from repro.workloads import enrolment, orders_payments


@pytest.fixture
def db():
    return Database.from_dict(
        {
            "R": [(1, 2), (2, 3), (3, 3), (Null("x"), 2), (Null("x"), Null("y"))],
            "S": [(2, "a"), (3, "b"), (Null("y"), "c")],
            "T": [(2,), (5,)],
        }
    )


class TestLoadExtract:
    def test_round_trip_every_relation(self, db):
        backend = SQLiteBackend()
        backend.load_database(db)
        for name in db.schema.names():
            assert backend.extract_relation(name) == db.relation(name)
        backend.close()

    def test_streaming_load_counts_rows(self, db):
        backend = SQLiteBackend()
        backend.create_schema(db.schema)
        written = backend.load_rows("T", ((i,) for i in range(100)))
        assert written == 100
        assert len(backend.extract_relation("T")) == 100

    def test_set_semantics_dedups_on_load(self, db):
        backend = SQLiteBackend()
        backend.create_schema(db.schema)
        backend.load_rows("T", [(1,), (1,), (1,)])
        assert backend.extract_relation("T").rows == {(1,)}

    def test_unknown_relation_rejected(self, db):
        backend = SQLiteBackend()
        backend.load_database(db)
        with pytest.raises(Exception):
            backend.extract_relation("Nope")

    def test_backend_cached_on_database(self, db):
        first = backend_for(db)
        second = backend_for(db)
        assert first is second
        assert db.analysis_cache()[ANALYSIS_CACHE_KEY][":memory:"] is first

    def test_backend_cached_per_path(self, db, tmp_path):
        in_memory = backend_for(db)
        on_disk = backend_for(db, str(tmp_path / "scale.sqlite"))
        assert on_disk is not in_memory
        assert backend_for(db, str(tmp_path / "scale.sqlite")) is on_disk
        assert on_disk.extract_relation("T") == db.relation("T")

    def test_incremental_load_invalidates_active_domain(self, db):
        from repro.algebra.ast import ActiveDomain

        backend = SQLiteBackend()
        backend.create_schema(db.schema)
        backend.load_rows("T", [(1,)])
        assert backend.evaluate(ActiveDomain()).rows == {(1,)}
        backend.load_rows("T", [(9,)])
        assert backend.evaluate(ActiveDomain()).rows == {(1,), (9,)}

    def test_index_names_cannot_collide_across_relations(self):
        database = Database.from_dict({"a_1": [(1, 2, 3)], "a": [(1, 2, 3)]})
        backend = backend_for(database)
        backend.ensure_index("a_1", (2,))
        backend.ensure_index("a", (1, 2))
        names = backend.connection.execute(
            "SELECT name FROM sqlite_master WHERE type = 'index' AND name LIKE 'idx_%'"
        ).fetchall()
        assert len({row[0] for row in names}) == 2


class TestEvaluation:
    def test_warm_plan_cache_reused(self, db):
        backend = backend_for(db)
        query = project(relation("R"), (0,))
        first = backend.evaluate(query)
        cached = backend._plans[query][0]
        second = backend.evaluate(query)
        assert backend._plans[query][0] is cached
        assert first == second == query.evaluate(db, engine="plan")

    def test_join_requests_index_on_base_table(self, db):
        backend = backend_for(db)
        query = join(
            rename(relation("R"), "A", ("a", "b")), rename(relation("S"), "B", ("b", "c"))
        )
        backend.evaluate(query)
        # The compiled plan asked for (and the backend created) an index
        # mirroring Relation.index_on on the probe side's key column.
        assert any(name in ("R", "S") for name, _ in backend._indexes)

    def test_temp_spill_for_shared_subplan(self, db):
        # R ∪ R: both operands are the same logical node; the compiler
        # must materialize it once into a temp table.
        plan = compile_plan(union(relation("R"), relation("R")), db.schema)
        compiled = compile_logical_plan(plan, db, SentinelCodec())
        # Scans are never spilled (they are already tables)...
        assert compiled.setup == ()
        shared = select(
            product(relation("R"), relation("S")), Comparison(Attr(1), "=", Attr(2))
        )
        plan = compile_plan(union(shared, shared), db.schema)
        compiled = compile_logical_plan(plan, db, SentinelCodec())
        # ...but a computed subplan referenced twice is.
        assert len(compiled.setup) == 1
        assert len(compiled.teardown) == 1
        assert compiled.query.count("_repro_tmp0") == 2

    def test_division_spills_dividend(self, db):
        school = enrolment(num_students=8, num_courses=3, null_fraction=0.2, seed=1)
        query = Division(relation("Enroll"), relation("Courses"))
        plan = compile_plan(query, school.schema)
        compiled = compile_logical_plan(plan, school, SentinelCodec())
        assert compiled.setup  # π_A(R) (and non-scan dividends) materialize
        assert query.evaluate(school, engine="sqlite") == query.evaluate(
            school, engine="plan"
        )

    def test_empty_divisor_textbook_convention(self):
        database = Database.from_dict({"R": [(1, "a"), (2, "b")]})
        empty = Relation.create("S", [], attributes=("course",))
        query = Division(relation("R"), ConstantRelation(empty))
        assert query.evaluate(database, engine="sqlite") == query.evaluate(
            database, engine="interpreter"
        )

    def test_delta_adom_and_constants(self, db):
        const = ConstantRelation(Relation.create("C", [(2,), (7,)]))
        for query in (
            Delta(),
            ActiveDomain(),
            const.product(relation("T")),
            select(relation("R"), POr((eq(Attr(0), 1), PNot(eq(Attr(1), 2))))),
            project(relation("R"), (1, 1, 0)),
        ):
            assert query.evaluate(db, engine="sqlite") == query.evaluate(
                db, engine="plan"
            )

    def test_schema_errors_match_other_engines(self, db):
        query = union(relation("R"), relation("T"))  # arity mismatch
        with pytest.raises(ValueError):
            query.evaluate(db, engine="sqlite")

    def test_certain_answers_end_to_end(self):
        school = enrolment(num_students=12, num_courses=3, null_fraction=0.2, seed=4)
        query = parse_ra("divide(Enroll, Courses)")
        assert certain_answers(query, school, engine="sqlite") == certain_answers(
            query, school, engine="plan"
        )
        orders = orders_payments(num_orders=30, num_payments=12, null_fraction=0.4, seed=2)
        unpaid = parse_ra(
            "diff(project[o_id](Orders), rename[Paid(o_id)](project[ord](Pay)))"
        )
        assert certain_answers(
            unpaid, orders, method="naive", engine="sqlite"
        ) == certain_answers(unpaid, orders, method="naive", engine="plan")


class TestFallback:
    def test_order_comparison_falls_back_with_interpreter_semantics(self, db):
        query = select(relation("R"), Comparison(Attr(0), "<", 5))
        # R contains nulls in column 0: naive semantics raises TypeError,
        # through the sqlite dispatch too (via the in-memory fallback).
        with pytest.raises(TypeError):
            query.evaluate(db, engine="sqlite")
        clean = select(relation("T"), Comparison(Attr(0), "<", 5))
        assert clean.evaluate(db, engine="sqlite") == clean.evaluate(db, engine="plan")

    def test_opaque_subtree_falls_back(self, db):
        from repro.datamodel.schema import RelationSchema

        class LegacyOp(RAExpression):
            def children(self):
                return ()

            def output_schema(self, schema):
                return RelationSchema("Legacy", ("#0",))

            def evaluate(self, database):  # seed signature
                return Relation(RelationSchema("Legacy", ("#0",)), [(1,), (2,)])

        nested = Projection(LegacyOp(), (0,))
        assert nested.evaluate(db, engine="sqlite").rows == {(1,), (2,)}

    def test_compiler_raises_unsupported_for_order_predicates(self, db):
        plan = compile_plan(
            select(relation("T"), Comparison(Attr(0), "<", 5)), db.schema
        )
        with pytest.raises(UnsupportedPlanError):
            compile_logical_plan(plan, db, SentinelCodec())

    def test_very_deep_plans_fall_back_instead_of_crashing(self, db):
        # Hundreds of stacked selections compile to subqueries nested past
        # SQLite's parser stack; that environmental limit must route to
        # the in-memory engine, not surface as OperationalError.
        query = relation("T")
        for i in range(400):
            query = select(query, eq(Attr(0), i))
        assert query.evaluate(db, engine="sqlite") == query.evaluate(db, engine="plan")

    def test_malformed_generated_sql_surfaces_loudly(self, db):
        # Only *environmental* SQLite limits may fall back; a compiler
        # regression emitting broken SQL must not be silently masked by
        # the in-memory engine (it would pass every differential test).
        import sqlite3

        from repro.backends.compiler import CompiledPlan

        backend = backend_for(db)
        query = project(relation("S"), (0,))
        backend.evaluate(query)
        _, out_schema = backend._plans[query]
        backend._plans[query] = (
            CompiledPlan(
                setup=(),
                query="SELECT FROM WHERE",
                params=(),
                teardown=(),
                arity=1,
                uses_adom=False,
                index_requests=(),
            ),
            out_schema,
        )
        with pytest.raises(sqlite3.OperationalError):
            query.evaluate(db, engine="sqlite")

    def test_nan_in_database_falls_back(self):
        database = Database.from_dict({"N": [(float("nan"),), (1.0,)]})
        query = project(relation("N"), (0,))
        assert query.evaluate(database, engine="sqlite") == query.evaluate(
            database, engine="plan"
        )


class TestEngineDispatch:
    def test_unknown_engine_rejected(self, db):
        with pytest.raises(ValueError):
            relation("R").evaluate(db, engine="quantum")

    def test_default_engine_switch_to_sqlite(self, db):
        from repro.engine import get_default_engine, set_default_engine

        previous = set_default_engine("sqlite")
        try:
            assert get_default_engine() == "sqlite"
            assert relation("R").evaluate(db) == db.relation("R")
        finally:
            set_default_engine(previous)

    def test_database_with_sqlite_backend_still_pickles(self, db):
        import pickle

        backend_for(db)  # attaches a live sqlite connection to the cache
        clone = pickle.loads(pickle.dumps(db))
        assert clone == db
        assert clone.analysis_cache() == {}
