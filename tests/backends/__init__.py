"""Tests for the SQL-backend compilation subsystem."""
