"""Fault injection: schedules, retries, crash-consistent refills, teardown."""

import random
import sqlite3
import warnings

import pytest

import repro
from repro.algebra.ast import product, project, relation, select, union
from repro.algebra.predicates import Attr, Comparison
from repro.backends import SQLiteBackend
from repro.backends.base import BackendError
from repro.backends.faults import (
    FaultInjectingBackend,
    FaultInjectingCodec,
    FaultSchedule,
)
from repro.backends.sqlite import is_runtime_failure
from repro.datamodel import Database, Null
from repro.resilience import (
    BackendRecoveryWarning,
    BackendUnavailable,
    Budget,
    BudgetExceeded,
    ManualClock,
    budget_scope,
    is_transient_error,
    with_retries,
)


@pytest.fixture
def db():
    return Database.from_dict(
        {
            "R": [(1, 2), (2, 3), (Null("x"), 2)],
            "S": [(2, "a"), (3, "b")],
        }
    )


def _leaked_temp_tables(connection):
    rows = connection.execute(
        "SELECT name FROM sqlite_temp_master "
        "WHERE type = 'table' AND name LIKE '\\_repro\\_tmp%' ESCAPE '\\'"
    ).fetchall()
    return [row[0] for row in rows]


def _spilling_query():
    # union(shared, shared) forces the compiler to spill the shared
    # subplan into a temp table (see test_sqlite_backend.py), which is
    # exactly what the teardown path must drop on every exit route.
    shared = select(
        product(relation("R"), relation("S")), Comparison(Attr(1), "=", Attr(2))
    )
    return union(shared, shared)


class TestFaultSchedule:
    def test_index_spec_fires_listed_calls_only(self):
        schedule = FaultSchedule({"evaluate": {1, 3}})
        assert schedule.record("evaluate") is True
        assert schedule.record("evaluate") is False
        assert schedule.record("evaluate") is True
        assert schedule.calls["evaluate"] == 3
        assert schedule.injected["evaluate"] == 2

    def test_predicate_spec(self):
        schedule = FaultSchedule({"fetch": lambda index: index % 2 == 0})
        assert [schedule.record("fetch") for _ in range(4)] == [
            False, True, False, True,
        ]

    def test_default_error_is_transient(self):
        schedule = FaultSchedule({"evaluate": {1}})
        with pytest.raises(sqlite3.OperationalError) as err:
            schedule.fire("evaluate")
        assert is_transient_error(err.value)

    def test_custom_error_class(self):
        schedule = FaultSchedule({"load_rows": {1}}, error=sqlite3.InterfaceError)
        with pytest.raises(sqlite3.InterfaceError):
            schedule.fire("load_rows")

    def test_unplanned_operations_never_fail(self):
        schedule = FaultSchedule()
        assert schedule.record("evaluate") is False
        schedule.fire("close")  # does not raise
        assert schedule.injected["close"] == 0


class TestFaultInjectingBackend:
    def test_transparent_without_faults(self, db):
        backend = FaultInjectingBackend(SQLiteBackend(), FaultSchedule())
        backend.load_database(db)
        for name in db.schema.names():
            assert backend.extract_relation(name) == db.relation(name)
        query = project(relation("R"), (0,))
        assert backend.evaluate(query) == query.evaluate(db, engine="plan")
        backend.close()

    def test_nth_evaluate_fails_then_recovers(self, db):
        schedule = FaultSchedule({"evaluate": {1}})
        backend = FaultInjectingBackend(SQLiteBackend(), schedule)
        backend.load_database(db)
        query = project(relation("R"), (0,))
        with pytest.raises(sqlite3.OperationalError):
            backend.evaluate(query)
        assert backend.evaluate(query) == query.evaluate(db, engine="plan")
        assert schedule.injected["evaluate"] == 1

    def test_private_state_falls_through(self, db):
        inner = SQLiteBackend()
        backend = FaultInjectingBackend(inner, FaultSchedule())
        backend.load_database(db)
        assert backend.connection is inner.connection
        assert backend._schema is inner._schema


class TestCrashConsistentReplace:
    def test_mid_refill_failure_keeps_old_data(self, db):
        backend = SQLiteBackend()
        backend.load_database(db)
        healthy_codec = backend.codec
        backend.codec = FaultInjectingCodec(healthy_codec, fail_encode_at=2)
        new = Database.from_dict({"R": [(7, 8), (8, 9)], "S": [(9, "z")]})
        with pytest.raises(sqlite3.OperationalError):
            backend.replace_database(new)
        # The transaction rolled back: the handle serves the *old* data.
        for name in db.schema.names():
            assert backend.extract_relation(name) == db.relation(name)
        query = project(relation("R"), (0,))
        assert backend.evaluate(query) == query.evaluate(db, engine="plan")
        # A subsequent healthy refill succeeds on the same handle.
        backend.codec = healthy_codec
        backend.replace_database(new)
        assert backend.extract_relation("R") == new.relation("R")
        assert backend.evaluate(query) == query.evaluate(new, engine="plan")

    def test_mid_refill_failure_across_schema_change_rolls_back_ddl(self, db):
        backend = SQLiteBackend()
        backend.load_database(db)
        backend.codec = FaultInjectingCodec(backend.codec, fail_encode_at=1)
        other = Database.from_dict({"T": [(1,), (2,)]})
        with pytest.raises(sqlite3.OperationalError):
            backend.replace_database(other)
        # The DROP/CREATE of the schema switch rolled back too.
        for name in db.schema.names():
            assert backend.extract_relation(name) == db.relation(name)
        with pytest.raises(BackendError):
            backend.extract_relation("T")

    def test_adom_stays_consistent_after_failed_refill(self, db):
        from repro.algebra.ast import ActiveDomain

        backend = SQLiteBackend()
        backend.load_database(db)
        expected = ActiveDomain().evaluate(db, engine="plan")
        assert backend.evaluate(ActiveDomain()) == expected
        backend.codec = FaultInjectingCodec(backend.codec, fail_encode_at=2)
        with pytest.raises(sqlite3.OperationalError):
            backend.replace_database(Database.from_dict({"R": [(7, 8)], "S": [(9, "z")]}))
        # The rolled-back refill resurrected the dropped adom temp table;
        # the next evaluation must rebuild it, not trip over the leftover.
        assert backend.evaluate(ActiveDomain()) == expected

    def test_poisoned_memory_handle_rebuilds_from_resident_database(self, db):
        backend = SQLiteBackend()
        backend.load_database(db)
        # Simulate "the rollback itself failed": handle poisoned, dead.
        backend._poisoned = True
        backend._connection.close()
        query = project(relation("R"), (0,))
        assert backend.evaluate(query) == query.evaluate(db, engine="plan")
        assert not backend._poisoned

    def test_poisoned_file_handle_serves_committed_state(self, db, tmp_path):
        backend = SQLiteBackend(str(tmp_path / "faults.sqlite"))
        backend.load_database(db)
        backend._database = None  # out-of-core: no resident Database object
        backend._poisoned = True
        query = project(relation("R"), (0,))
        # The file still holds the last committed state; reconnect serves it.
        assert backend.evaluate(query) == query.evaluate(db, engine="plan")

    def test_poisoned_memory_handle_without_database_raises(self, db):
        backend = SQLiteBackend()
        backend.create_schema(db.schema)
        backend.load_rows("R", db.relation("R").rows)
        backend._poisoned = True
        with pytest.raises(BackendError):
            backend.evaluate(project(relation("R"), (0,)))

    def test_failed_load_rows_is_all_or_nothing(self, db):
        backend = SQLiteBackend()
        backend.load_database(db)

        def rows():
            yield (7, 8)
            raise sqlite3.OperationalError("disk I/O error")

        with pytest.raises(sqlite3.OperationalError):
            backend.load_rows("R", rows())
        assert backend.extract_relation("R") == db.relation("R")


class TestCursorTeardown:
    def test_fetch_fault_mid_iteration_drops_temp_tables(self, db):
        schedule = FaultSchedule({"fetch": {1}})
        backend = FaultInjectingBackend(SQLiteBackend(), schedule)
        backend.load_database(db)
        with pytest.raises(sqlite3.OperationalError):
            list(backend.execute_cursor(_spilling_query()))
        assert _leaked_temp_tables(backend.connection) == []
        # The connection is still healthy: the same query runs clean now.
        rows = set(backend.execute_cursor(_spilling_query()))
        assert rows == _spilling_query().evaluate(db, engine="plan").rows

    def test_abandoned_cursor_drops_temp_tables(self, db):
        backend = SQLiteBackend()
        backend.load_database(db)
        stream = backend.execute_cursor(_spilling_query())
        next(stream)
        stream.close()
        assert _leaked_temp_tables(backend.connection) == []

    def test_session_cursor_close_after_fetch_fault_is_quiet(self, db):
        session = repro.connect(db, engine="sqlite")
        session._ensure_backend(db)
        schedule = FaultSchedule({"fetch": {3}})
        session._backend = FaultInjectingBackend(session._backend, schedule)
        cursor = session.query(_spilling_query()).cursor(batch_size=1)
        with pytest.raises(Exception):
            cursor.fetchall()
        cursor.close()  # must not raise on an already-torn-down stream
        assert _leaked_temp_tables(session._backend.connection) == []
        session.close()


class TestSessionRetries:
    def test_transient_evaluate_fault_is_retried(self, db):
        session = repro.connect(db, engine="sqlite")
        session._ensure_backend(db)
        schedule = FaultSchedule({"evaluate": {1}})
        session._backend = FaultInjectingBackend(session._backend, schedule)
        query = project(relation("R"), (1,))
        with warnings.catch_warnings():
            # A retried transient fault is *not* a recovery event.
            warnings.simplefilter("error", BackendRecoveryWarning)
            result = session.query(query).answer_object()
        assert result == query.evaluate(db, engine="plan")
        assert schedule.calls["evaluate"] == 2
        assert schedule.injected["evaluate"] == 1
        session.close()

    def test_persistent_runtime_failure_recovers_in_memory_once(self, db):
        session = repro.connect(db, engine="sqlite")
        session._ensure_backend(db)
        schedule = FaultSchedule({"evaluate": lambda index: True})
        session._backend = FaultInjectingBackend(session._backend, schedule)
        query = project(relation("R"), (1,))
        with pytest.warns(BackendRecoveryWarning):
            assert session.query(query).answer_object() == query.evaluate(
                db, engine="plan"
            )
        with warnings.catch_warnings():
            # The second recovery is silent (once-per-session warning).
            warnings.simplefilter("error", BackendRecoveryWarning)
            assert session.query(query).answer_object() == query.evaluate(
                db, engine="plan"
            )
        session.close()

    def test_non_transient_sql_error_is_not_retried_or_masked(self, db):
        session = repro.connect(db, engine="sqlite")
        session._ensure_backend(db)
        schedule = FaultSchedule(
            {"evaluate": {1}},
            error=lambda op: sqlite3.OperationalError('near "FROM": syntax error'),
        )
        session._backend = FaultInjectingBackend(session._backend, schedule)
        with pytest.raises(sqlite3.OperationalError):
            session.query(project(relation("R"), (0,))).answer_object()
        assert schedule.calls["evaluate"] == 1
        session.close()

    def test_backend_resident_failure_raises_backend_unavailable(self, db):
        session = repro.connect(engine="sqlite")
        session.create_schema(db.schema)
        session.load_rows("R", db.relation("R").rows)
        session.load_rows("S", db.relation("S").rows)
        schedule = FaultSchedule({"evaluate": lambda index: True})
        session._backend = FaultInjectingBackend(session._backend, schedule)
        with pytest.raises(BackendUnavailable):
            session.query(project(relation("R"), (0,))).answer_object()
        session.close()

    def test_replace_database_transient_fault_retried(self, db):
        session = repro.connect(db, engine="sqlite")
        session._ensure_backend(db)
        schedule = FaultSchedule({"replace_database": {1}})
        session._backend = FaultInjectingBackend(session._backend, schedule)
        other = Database.from_dict({"R": [(7, 8)], "S": [(9, "z")]})
        query = project(relation("R"), (0,))
        result = session.query(query, database=other).answer_object()
        assert result == query.evaluate(other, engine="plan")
        assert schedule.calls["replace_database"] == 2
        session.close()


class TestWithRetries:
    def test_succeeds_after_transient_failures(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise sqlite3.OperationalError("database is locked")
            return "ok"

        sleeps = []
        assert with_retries(flaky, sleep=sleeps.append) == "ok"
        assert calls["n"] == 3
        assert len(sleeps) == 2

    def test_gives_up_after_the_retry_budget(self):
        sleeps = []

        def always():
            raise sqlite3.OperationalError("database is locked")

        with pytest.raises(sqlite3.OperationalError):
            with_retries(always, sleep=sleeps.append)
        assert len(sleeps) == 3  # DEFAULT_RETRIES

    def test_non_retryable_error_raises_immediately(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise sqlite3.OperationalError("no such table: nope")

        with pytest.raises(sqlite3.OperationalError):
            with_retries(broken, sleep=lambda s: None)
        assert calls["n"] == 1

    def test_backoff_is_exponential_capped_and_jittered(self):
        sleeps = []

        def always():
            raise sqlite3.OperationalError("database is locked")

        with pytest.raises(sqlite3.OperationalError):
            with_retries(
                always, retries=5, sleep=sleeps.append, rng=random.Random(0)
            )
        caps = [0.005, 0.01, 0.02, 0.04, 0.05]
        assert len(sleeps) == 5
        for observed, cap in zip(sleeps, caps):
            assert cap / 2 <= observed <= cap

    def test_expired_budget_stops_the_retry_loop(self):
        clock = ManualClock(step=1.0)
        budget = Budget(deadline=0.5, clock=clock)

        def always():
            raise sqlite3.OperationalError("database is locked")

        with budget_scope(budget.start()):
            with pytest.raises(BudgetExceeded):
                with_retries(always, sleep=lambda s: None)


class TestRuntimeFailureClassifier:
    def test_environmental_failures_route_to_recovery(self):
        assert is_runtime_failure(sqlite3.OperationalError("database is locked"))
        assert is_runtime_failure(sqlite3.OperationalError("disk I/O error"))
        assert is_runtime_failure(sqlite3.OperationalError("database or disk is full"))
        assert is_runtime_failure(sqlite3.OperationalError("parser stack overflow"))
        assert is_runtime_failure(
            sqlite3.ProgrammingError("Cannot operate on a closed database.")
        )
        assert is_runtime_failure(sqlite3.InterfaceError("bad parameter or other API misuse"))
        assert is_runtime_failure(
            sqlite3.DatabaseError("database disk image is malformed")
        )

    def test_code_bugs_stay_loud(self):
        assert not is_runtime_failure(
            sqlite3.OperationalError('near "FROM": syntax error')
        )
        assert not is_runtime_failure(sqlite3.OperationalError("no such table: t_R"))
        assert not is_runtime_failure(
            sqlite3.ProgrammingError("Incorrect number of bindings supplied")
        )
        assert not is_runtime_failure(
            sqlite3.IntegrityError("UNIQUE constraint failed")
        )
        assert not is_runtime_failure(ValueError("not a sqlite error at all"))


# ---------------------------------------------------------------------------
# Pool-level chaos: FaultInjectingExecutor against the worker fan-out.
# ---------------------------------------------------------------------------
def _pool_evaluate(world):
    # Parsed fresh per call so the function stays picklable (a shared
    # expression gains plan annotations after its first evaluation).
    from repro.algebra import parse_ra

    return parse_ra("project[#0](R)").evaluate(world, engine="interpreter")


def _pool_db():
    return Database.from_dict({"R": [(1,), (2,), (3,), (Null("x"),)]})


class TestFaultInjectingExecutor:
    def _run(self, schedule, heartbeat=0.2):
        from concurrent.futures import ThreadPoolExecutor

        from repro.backends.faults import FaultInjectingExecutor
        from repro.semantics.certain import enumerate_certain_answers

        database = _pool_db()
        oracle = enumerate_certain_answers(_pool_evaluate, database)
        chaos = enumerate_certain_answers(
            _pool_evaluate,
            database,
            workers=2,
            heartbeat=heartbeat,
            pool_factory=lambda n: FaultInjectingExecutor(
                ThreadPoolExecutor(max_workers=n), schedule
            ),
        )
        assert set(chaos.rows) == set(oracle.rows)

    def test_broken_pool_on_submit_degrades_to_local_run(self):
        # The very first submit raises BrokenProcessPool: every chunk
        # (including the one being submitted) re-runs in the parent.
        self._run(FaultSchedule({"submit": [0]}))

    def test_lost_future_recovers_via_heartbeat(self):
        # A lost future never completes — the hung-child case.  The
        # heartbeat expires, the chunk re-runs locally, answers match.
        self._run(FaultSchedule({"lose": [0]}))

    def test_delayed_future_recovers_via_heartbeat(self):
        # The child is alive but slower than the heartbeat; same recovery.
        self._run(FaultSchedule({"delay": [0]}))

    def test_every_fault_kind_at_once(self):
        self._run(FaultSchedule({"submit": [1], "lose": [0], "delay": [2]}))

    def test_unfaulted_executor_is_transparent(self):
        self._run(FaultSchedule({}))

    def test_delayed_future_result_times_out(self):
        from concurrent.futures import TimeoutError as FutureTimeoutError

        from repro.backends.faults import _DelayedFuture

        class _Done:
            def result(self, timeout=None):
                return "late"

        slow = _DelayedFuture(_Done(), delay=10.0, sleep=lambda s: None)
        with pytest.raises(FutureTimeoutError):
            slow.result(timeout=0.01)
        assert slow.result(timeout=None) == "late"


class TestTransientClassifier:
    def test_contention_is_transient(self):
        assert is_transient_error(sqlite3.OperationalError("database is locked"))
        assert is_transient_error(sqlite3.OperationalError("database table is locked"))

    def test_disk_failures_are_not_transient(self):
        # Disk I/O errors are runtime *failures* (they route to backend
        # recovery, not blind retries against a broken device).
        assert not is_transient_error(sqlite3.OperationalError("disk I/O error"))
        assert not is_transient_error(
            sqlite3.OperationalError("database or disk is full")
        )
        assert not is_transient_error(ValueError("unrelated"))


class TestResumeTokenPickle:
    def test_resume_token_round_trips(self):
        import pickle

        from repro.resilience import ResumeToken

        token = ResumeToken(
            key="abc123",
            worlds_done=17,
            schema=("c0",),
            intersection=frozenset({(1,), (2,)}),
            kernel_epoch=3,
        )
        revived = pickle.loads(pickle.dumps(token))
        assert revived.key == token.key
        assert revived.worlds_done == 17
        assert revived.schema == ("c0",)
        assert revived.intersection == frozenset({(1,), (2,)})
        assert revived.kernel_epoch == 3


class TestBackoffDeadlineClamp:
    def test_sleeps_never_exceed_remaining_deadline(self):
        # A huge base_delay against a 5 s (manual-clock) deadline: every
        # backoff sleep must be clamped to what is left of the budget.
        clock = ManualClock(step=1.0)
        budget = Budget(deadline=5.0, clock=clock)
        sleeps = []

        def always():
            raise sqlite3.OperationalError("database is locked")

        with budget_scope(budget.start()):
            with pytest.raises((sqlite3.OperationalError, BudgetExceeded)):
                with_retries(
                    always,
                    retries=10,
                    base_delay=60.0,
                    max_delay=120.0,
                    sleep=sleeps.append,
                    rng=random.Random(0),
                )
        assert sleeps, "expected at least one clamped backoff sleep"
        assert all(s <= 5.0 for s in sleeps), sleeps

    def test_clamp_is_inactive_without_budget(self):
        sleeps = []

        def always():
            raise sqlite3.OperationalError("database is locked")

        with pytest.raises(sqlite3.OperationalError):
            with_retries(
                always,
                retries=2,
                base_delay=60.0,
                max_delay=120.0,
                sleep=sleeps.append,
                rng=random.Random(0),
            )
        assert all(s > 5.0 for s in sleeps), sleeps
