"""Unit tests for schema mappings (st-tgds)."""

import pytest

from repro.datamodel import DatabaseSchema
from repro.exchange import MappingAtom, SchemaMapping, TGD, order_preferences_mapping
from repro.logic import Variable


X, Y, Z = Variable("x"), Variable("y"), Variable("z")


class TestMappingAtom:
    def test_variables_and_arity(self):
        atom = MappingAtom("R", (X, "const", Y))
        assert atom.arity == 3
        assert atom.variables() == {X, Y}
        assert "R(" in str(atom)


class TestTGD:
    def test_existential_variables(self):
        rule = TGD(
            body=[MappingAtom("E", (X, Y))],
            head=[MappingAtom("P", (X, Z)), MappingAtom("P", (Z, Y))],
        )
        assert rule.body_variables() == {X, Y}
        assert rule.head_variables() == {X, Y, Z}
        assert rule.existential_variables() == {Z}

    def test_full_tgd_has_no_existentials(self):
        rule = TGD(body=[MappingAtom("E", (X, Y))], head=[MappingAtom("P", (X, Y))])
        assert rule.existential_variables() == set()

    def test_empty_body_or_head_rejected(self):
        with pytest.raises(ValueError):
            TGD(body=[], head=[MappingAtom("P", (X,))])
        with pytest.raises(ValueError):
            TGD(body=[MappingAtom("E", (X, Y))], head=[])

    def test_str_shows_existentials(self):
        rule = TGD(
            body=[MappingAtom("Order", (X, Y))],
            head=[MappingAtom("Cust", (Z,)), MappingAtom("Pref", (Z, Y))],
        )
        assert "∃" in str(rule)
        assert "→" in str(rule)


class TestSchemaMapping:
    def test_paper_example_mapping(self):
        mapping = order_preferences_mapping()
        assert len(mapping) == 1
        rule = mapping.tgds[0]
        assert rule.existential_variables() == {Variable("x")}
        assert "Order" in mapping.source_schema
        assert "Cust" in mapping.target_schema and "Pref" in mapping.target_schema

    def test_validation_of_relations(self):
        source = DatabaseSchema.from_arities({"E": 2})
        target = DatabaseSchema.from_arities({"P": 2})
        with pytest.raises(ValueError):
            SchemaMapping(source, target, [TGD([MappingAtom("Missing", (X, Y))], [MappingAtom("P", (X, Y))])])
        with pytest.raises(ValueError):
            SchemaMapping(source, target, [TGD([MappingAtom("E", (X, Y))], [MappingAtom("Missing", (X, Y))])])

    def test_validation_of_arities(self):
        source = DatabaseSchema.from_arities({"E": 2})
        target = DatabaseSchema.from_arities({"P": 2})
        with pytest.raises(ValueError):
            SchemaMapping(source, target, [TGD([MappingAtom("E", (X,))], [MappingAtom("P", (X, Y))])])
        with pytest.raises(ValueError):
            SchemaMapping(source, target, [TGD([MappingAtom("E", (X, Y))], [MappingAtom("P", (X,))])])

    def test_iteration_and_str(self):
        mapping = order_preferences_mapping()
        assert len(list(mapping)) == 1
        assert "Cust" in str(mapping)
