"""Unit tests for the chase (oblivious and restricted)."""

import pytest

from repro.datamodel import Database, DatabaseSchema, Null
from repro.exchange import (
    MappingAtom,
    SchemaMapping,
    TGD,
    canonical_solution,
    chase,
    core_solution,
    order_preferences_mapping,
)
from repro.homomorphisms import exists_homomorphism
from repro.logic import Variable


X, Y, Z = Variable("x"), Variable("y"), Variable("z")


@pytest.fixture
def paper_mapping():
    return order_preferences_mapping()


@pytest.fixture
def paper_source(paper_mapping):
    return Database(paper_mapping.source_schema, {"Order": [("oid1", "pr1"), ("oid2", "pr2")]})


class TestPaperExample:
    def test_two_triggers_two_nulls(self, paper_mapping, paper_source):
        result = chase(paper_mapping, paper_source)
        assert result.triggers_fired == 2
        assert result.nulls_introduced == 2
        assert result.target.size() == 4

    def test_nulls_shared_between_cust_and_pref(self, paper_mapping, paper_source):
        target = canonical_solution(paper_mapping, paper_source)
        cust_nulls = target["Cust"].nulls()
        pref_nulls = target["Pref"].nulls()
        assert cust_nulls == pref_nulls
        assert len(cust_nulls) == 2
        # the result is a genuinely naive (non-Codd) instance: each null occurs twice
        assert not target.is_codd()

    def test_products_preserved(self, paper_mapping, paper_source):
        target = canonical_solution(paper_mapping, paper_source)
        products = {row[1] for row in target["Pref"]}
        assert products == {"pr1", "pr2"}

    def test_different_orders_get_different_nulls(self, paper_mapping, paper_source):
        target = canonical_solution(paper_mapping, paper_source)
        pref_rows = sorted(target["Pref"].rows, key=lambda row: str(row[1]))
        assert pref_rows[0][0] != pref_rows[1][0]


class TestChaseMechanics:
    def test_body_variables_must_match_consistently(self):
        source_schema = DatabaseSchema.from_arities({"E": 2})
        target_schema = DatabaseSchema.from_arities({"Loop": 1})
        rule = TGD([MappingAtom("E", (X, X))], [MappingAtom("Loop", (X,))], name="loops")
        mapping = SchemaMapping(source_schema, target_schema, [rule])
        source = Database(source_schema, {"E": [(1, 1), (1, 2), (3, 3)]})
        target = canonical_solution(mapping, source)
        assert target["Loop"].rows == frozenset({(1,), (3,)})

    def test_constants_in_body_and_head(self):
        source_schema = DatabaseSchema.from_arities({"E": 2})
        target_schema = DatabaseSchema.from_arities({"P": 2})
        rule = TGD([MappingAtom("E", ("a", X))], [MappingAtom("P", (X, "marked"))])
        mapping = SchemaMapping(source_schema, target_schema, [rule])
        source = Database(source_schema, {"E": [("a", 1), ("b", 2)]})
        target = canonical_solution(mapping, source)
        assert target["P"].rows == frozenset({(1, "marked")})

    def test_multiple_tgds(self):
        source_schema = DatabaseSchema.from_arities({"E": 2})
        target_schema = DatabaseSchema.from_arities({"P": 2, "V": 1})
        rules = [
            TGD([MappingAtom("E", (X, Y))], [MappingAtom("P", (X, Y))], name="copy"),
            TGD([MappingAtom("E", (X, Y))], [MappingAtom("V", (X,))], name="src"),
        ]
        mapping = SchemaMapping(source_schema, target_schema, rules)
        source = Database(source_schema, {"E": [(1, 2)]})
        target = canonical_solution(mapping, source)
        assert target["P"].rows == frozenset({(1, 2)})
        assert target["V"].rows == frozenset({(1,)})

    def test_source_nulls_are_copied(self):
        """Incomplete sources chase into incomplete targets (nulls propagate)."""
        source_schema = DatabaseSchema.from_arities({"E": 2})
        target_schema = DatabaseSchema.from_arities({"P": 2})
        rule = TGD([MappingAtom("E", (X, Y))], [MappingAtom("P", (Y, X))])
        mapping = SchemaMapping(source_schema, target_schema, [rule])
        null = Null("src")
        source = Database(source_schema, {"E": [(1, null)]})
        target = canonical_solution(mapping, source)
        assert target["P"].rows == frozenset({(null, 1)})

    def test_missing_source_relation_rejected(self):
        source_schema = DatabaseSchema.from_arities({"E": 2})
        target_schema = DatabaseSchema.from_arities({"P": 2})
        rule = TGD([MappingAtom("E", (X, Y))], [MappingAtom("P", (X, Y))])
        mapping = SchemaMapping(source_schema, target_schema, [rule])
        other_source = Database.from_dict({"Z": [(1, 2)]})
        with pytest.raises(ValueError):
            chase(mapping, other_source)

    def test_empty_source_gives_empty_target(self, paper_mapping):
        source = Database.empty(paper_mapping.source_schema)
        result = chase(paper_mapping, source)
        assert result.target.size() == 0
        assert result.triggers_fired == 0


class TestRestrictedChaseAndCore:
    def _copy_mapping(self):
        source_schema = DatabaseSchema.from_arities({"E": 2})
        target_schema = DatabaseSchema.from_arities({"P": 2})
        rule = TGD(
            [MappingAtom("E", (X, Y))],
            [MappingAtom("P", (X, Z)), MappingAtom("P", (Z, Y))],
            name="path2",
        )
        return SchemaMapping(source_schema, target_schema, [rule])

    def test_oblivious_chase_fires_every_trigger(self):
        mapping = self._copy_mapping()
        source = Database(mapping.source_schema, {"E": [(1, 2), (1, 2)]})
        result = chase(mapping, source, oblivious=True)
        assert result.triggers_fired == 1  # (1,2) appears once under set semantics

    def test_restricted_chase_skips_satisfied_heads(self):
        source_schema = DatabaseSchema.from_arities({"E": 2})
        target_schema = DatabaseSchema.from_arities({"P": 2})
        # Two rules generating the same shape of target facts.
        rules = [
            TGD([MappingAtom("E", (X, Y))], [MappingAtom("P", (X, Z))], name="first"),
            TGD([MappingAtom("E", (X, Y))], [MappingAtom("P", (X, Z))], name="second"),
        ]
        mapping = SchemaMapping(source_schema, target_schema, rules)
        source = Database(source_schema, {"E": [(1, 2)]})
        oblivious = chase(mapping, source, oblivious=True)
        restricted = chase(mapping, source, oblivious=False)
        assert oblivious.target.size() == 2
        assert restricted.target.size() == 1

    def test_core_solution_is_homomorphically_equivalent(self, paper_mapping, paper_source):
        canonical = canonical_solution(paper_mapping, paper_source)
        core = core_solution(paper_mapping, paper_source)
        assert exists_homomorphism(canonical, core)
        assert exists_homomorphism(core, canonical)
        assert core.size() <= canonical.size()
