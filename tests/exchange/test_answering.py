"""Unit tests for certain-answer query answering in data exchange."""

import pytest

from repro.algebra import parse_ra
from repro.datamodel import Database
from repro.exchange import (
    canonical_solution,
    certain_answers_exchange,
    naive_exchange_answer_is_guaranteed,
    order_preferences_mapping,
)
from repro.logic import FOQuery, Not, atom, exists, var


@pytest.fixture
def mapping():
    return order_preferences_mapping()


@pytest.fixture
def source(mapping):
    return Database(mapping.source_schema, {"Order": [("oid1", "pr1"), ("oid2", "pr2")]})


class TestNaiveExchangeAnswers:
    def test_positive_query_over_target(self, mapping, source):
        query = parse_ra("project[product](Pref)")
        answers = certain_answers_exchange(mapping, source, query)
        assert answers.rows == frozenset({("pr1",), ("pr2",)})

    def test_null_valued_attributes_are_not_certain(self, mapping, source):
        query = parse_ra("project[c_id](Pref)")
        answers = certain_answers_exchange(mapping, source, query)
        assert answers.rows == frozenset()

    def test_boolean_existence_is_certain(self, mapping, source):
        x, p = var("x"), var("p")
        query = FOQuery(exists((x, p), atom("Pref", x, p)))
        answers = certain_answers_exchange(mapping, source, query)
        assert answers.rows == frozenset({()})

    def test_naive_matches_enumeration_for_ucq(self, mapping, source):
        query = parse_ra("project[product](Pref)")
        naive = certain_answers_exchange(mapping, source, query, method="naive")
        enumerated = certain_answers_exchange(
            mapping, source, query, method="enumeration", semantics="owa", max_extra_facts=1
        )
        assert naive.rows == enumerated.rows

    def test_unknown_method_rejected(self, mapping, source):
        with pytest.raises(ValueError):
            certain_answers_exchange(mapping, source, parse_ra("Cust"), method="bogus")


class TestNegationOverTarget:
    def test_naive_is_wrong_for_queries_with_negation(self, mapping, source):
        """Products that 'alice' does not prefer: naive evaluation overclaims."""
        p = var("p")
        negative = FOQuery(Not(atom("Pref", "alice", p)), (p,))
        naive = certain_answers_exchange(mapping, source, negative, method="naive")
        enumerated = certain_answers_exchange(
            mapping, source, negative, method="enumeration", semantics="owa", max_extra_facts=1
        )
        # Naively, 'alice' matches nothing, so every product qualifies; but in
        # solutions where a null is instantiated to 'alice' (or extra facts are
        # added) the answer shrinks: naive evaluation overclaims.
        assert naive.rows
        assert enumerated.rows < naive.rows

    def test_guarantee_predicate(self):
        assert naive_exchange_answer_is_guaranteed(parse_ra("project[product](Pref)"))
        assert not naive_exchange_answer_is_guaranteed(
            parse_ra("diff(project[product](Pref), Cust)")
        )


class TestCanonicalSolutionShape:
    def test_solution_grows_linearly_with_source(self, mapping):
        small = Database(mapping.source_schema, {"Order": [(f"o{i}", f"p{i}") for i in range(3)]})
        large = Database(mapping.source_schema, {"Order": [(f"o{i}", f"p{i}") for i in range(9)]})
        assert canonical_solution(mapping, small).size() == 6
        assert canonical_solution(mapping, large).size() == 18
