"""Smoke tests: every example script runs to completion and prints its tour.

The examples double as end-to-end integration tests of the public API; a
broken import or API drift shows up here before a user hits it.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))), "examples")

EXAMPLES = sorted(name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py"))

#: A string each example must print, as a sanity check that it really ran.
EXPECTED_SNIPPETS = {
    "quickstart.py": "certain answers",
    "unpaid_orders.py": "oid",
    "data_exchange.py": "Chase",
    "division_cwa.py": "division",
    "ctables_demo.py": "condition",
    "graph_queries.py": "Certain answers",
    "consistent_answers.py": "repairs",
    "views_integration.py": "Certainly employees",
    "prob_confidence.py": "P(answer",
}


def test_every_example_has_an_expected_snippet_registered():
    assert set(EXAMPLES) == set(EXPECTED_SNIPPETS)


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_successfully(script):
    completed = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    expected = EXPECTED_SNIPPETS.get(script, "")
    assert expected.lower() in completed.stdout.lower()
