"""E25 — Section 7 ("Beyond relations"): certain answers over incomplete data trees.

The paper observes that XML incompleteness was mostly handled by reducing
to relations and that the general framework should apply to trees once the
right preservation properties are identified.  For data trees whose
*structure* is complete and whose *data values* may be marked nulls, tree
patterns (child/descendant edges, label tests, data-value variables) are
monotone and generic in the data values, so naive evaluation computes
certain answers — the tree analogue of the paper's eq. (4).  This
experiment verifies that claim, including the shared-null behaviour that
motivates marked nulls in the first place.
"""

import random

import pytest

from repro.datamodel import Null
from repro.logic import var
from repro.trees import (
    DataTree,
    PatternNode,
    TreePattern,
    certain_answers_tree_pattern,
    naive_certain_answers_tree_pattern,
)

X, Y = var("x"), var("y")


def _order_tree(num_orders, null_fraction, seed):
    rng = random.Random(seed)
    orders = []
    payers = ["ann", "bob", "cat"]
    for i in range(num_orders):
        payer = Null(f"p{i}") if rng.random() < null_fraction else rng.choice(payers)
        orders.append(
            DataTree(
                "order",
                children=[DataTree("id", value=f"oid{i}"), DataTree("payer", value=payer)],
            )
        )
    return DataTree("orders", children=orders)


PAYER_PATTERN = TreePattern(
    PatternNode(
        "order",
        children=[("child", PatternNode("id", value=X)), ("child", PatternNode("payer", value=Y))],
    ),
    output=(X, Y),
)

PAID_PATTERN = TreePattern(
    PatternNode("order", children=[("child", PatternNode("id", value=X)), ("child", PatternNode("payer"))]),
    output=(X,),
)


class TestNaiveEvaluationWorksForTreePatterns:
    @pytest.mark.parametrize("seed", range(4))
    def test_naive_equals_enumeration(self, seed):
        tree = _order_tree(num_orders=3, null_fraction=0.5, seed=seed)
        for pattern in (PAYER_PATTERN, PAID_PATTERN):
            naive = naive_certain_answers_tree_pattern(pattern, tree)
            brute = certain_answers_tree_pattern(pattern, tree)
            assert naive.rows == brute.rows

    def test_unknown_payer_is_dropped_but_order_is_kept(self):
        tree = DataTree(
            "orders",
            children=[
                DataTree(
                    "order",
                    children=[DataTree("id", value="oid1"), DataTree("payer", value=Null("p"))],
                )
            ],
        )
        assert naive_certain_answers_tree_pattern(PAYER_PATTERN, tree).rows == frozenset()
        assert naive_certain_answers_tree_pattern(PAID_PATTERN, tree).rows == {("oid1",)}

    def test_shared_null_supports_certain_joins(self):
        """Two orders paid by the same (unknown) customer are certainly co-paid."""
        shared = Null("payer")
        tree = DataTree(
            "orders",
            children=[
                DataTree("order", children=[DataTree("id", value="oid1"), DataTree("payer", value=shared)]),
                DataTree("order", children=[DataTree("id", value="oid2"), DataTree("payer", value=shared)]),
            ],
        )
        same_payer = TreePattern(
            PatternNode(
                "orders",
                children=[
                    (
                        "child",
                        PatternNode(
                            "order",
                            children=[
                                ("child", PatternNode("id", value="oid1")),
                                ("child", PatternNode("payer", value=Y)),
                            ],
                        ),
                    ),
                    (
                        "child",
                        PatternNode(
                            "order",
                            children=[
                                ("child", PatternNode("id", value=X)),
                                ("child", PatternNode("payer", value=Y)),
                            ],
                        ),
                    ),
                ],
            ),
            output=(X,),
        )
        certain = naive_certain_answers_tree_pattern(same_payer, tree).rows
        assert certain == {("oid1",), ("oid2",)}
        assert certain == certain_answers_tree_pattern(same_payer, tree).rows
