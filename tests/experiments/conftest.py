"""Shared fixtures for the experiment suite (paper worked examples)."""

import pytest

from repro.datamodel import Database, Null, Relation


@pytest.fixture
def paper_orders_db():
    """The Section 1 unpaid-orders database.

    Order = {(oid1, pr1), (oid2, pr2)}, Pay = {(pid1, ⊥, 100)}.
    """
    return Database.from_relations(
        [
            Relation.create(
                "Orders", [("oid1", "pr1"), ("oid2", "pr2")], attributes=("o_id", "product")
            ),
            Relation.create(
                "Pay", [("pid1", Null("pay_order"), 100)], attributes=("p_id", "ord", "amount")
            ),
        ]
    )


@pytest.fixture
def paper_r_minus_s_db():
    """R = {1, 2}, S = {⊥} — the running difference example of Sections 1–2."""
    return Database.from_relations(
        [
            Relation.create("R", [(1,), (2,)], attributes=("A",)),
            Relation.create("S", [(Null("s"),)], attributes=("A",)),
        ]
    )


@pytest.fixture
def paper_section2_r():
    """The naive table R of Section 2: {(⊥, 1, ⊥'), (2, ⊥', ⊥)}."""
    bot, bot_prime = Null("bot"), Null("bot_prime")
    return Database.from_dict({"R": [(bot, 1, bot_prime), (2, bot_prime, bot)]})


@pytest.fixture
def paper_section6_r():
    """R = {(1, 2), (2, ⊥)} used in the Section 6 intersection critique."""
    return Database.from_dict({"R": [(1, 2), (2, Null("x"))]})
