"""E16 — Section 6.2, CWA-naive evaluation works for RA_cwa (division queries).

Paper claims:

* Pos∀G formulas are preserved under strong onto homomorphisms;
* Pos∀G forms a representation system under CWA; combining the two,
  *CWA-naive evaluation works for Pos∀G queries*;
* ``RA_cwa`` — positive relational algebra closed under division by
  RA(Δ,π,×,∪) queries — is the algebraic rendering of this class, so
  "one can fully trust answers to positive relational algebra queries, even
  extended with a rather liberal use of the division operator under the
  closed-world semantics".
"""

import pytest

from repro.algebra import divide, is_ra_cwa, naive_certain_answers, parse_ra, project, relation
from repro.core import (
    certain_answers,
    certain_answers_intersection,
    is_preserved_under_homomorphisms,
    naive_evaluation_applies,
)
from repro.datamodel import Database, Null, Relation
from repro.homomorphisms import all_homomorphisms
from repro.logic import ra_to_calculus
from repro.workloads import enrolment, random_database, random_ra_cwa_query


class TestEnrolmentScenario:
    def _db(self, seed=0, **kwargs):
        return enrolment(num_students=4, num_courses=2, seed=seed, **kwargs)

    @pytest.mark.parametrize("seed", range(4))
    def test_who_takes_every_course_naive_equals_exact(self, seed):
        database = self._db(seed=seed, null_fraction=0.3)
        query = parse_ra("divide(Enroll, Courses)")
        naive = naive_certain_answers(query, database)
        exact = certain_answers_intersection(query, database, semantics="cwa")
        assert naive.rows == exact.rows

    def test_null_course_can_complete_a_student(self):
        """A marked null in Enroll can certainly cover a course under CWA?  No —
        but it also must not destroy certainty of fully-enrolled students."""
        database = Database.from_relations(
            [
                Relation.create(
                    "Enroll",
                    [("alice", "c0"), ("alice", "c1"), ("bob", "c0"), ("bob", Null("b"))],
                    attributes=("student", "course"),
                ),
                Relation.create("Courses", [("c0",), ("c1",)], attributes=("course",)),
            ]
        )
        query = parse_ra("divide(Enroll, Courses)")
        naive = naive_certain_answers(query, database)
        exact = certain_answers_intersection(query, database, semantics="cwa")
        # alice is certain; bob is not (his null may be c0 again, not c1).
        assert naive.rows == exact.rows == frozenset({("alice",)})

    def test_auto_dispatcher_uses_naive_for_ra_cwa_under_cwa(self):
        database = self._db()
        query = parse_ra("divide(Enroll, Courses)")
        assert naive_evaluation_applies(query, "cwa").applies
        auto = certain_answers(query, database, semantics="cwa")
        assert auto.rows == certain_answers_intersection(database=database, query=query, semantics="cwa").rows


class TestRandomisedRaCwaQueries:
    @pytest.mark.parametrize("seed", range(6))
    def test_naive_equals_enumeration(self, seed):
        database = enrolment(num_students=3, num_courses=2, null_fraction=0.25, seed=seed)
        query = random_ra_cwa_query(database.schema, "Enroll", "Courses", seed=seed)
        assert is_ra_cwa(query)
        naive = naive_certain_answers(query, database)
        exact = certain_answers_intersection(query, database, semantics="cwa")
        assert naive.rows == exact.rows

    def test_division_with_projected_divisor(self):
        database = Database.from_dict(
            {
                "R": [("a", 1, "x"), ("a", 2, "x"), ("b", 1, "y"), ("b", Null("n"), "y")],
                "S": [(1, "p"), (2, "q")],
            }
        )
        query = divide(relation("R").project([0, 1]), relation("S").project([0]))
        assert is_ra_cwa(query)
        naive = naive_certain_answers(query, database)
        exact = certain_answers_intersection(query, database, semantics="cwa")
        assert naive.rows == exact.rows


class TestPreservationUnderStrongOntoHoms:
    def test_pos_forall_guarded_translation_preserved(self):
        """The Pos∀G translation of a division query is preserved under strong onto homs."""
        from repro.logic import Exists, FOQuery
        from repro.semantics import cwa_worlds

        schema = enrolment(seed=0).schema
        query = ra_to_calculus(parse_ra("divide(Enroll, Courses)"), schema)
        boolean = FOQuery(Exists(list(query.head), query.formula))
        pairs = []
        for seed in range(3):
            source = enrolment(num_students=3, num_courses=2, null_fraction=0.4, seed=seed)
            for world in list(cwa_worlds(source))[:4]:
                for hom in all_homomorphisms(source, world, strong_onto=True, limit=1):
                    pairs.append((source, world, hom))
        assert pairs
        assert is_preserved_under_homomorphisms(boolean, pairs, strong_onto=True)

    def test_negation_not_preserved_under_strong_onto_homs(self):
        """A query with negation loses truth along a strong onto homomorphism."""
        from repro.logic import FOQuery, Not, atom

        source = Database.from_relations(
            [
                Relation.create("Enroll", [("a", "c0")], attributes=("student", "course")),
                Relation.create("Courses", [(Null("m"),)], attributes=("course",)),
            ]
        )
        target = Database.from_relations(
            [
                Relation.create("Enroll", [("a", "c0")], attributes=("student", "course")),
                Relation.create("Courses", [("c0",)], attributes=("course",)),
            ]
        )
        query = FOQuery(Not(atom("Courses", "c0")))
        homs = all_homomorphisms(source, target, strong_onto=True)
        assert homs
        pairs = [(source, target, hom) for hom in homs]
        assert not is_preserved_under_homomorphisms(query, pairs, strong_onto=True)
