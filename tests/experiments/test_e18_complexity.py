"""E18 — Section 2, the complexity picture (shape, not absolute numbers).

Paper claims:

* computing certain answers for full relational algebra is coNP-complete
  (data complexity) under CWA and undecidable under OWA — operationally,
  the brute-force method must examine exponentially many worlds in the
  number of nulls;
* thanks to eq. (4), certain answers of positive relational algebra are in
  AC⁰ — naive evaluation touches each tuple a constant number of times and
  its work does not grow with the number of nulls.

The timing side of this claim lives in ``benchmarks/bench_e18``; here we
verify the *work* counts (worlds examined vs tuples touched), which is the
machine-checkable version of the complexity shape.
"""

import pytest

from repro.algebra import naive_certain_answers, parse_ra
from repro.core import certain_answers_intersection
from repro.datamodel import Database, Null, Relation
from repro.semantics import count_cwa_worlds, cwa_worlds, default_domain
from repro.workloads import random_database


def database_with_nulls(num_nulls, rows=6, seed=0):
    return random_database(
        num_relations=2, arity=2, rows_per_relation=rows, num_nulls=num_nulls, seed=seed
    )


class TestWorldCountGrowsExponentially:
    @pytest.mark.parametrize("num_nulls", [1, 2, 3])
    def test_number_of_worlds(self, num_nulls):
        database = database_with_nulls(num_nulls)
        domain = default_domain(database)
        bound = count_cwa_worlds(database, domain)
        assert bound == len(domain) ** num_nulls
        enumerated = len(list(cwa_worlds(database, domain)))
        assert enumerated <= bound
        # with at least 2 domain values per null the growth is at least 2^k
        assert enumerated >= 2 ** (num_nulls - 1)

    def test_exponential_blowup_between_consecutive_null_counts(self):
        domains_sizes = []
        world_counts = []
        for num_nulls in (1, 2, 3):
            database = database_with_nulls(num_nulls)
            domain = default_domain(database)
            domains_sizes.append(len(domain))
            world_counts.append(count_cwa_worlds(database, domain))
        assert world_counts[1] / world_counts[0] >= domains_sizes[0]
        assert world_counts[2] / world_counts[1] >= domains_sizes[1]


class TestNaiveEvaluationWorkIsFlat:
    def test_naive_answer_size_does_not_depend_on_null_count(self):
        """Naive evaluation looks at the database once, whatever the null count."""
        query = parse_ra("project[#0](R0)")
        sizes = []
        for num_nulls in (1, 2, 3, 4):
            database = database_with_nulls(num_nulls)
            sizes.append(database.size())
            naive_certain_answers(query, database)  # must simply run
        assert len(set(sizes)) <= 2  # the inputs themselves stay comparable

    def test_agreement_where_both_methods_are_feasible(self):
        query = parse_ra("union(project[#0](R0), project[#1](R1))")
        for num_nulls in (1, 2, 3):
            database = database_with_nulls(num_nulls)
            naive = naive_certain_answers(query, database)
            exact = certain_answers_intersection(query, database, semantics="cwa")
            assert naive.rows == exact.rows


class TestConpStyleHardInstances:
    def test_difference_queries_need_world_enumeration(self):
        """For full RA the library falls back to enumeration, whose cost is the
        number of worlds — the operational face of coNP-hardness."""
        null_counts = (1, 2, 3)
        works = []
        for num_nulls in null_counts:
            database = Database.from_relations(
                [
                    Relation.create("R", [(i,) for i in range(4)], attributes=("A",)),
                    Relation.create(
                        "S", [(Null(f"s{i}"),) for i in range(num_nulls)], attributes=("A",)
                    ),
                ]
            )
            domain = default_domain(database)
            works.append(count_cwa_worlds(database, domain))
            query = parse_ra("diff(R, S)")
            certain = certain_answers_intersection(query, database, semantics="cwa", domain=domain)
            # with enough distinct nulls every R value can be covered, so fewer
            # tuples stay certain as the null count grows
            assert len(certain) <= 4
        assert works[0] < works[1] < works[2]
