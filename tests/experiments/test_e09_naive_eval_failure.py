"""E9 — Section 2, naive evaluation fails for non-positive queries.

Paper claim: "To see how naive evaluation fails for non-positive queries,
consider the query π_A(R − S) where R = {(1,⊥)} and S = {(1,⊥')} are
relations over attributes A, B.  Then naive evaluation computes {1}, while
the certain answer is ∅."
"""

import pytest

from repro.algebra import naive_certain_answers, parse_ra
from repro.core import certain_answers, certain_answers_intersection, explain_method
from repro.datamodel import Database, Null, Relation


@pytest.fixture
def paper_db():
    return Database.from_relations(
        [
            Relation.create("R", [(1, Null("bot"))], attributes=("A", "B")),
            Relation.create("S", [(1, Null("bot_prime"))], attributes=("A", "B")),
        ]
    )


QUERY = parse_ra("project[A](diff(R, S))")


class TestPaperCounterexample:
    def test_naive_evaluation_computes_one(self, paper_db):
        assert naive_certain_answers(QUERY, paper_db).rows == frozenset({(1,)})

    def test_certain_answer_is_empty(self, paper_db):
        certain = certain_answers_intersection(QUERY, paper_db, semantics="cwa")
        assert certain.rows == frozenset()

    def test_why_it_fails_the_two_nulls_may_coincide(self, paper_db):
        """In worlds where ⊥ = ⊥', R − S is empty, so (1,) is not certain."""
        from repro.datamodel import Valuation

        collapse = Valuation({Null("bot"): 7, Null("bot_prime"): 7})
        world = collapse.apply(paper_db)
        assert QUERY.evaluate(world).rows == frozenset()

    def test_but_it_is_possible(self, paper_db):
        from repro.datamodel import Valuation

        separate = Valuation({Null("bot"): 7, Null("bot_prime"): 8})
        world = separate.apply(paper_db)
        assert QUERY.evaluate(world).rows == frozenset({(1,)})

    def test_auto_method_avoids_the_trap(self, paper_db):
        """The library's dispatcher refuses naive evaluation for this query."""
        verdict = explain_method(QUERY, "cwa")
        assert not verdict.applies
        assert certain_answers(QUERY, paper_db, semantics="cwa").rows == frozenset()

    def test_failure_persists_under_owa(self, paper_db):
        certain = certain_answers_intersection(
            QUERY, paper_db, semantics="owa", max_extra_facts=1
        )
        assert certain.rows == frozenset()
        assert naive_certain_answers(QUERY, paper_db).rows != certain.rows
