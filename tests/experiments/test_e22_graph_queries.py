"""E22 — Section 7 ("Beyond relations"): certain answers over incomplete graphs.

The paper argues that the framework of Sections 5–6 is model-independent:
any data model with objects, complete objects and a semantics of
incompleteness supports the same notions of certainty, and naive evaluation
works whenever queries are monotone and generic.  This experiment carries
that claim to edge-labelled graphs (the setting of the paper's reference
[14]):

* regular path queries and conjunctive graph patterns are monotone and
  generic, so naive evaluation + null filtering equals the certain answers
  (the graph analogue of eq. (4)/(9));
* the relational encoding of graphs makes the homomorphism-based orderings
  of Section 5.2 directly applicable.
"""

import pytest

from repro.core import cwa_leq, owa_leq
from repro.datamodel import Null, Valuation
from repro.graphs import (
    EdgeAtom,
    GraphPattern,
    IncompleteGraph,
    certain_answers_pattern,
    certain_answers_rpq,
    naive_certain_answers_pattern,
    naive_certain_answers_rpq,
    parse_rpq,
)
from repro.logic import var
from repro.workloads import random_labelled_graph, social_network_graph


@pytest.fixture
def employment_graph():
    """The graph analogue of the Section 1 unpaid-orders example."""
    return IncompleteGraph(
        edges=[
            ("ann", "knows", "bob"),
            ("bob", "knows", "carl"),
            ("ann", "worksFor", "acme"),
            ("bob", "worksFor", Null("e1")),
            ("carl", "worksFor", Null("e1")),
        ]
    )


class TestNaiveEvaluationWorksForRPQs:
    @pytest.mark.parametrize("text", ["knows", "knows . knows", "knows* . worksFor", "knows | worksFor"])
    def test_naive_equals_enumeration(self, employment_graph, text):
        query = parse_rpq(text)
        naive = naive_certain_answers_rpq(query, employment_graph)
        brute = certain_answers_rpq(query, employment_graph, semantics="cwa")
        assert naive.rows == brute.rows

    def test_colleague_certainty_through_shared_null(self, employment_graph):
        """bob and carl certainly share an employer (same marked null) — the
        pattern query sees it, even though the employer's identity is unknown."""
        x, y, e = var("x"), var("y"), var("e")
        same_employer = GraphPattern(
            [EdgeAtom(x, "worksFor", e), EdgeAtom(y, "worksFor", e)], output=(x, y)
        )
        certain = naive_certain_answers_pattern(same_employer, employment_graph).rows
        assert ("bob", "carl") in certain
        assert certain == certain_answers_pattern(same_employer, employment_graph).rows

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs(self, seed):
        graph = random_labelled_graph(num_nodes=5, num_edges=7, seed=seed)
        query = parse_rpq("a* . b")
        assert (
            naive_certain_answers_rpq(query, graph).rows
            == certain_answers_rpq(query, graph, semantics="cwa").rows
        )


class TestNaiveEvaluationWorksForPatterns:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_social_networks(self, seed):
        graph = social_network_graph(num_people=4, seed=seed)
        x, y, z = var("x"), var("y"), var("z")
        pattern = GraphPattern(
            [EdgeAtom(x, "knows", y), EdgeAtom(y, "worksFor", z)], output=(x, z)
        )
        assert (
            naive_certain_answers_pattern(pattern, graph).rows
            == certain_answers_pattern(pattern, graph, semantics="cwa").rows
        )


class TestOrderingsThroughTheRelationalEncoding:
    def test_valuation_image_is_more_informative(self, employment_graph):
        valuation = Valuation({Null("e1"): "initech"})
        world = employment_graph.apply_valuation(valuation)
        assert owa_leq(employment_graph.to_database(), world.to_database())
        assert cwa_leq(employment_graph.to_database(), world.to_database())

    def test_owa_extension_is_not_cwa_above(self, employment_graph):
        valuation = Valuation({Null("e1"): "initech"})
        world = employment_graph.apply_valuation(valuation).add_edges(
            [("dave", "knows", "ann")]
        )
        assert owa_leq(employment_graph.to_database(), world.to_database())
        assert not cwa_leq(employment_graph.to_database(), world.to_database())

    def test_monotonicity_of_rpq_answers_along_the_ordering(self, employment_graph):
        query = parse_rpq("knows . worksFor")
        valuation = Valuation({Null("e1"): "initech"})
        world = employment_graph.apply_valuation(valuation)
        naive_on_incomplete = naive_certain_answers_rpq(query, employment_graph).rows
        on_world = query.evaluate(world).rows
        assert naive_on_incomplete <= on_world
