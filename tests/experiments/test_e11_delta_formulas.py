"""E11 — Section 5.2, the δ-formulas of the relational representation systems.

Paper claims:

* under OWA, ``δ_D = ∃x̄ PosDiag(D)`` where for
  R = {(1,2), (2,⊥1), (⊥1,⊥2)} the positive diagram is
  ``R(1,2) ∧ R(2,x1) ∧ R(x1,x2)``; δ_D is a UCQ and
  ``Mod_C(δ_D) = [[D]]_owa``;
* under CWA, δ_D additionally contains the guarded domain-closure conjunct
  ``∀ȳ (R(ȳ) → ⋁_t ȳ = t)``; δ_D is in Pos∀G and ``Mod_C(δ_D) = [[D]]_cwa``;
* ``Mod(δ_x) = ↑x`` — the models of δ_x are exactly the objects that are at
  least as informative as x.
"""

import pytest

from repro.core import cwa_representation_system, owa_representation_system, ordering
from repro.datamodel import Database, Null, Valuation
from repro.logic import (
    RelationAtom,
    delta_cwa,
    delta_owa,
    is_pos_forall_guarded,
    is_ucq,
    positive_diagram,
)
from repro.semantics import default_domain, in_cwa, in_owa, owa_worlds
from repro.workloads import random_database


@pytest.fixture
def paper_diagram_db():
    b1, b2 = Null("1"), Null("2")
    return Database.from_dict({"R": [(1, 2), (2, b1), (b1, b2)]})


class TestPositiveDiagramExample:
    def test_three_atoms_two_variables(self, paper_diagram_db):
        diagram, variables = positive_diagram(paper_diagram_db)
        atoms = [f for f in diagram.walk() if isinstance(f, RelationAtom)]
        assert len(atoms) == 3
        assert len(variables) == 2

    def test_rendering_matches_paper_structure(self, paper_diagram_db):
        diagram, _ = positive_diagram(paper_diagram_db)
        text = str(diagram)
        assert "R(1, 2)" in text
        assert "R(2, x_1)" in text
        assert "R(x_1, x_2)" in text


class TestDeltaFormulasDefineTheSemantics:
    def _candidate_pool(self, database):
        domain = default_domain(database, extra_constants=1)
        pool = list(owa_worlds(database, domain, max_extra_facts=1))
        pool.append(Database.from_dict({"R": [(9, 9)]}))
        return pool

    @pytest.mark.parametrize("seed", range(3))
    def test_owa_delta_on_random_instances(self, seed):
        database = Database.from_dict(
            {"R": list(random_database(num_relations=1, arity=2, num_nulls=2, rows_per_relation=3, seed=seed).relation("R0"))}
        )
        formula = delta_owa(database)
        assert is_ucq(formula)
        for world in self._candidate_pool(database):
            assert formula.holds(world) == in_owa(database, world)

    @pytest.mark.parametrize("seed", range(3))
    def test_cwa_delta_on_random_instances(self, seed):
        database = Database.from_dict(
            {"R": list(random_database(num_relations=1, arity=2, num_nulls=2, rows_per_relation=3, seed=seed).relation("R0"))}
        )
        formula = delta_cwa(database)
        assert is_pos_forall_guarded(formula)
        for world in self._candidate_pool(database):
            assert formula.holds(world) == in_cwa(database, world)

    def test_formula_fragments_match_the_representation_systems(self, paper_diagram_db):
        owa_system = owa_representation_system()
        cwa_system = cwa_representation_system()
        assert owa_system.in_fragment(owa_system.delta(paper_diagram_db))
        assert cwa_system.in_fragment(cwa_system.delta(paper_diagram_db))


class TestModelsAreUpwardCones:
    def test_mod_delta_equals_up_set(self, paper_diagram_db):
        """Mod(δ_x) = ↑x, over a pool of both incomplete and complete candidates."""
        b1 = Null("1")
        candidates = [
            paper_diagram_db,
            Valuation({Null("1"): 5, Null("2"): 6}).apply(paper_diagram_db),
            paper_diagram_db.add_facts([("R", (7, 7))]),
            Database.from_dict({"R": [(1, 2)]}),
            Database.from_dict({"R": [(1, 2), (2, 5), (5, b1)]}),
        ]
        for semantics, delta_fn in (("owa", delta_owa), ("cwa", delta_cwa)):
            formula = delta_fn(paper_diagram_db)
            order = ordering(semantics)
            for candidate in candidates:
                expected = order(paper_diagram_db, candidate)
                if semantics == "cwa" and not candidate.is_complete():
                    # For incomplete candidates the CWA δ-formula is evaluated
                    # naively; the equivalence Mod(δ_x) = ↑x is stated for the
                    # representation system, which we check on all candidates.
                    pass
                assert formula.holds(candidate) == expected, (semantics, candidate)
