"""E2 — Section 1, R − S via NOT IN is empty whenever S contains a null.

Paper claim: "It will produce the empty set if S contains just a null
value, no matter what R contains.  This goes against our intuition: we
know that if |R| > |S|, then R − S cannot possibly be empty, but SQL tells
us that it is."
"""

import pytest

from repro.algebra import parse_ra
from repro.datamodel import Database, Null, Relation
from repro.semantics import certain_boolean
from repro.sqlnulls import parse_sql, run_sql

SQL_DIFFERENCE = "SELECT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)"


def make_db(r_values, s_values):
    return Database.from_relations(
        [
            Relation.create("R", [(v,) for v in r_values], attributes=("A",)),
            Relation.create("S", [(v,) for v in s_values], attributes=("A",)),
        ]
    )


class TestSQLGoesWrong:
    @pytest.mark.parametrize("r_size", [1, 3, 5, 10])
    def test_empty_for_any_r_when_s_is_a_single_null(self, r_size):
        db = make_db(range(r_size), [Null("s")])
        assert run_sql(db, parse_sql(SQL_DIFFERENCE)) == []

    def test_empty_even_when_s_mixes_nulls_and_constants(self):
        db = make_db([1, 2, 3], [2, Null("s")])
        # 2 is filtered by the constant; 1 and 3 are filtered by the unknown.
        assert run_sql(db, parse_sql(SQL_DIFFERENCE)) == []

    def test_correct_without_nulls(self):
        db = make_db([1, 2, 3], [2])
        assert sorted(run_sql(db, parse_sql(SQL_DIFFERENCE))) == [(1,), (3,)]


class TestCardinalityIntuition:
    @pytest.mark.parametrize("r_size,s_nulls", [(2, 1), (3, 1), (4, 2), (5, 3)])
    def test_nonempty_difference_is_certain_when_r_larger_than_s(self, r_size, s_nulls):
        """|R| > |S| makes non-emptiness of R − S a certain (Boolean) answer."""
        db = make_db(range(r_size), [Null(f"s{i}") for i in range(s_nulls)])
        query = parse_ra("diff(R, S)")
        assert certain_boolean(
            lambda world: bool(query.evaluate(world)), db, semantics="cwa"
        )

    def test_emptiness_possible_when_sizes_match(self):
        db = make_db([1, 2], [Null("s1"), Null("s2")])
        query = parse_ra("diff(R, S)")
        assert not certain_boolean(
            lambda world: bool(query.evaluate(world)), db, semantics="cwa"
        )
