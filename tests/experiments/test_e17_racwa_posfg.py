"""E17 — Section 6.2, RA_cwa = Pos∀G.

Paper claim: the algebraic class ``RA_cwa`` (base relations closed under
σ, π, ×, ∪ and division ``Q ÷ Q'`` with ``Q'`` in RA(Δ,π,×,∪)) coincides
with the logical class Pos∀G (positive formulas with universal guards).

We verify the executable half of the equivalence: every ``RA_cwa`` query
translates into a formula that (a) evaluates identically on complete
databases, (b) lies syntactically in the Pos∀G class when the divisor is a
base relation, and (c) retains the semantic property that matters —
preservation under strong onto homomorphisms — for all generated queries.
"""

import pytest

from repro.algebra import classify, Fragment, divide, is_ra_cwa, parse_ra, project, relation
from repro.algebra.ast import Delta, Product, Projection
from repro.core import is_preserved_under_homomorphisms
from repro.datamodel import Database, Relation
from repro.homomorphisms import all_homomorphisms
from repro.logic import Exists, FOQuery, classify_formula, FormulaFragment, is_pos_forall_guarded, ra_to_calculus
from repro.semantics import cwa_worlds
from repro.workloads import enrolment, random_database, random_ra_cwa_query


def complete_enrolment(seed=0):
    return enrolment(num_students=5, num_courses=3, null_fraction=0.0, seed=seed)


class TestTranslationAgreesSemantically:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_ra_cwa_queries(self, seed):
        database = complete_enrolment(seed)
        query = random_ra_cwa_query(database.schema, "Enroll", "Courses", seed=seed)
        translated = ra_to_calculus(query, database.schema)
        assert frozenset(translated.evaluate(database).rows) == frozenset(query.evaluate(database).rows)

    def test_division_with_delta_fragment_divisor(self):
        database = Database.from_dict(
            {"R": [("a", 1, 1), ("a", 2, 2), ("b", 1, 1)], "S": [(1,), (2,)]}
        )
        divisor = Projection(Product(relation("S"), Delta()), (0,))
        query = divide(relation("R").project([0, 1]), divisor)
        assert is_ra_cwa(query)
        translated = ra_to_calculus(query, database.schema)
        assert frozenset(translated.evaluate(database).rows) == frozenset(query.evaluate(database).rows)


class TestSyntacticCorrespondence:
    def test_base_relation_divisor_gives_pos_forall_guarded(self):
        schema = complete_enrolment().schema
        query = parse_ra("divide(Enroll, Courses)")
        assert classify(query) is Fragment.RA_CWA
        formula = ra_to_calculus(query, schema).formula
        assert is_pos_forall_guarded(formula)
        assert classify_formula(formula) is FormulaFragment.POS_FORALL_GUARDED

    def test_positive_ra_stays_below_pos_forall_guarded(self):
        schema = complete_enrolment().schema
        query = parse_ra("project[student](Enroll)")
        formula = ra_to_calculus(query, schema).formula
        assert classify_formula(formula) in (
            FormulaFragment.CQ,
            FormulaFragment.UCQ,
        )

    def test_full_ra_leaves_the_class(self):
        schema = complete_enrolment().schema
        query = parse_ra("diff(project[course](Enroll), Courses)")
        formula = ra_to_calculus(query, schema).formula
        assert not is_pos_forall_guarded(formula)


class TestSemanticHallmarkPreservation:
    @pytest.mark.parametrize("seed", range(3))
    def test_translated_ra_cwa_queries_preserved_under_strong_onto_homs(self, seed):
        incomplete = enrolment(num_students=3, num_courses=2, null_fraction=0.4, seed=seed)
        query = random_ra_cwa_query(incomplete.schema, "Enroll", "Courses", seed=seed)
        translated = ra_to_calculus(query, incomplete.schema)
        boolean = FOQuery(Exists(list(translated.head), translated.formula)) if translated.head else translated
        pairs = []
        for world in list(cwa_worlds(incomplete))[:4]:
            for hom in all_homomorphisms(incomplete, world, strong_onto=True, limit=1):
                pairs.append((incomplete, world, hom))
        assert pairs
        assert is_preserved_under_homomorphisms(boolean, pairs, strong_onto=True)
