"""E24 — Section 7 ("Applications"): answering queries using views.

The paper names data integration (references [1, 39, 43]) as the place
where incompleteness "inevitably arises", with marked nulls as the right
model and certain answers as the standard semantics.  This experiment
replays that story in the local-as-view setting:

* the inverse-rules canonical instance is built by the same chase that
  executes schema mappings, and its unknown values are shared marked nulls;
* naive evaluation of positive queries over the canonical instance is sound
  (every reported tuple holds in every base database consistent with the
  views) — verified against randomly generated base databases;
* for queries with negation naive evaluation over the canonical instance is
  *not* certain — the "known not to work" usage the paper warns about.
"""

import random

import pytest

from repro.algebra import parse_ra
from repro.datamodel import Database, DatabaseSchema
from repro.exchange import MappingAtom
from repro.logic import var
from repro.views import ViewCollection, ViewDefinition, canonical_instance, certain_answers_views

X, Y, Z = var("x"), var("y"), var("z")

BASE = DatabaseSchema.from_attributes(
    {"Emp": ("name", "dept"), "Dept": ("dept", "city")}
)


def _views():
    return ViewCollection(
        BASE,
        [
            ViewDefinition(
                "EmpCity", (X, Z), [MappingAtom("Emp", (X, Y)), MappingAtom("Dept", (Y, Z))]
            ),
            ViewDefinition("Emps", (X,), [MappingAtom("Emp", (X, Y))]),
        ],
    )


def _random_base(seed):
    rng = random.Random(seed)
    people = [f"p{i}" for i in range(4)]
    depts = ["it", "hr", "pr"]
    cities = ["oslo", "rome"]
    emp = [(p, rng.choice(depts)) for p in people]
    dept = [(d, rng.choice(cities)) for d in depts]
    return Database(BASE, {"Emp": emp, "Dept": dept})


POSITIVE_QUERIES = [
    "project[#0](Emp)",
    "project[#0](select[#1 = #2](product(Emp, Dept)))",
    "project[#0](select[#1 = #2 and #3 = 'oslo'](product(Emp, Dept)))",
]


class TestSoundnessOfViewBasedCertainAnswers:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("text", POSITIVE_QUERIES)
    def test_certain_answers_hold_in_the_hidden_base(self, seed, text):
        views = _views()
        base = _random_base(seed)
        extensions = views.materialize(base)
        query = parse_ra(text)
        certain = certain_answers_views(query, views, extensions).rows
        assert certain <= query.evaluate(base).rows

    def test_marked_nulls_are_shared_within_a_view_tuple(self):
        views = _views()
        extensions = Database(
            views.view_schema(), {"EmpCity": [("ann", "oslo")], "Emps": []}
        )
        instance = canonical_instance(views, extensions)
        emp_dept = next(iter(instance.relation("Emp"))).__getitem__(1)
        dept_dept = next(iter(instance.relation("Dept"))).__getitem__(0)
        assert emp_dept == dept_dept, "the unknown department must be one shared marked null"


class TestNegationIsNotCertainOverViews:
    def test_difference_query_overclaims(self):
        """'Employees not working in a department located in oslo' cannot be
        certain from the views alone, yet naive evaluation reports them."""
        views = _views()
        # The hidden base database: cleo does work in a department in oslo.
        base = Database(
            BASE,
            {"Emp": [("cleo", "it")], "Dept": [("it", "oslo")]},
        )
        # Sound (but incomplete) view extensions: the sources only report
        # that cleo is an employee, not where the departments are located.
        extensions = Database(
            views.view_schema(), {"Emps": [("cleo",)], "EmpCity": []}
        )
        for view in views:
            assert extensions.relation(view.name).rows <= view.evaluate(base).rows
        in_oslo = "project[#0](select[#1 = #2 and #3 = 'oslo'](product(Emp, Dept)))"
        query = parse_ra(f"diff(project[#0](Emp), {in_oslo})")
        naive = certain_answers_views(query, views, extensions).rows
        truth = query.evaluate(base).rows
        # In the real base database nobody avoids oslo, but the naive
        # view-based answer claims cleo does: a false positive.
        assert truth == set()
        assert naive == {("cleo",)}
