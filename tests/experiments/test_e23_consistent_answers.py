"""E23 — Section 7 ("Applications"): consistent query answering as certain answers.

The paper lists consistency management among the applications whose query
answering semantics *is* certain answers (reference [15]).  The experiment
checks that instantiating the paper's semantics function with "the set of
subset repairs" reproduces the classical consistent-answer behaviour:

* tuples touched by a key violation are not consistent answers, while the
  projection that avoids the disputed attribute still is (the analogue of
  "some answers can be trusted");
* the number of repairs grows exponentially with the number of independent
  conflicts — the same complexity cliff the paper describes for
  world-enumeration over nulls (benchmarked in bench_e23_cqa.py);
* consistent answers coincide with plain answers exactly when the database
  is consistent.
"""

import pytest

from repro.algebra import parse_ra
from repro.constraints import FunctionalDependency
from repro.cqa import consistent_answers, count_repairs, is_consistent, repairs
from repro.datamodel import Database, Relation


def _payments_db(num_conflicts):
    """Payments with conflicting amounts for the first ``num_conflicts`` ids."""
    rows = []
    for i in range(num_conflicts):
        rows.append((f"pid{i}", 100))
        rows.append((f"pid{i}", 200))
    rows.append(("pid_clean", 50))
    return Database.from_relations(
        [Relation.create("Pay", rows, attributes=("p_id", "amount"))]
    )


PAY_KEY = FunctionalDependency("Pay", ("p_id",), ("amount",))


class TestConsistentAnswerBehaviour:
    def test_disputed_amounts_are_not_consistent(self):
        db = _payments_db(1)
        answer = consistent_answers(lambda d: parse_ra("Pay").evaluate(d), db, PAY_KEY)
        assert answer.rows == {("pid_clean", 50)}

    def test_payment_ids_remain_consistent_answers(self):
        db = _payments_db(1)
        answer = consistent_answers(
            lambda d: parse_ra("project[#0](Pay)").evaluate(d), db, PAY_KEY
        )
        assert answer.rows == {("pid0",), ("pid_clean",)}

    def test_consistent_database_gives_plain_answers(self):
        db = _payments_db(0)
        assert is_consistent(db, PAY_KEY)
        answer = consistent_answers(lambda d: parse_ra("Pay").evaluate(d), db, PAY_KEY)
        assert answer.rows == db.relation("Pay").rows


class TestComplexityShape:
    @pytest.mark.parametrize("conflicts,expected", [(0, 1), (1, 2), (2, 4), (3, 8)])
    def test_repair_count_doubles_per_independent_conflict(self, conflicts, expected):
        assert count_repairs(_payments_db(conflicts), PAY_KEY) == expected

    def test_every_repair_loses_exactly_one_side_of_each_conflict(self):
        db = _payments_db(2)
        for repair in repairs(db, PAY_KEY):
            assert len(repair.relation("Pay")) == 3  # one row per conflicting id + the clean row
