"""E20 — Section 7 ("Evaluation techniques"), sound evaluation.

Paper claim: "Returning to our example from the introduction, it is quite
bad that the query says no payments are missing, but at least we are not
chasing good guys — there are no false positives.  Can this always be
guaranteed?  Sound evaluation has been addressed before [61]..."

We implement a Reiter-style sound evaluation for full relational algebra
(lower/upper approximating tables with marked-null unification) and verify
its guarantee — every returned tuple is a true certain answer — across
hand-built and randomised workloads, plus the cases where it recovers
answers that plain naive-then-filter reasoning would both overclaim and
underclaim.
"""

import pytest

from repro.algebra import naive_certain_answers, parse_ra
from repro.core import (
    certain_answers_intersection,
    possible_answer_bound,
    possible_answers,
    rows_unifiable,
    sound_certain_answers,
)
from repro.datamodel import Database, Null, Relation
from repro.workloads import orders_payments, random_database, random_full_ra_query


class TestNoFalsePositivesGuarantee:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_full_ra_queries(self, seed):
        database = random_database(num_nulls=2, rows_per_relation=3, seed=seed)
        query = random_full_ra_query(database.schema, seed=seed)
        sound = sound_certain_answers(query, database)
        exact = certain_answers_intersection(query, database, semantics="cwa")
        assert sound.rows <= exact.rows

    @pytest.mark.parametrize("seed", range(4))
    def test_orders_scenario_unpaid_query(self, seed):
        database = orders_payments(num_orders=4, num_payments=3, null_fraction=0.5, seed=seed)
        query = parse_ra(
            "diff(project[o_id](Orders), rename[Paid(o_id)](project[ord](Pay)))"
        )
        sound = sound_certain_answers(query, database)
        exact = certain_answers_intersection(query, database, semantics="cwa")
        assert sound.rows <= exact.rows

    def test_naive_overclaims_where_sound_does_not(self):
        database = Database.from_dict({"R": [(1, Null("a"))], "S": [(1, Null("b"))]})
        query = parse_ra("project[#0](diff(R, S))")
        exact = certain_answers_intersection(query, database, semantics="cwa")
        assert naive_certain_answers(query, database).rows == frozenset({(1,)})
        assert sound_certain_answers(query, database).rows == frozenset() == exact.rows


class TestRecoveredAnswers:
    def test_constant_conflicts_keep_certain_tuples(self):
        database = Database.from_dict({"R": [(2, 3), (1, 2)], "S": [(Null("s"), 2)]})
        query = parse_ra("diff(R, S)")
        sound = sound_certain_answers(query, database)
        exact = certain_answers_intersection(query, database, semantics="cwa")
        assert sound.rows == exact.rows == frozenset({(2, 3)})

    def test_marked_null_consistency_keeps_certain_tuples(self):
        repeated = Null("s")
        database = Database.from_dict({"R": [(1, 2)], "S": [(repeated, repeated)]})
        query = parse_ra("diff(R, S)")
        assert sound_certain_answers(query, database).rows == frozenset({(1, 2)})

    def test_exact_on_complete_databases(self):
        database = Database.from_dict(
            {"Orders": [("o1",), ("o2",), ("o3",)], "Pay": [("o2",)]}
        )
        query = parse_ra("diff(Orders, Pay)")
        sound = sound_certain_answers(query, database)
        exact = certain_answers_intersection(query, database, semantics="cwa")
        assert sound.rows == exact.rows == frozenset({("o1",), ("o3",)})

    def test_recall_measured_against_exact_answers(self):
        """Sound evaluation may miss answers; record that it is not vacuous."""
        recovered, total = 0, 0
        for seed in range(8):
            database = random_database(num_nulls=1, rows_per_relation=3, seed=seed)
            query = random_full_ra_query(database.schema, seed=seed + 3)
            exact = certain_answers_intersection(query, database, semantics="cwa")
            sound = sound_certain_answers(query, database)
            total += len(exact)
            recovered += len(sound)
        assert recovered <= total
        if total:
            assert recovered > 0  # it does find a useful fraction of the answers


class TestUpperBoundSide:
    @pytest.mark.parametrize("seed", range(5))
    def test_upper_bound_covers_possible_answers(self, seed):
        database = random_database(num_nulls=2, rows_per_relation=3, seed=seed)
        query = random_full_ra_query(database.schema, seed=seed)
        upper = possible_answer_bound(query, database)
        possible = possible_answers(query, database, semantics="cwa")
        for row in possible.rows:
            assert any(rows_unifiable(row, candidate) for candidate in upper.rows)
