"""E6 — Section 2, conditional tables can encode disjunction.

Paper claim: the conditional table with rows (1 | ⊥=1), (0 | ⊥=0) and
global condition (⊥=0) ∨ (⊥=1) has ``[[C]]_cwa = {{0}, {1}}`` — "conditional
tables thus can encode disjunctions: C says that either 0 or 1 is in the
database."
"""

from repro.datamodel import ConditionalTable, Eq, Null, Or, TRUE, Valuation


def paper_table():
    bot = Null("bot")
    return bot, ConditionalTable.create(
        "C",
        [((1,), Eq(bot, 1)), ((0,), Eq(bot, 0))],
        global_condition=Or((Eq(bot, 0), Eq(bot, 1))),
    )


class TestDisjunctionEncoding:
    def test_possible_worlds_are_exactly_zero_or_one(self):
        _, table = paper_table()
        worlds = table.possible_worlds(domain=[0, 1, 2, 3, 4])
        assert worlds == {frozenset({(0,)}), frozenset({(1,)})}

    def test_only_two_valuations_satisfy_the_global_condition(self):
        bot, table = paper_table()
        satisfying = [
            value for value in range(5) if table.instantiate(Valuation({bot: value})) is not None
        ]
        assert satisfying == [0, 1]

    def test_each_admissible_valuation_yields_a_singleton(self):
        bot, table = paper_table()
        zero_world = table.instantiate(Valuation({bot: 0}))
        one_world = table.instantiate(Valuation({bot: 1}))
        assert zero_world is not None and zero_world.rows == frozenset({(0,)})
        assert one_world is not None and one_world.rows == frozenset({(1,)})

    def test_no_certain_row_but_both_possible(self):
        _, table = paper_table()
        domain = [0, 1, 2]
        assert table.certain_rows(domain) == set()
        assert table.possible_rows(domain) == {(0,), (1,)}

    def test_naive_tables_cannot_express_this(self):
        """A naive table's CWA worlds always include a 'fresh constant' world,
        so no naive table over {0, 1} has exactly the two worlds {{0}, {1}}."""
        from repro.datamodel import Database, Relation
        from repro.semantics import cwa_worlds, default_domain

        # One-row naive table with a null: worlds include values other than 0/1.
        naive = Database.from_relations([Relation.create("C", [(Null("n"),)])])
        domain = default_domain(naive, extra_constants=1, constants=[0, 1])
        worlds = {frozenset(world["C"].rows) for world in cwa_worlds(naive, domain)}
        assert frozenset({(0,)}) in worlds and frozenset({(1,)}) in worlds
        assert len(worlds) > 2  # the fresh-constant world is unavoidable

    def test_without_the_global_condition_more_worlds_appear(self):
        bot = Null("bot")
        unconstrained = ConditionalTable.create(
            "C", [((1,), Eq(bot, 1)), ((0,), Eq(bot, 0))], global_condition=TRUE
        )
        worlds = unconstrained.possible_worlds(domain=[0, 1, 2])
        assert frozenset() in worlds  # ⊥ = 2 produces the empty world
        assert worlds == {frozenset(), frozenset({(0,)}), frozenset({(1,)})}
