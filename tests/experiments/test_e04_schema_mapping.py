"""E4 — Section 1, the schema-mapping example and marked nulls.

Paper claim: the rule ``Order(i, p) → Cust(x), Pref(x, p)`` generates, from
Order(oid1, pr1), the facts Cust(⊥) and Pref(⊥, pr1), and from
Order(oid2, pr2) the facts Cust(⊥') and Pref(⊥', pr2).  The same null must
be reused within one trigger (⊥ appears in both Cust and Pref), while
different triggers use different nulls — this is exactly what *marked
(naive) nulls* provide and what SQL's unmarked nulls cannot express.
"""

import pytest

from repro.algebra import parse_ra
from repro.datamodel import Database
from repro.exchange import (
    canonical_solution,
    certain_answers_exchange,
    chase,
    order_preferences_mapping,
)


@pytest.fixture
def mapping():
    return order_preferences_mapping()


@pytest.fixture
def source(mapping):
    return Database(mapping.source_schema, {"Order": [("oid1", "pr1"), ("oid2", "pr2")]})


class TestChaseReproducesTheExample:
    def test_generated_facts(self, mapping, source):
        target = canonical_solution(mapping, source)
        assert len(target["Cust"]) == 2
        assert len(target["Pref"]) == 2
        assert {row[1] for row in target["Pref"]} == {"pr1", "pr2"}

    def test_null_shared_within_a_trigger(self, mapping, source):
        target = canonical_solution(mapping, source)
        cust_nulls = {row[0] for row in target["Cust"]}
        for null, product in target["Pref"]:
            assert null in cust_nulls

    def test_different_triggers_use_different_nulls(self, mapping, source):
        target = canonical_solution(mapping, source)
        pref_nulls = [row[0] for row in target["Pref"]]
        assert len(set(pref_nulls)) == 2

    def test_result_is_naive_not_codd(self, mapping, source):
        """Each null occurs twice (Cust and Pref): the instance is not a Codd table."""
        target = canonical_solution(mapping, source)
        assert not target.is_codd()
        occurrences = {}
        for rel in target:
            for null, count in rel.null_occurrences().items():
                occurrences[null] = occurrences.get(null, 0) + count
        assert all(count == 2 for count in occurrences.values())

    def test_chase_statistics(self, mapping, source):
        result = chase(mapping, source)
        assert result.triggers_fired == 2
        assert result.nulls_introduced == 2


class TestCertainAnswersOverTheExchangedData:
    def test_preferred_products_are_certain(self, mapping, source):
        query = parse_ra("project[product](Pref)")
        answers = certain_answers_exchange(mapping, source, query)
        assert answers.rows == frozenset({("pr1",), ("pr2",)})

    def test_join_through_the_shared_null_is_certain(self, mapping, source):
        """Every customer listed in Cust certainly has a preference (join on ⊥)."""
        query = parse_ra("project[product](join(Cust, Pref))")
        answers = certain_answers_exchange(mapping, source, query)
        assert answers.rows == frozenset({("pr1",), ("pr2",)})

    def test_customer_identities_are_not_certain(self, mapping, source):
        query = parse_ra("project[c_id](Cust)")
        answers = certain_answers_exchange(mapping, source, query)
        assert answers.rows == frozenset()

    def test_scaling_one_null_per_order(self, mapping):
        for size in (1, 4, 9):
            source = Database(
                mapping.source_schema,
                {"Order": [(f"o{i}", f"p{i}") for i in range(size)]},
            )
            result = chase(mapping, source)
            assert result.nulls_introduced == size
            assert result.target.size() == 2 * size
