"""E14 — Section 6, the critique of intersection-based certain answers.

Paper claim: for R = {(1,2), (2,⊥)} and the identity query Q, the classical
certain answer is {(1,2)} under both OWA and CWA.  This answer

* "misses information that there is a tuple whose first component is 2";
* is ⊑_owa-below every Q(R') for R' ∈ [[R]]_owa (fine under OWA), but under
  CWA "exactly the opposite is true": {(1,2)} is *not* ⊑_cwa-below any
  Q(R') — so in what sense it is certain under CWA "is quite mysterious";
* the naive answer Q(R) = R itself is the proper greatest lower bound.
"""

import pytest

from repro.algebra import parse_ra
from repro.core import (
    CWA_ORDERING,
    OWA_ORDERING,
    certain_answer_object,
    certain_answers_intersection,
    is_certain_object,
    is_lower_bound,
)
from repro.datamodel import Database, Null
from repro.logic import atom, exists, var
from repro.semantics import cwa_worlds


QUERY = parse_ra("R")


def as_db(relation):
    return Database.from_relations([relation.rename("__answer__")])


class TestTheClassicalAnswer:
    def test_intersection_answer_is_just_one_two(self, paper_section6_r):
        for semantics in ("cwa", "owa"):
            certain = certain_answers_intersection(
                QUERY, paper_section6_r, semantics=semantics, max_extra_facts=1
            )
            assert certain.rows == frozenset({(1, 2)})

    def test_it_misses_the_second_tuple_information(self, paper_section6_r):
        """'There is a tuple whose first component is 2' is certain knowledge
        that the intersection answer cannot express."""
        x = var("x")
        second_tuple_exists = exists(x, atom("__answer__", 2, x))
        intersection_answer = as_db(
            certain_answers_intersection(QUERY, paper_section6_r, semantics="cwa")
        )
        # The knowledge holds in every world's answer ...
        for world in cwa_worlds(paper_section6_r):
            assert second_tuple_exists.holds(as_db(QUERY.evaluate(world)))
        # ... but not in the intersection answer.
        assert not second_tuple_exists.holds(intersection_answer)
        # The naive (object) answer does carry it.
        assert second_tuple_exists.holds(as_db(certain_answer_object(QUERY, paper_section6_r)))


class TestOrderingsExposeTheProblem:
    def test_intersection_is_an_owa_lower_bound(self, paper_section6_r):
        answers = [as_db(QUERY.evaluate(w)) for w in cwa_worlds(paper_section6_r)]
        intersection = as_db(
            certain_answers_intersection(QUERY, paper_section6_r, semantics="cwa")
        )
        assert is_lower_bound(intersection, answers, OWA_ORDERING)

    def test_intersection_is_not_cwa_below_any_answer(self, paper_section6_r):
        """The paper's 'exactly the opposite is true' under CWA."""
        answers = [as_db(QUERY.evaluate(w)) for w in cwa_worlds(paper_section6_r)]
        intersection = as_db(
            certain_answers_intersection(QUERY, paper_section6_r, semantics="cwa")
        )
        assert all(not CWA_ORDERING(intersection, answer) for answer in answers)
        assert not is_lower_bound(intersection, answers, CWA_ORDERING)

    def test_naive_answer_is_the_greatest_lower_bound(self, paper_section6_r):
        answers = [as_db(QUERY.evaluate(w)) for w in cwa_worlds(paper_section6_r)]
        naive_object = as_db(certain_answer_object(QUERY, paper_section6_r))
        intersection = as_db(
            certain_answers_intersection(QUERY, paper_section6_r, semantics="cwa")
        )
        assert is_certain_object(naive_object, answers, CWA_ORDERING, competitors=[])
        assert is_certain_object(
            naive_object, answers, OWA_ORDERING, competitors=[intersection]
        )
        # and it is strictly more informative than the intersection answer
        assert OWA_ORDERING(intersection, naive_object)
        assert not OWA_ORDERING(naive_object, intersection)
