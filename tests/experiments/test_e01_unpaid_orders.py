"""E1 — Section 1, the unpaid-orders example.

Paper claim: the textbook SQL query ::

    SELECT o_id FROM Order WHERE o_id NOT IN (SELECT order FROM Pay)

returns the empty set on Order = {(oid1,pr1), (oid2,pr2)},
Pay = {(pid1, ⊥, 100)}, even though *we know* at least one order is unpaid
(the single payment can cover at most one of the two orders).
"""

from repro.algebra import parse_ra
from repro.core import certain_answers_intersection, sound_certain_answers
from repro.semantics import certain_boolean, possible_boolean
from repro.sqlnulls import parse_sql, run_sql

UNPAID_SQL = "SELECT o_id FROM Orders WHERE o_id NOT IN (SELECT ord FROM Pay)"
UNPAID_RA = "diff(project[o_id](Orders), rename[PaidOrders(o_id)](project[ord](Pay)))"


class TestSQLGoesWrong:
    def test_sql_returns_empty(self, paper_orders_db):
        assert run_sql(paper_orders_db, parse_sql(UNPAID_SQL)) == []

    def test_sql_works_on_complete_data(self, paper_orders_db):
        complete = paper_orders_db.map_values(
            lambda value: "oid1" if getattr(value, "is_null", False) else value
        )
        rows = run_sql(complete, parse_sql(UNPAID_SQL))
        assert rows == [("oid2",)]


class TestWhatTheAnswerShouldBe:
    def test_existence_of_an_unpaid_order_is_certain(self, paper_orders_db):
        """In every possible world at least one order is unpaid."""
        query = parse_ra(UNPAID_RA)
        assert certain_boolean(
            lambda world: bool(query.evaluate(world)), paper_orders_db, semantics="cwa"
        )

    def test_no_individual_order_is_certainly_unpaid(self, paper_orders_db):
        """Tuple-level certain answers are empty: the null could be either order."""
        query = parse_ra(UNPAID_RA)
        certain = certain_answers_intersection(query, paper_orders_db, semantics="cwa")
        assert certain.rows == frozenset()

    def test_each_order_is_possibly_unpaid(self, paper_orders_db):
        query = parse_ra(UNPAID_RA)
        for order_id in ("oid1", "oid2"):
            assert possible_boolean(
                lambda world, oid=order_id: (oid,) in query.evaluate(world).rows,
                paper_orders_db,
                semantics="cwa",
            )

    def test_sound_evaluation_gives_no_false_positives(self, paper_orders_db):
        """Sound evaluation agrees with the certain answers here (both empty):
        unlike SQL it is *silent for the right reason* — no good guys chased."""
        query = parse_ra(UNPAID_RA)
        sound = sound_certain_answers(query, paper_orders_db)
        certain = certain_answers_intersection(query, paper_orders_db, semantics="cwa")
        assert sound.rows <= certain.rows

    def test_sql_and_certain_answers_coincide_on_complete_data(self, paper_orders_db):
        complete = paper_orders_db.map_values(
            lambda value: "oid1" if getattr(value, "is_null", False) else value
        )
        query = parse_ra(UNPAID_RA)
        sql_rows = set(run_sql(complete, parse_sql(UNPAID_SQL)))
        certain = certain_answers_intersection(query, complete, semantics="cwa")
        assert sql_rows == set(certain.rows) == {("oid2",)}
