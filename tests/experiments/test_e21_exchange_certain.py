"""E21 — Sections 1 and 7, certain answers in data exchange.

Paper claims:

* marked nulls are "the most common model of nulls used in
  integration/exchange tasks" and the chase produces them;
* in data integration/exchange "the standard semantics of query answering
  is based on certain answers" and "quite often naive evaluation is used
  for query answering in cases where it is known not to work": naive
  evaluation over the canonical solution is correct for UCQs but wrong for
  queries with negation.
"""

import pytest

from repro.algebra import parse_ra
from repro.core import naive_evaluation_applies
from repro.datamodel import Database
from repro.exchange import (
    canonical_solution,
    certain_answers_exchange,
    chase,
    core_solution,
    naive_exchange_answer_is_guaranteed,
    order_preferences_mapping,
)
from repro.homomorphisms import exists_homomorphism
from repro.logic import FOQuery, Not, atom, var
from repro.workloads import chain_mapping, order_preferences_source, random_graph_source


@pytest.fixture
def mapping():
    return order_preferences_mapping()


class TestUcqAnswersOverExchangedData:
    @pytest.mark.parametrize("size", [2, 4, 6])
    def test_naive_equals_enumeration_for_ucqs(self, mapping, size):
        source = order_preferences_source(num_orders=size, seed=size)
        query = parse_ra("project[product](Pref)")
        naive = certain_answers_exchange(mapping, source, query, method="naive")
        exact = certain_answers_exchange(
            mapping, source, query, method="enumeration", semantics="owa", max_extra_facts=1
        )
        assert naive.rows == exact.rows
        assert naive_exchange_answer_is_guaranteed(query)

    def test_join_through_marked_nulls(self, mapping):
        source = order_preferences_source(num_orders=3, seed=1)
        query = parse_ra("project[product](join(Cust, Pref))")
        naive = certain_answers_exchange(mapping, source, query, method="naive")
        exact = certain_answers_exchange(
            mapping, source, query, method="enumeration", semantics="owa", max_extra_facts=1
        )
        assert naive.rows == exact.rows
        assert len(naive.rows) == len(source["Order"].rows and {row[1] for row in source["Order"]})


class TestNegationGoesWrong:
    def test_naive_overclaims_for_negation(self, mapping):
        source = Database(mapping.source_schema, {"Order": [("oid1", "pr1"), ("oid2", "pr2")]})
        p = var("p")
        query = FOQuery(Not(atom("Pref", "alice", p)), (p,))
        naive = certain_answers_exchange(mapping, source, query, method="naive")
        exact = certain_answers_exchange(
            mapping, source, query, method="enumeration", semantics="owa", max_extra_facts=1
        )
        assert not naive_evaluation_applies(query, "owa").applies
        assert exact.rows < naive.rows  # naive evaluation returns non-answers


class TestUniversalSolutions:
    def test_canonical_solution_maps_into_every_solution(self, mapping):
        """The chase result is universal: it has a homomorphism into any other solution."""
        source = Database(mapping.source_schema, {"Order": [("oid1", "pr1")]})
        canonical = canonical_solution(mapping, source)
        other_solutions = [
            Database(
                mapping.target_schema,
                {"Cust": [("c7",)], "Pref": [("c7", "pr1")]},
            ),
            Database(
                mapping.target_schema,
                {"Cust": [("c7",), ("extra",)], "Pref": [("c7", "pr1"), ("extra", "pr9")]},
            ),
        ]
        for solution in other_solutions:
            assert exists_homomorphism(canonical, solution)

    def test_core_solution_is_smaller_or_equal_and_equivalent(self, mapping):
        source = order_preferences_source(num_orders=4, seed=2)
        canonical = canonical_solution(mapping, source)
        core = core_solution(mapping, source)
        assert core.size() <= canonical.size()
        assert exists_homomorphism(canonical, core)
        assert exists_homomorphism(core, canonical)

    def test_chain_mapping_null_growth(self):
        """Longer existential chains introduce proportionally more marked nulls."""
        source = random_graph_source(num_nodes=4, num_edges=6, seed=3)
        short = chase(chain_mapping(2), source)
        long = chase(chain_mapping(5), source)
        assert long.nulls_introduced == 4 * short.nulls_introduced
        assert long.target.size() > short.target.size()
