"""E15 — Section 6.2, OWA-naive evaluation works for UCQs, via preservation.

Paper claims:

* a Boolean FO query preserved under homomorphisms is equivalent to a UCQ
  (Rossman's theorem, cited as [63]); combining preservation with the OWA
  representation system yields: OWA-naive evaluation works for UCQs;
* conversely (optimality, [51]): if naive evaluation works for a Boolean FO
  query under OWA, the query is equivalent to a UCQ — so for non-positive
  queries one should *expect* failures.
"""

import pytest

from repro.algebra import is_positive, naive_certain_answers, parse_ra
from repro.core import (
    certain_answers_intersection,
    is_monotone_on,
    is_preserved_under_homomorphisms,
    naive_evaluation_applies,
)
from repro.datamodel import Database, Null
from repro.homomorphisms import all_homomorphisms
from repro.logic import FOQuery, Not, atom, conj, exists, var
from repro.workloads import random_database, random_positive_query


X, Y = var("x"), var("y")


def homomorphism_pairs(num_pairs=6):
    pairs = []
    for seed in range(num_pairs):
        source = random_database(num_nulls=2, rows_per_relation=3, seed=seed)
        targets = [
            random_database(num_nulls=0, rows_per_relation=3, seed=seed + 50),
            random_database(num_nulls=0, rows_per_relation=4, seed=seed + 70),
        ]
        for target in targets:
            for hom in all_homomorphisms(source, target, limit=2):
                pairs.append((source, target, hom))
    return pairs


class TestPreservationSide:
    def test_ucqs_are_preserved_under_homomorphisms(self):
        queries = [
            FOQuery(exists((X, Y), atom("R0", X, Y))),
            FOQuery(exists((X, Y), conj(atom("R0", X, Y), atom("R1", Y, X)))),
            FOQuery(exists(X, atom("R0", X, "a0"))),
        ]
        pairs = homomorphism_pairs()
        for query in queries:
            assert is_preserved_under_homomorphisms(query, pairs)

    def test_a_negated_query_is_not_preserved(self):
        source = Database.from_dict({"R0": [(1, 1)], "R1": [(1, 1)]})
        empty_r1 = Database.from_relations(
            [source.relation("R0"), source.relation("R1").with_rows([])]
        )
        query = FOQuery(Not(exists((X, Y), atom("R1", X, Y))))
        from repro.homomorphisms import Homomorphism

        pairs = [(empty_r1, source.union(empty_r1), Homomorphism({}))]
        assert not is_preserved_under_homomorphisms(query, pairs)


class TestNaiveEvaluationSide:
    @pytest.mark.parametrize("seed", range(6))
    def test_owa_naive_evaluation_works_for_random_ucqs(self, seed):
        database = random_database(num_nulls=1, rows_per_relation=2, num_relations=2, seed=seed)
        query = random_positive_query(database.schema, seed=seed + 7)
        assert is_positive(query)
        naive = naive_certain_answers(query, database)
        exact = certain_answers_intersection(
            query, database, semantics="owa", max_extra_facts=1
        )
        assert naive.rows == exact.rows

    def test_positive_queries_are_owa_monotone(self):
        pairs = []
        for seed in range(3):
            smaller = random_database(num_nulls=2, rows_per_relation=3, seed=seed)
            for hom in all_homomorphisms(
                smaller, random_database(num_nulls=0, rows_per_relation=3, seed=seed + 50), limit=1
            ):
                pairs.append((smaller, hom.apply(smaller)))
            pairs.append((smaller, smaller.add_facts([("R0", ("a0", "a1"))])))
        for seed in range(4):
            query = random_positive_query(pairs[0][0].schema, seed=seed)
            assert is_monotone_on(query, pairs, input_semantics="owa")

    def test_applicability_verdicts_match_the_theorem(self):
        assert naive_evaluation_applies(parse_ra("union(project[#0](R), S)"), "owa").applies
        assert not naive_evaluation_applies(parse_ra("diff(R, S)"), "owa").applies
        # division is CWA-only: under OWA adding facts to the divisor can
        # shrink the answer, so monotonicity (and naive evaluation) fails.
        assert not naive_evaluation_applies(parse_ra("divide(R, S)"), "owa").applies

    def test_division_really_fails_under_owa(self):
        """A concrete witness for why division is excluded under OWA.

        On complete data the naive answer is {alice}; under CWA this is also
        the certain answer, but under OWA a world may add a new course that
        alice does not take, so nothing is certain — naive evaluation (and
        monotonicity) breaks for division once the world is open.
        """
        database = Database.from_dict(
            {"Enroll": [("alice", "db"), ("alice", "os")], "Courses": [("db",), ("os",)]}
        )
        query = parse_ra("divide(Enroll, Courses)")
        naive = naive_certain_answers(query, database)
        exact_cwa = certain_answers_intersection(query, database, semantics="cwa")
        exact_owa = certain_answers_intersection(
            query, database, semantics="owa", max_extra_facts=1
        )
        assert naive.rows == exact_cwa.rows == frozenset({("alice",)})
        assert exact_owa.rows == frozenset()
