"""E5 — Section 2, the OWA/CWA semantics membership example.

Paper claim: for the naive table R = {(⊥,1,⊥'), (2,⊥',⊥)}, the relation
R1 = {(3,1,4), (2,4,3)} belongs to both [[R]]_cwa and [[R]]_owa (it is
obtained by the valuation ⊥→3, ⊥'→4), and R2 = {(3,1,4), (2,4,3), (5,6,7)}
is in [[R]]_owa only (it also adds the tuple (5,6,7)).
"""

from repro.datamodel import Database, Null, Valuation
from repro.semantics import in_cwa, in_owa, in_wcwa


R1 = Database.from_dict({"R": [(3, 1, 4), (2, 4, 3)]})
R2 = Database.from_dict({"R": [(3, 1, 4), (2, 4, 3), (5, 6, 7)]})


class TestPaperExample:
    def test_r1_obtained_by_the_paper_valuation(self, paper_section2_r):
        valuation = Valuation({Null("bot"): 3, Null("bot_prime"): 4})
        assert valuation.apply(paper_section2_r) == R1

    def test_r1_in_cwa_and_owa(self, paper_section2_r):
        assert in_cwa(paper_section2_r, R1)
        assert in_owa(paper_section2_r, R1)

    def test_r2_in_owa_only(self, paper_section2_r):
        assert in_owa(paper_section2_r, R2)
        assert not in_cwa(paper_section2_r, R2)

    def test_r2_not_in_wcwa_either(self, paper_section2_r):
        """R2's extra tuple introduces new domain values, so even weak CWA rejects it."""
        assert not in_wcwa(paper_section2_r, R2)

    def test_shared_nulls_constrain_membership(self, paper_section2_r):
        """⊥ and ⊥' each occur twice; inconsistent replacements are not represented."""
        inconsistent = Database.from_dict({"R": [(3, 1, 4), (2, 5, 3)]})
        # second tuple uses 5 where ⊥' = 4 was already forced by the first tuple
        assert not in_cwa(paper_section2_r, inconsistent)
        assert not in_owa(paper_section2_r, inconsistent)

    def test_nulls_may_collapse_to_the_same_constant(self, paper_section2_r):
        """⊥ and ⊥' may be replaced by the same constant — 'no restrictions'."""
        collapsed = Valuation({Null("bot"): 9, Null("bot_prime"): 9}).apply(paper_section2_r)
        assert in_cwa(paper_section2_r, collapsed)
        assert in_owa(paper_section2_r, collapsed)
