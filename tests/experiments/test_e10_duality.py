"""E10 — Section 4, the duality between incomplete databases and queries.

Paper claims:

* the incomplete relation R = {(1,⊥), (⊥,2)} "can be viewed as a tableau of
  a Boolean conjunctive query Q_R = ∃x R(1,x) ∧ R(x,2)", and
  ``Mod_C(Q_R) = [[R]]_owa`` (eq. (5));
* for a Boolean conjunctive query Q, ``certain_owa(Q, D)`` is true iff
  ``Q_D ⊆ Q`` iff ``D ⊨ Q`` (naive satisfaction) — finding certain answers
  is a special case of query containment.
"""

import pytest

from repro.datamodel import Database, Null
from repro.logic import (
    FOQuery,
    atom,
    certain_boolean_via_containment,
    conj,
    database_as_query,
    exists,
    is_contained_boolean,
    tableau_of_query,
    var,
)
from repro.homomorphisms import hom_equivalent
from repro.semantics import certain_boolean, default_domain, in_owa, owa_worlds
from repro.workloads import random_database


@pytest.fixture
def paper_r():
    return Database.from_dict({"R": [(1, Null("b")), (Null("b"), 2)]})


class TestEquationFive:
    def test_q_r_has_the_paper_shape(self, paper_r):
        query = database_as_query(paper_r)
        text = str(query.formula)
        assert "R(1," in text and ", 2)" in text
        assert "∃" in text

    def test_models_coincide_with_owa_semantics(self, paper_r):
        """Mod_C(Q_R) = [[R]]_owa over a pool of candidate complete databases."""
        query = database_as_query(paper_r)
        domain = default_domain(paper_r, extra_constants=1)
        pool = list(owa_worlds(paper_r, domain, max_extra_facts=1))
        pool.extend(
            [
                Database.from_dict({"R": [(1, 3)]}),
                Database.from_dict({"R": [(3, 2), (1, 3)]}),
                Database.from_dict({"R": [(2, 1)]}),
            ]
        )
        for world in pool:
            assert query.formula.holds(world) == in_owa(paper_r, world)

    def test_tableau_of_q_r_recovers_r(self, paper_r):
        tableau, _ = tableau_of_query(database_as_query(paper_r), paper_r.schema)
        assert hom_equivalent(tableau, paper_r)


class TestCertainAnswersAsContainment:
    def _queries(self):
        x, y, z = var("x"), var("y"), var("z")
        return {
            "path2": FOQuery(exists((x, y, z), conj(atom("R", x, y), atom("R", y, z)))),
            "edge_from_1": FOQuery(exists(x, atom("R", 1, x))),
            "edge_to_3": FOQuery(exists(x, atom("R", x, 3))),
            "loop": FOQuery(exists(x, atom("R", x, x))),
        }

    def test_containment_naive_and_enumeration_agree(self, paper_r):
        for name, query in self._queries().items():
            via_containment = certain_boolean_via_containment(query, paper_r)
            via_naive = query.formula.holds(paper_r)
            via_enumeration = certain_boolean(
                lambda world, q=query: q.formula.holds(world),
                paper_r,
                semantics="owa",
                max_extra_facts=0,
            )
            assert via_containment == via_naive == via_enumeration, name

    def test_expected_verdicts_on_the_paper_instance(self, paper_r):
        queries = self._queries()
        assert certain_boolean_via_containment(queries["path2"], paper_r)
        assert certain_boolean_via_containment(queries["edge_from_1"], paper_r)
        assert not certain_boolean_via_containment(queries["edge_to_3"], paper_r)
        assert not certain_boolean_via_containment(queries["loop"], paper_r)

    def test_containment_formulation_is_explicit(self, paper_r):
        """certain(Q, D) iff Q_D ⊆ Q, using the containment checker directly."""
        q_d = database_as_query(paper_r)
        query = self._queries()["path2"]
        assert is_contained_boolean(q_d, query, paper_r.schema)

    @pytest.mark.parametrize("seed", range(4))
    def test_duality_on_random_instances(self, seed):
        database = random_database(
            num_relations=1, arity=2, rows_per_relation=3, num_nulls=2, seed=seed
        )
        database = Database.from_dict({"R": [row for row in database.relation("R0")]})
        x, y, z = var("x"), var("y"), var("z")
        query = FOQuery(exists((x, y, z), conj(atom("R", x, y), atom("R", y, z))))
        assert certain_boolean_via_containment(query, database) == query.formula.holds(database)
