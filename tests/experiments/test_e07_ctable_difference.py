"""E7 — Section 2, the conditional table representing R − S (strong representation).

Paper claim: for D with R = {1, 2} and S = {⊥}, the query Q = R − S has
``Q([[D]]_cwa) = {{1,2}, {1}, {2}}`` (depending on whether ⊥ becomes 1, 2
or another constant), and this answer space is captured *exactly* by the
conditional table ::

        condition
    1   ⊥' = 1 ∨ ⊥' = 2     (rendered in the paper; equivalently 1 ≠ ⊥)
    2   ⊥' ≠ 1              (equivalently 2 ≠ ⊥)

— conditional tables are a strong representation system for full
relational algebra under CWA.
"""

from repro.algebra import CTableDatabase, ctable_evaluate, parse_ra
from repro.datamodel import ConditionalTable, Eq, Neq, Null, TRUE
from repro.semantics import answer_space, default_domain


QUERY = parse_ra("diff(R, S)")


class TestAnswerSpace:
    def test_paper_answer_space(self, paper_r_minus_s_db):
        space = answer_space(QUERY.evaluate, paper_r_minus_s_db, semantics="cwa")
        assert space == {
            frozenset({(1,), (2,)}),
            frozenset({(1,)}),
            frozenset({(2,)}),
        }

    def test_empty_answer_never_occurs(self, paper_r_minus_s_db):
        """|R| > |S| means the difference is never empty — visible in the space."""
        space = answer_space(QUERY.evaluate, paper_r_minus_s_db, semantics="cwa")
        assert frozenset() not in space


class TestConditionalTableCapturesItExactly:
    def test_algebra_produced_table_is_strongly_representing(self, paper_r_minus_s_db):
        domain = default_domain(paper_r_minus_s_db)
        ctable = ctable_evaluate(QUERY, CTableDatabase.from_database(paper_r_minus_s_db))
        assert ctable.possible_worlds(domain) == answer_space(
            QUERY.evaluate, paper_r_minus_s_db, semantics="cwa", domain=domain
        )

    def test_hand_written_paper_table_is_equivalent(self, paper_r_minus_s_db):
        """The paper's table (conditions on ⊥' ranging over values of S's null)."""
        bot = Null("s")  # the null of S in the fixture
        paper_answer = ConditionalTable.create(
            "Answer",
            [((1,), Neq(1, bot)), ((2,), Neq(2, bot))],
            global_condition=TRUE,
        )
        domain = default_domain(paper_r_minus_s_db)
        produced = ctable_evaluate(QUERY, CTableDatabase.from_database(paper_r_minus_s_db))
        assert paper_answer.possible_worlds(domain) == produced.possible_worlds(domain)

    def test_certainty_read_off_the_table(self, paper_r_minus_s_db):
        domain = default_domain(paper_r_minus_s_db)
        ctable = ctable_evaluate(QUERY, CTableDatabase.from_database(paper_r_minus_s_db))
        assert ctable.certain_rows(domain) == set()
        assert ctable.possible_rows(domain) == {(1,), (2,)}

    def test_paper_remark_answer_is_hard_to_read_for_humans(self, paper_r_minus_s_db):
        """'One problem with such an answer is that it is hardly meaningful to
        humans' — operationally: no row of the answer table is unconditional."""
        ctable = ctable_evaluate(QUERY, CTableDatabase.from_database(paper_r_minus_s_db))
        assert all(row.condition is not TRUE for row in ctable)
