"""E13 — Sections 5.3 and 6, the certainty operators certainO / certainK.

Paper claims:

* ``certainO [[x]] = x`` and ``certainK [[x]] = δ_x`` — the certain object
  of everything an object represents is the object itself, and the certain
  knowledge is its defining formula; also ``Th([[x]]) = Th(x)``;
* eqs. (9)/(10): for monotone generic queries (with a representation system
  on the answer side), ``certainO(Q, x) = Q(x)`` and
  ``certainK(Q, x) = δ_{Q(x)}`` — naive evaluation produces both notions of
  certainty.
"""

import pytest

from repro.algebra import parse_ra
from repro.core import (
    CWA_ORDERING,
    OWA_ORDERING,
    certain_answer_knowledge,
    certain_answer_object,
    certain_knowledge_formula,
    intersection_object,
    is_certain_object,
    knowledge_includes,
)
from repro.datamodel import Database, Null
from repro.logic import atom, exists, var
from repro.semantics import cwa_worlds
from repro.workloads import random_database, random_positive_query


def as_answer_db(relation):
    return Database.from_relations([relation.rename("__answer__")])


class TestCertaintyOfAnObjectsSemantics:
    def test_certain_object_of_semantics_is_the_object(self):
        """x is the glb of [[x]]_cwa: a lower bound more informative than others."""
        db = Database.from_dict({"R": [(1, Null("a")), (2, 3)]})
        worlds = list(cwa_worlds(db))
        weaker_candidates = [
            Database.from_dict({"R": [(1, Null("p")), (2, Null("q"))]}),
            Database.from_dict({"R": [(Null("p"), Null("q")), (Null("r"), Null("s"))]}),
        ]
        assert is_certain_object(db, worlds, CWA_ORDERING, competitors=weaker_candidates)
        assert is_certain_object(db, worlds, OWA_ORDERING, competitors=weaker_candidates)

    def test_certain_knowledge_of_semantics_is_delta(self):
        db = Database.from_dict({"R": [(1, Null("a"))]})
        formula = certain_knowledge_formula(db, "cwa")
        worlds = list(cwa_worlds(db))
        assert knowledge_includes(formula, worlds)

    def test_theory_of_semantics_equals_theory_of_object(self):
        """Th([[x]]) = Th(x) restricted to a pool of existential positive formulas."""
        db = Database.from_dict({"R": [(1, Null("a")), (Null("a"), 2)]})
        x, y = var("x"), var("y")
        pool = [
            exists((x, y), atom("R", x, y)),
            exists(x, atom("R", 1, x)),
            exists(x, atom("R", x, 2)),
            exists(x, atom("R", 3, x)),
            exists(x, atom("R", x, x)),
        ]
        worlds = list(cwa_worlds(db))
        for formula in pool:
            in_theory_of_worlds = knowledge_includes(formula, worlds)
            in_theory_of_object = formula.holds(db)
            assert in_theory_of_worlds == in_theory_of_object, str(formula)


class TestEquationNineAndTen:
    @pytest.mark.parametrize("seed", range(5))
    def test_naive_answer_is_certain_object_for_positive_queries(self, seed):
        database = random_database(num_nulls=2, rows_per_relation=3, seed=seed)
        query = random_positive_query(database.schema, seed=seed)
        naive_answer = as_answer_db(certain_answer_object(query, database))
        world_answers = [as_answer_db(query.evaluate(w)) for w in cwa_worlds(database)]
        competitors = [as_answer_db(query.evaluate(w).complete_part()) for w in cwa_worlds(database)]
        intersection = intersection_object(world_answers)
        competitors.append(intersection)
        assert is_certain_object(naive_answer, world_answers, OWA_ORDERING, competitors=competitors)

    def test_naive_answer_is_certain_object_under_cwa_ordering(self):
        database = Database.from_dict({"R": [(1, 2), (2, Null("x"))]})
        query = parse_ra("R")
        naive_answer = as_answer_db(certain_answer_object(query, database))
        world_answers = [as_answer_db(query.evaluate(w)) for w in cwa_worlds(database)]
        assert is_certain_object(naive_answer, world_answers, CWA_ORDERING, competitors=[])

    def test_certain_knowledge_is_delta_of_naive_answer(self):
        """certainK(Q, D) = δ_{Q(D)} holds in every world's answer (eq. (10))."""
        database = Database.from_dict({"R": [(1, 2), (2, Null("x"))]})
        query = parse_ra("project[#1](R)")
        formula = certain_answer_knowledge(query, database, semantics="owa")
        for world in cwa_worlds(database):
            answer_db = Database.from_relations([query.evaluate(world).rename("Answer")])
            assert formula.holds(answer_db)

    def test_knowledge_answer_fails_for_non_monotone_queries(self):
        """For difference, δ_{Q(D)} need not hold in every answer — eq. (10) needs monotonicity."""
        database = Database.from_dict({"R": [(1, Null("a"))], "S": [(1, Null("b"))]})
        query = parse_ra("project[#0](diff(R, S))")
        formula = certain_answer_knowledge(query, database, semantics="owa")
        violated = False
        for world in cwa_worlds(database):
            answer_db = Database.from_relations([query.evaluate(world).rename("Answer")])
            if not formula.holds(answer_db):
                violated = True
        assert violated
