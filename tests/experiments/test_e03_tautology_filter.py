"""E3 — Section 1, Grant's example (the tautological filter).

Paper claim: the query ::

    SELECT p_id FROM Pay WHERE order = 'oid1' OR order <> 'oid1'

evaluated on Pay = {(pid1, ⊥, 100)} returns the empty table under SQL's
three-valued logic, "and yet intuitively we expected the answer to be
'pid1': indeed, no matter what non-null value we replace the null with,
this is what the query will produce."
"""

from repro.core import certain_answers_intersection
from repro.logic import FOQuery, Not, Or, atom, conj, equals, exists, var
from repro.sqlnulls import parse_sql, run_sql

TAUTOLOGY_SQL = "SELECT p_id FROM Pay WHERE ord = 'oid1' OR ord <> 'oid1'"


class TestSQLGoesWrong:
    def test_sql_returns_empty_on_the_null_row(self, paper_orders_db):
        assert run_sql(paper_orders_db, parse_sql(TAUTOLOGY_SQL)) == []

    def test_sql_returns_the_row_once_the_null_is_replaced(self, paper_orders_db):
        for replacement in ("oid1", "oid2", "anything"):
            complete = paper_orders_db.map_values(
                lambda value, repl=replacement: repl if getattr(value, "is_null", False) else value
            )
            assert run_sql(complete, parse_sql(TAUTOLOGY_SQL)) == [("pid1",)]


class TestCertainAnswer:
    def _query(self):
        p, o, a = var("p"), var("o"), var("a")
        condition = Or((equals(o, "oid1"), Not(equals(o, "oid1"))))
        return FOQuery(exists((o, a), conj(atom("Pay", p, o, a), condition)), (p,))

    def test_pid1_is_the_certain_answer(self, paper_orders_db):
        """Replacing ⊥ by any constant keeps pid1 in the answer (world enumeration)."""
        certain = certain_answers_intersection(self._query(), paper_orders_db, semantics="cwa")
        assert certain.rows == frozenset({("pid1",)})

    def test_every_world_returns_pid1(self, paper_orders_db):
        from repro.semantics import cwa_worlds

        query = self._query()
        for world in cwa_worlds(paper_orders_db):
            assert ("pid1",) in query.evaluate(world).rows

    def test_sql_misses_the_certain_answer(self, paper_orders_db):
        sql_rows = set(run_sql(paper_orders_db, parse_sql(TAUTOLOGY_SQL)))
        certain = certain_answers_intersection(self._query(), paper_orders_db, semantics="cwa")
        assert sql_rows == set()
        assert set(certain.rows) == {("pid1",)}
        assert sql_rows < set(certain.rows)
