"""E12 — Section 5.2, homomorphism characterisations of the information orderings.

Paper claims:

* ``D ⊑_owa D'``  iff there is a homomorphism ``h : D → D'``;
* ``D ⊑_cwa D'``  iff there is a strong onto homomorphism ``h : D → D'``;
* the weaker CWA of Reiter (tuples may be added as long as no new
  active-domain elements appear) corresponds to onto homomorphisms;
* the ordering is defined from the semantics by ``x ⊑ y ⇔ [[y]] ⊆ [[x]]``.
"""

import itertools

import pytest

from repro.core import cwa_leq, owa_leq, semantic_leq, wcwa_leq
from repro.datamodel import Database, Null, Valuation
from repro.homomorphisms import (
    exists_homomorphism,
    exists_onto_homomorphism,
    exists_strong_onto_homomorphism,
)
from repro.semantics import cwa_worlds, default_domain, in_cwa, in_owa, in_wcwa
from repro.workloads import random_database


def instance_pool():
    """A small zoo of hand-built instances over one binary relation."""
    x, y = Null("px"), Null("py")
    return [
        Database.from_dict({"R": [(1, x)]}),
        Database.from_dict({"R": [(1, 2)]}),
        Database.from_dict({"R": [(1, 2), (2, 3)]}),
        Database.from_dict({"R": [(1, x), (x, y)]}),
        Database.from_dict({"R": [(1, 1)]}),
        Database.from_dict({"R": [(x, y)]}),
    ]


class TestHomCharacterisations:
    def test_orderings_are_literally_hom_existence(self):
        for left, right in itertools.product(instance_pool(), repeat=2):
            assert owa_leq(left, right) == exists_homomorphism(left, right)
            assert cwa_leq(left, right) == exists_strong_onto_homomorphism(left, right)
            assert wcwa_leq(left, right) == exists_onto_homomorphism(left, right)

    def test_cwa_implies_wcwa_implies_owa(self):
        for left, right in itertools.product(instance_pool(), repeat=2):
            if cwa_leq(left, right):
                assert wcwa_leq(left, right)
            if wcwa_leq(left, right):
                assert owa_leq(left, right)

    def test_orderings_are_preorders(self):
        pool = instance_pool()
        for ordering_fn in (owa_leq, cwa_leq, wcwa_leq):
            for db in pool:
                assert ordering_fn(db, db)
            for a, b, c in itertools.product(pool, repeat=3):
                if ordering_fn(a, b) and ordering_fn(b, c):
                    assert ordering_fn(a, c)


class TestSemanticDefinition:
    def test_ordering_matches_world_inclusion_under_cwa(self):
        """x ⊑_cwa y ⇔ [[y]]_cwa ⊆ [[x]]_cwa over a shared finite domain."""
        pool = instance_pool()[:5]
        all_constants = set()
        for db in pool:
            all_constants |= db.constants()
        shared_domain = sorted(all_constants) + ["f1", "f2"]

        def worlds_of(db):
            return cwa_worlds(db, domain=shared_domain)

        for left, right in itertools.product(pool, repeat=2):
            assert cwa_leq(left, right) == semantic_leq(left, right, worlds_of)

    def test_condition2_of_section5(self):
        """c ∈ [[x]] implies x ⊑ c, for every semantics and random instance."""
        for seed in range(3):
            db = random_database(num_nulls=2, rows_per_relation=3, seed=seed)
            for world in cwa_worlds(db):
                assert in_cwa(db, world) and cwa_leq(db, world)
                assert in_owa(db, world) and owa_leq(db, world)
                assert in_wcwa(db, world) and wcwa_leq(db, world)


class TestMoreInformativeMeansFewerWorlds:
    def test_applying_a_valuation_increases_information(self):
        for seed in range(3):
            db = random_database(num_nulls=2, rows_per_relation=3, seed=seed)
            valuation = Valuation({null: f"v{i}" for i, null in enumerate(sorted(db.nulls(), key=lambda n: n.name))})
            more = valuation.apply(db)
            assert owa_leq(db, more)
            assert cwa_leq(db, more)

    def test_adding_facts_increases_owa_but_not_cwa_information(self):
        db = Database.from_dict({"R": [(1, Null("x"))]})
        bigger = db.add_facts([("R", (5, 6))])
        assert owa_leq(db, bigger)
        assert not cwa_leq(db, bigger)
