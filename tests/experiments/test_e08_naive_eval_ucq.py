"""E8 — Section 2, eq. (4): naive evaluation works for UCQs.

Paper claim: for unions of conjunctive queries (positive relational
algebra) under both OWA and CWA, ``Q(D)_cmpl = certain(Q, D)`` — certain
answers are obtained by evaluating the query as if nulls were ordinary
values and then discarding tuples with nulls.  The complexity drops from
coNP/undecidable to AC⁰-like (ordinary query evaluation plus an
IS NOT NULL filter).
"""

import pytest

from repro.algebra import is_positive, naive_certain_answers, parse_ra
from repro.core import certain_answers_intersection
from repro.datamodel import Database, Null
from repro.workloads import orders_payments, random_database, random_positive_query


HAND_WRITTEN_QUERIES = [
    "project[#0](R0)",
    "select[#0 = 'a0'](R0)",
    "union(project[#0](R0), project[#1](R1))",
    "project[#0](select[#1 = #2](product(R0, project[#0](R1))))",
    "join(R0, R1)",
]


class TestHandWrittenQueries:
    @pytest.mark.parametrize("query_text", HAND_WRITTEN_QUERIES)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_naive_equals_enumeration_under_cwa(self, query_text, seed):
        database = random_database(num_nulls=2, rows_per_relation=4, seed=seed)
        query = parse_ra(query_text)
        assert is_positive(query)
        naive = naive_certain_answers(query, database)
        exact = certain_answers_intersection(query, database, semantics="cwa")
        assert naive.rows == exact.rows

    @pytest.mark.parametrize("query_text", HAND_WRITTEN_QUERIES[:3])
    def test_naive_equals_enumeration_under_owa(self, query_text):
        database = random_database(num_nulls=2, rows_per_relation=3, seed=3)
        query = parse_ra(query_text)
        naive = naive_certain_answers(query, database)
        exact = certain_answers_intersection(
            query, database, semantics="owa", max_extra_facts=1
        )
        assert naive.rows == exact.rows


class TestRandomisedQueries:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_positive_queries_cwa(self, seed):
        database = random_database(num_nulls=2, rows_per_relation=3, seed=seed)
        query = random_positive_query(database.schema, seed=seed)
        naive = naive_certain_answers(query, database)
        exact = certain_answers_intersection(query, database, semantics="cwa")
        assert naive.rows == exact.rows

    @pytest.mark.parametrize("seed", range(3))
    def test_random_positive_queries_owa(self, seed):
        database = random_database(
            num_nulls=1, rows_per_relation=2, num_relations=2, seed=seed
        )
        query = random_positive_query(database.schema, seed=seed + 100)
        naive = naive_certain_answers(query, database)
        exact = certain_answers_intersection(
            query, database, semantics="owa", max_extra_facts=1
        )
        assert naive.rows == exact.rows


class TestScenarioQuery:
    def test_paid_products_on_the_orders_scenario(self):
        """Which products have at least one payment (a positive join query)."""
        database = orders_payments(num_orders=6, num_payments=4, null_fraction=0.4, seed=2)
        query = parse_ra(
            "project[#1](select[#0 = #2](product(Orders, project[ord](Pay))))"
        )
        naive = naive_certain_answers(query, database)
        exact = certain_answers_intersection(query, database, semantics="cwa")
        assert naive.rows == exact.rows

    def test_marked_null_join_is_certain(self):
        """A join through a *shared* marked null is certain, and naive evaluation sees it."""
        shared = Null("c")
        database = Database.from_dict({"R": [("a", shared)], "S": [(shared, "b")]})
        query = parse_ra("project[#0, #3](select[#1 = #2](product(R, S)))")
        naive = naive_certain_answers(query, database)
        exact = certain_answers_intersection(query, database, semantics="cwa")
        assert naive.rows == exact.rows == frozenset({("a", "b")})
