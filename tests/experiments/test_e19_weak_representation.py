"""E19 — Section 2, weak representation systems.

Paper claim: the best-known weak representation systems, under both OWA and
CWA, are

* Codd tables for selection/projection queries, and
* naive tables for UCQs (positive relational algebra):

evaluating the query naively yields a table A with
``[[A]] ~_L Q([[D]])`` — equivalently, ``A_cmpl = certain(Q, D)``, and this
stays true for any *follow-up* query from the language applied to A (the
compositionality that motivates the definition).
"""

import pytest

from repro.algebra import naive_certain_answers, naive_evaluate, parse_ra
from repro.core import certain_answers_intersection
from repro.datamodel import Database, Null, Relation
from repro.semantics import certain_answers_enumeration
from repro.workloads import random_database, random_positive_query


def codd_database(seed=0):
    """A database in which every null occurs exactly once (Codd/SQL nulls)."""
    return Database.from_relations(
        [
            Relation.create(
                "R",
                [(1, Null(f"c{seed}_1")), (2, 3), (Null(f"c{seed}_2"), 5)],
                attributes=("A", "B"),
            ),
            Relation.create("S", [(3, Null(f"c{seed}_3"))], attributes=("B", "C")),
        ]
    )


SP_QUERIES = [
    "project[A](R)",
    "select[B = 3](R)",
    "project[B](select[A = 2](R))",
    "project[A, B](R)",
]

UCQ_QUERIES = [
    "union(project[B](R), project[B](S))",
    "project[A](join(R, S))",
    "project[#0](product(project[A](R), project[C](S)))",
]


class TestCoddTablesForSelectionProjection:
    @pytest.mark.parametrize("query_text", SP_QUERIES)
    @pytest.mark.parametrize("semantics,extra", [("cwa", 0), ("owa", 1)])
    def test_complete_part_of_naive_answer_is_certain(self, query_text, semantics, extra):
        database = codd_database()
        assert database.is_codd()
        query = parse_ra(query_text)
        answer_table = naive_evaluate(query, database)
        certain = certain_answers_intersection(
            query, database, semantics=semantics, max_extra_facts=extra
        )
        assert answer_table.complete_part().rows == certain.rows

    @pytest.mark.parametrize("query_text", SP_QUERIES)
    def test_followup_queries_keep_working(self, query_text):
        """Compositionality: apply a further selection/projection to the answer table."""
        database = codd_database()
        query = parse_ra(query_text)
        answer_table = naive_evaluate(query, database).rename("A")
        answer_db = Database.from_relations([answer_table])
        followup = parse_ra("project[#0](A)")
        naive_then_followup = naive_certain_answers(followup, answer_db)
        # ground truth: the certain answer of the composed query on the original D
        composed_certain = certain_answers_enumeration(
            lambda world: followup.evaluate(
                Database.from_relations([query.evaluate(world).rename("A")])
            ),
            database,
            semantics="cwa",
        )
        assert naive_then_followup.rows == composed_certain.rows


class TestNaiveTablesForUCQ:
    @pytest.mark.parametrize("query_text", UCQ_QUERIES)
    def test_complete_part_of_naive_answer_is_certain_cwa(self, query_text):
        database = Database.from_relations(
            [
                Relation.create(
                    "R", [(1, Null("shared")), (2, 3)], attributes=("A", "B")
                ),
                Relation.create("S", [(Null("shared"), 7), (3, 8)], attributes=("B", "C")),
            ]
        )
        assert not database.is_codd()  # genuinely naive: the null is shared
        query = parse_ra(query_text)
        naive = naive_certain_answers(query, database)
        certain = certain_answers_intersection(query, database, semantics="cwa")
        assert naive.rows == certain.rows

    @pytest.mark.parametrize("seed", range(4))
    def test_random_ucqs_on_random_naive_tables(self, seed):
        database = random_database(num_nulls=2, rows_per_relation=3, seed=seed)
        query = random_positive_query(database.schema, seed=seed + 11)
        naive = naive_certain_answers(query, database)
        certain = certain_answers_intersection(query, database, semantics="cwa")
        assert naive.rows == certain.rows

    def test_codd_tables_are_not_enough_for_joins(self):
        """The classical counterexample direction: with *marked* nulls, a join
        through a shared null is certain — Codd tables cannot express that,
        which is why the UCQ weak representation system needs naive tables."""
        shared = Null("j")
        naive_db = Database.from_relations(
            [
                Relation.create("R", [("a", shared)], attributes=("A", "B")),
                Relation.create("S", [(shared, "c")], attributes=("B", "C")),
            ]
        )
        codd_db = Database.from_relations(
            [
                Relation.create("R", [("a", Null("j1"))], attributes=("A", "B")),
                Relation.create("S", [(Null("j2"), "c")], attributes=("B", "C")),
            ]
        )
        query = parse_ra("project[A, C](join(R, S))")
        naive_certain = certain_answers_intersection(query, naive_db, semantics="cwa")
        codd_certain = certain_answers_intersection(query, codd_db, semantics="cwa")
        assert naive_certain.rows == frozenset({("a", "c")})
        assert codd_certain.rows == frozenset()
