"""Unit tests for homomorphism search between incomplete instances."""

import pytest

from repro.datamodel import Database, Null
from repro.homomorphisms import (
    Homomorphism,
    all_homomorphisms,
    exists_homomorphism,
    exists_onto_homomorphism,
    exists_strong_onto_homomorphism,
    find_homomorphism,
    find_homomorphism_restricted,
    hom_equivalent,
    is_homomorphism,
)
from repro.workloads import random_database


@pytest.fixture
def source_with_nulls():
    return Database.from_dict({"R": [(1, Null("x")), (Null("x"), 2)]})


class TestHomomorphismObject:
    def test_fixes_constants(self):
        hom = Homomorphism({Null("x"): 5})
        assert hom("a") == "a"
        assert hom(Null("x")) == 5
        assert hom(Null("y")) == Null("y")

    def test_apply_row_and_database(self, source_with_nulls):
        hom = Homomorphism({Null("x"): 7})
        assert hom.apply_row((1, Null("x"))) == (1, 7)
        image = hom.apply(source_with_nulls)
        assert image["R"].rows == frozenset({(1, 7), (7, 2)})

    def test_is_valuation(self):
        assert Homomorphism({Null("x"): 5}).is_valuation()
        assert not Homomorphism({Null("x"): Null("y")}).is_valuation()

    def test_compose(self):
        first = Homomorphism({Null("x"): Null("y")})
        second = Homomorphism({Null("y"): 3})
        composed = first.compose(second)
        assert composed(Null("x")) == 3
        assert composed(Null("y")) == 3

    def test_mapping_protocol(self):
        hom = Homomorphism({Null("x"): 5})
        assert Null("x") in hom
        assert hom[Null("x")] == 5
        assert len(hom) == 1
        assert hom == Homomorphism({Null("x"): 5})
        assert hash(hom) == hash(Homomorphism({Null("x"): 5}))


class TestExistence:
    def test_hom_to_superset_instance(self, source_with_nulls):
        target = Database.from_dict({"R": [(1, 5), (5, 2), (9, 9)]})
        hom = find_homomorphism(source_with_nulls, target)
        assert hom is not None
        assert hom[Null("x")] == 5

    def test_no_hom_when_constants_block(self, source_with_nulls):
        target = Database.from_dict({"R": [(3, 5), (5, 2)]})
        assert find_homomorphism(source_with_nulls, target) is None

    def test_shared_null_must_be_mapped_consistently(self):
        source = Database.from_dict({"R": [(1, Null("x"))], "S": [(Null("x"), 2)]})
        good = Database.from_dict({"R": [(1, 5)], "S": [(5, 2)]})
        bad = Database.from_dict({"R": [(1, 5)], "S": [(6, 2)]})
        assert exists_homomorphism(source, good)
        assert not exists_homomorphism(source, bad)

    def test_nulls_can_map_to_nulls(self):
        source = Database.from_dict({"R": [(Null("x"),)]})
        target = Database.from_dict({"R": [(Null("y"),)]})
        assert exists_homomorphism(source, target)

    def test_schema_mismatch_gives_no_hom(self):
        source = Database.from_dict({"R": [(1,)]})
        target = Database.from_dict({"S": [(1,)]})
        assert find_homomorphism(source, target) is None
        assert all_homomorphisms(source, target) == []

    def test_empty_source_maps_anywhere(self):
        source = Database.from_dict({"R": []} if False else {"R": [(1,)]}).complete_part()
        source = Database(source.schema, {"R": []})
        target = Database(source.schema, {"R": [(1,)]})
        assert exists_homomorphism(source, target)

    def test_identity_hom_always_exists(self, source_with_nulls):
        assert exists_homomorphism(source_with_nulls, source_with_nulls)

    def test_all_homomorphisms_enumerates_distinct_maps(self):
        source = Database.from_dict({"R": [(Null("x"),)]})
        target = Database.from_dict({"R": [(1,), (2,)]})
        homs = all_homomorphisms(source, target)
        assert {h[Null("x")] for h in homs} == {1, 2}

    def test_all_homomorphisms_limit(self):
        source = Database.from_dict({"R": [(Null("x"),)]})
        target = Database.from_dict({"R": [(1,), (2,), (3,)]})
        assert len(all_homomorphisms(source, target, limit=2)) == 2


class TestOntoVariants:
    def test_strong_onto_requires_covering_all_facts(self):
        source = Database.from_dict({"R": [(Null("x"),)]})
        exact = Database.from_dict({"R": [(1,)]})
        bigger = Database.from_dict({"R": [(1,), (2,)]})
        assert exists_strong_onto_homomorphism(source, exact)
        assert not exists_strong_onto_homomorphism(source, bigger)
        assert exists_homomorphism(source, bigger)

    def test_strong_onto_allows_collapsing(self):
        source = Database.from_dict({"R": [(Null("x"),), (Null("y"),)]})
        target = Database.from_dict({"R": [(1,)]})
        assert exists_strong_onto_homomorphism(source, target)

    def test_onto_on_active_domain(self):
        source = Database.from_dict({"R": [(1, Null("x"))]})
        same_adom = Database.from_dict({"R": [(1, 1)]})
        new_value = Database.from_dict({"R": [(1, 1), (7, 7)]})
        assert exists_onto_homomorphism(source, same_adom)
        # The null can only map to 1 (so that R(1, x) lands in the target),
        # leaving the new active-domain element 7 uncovered.
        assert not exists_onto_homomorphism(source, new_value)
        assert exists_homomorphism(source, new_value)

    def test_onto_weaker_than_strong_onto(self):
        source = Database.from_dict({"R": [(1, Null("x"))]})
        target = Database.from_dict({"R": [(1, 1), (1, 1)]}).union(
            Database.from_dict({"R": [(1, 1)]})
        )
        # target has a single fact (1,1): both onto and strong onto hold.
        assert exists_onto_homomorphism(source, target)
        assert exists_strong_onto_homomorphism(source, target)
        # adding a fact over the same active domain keeps onto but breaks strong onto.
        extended = target.add_facts([("R", (1, 1))])
        assert exists_onto_homomorphism(source, extended)


class TestRestrictedSearch:
    """The target-restricted / partial-assignment entry point."""

    def test_restricted_fails_where_global_succeeds(self):
        # The only possible image of R(x, 1) is the excluded fact itself:
        # a global homomorphism exists, the restricted search must fail.
        target = Database.from_dict({"R": [(1, 1)]})
        facts = [("R", (Null("x"), 1))]
        assert find_homomorphism_restricted(facts, target) is not None
        assert find_homomorphism_restricted(facts, target, exclude=[("R", (1, 1))]) is None

    def test_exclusion_leaves_other_rows_usable(self):
        target = Database.from_dict({"R": [(1, 1), (2, 1)]})
        facts = [("R", (Null("x"), 1))]
        hom = find_homomorphism_restricted(facts, target, exclude=[("R", (1, 1))])
        assert hom is not None
        assert hom[Null("x")] == 2

    def test_excluded_ground_fact_blocks_the_search(self):
        target = Database.from_dict({"R": [(1, 2)], "S": [(Null("x"),)]})
        facts = [("R", (1, 2)), ("S", (Null("y"),))]
        assert find_homomorphism_restricted(facts, target) is not None
        assert find_homomorphism_restricted(facts, target, exclude=[("R", (1, 2))]) is None

    def test_shared_null_consistency_under_exclusion(self):
        # Excluding the only Pref row that matches the Cust choice forces a
        # different, still consistent, binding across relations.
        x = Null("x")
        target = Database.from_dict({"Cust": [(1,), (2,)], "Pref": [(1, "a"), (2, "a")]})
        facts = [("Cust", (x,)), ("Pref", (x, "a"))]
        hom = find_homomorphism_restricted(facts, target, exclude=[("Pref", (1, "a"))])
        assert hom is not None
        assert hom[x] == 2
        both_gone = find_homomorphism_restricted(
            facts, target, exclude=[("Pref", (1, "a")), ("Pref", (2, "a"))]
        )
        assert both_gone is None

    def test_partial_assignment_seeds_the_search(self):
        x, y = Null("x"), Null("y")
        target = Database.from_dict({"R": [(1, 2), (3, 4)]})
        facts = [("R", (x, y))]
        hom = find_homomorphism_restricted(facts, target, assignment={x: 3})
        assert hom is not None
        assert hom[x] == 3 and hom[y] == 4
        # An initial binding with no compatible row makes the search fail.
        assert find_homomorphism_restricted(facts, target, assignment={x: 2}) is None

    def test_empty_source_is_vacuously_satisfiable(self):
        target = Database.from_dict({"R": [(1, 2)]})
        hom = find_homomorphism_restricted([], target)
        assert hom is not None
        assert len(hom) == 0

    def test_missing_relation_fails_cleanly(self):
        target = Database.from_dict({"R": [(1, 2)]})
        assert find_homomorphism_restricted([("S", (Null("x"),))], target) is None
        assert find_homomorphism_restricted([("S", (1,))], target) is None

    @pytest.mark.parametrize("seed", range(25))
    def test_unindexed_search_parity(self, seed):
        # use_index=False (full scans) must agree with the indexed search on
        # existence, for plain, excluded and pre-assigned variants alike.
        database = random_database(
            num_relations=2,
            arity=2,
            rows_per_relation=4,
            num_constants=3,
            num_nulls=2 + seed % 2,
            seed=seed,
        )
        facts = sorted(
            (f for f in database.facts() if any(isinstance(v, Null) for v in f[1])),
            key=lambda f: (f[0], tuple(str(v) for v in f[1])),
        )
        if not facts:
            return
        nulls = sorted(database.nulls(), key=lambda n: n.name)
        variants = [
            dict(),
            dict(exclude=[facts[0]]),
            dict(exclude=facts[: max(1, len(facts) // 2)]),
            dict(assignment={nulls[0]: 1}),
            dict(exclude=[facts[-1]], assignment={nulls[0]: nulls[-1]}),
        ]
        for kwargs in variants:
            indexed = find_homomorphism_restricted(facts, database, **kwargs)
            scanned = find_homomorphism_restricted(facts, database, use_index=False, **kwargs)
            assert (indexed is None) == (scanned is None), (seed, kwargs)


class TestHelpers:
    def test_is_homomorphism_checks_mapping(self, source_with_nulls):
        target = Database.from_dict({"R": [(1, 5), (5, 2)]})
        assert is_homomorphism({Null("x"): 5}, source_with_nulls, target)
        assert not is_homomorphism({Null("x"): 6}, source_with_nulls, target)

    def test_hom_equivalent(self):
        left = Database.from_dict({"R": [(Null("x"), 1)]})
        right = Database.from_dict({"R": [(Null("y"), 1)]})
        assert hom_equivalent(left, right)
        other = Database.from_dict({"R": [(2, 1)]})
        assert not hom_equivalent(left, other)
