"""Unit tests for homomorphism search between incomplete instances."""

import pytest

from repro.datamodel import Database, Null
from repro.homomorphisms import (
    Homomorphism,
    all_homomorphisms,
    exists_homomorphism,
    exists_onto_homomorphism,
    exists_strong_onto_homomorphism,
    find_homomorphism,
    hom_equivalent,
    is_homomorphism,
)


@pytest.fixture
def source_with_nulls():
    return Database.from_dict({"R": [(1, Null("x")), (Null("x"), 2)]})


class TestHomomorphismObject:
    def test_fixes_constants(self):
        hom = Homomorphism({Null("x"): 5})
        assert hom("a") == "a"
        assert hom(Null("x")) == 5
        assert hom(Null("y")) == Null("y")

    def test_apply_row_and_database(self, source_with_nulls):
        hom = Homomorphism({Null("x"): 7})
        assert hom.apply_row((1, Null("x"))) == (1, 7)
        image = hom.apply(source_with_nulls)
        assert image["R"].rows == frozenset({(1, 7), (7, 2)})

    def test_is_valuation(self):
        assert Homomorphism({Null("x"): 5}).is_valuation()
        assert not Homomorphism({Null("x"): Null("y")}).is_valuation()

    def test_compose(self):
        first = Homomorphism({Null("x"): Null("y")})
        second = Homomorphism({Null("y"): 3})
        composed = first.compose(second)
        assert composed(Null("x")) == 3
        assert composed(Null("y")) == 3

    def test_mapping_protocol(self):
        hom = Homomorphism({Null("x"): 5})
        assert Null("x") in hom
        assert hom[Null("x")] == 5
        assert len(hom) == 1
        assert hom == Homomorphism({Null("x"): 5})
        assert hash(hom) == hash(Homomorphism({Null("x"): 5}))


class TestExistence:
    def test_hom_to_superset_instance(self, source_with_nulls):
        target = Database.from_dict({"R": [(1, 5), (5, 2), (9, 9)]})
        hom = find_homomorphism(source_with_nulls, target)
        assert hom is not None
        assert hom[Null("x")] == 5

    def test_no_hom_when_constants_block(self, source_with_nulls):
        target = Database.from_dict({"R": [(3, 5), (5, 2)]})
        assert find_homomorphism(source_with_nulls, target) is None

    def test_shared_null_must_be_mapped_consistently(self):
        source = Database.from_dict({"R": [(1, Null("x"))], "S": [(Null("x"), 2)]})
        good = Database.from_dict({"R": [(1, 5)], "S": [(5, 2)]})
        bad = Database.from_dict({"R": [(1, 5)], "S": [(6, 2)]})
        assert exists_homomorphism(source, good)
        assert not exists_homomorphism(source, bad)

    def test_nulls_can_map_to_nulls(self):
        source = Database.from_dict({"R": [(Null("x"),)]})
        target = Database.from_dict({"R": [(Null("y"),)]})
        assert exists_homomorphism(source, target)

    def test_schema_mismatch_gives_no_hom(self):
        source = Database.from_dict({"R": [(1,)]})
        target = Database.from_dict({"S": [(1,)]})
        assert find_homomorphism(source, target) is None
        assert all_homomorphisms(source, target) == []

    def test_empty_source_maps_anywhere(self):
        source = Database.from_dict({"R": []} if False else {"R": [(1,)]}).complete_part()
        source = Database(source.schema, {"R": []})
        target = Database(source.schema, {"R": [(1,)]})
        assert exists_homomorphism(source, target)

    def test_identity_hom_always_exists(self, source_with_nulls):
        assert exists_homomorphism(source_with_nulls, source_with_nulls)

    def test_all_homomorphisms_enumerates_distinct_maps(self):
        source = Database.from_dict({"R": [(Null("x"),)]})
        target = Database.from_dict({"R": [(1,), (2,)]})
        homs = all_homomorphisms(source, target)
        assert {h[Null("x")] for h in homs} == {1, 2}

    def test_all_homomorphisms_limit(self):
        source = Database.from_dict({"R": [(Null("x"),)]})
        target = Database.from_dict({"R": [(1,), (2,), (3,)]})
        assert len(all_homomorphisms(source, target, limit=2)) == 2


class TestOntoVariants:
    def test_strong_onto_requires_covering_all_facts(self):
        source = Database.from_dict({"R": [(Null("x"),)]})
        exact = Database.from_dict({"R": [(1,)]})
        bigger = Database.from_dict({"R": [(1,), (2,)]})
        assert exists_strong_onto_homomorphism(source, exact)
        assert not exists_strong_onto_homomorphism(source, bigger)
        assert exists_homomorphism(source, bigger)

    def test_strong_onto_allows_collapsing(self):
        source = Database.from_dict({"R": [(Null("x"),), (Null("y"),)]})
        target = Database.from_dict({"R": [(1,)]})
        assert exists_strong_onto_homomorphism(source, target)

    def test_onto_on_active_domain(self):
        source = Database.from_dict({"R": [(1, Null("x"))]})
        same_adom = Database.from_dict({"R": [(1, 1)]})
        new_value = Database.from_dict({"R": [(1, 1), (7, 7)]})
        assert exists_onto_homomorphism(source, same_adom)
        # The null can only map to 1 (so that R(1, x) lands in the target),
        # leaving the new active-domain element 7 uncovered.
        assert not exists_onto_homomorphism(source, new_value)
        assert exists_homomorphism(source, new_value)

    def test_onto_weaker_than_strong_onto(self):
        source = Database.from_dict({"R": [(1, Null("x"))]})
        target = Database.from_dict({"R": [(1, 1), (1, 1)]}).union(
            Database.from_dict({"R": [(1, 1)]})
        )
        # target has a single fact (1,1): both onto and strong onto hold.
        assert exists_onto_homomorphism(source, target)
        assert exists_strong_onto_homomorphism(source, target)
        # adding a fact over the same active domain keeps onto but breaks strong onto.
        extended = target.add_facts([("R", (1, 1))])
        assert exists_onto_homomorphism(source, extended)


class TestHelpers:
    def test_is_homomorphism_checks_mapping(self, source_with_nulls):
        target = Database.from_dict({"R": [(1, 5), (5, 2)]})
        assert is_homomorphism({Null("x"): 5}, source_with_nulls, target)
        assert not is_homomorphism({Null("x"): 6}, source_with_nulls, target)

    def test_hom_equivalent(self):
        left = Database.from_dict({"R": [(Null("x"), 1)]})
        right = Database.from_dict({"R": [(Null("y"), 1)]})
        assert hom_equivalent(left, right)
        other = Database.from_dict({"R": [(2, 1)]})
        assert not hom_equivalent(left, other)
