"""Unit tests for cores of incomplete instances."""

from repro.datamodel import Database, Null
from repro.homomorphisms import core, exists_homomorphism, is_core, retract


class TestCore:
    def test_redundant_null_fact_removed(self):
        db = Database.from_dict({"R": [(1, 2), (1, Null("x"))]})
        result = core(db)
        assert result.size() == 1
        assert result["R"].rows == frozenset({(1, 2)})

    def test_complete_instance_is_its_own_core(self):
        db = Database.from_dict({"R": [(1, 2), (3, 4)]})
        assert core(db) == db

    def test_non_redundant_nulls_kept(self):
        db = Database.from_dict({"R": [(1, Null("x")), (2, Null("y"))]})
        result = core(db)
        assert result.size() == 2

    def test_chained_redundancy(self):
        x, y = Null("x"), Null("y")
        db = Database.from_dict({"R": [(1, 2), (1, x), (x, y)]})
        result = core(db)
        # (1, x) folds onto (1, 2) with x -> 2, then (x, y) needs R(2, ?): absent,
        # so (x, y) must map onto (1,2) too, requiring x -> 1: conflicting
        # retractions are applied one at a time, so the algorithm settles on a
        # sub-instance admitting a retraction from the original.
        assert exists_homomorphism(db, result)
        assert is_core(result)

    def test_core_is_homomorphically_equivalent(self):
        db = Database.from_dict({"R": [(1, Null("x")), (1, 2), (Null("y"), 3)]})
        result = core(db)
        assert exists_homomorphism(db, result)
        assert exists_homomorphism(result, db)

    def test_is_core_detects_redundancy(self):
        redundant = Database.from_dict({"R": [(1, 2), (1, Null("x"))]})
        minimal = Database.from_dict({"R": [(1, 2)]})
        assert not is_core(redundant)
        assert is_core(minimal)

    def test_retract_returns_core_and_retraction(self):
        db = Database.from_dict({"R": [(1, 2), (1, Null("x"))]})
        core_db, hom = retract(db)
        assert core_db.size() == 1
        assert hom is not None
        assert hom.apply(db).contains_database(core_db)

    def test_exchange_style_core(self):
        """The chase result of the paper's mapping example is already a core."""
        x1, x2 = Null("c1"), Null("c2")
        db = Database.from_dict(
            {"Cust": [(x1,), (x2,)], "Pref": [(x1, "pr1"), (x2, "pr2")]}
        )
        assert is_core(db)
        assert core(db) == db
