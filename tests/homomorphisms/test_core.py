"""Unit tests for cores of incomplete instances."""

import pytest

from repro.datamodel import Database, Null
from repro.homomorphisms import core, exists_homomorphism, is_core, retract

ALGORITHMS = ("block", "greedy")


class TestCore:
    def test_redundant_null_fact_removed(self):
        db = Database.from_dict({"R": [(1, 2), (1, Null("x"))]})
        result = core(db)
        assert result.size() == 1
        assert result["R"].rows == frozenset({(1, 2)})

    def test_complete_instance_is_its_own_core(self):
        db = Database.from_dict({"R": [(1, 2), (3, 4)]})
        assert core(db) == db

    def test_non_redundant_nulls_kept(self):
        db = Database.from_dict({"R": [(1, Null("x")), (2, Null("y"))]})
        result = core(db)
        assert result.size() == 2

    def test_chained_redundancy(self):
        x, y = Null("x"), Null("y")
        db = Database.from_dict({"R": [(1, 2), (1, x), (x, y)]})
        result = core(db)
        # (1, x) folds onto (1, 2) with x -> 2, then (x, y) needs R(2, ?): absent,
        # so (x, y) must map onto (1,2) too, requiring x -> 1: conflicting
        # retractions are applied one at a time, so the algorithm settles on a
        # sub-instance admitting a retraction from the original.
        assert exists_homomorphism(db, result)
        assert is_core(result)

    def test_core_is_homomorphically_equivalent(self):
        db = Database.from_dict({"R": [(1, Null("x")), (1, 2), (Null("y"), 3)]})
        result = core(db)
        assert exists_homomorphism(db, result)
        assert exists_homomorphism(result, db)

    def test_is_core_detects_redundancy(self):
        redundant = Database.from_dict({"R": [(1, 2), (1, Null("x"))]})
        minimal = Database.from_dict({"R": [(1, 2)]})
        assert not is_core(redundant)
        assert is_core(minimal)

    def test_retract_returns_core_and_retraction(self):
        db = Database.from_dict({"R": [(1, 2), (1, Null("x"))]})
        core_db, hom = retract(db)
        assert core_db.size() == 1
        assert hom is not None
        assert hom.apply(db).contains_database(core_db)

    def test_exchange_style_core(self):
        """The chase result of the paper's mapping example is already a core."""
        x1, x2 = Null("c1"), Null("c2")
        db = Database.from_dict(
            {"Cust": [(x1,), (x2,)], "Pref": [(x1, "pr1"), (x2, "pr2")]}
        )
        assert is_core(db)
        assert core(db) == db


class TestAlgorithms:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_redundant_blocks_collapse(self, algorithm):
        # Two chase-style blocks over the same product: one is redundant.
        x1, x2 = Null("c1"), Null("c2")
        db = Database.from_dict(
            {"Cust": [(x1,), (x2,)], "Pref": [(x1, "pr"), (x2, "pr")]}
        )
        result = core(db, algorithm=algorithm)
        assert result.size() == 2
        assert len(result["Cust"]) == 1 and len(result["Pref"]) == 1

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_whole_block_folds_onto_ground_facts(self, algorithm):
        x = Null("x")
        db = Database.from_dict({"R": [(1, x), (x, 2), (1, 2), (2, 2)]})
        result = core(db, algorithm=algorithm)
        assert result["R"].rows == frozenset({(1, 2), (2, 2)})

    def test_unknown_algorithm_rejected(self):
        db = Database.from_dict({"R": [(1, Null("x"))]})
        with pytest.raises(ValueError):
            core(db, algorithm="magic")
        with pytest.raises(ValueError):
            is_core(db, algorithm="magic")
        with pytest.raises(ValueError):
            retract(db, algorithm="magic")

    def test_block_retraction_maps_exactly_onto_core(self):
        x, y = Null("x"), Null("y")
        db = Database.from_dict({"R": [(1, x), (x, y), (1, 5), (5, 5)]})
        core_db, hom = retract(db)
        assert hom is not None
        # The accumulated per-block retraction is onto: its image is the core.
        assert hom.apply(db) == core_db
        assert is_core(core_db)


class TestIsCoreIncremental:
    """``is_core`` rides the same per-block retraction checks as ``core``."""

    def test_null_shared_across_relations_detected(self):
        # Dropping Pref(x, "a") needs x → 1 to be consistent with Cust(x) too;
        # the block spans both relations, so the incremental check must
        # search them together.
        x = Null("x")
        redundant = Database.from_dict(
            {"Cust": [(x,), (1,)], "Pref": [(x, "a"), (1, "a")]}
        )
        assert not is_core(redundant)
        assert not is_core(redundant, algorithm="greedy")

    def test_null_shared_across_relations_non_redundant(self):
        # Same shape, but the ground facts disagree on the product: the
        # block cannot fold anywhere, the instance is its own core.
        x = Null("x")
        minimal = Database.from_dict(
            {"Cust": [(x,), (1,)], "Pref": [(x, "a"), (1, "b")]}
        )
        assert is_core(minimal)
        assert is_core(minimal, algorithm="greedy")
        assert core(minimal) == minimal

    def test_singleton_blocks(self):
        # Codd-style nulls: every null occurs once, each fact is its own
        # block, and redundancy is decided fact-locally.
        redundant = Database.from_dict({"R": [(1, Null("x")), (1, 2)]})
        minimal = Database.from_dict({"R": [(1, Null("x")), (3, 2)]})
        assert not is_core(redundant)
        assert is_core(minimal)

    def test_ground_instances_are_cores(self):
        db = Database.from_dict({"R": [(1, 2), (3, 4)], "S": [(5,)]})
        assert is_core(db)
        assert is_core(db, algorithm="greedy")

    def test_two_blocks_each_required(self):
        x, y = Null("x"), Null("y")
        db = Database.from_dict({"R": [(1, x), (2, y)]})
        assert is_core(db)
        assert core(db) == db
