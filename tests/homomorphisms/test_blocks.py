"""Unit tests for the null-sharing block decomposition."""

from repro.datamodel import Database, Null
from repro.homomorphisms import Block, fact_components, largest_block_size, null_blocks


def _block_fact_sets(database):
    return [set(block.facts) for block in null_blocks(database)]


class TestNullBlocks:
    def test_ground_instance_has_no_blocks(self):
        db = Database.from_dict({"R": [(1, 2), (3, 4)]})
        assert null_blocks(db) == ()
        assert largest_block_size(db) == 0

    def test_codd_nulls_give_singleton_blocks(self):
        db = Database.from_dict({"R": [(1, Null("x")), (2, Null("y")), (3, 4)]})
        blocks = null_blocks(db)
        assert len(blocks) == 2
        assert all(len(block) == 1 for block in blocks)
        assert {next(iter(block.nulls)).name for block in blocks} == {"x", "y"}

    def test_shared_null_across_relations_merges_facts(self):
        x = Null("x")
        db = Database.from_dict({"R": [(1, x)], "S": [(x, 2)], "T": [(9,)]})
        blocks = null_blocks(db)
        assert len(blocks) == 1
        assert set(blocks[0].facts) == {("R", (1, x)), ("S", (x, 2))}
        assert blocks[0].nulls == frozenset({x})

    def test_transitive_null_chains_form_one_block(self):
        x, y, z = Null("x"), Null("y"), Null("z")
        db = Database.from_dict({"R": [(x, y), (y, z), (1, 2)], "S": [(z,)]})
        blocks = null_blocks(db)
        assert len(blocks) == 1
        assert blocks[0].nulls == frozenset({x, y, z})
        assert len(blocks[0]) == 3
        assert largest_block_size(db) == 3

    def test_disjoint_null_groups_stay_separate(self):
        x, y = Null("x"), Null("y")
        db = Database.from_dict({"R": [(x, x), (y, 1), (y, 2)]})
        assert sorted(len(b) for b in null_blocks(db)) == [1, 2]

    def test_blocks_are_cached_on_the_instance(self):
        db = Database.from_dict({"R": [(1, Null("x"))]})
        assert null_blocks(db) is null_blocks(db)

    def test_blocks_are_deterministic_across_equal_instances(self):
        def build():
            return Database.from_dict(
                {"R": [(1, Null("x")), (Null("y"), 2), (3, 3)], "S": [(Null("y"),)]}
            )

        first = [block.facts for block in null_blocks(build())]
        second = [block.facts for block in null_blocks(build())]
        assert first == second


class TestFactComponents:
    def test_ground_facts_are_skipped(self):
        assert fact_components([("R", (1, 2)), ("S", (3,))]) == []

    def test_components_split_after_removal(self):
        x, y, z = Null("x"), Null("y"), Null("z")
        facts = [("R", (x, y)), ("R", (y, z)), ("R", (z, x))]
        assert len(fact_components(facts)) == 1
        # Dropping the middle fact leaves x...y and z connected through the
        # surviving triangle edge (z, x): still one component.
        assert len(fact_components([("R", (x, y)), ("R", (z, x))])) == 1
        # Dropping (z, x) instead disconnects nothing either — y bridges.
        assert len(fact_components([("R", (x, y)), ("R", (y, z))])) == 1
        # Only two disjoint edges actually split.
        assert len(fact_components([("R", (x, y)), ("R", (z, z))])) == 2

    def test_block_repr_and_iteration(self):
        block = Block([("R", (1, Null("x")))])
        assert list(block) == [("R", (1, Null("x")))]
        assert "facts=1" in repr(block)
