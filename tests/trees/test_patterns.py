"""Unit tests for tree patterns and their certain answers."""

import pytest

from repro.datamodel import Null
from repro.logic import var
from repro.trees import (
    DataTree,
    PatternNode,
    TreePattern,
    certain_answers_tree_pattern,
    naive_certain_answers_tree_pattern,
)

X, Y = var("x"), var("y")


@pytest.fixture
def catalog():
    return DataTree(
        "catalog",
        children=[
            DataTree(
                "book",
                children=[
                    DataTree("title", value="logic"),
                    DataTree("author", value="ann"),
                    DataTree("year", value=2001),
                ],
            ),
            DataTree(
                "book",
                children=[
                    DataTree("title", value="nulls"),
                    DataTree("author", value=Null("a")),
                ],
            ),
        ],
    )


class TestPatternConstruction:
    def test_edge_types_validated(self):
        with pytest.raises(ValueError):
            PatternNode("a", children=[("sibling", PatternNode("b"))])
        with pytest.raises(TypeError):
            PatternNode("a", children=[("child", "not a pattern")])

    def test_output_variables_must_occur(self):
        with pytest.raises(ValueError):
            TreePattern(PatternNode("a", value=X), output=(Y,))

    def test_str_rendering(self):
        pattern = PatternNode(
            "book",
            children=[("child", PatternNode("title", value="logic")), ("descendant", PatternNode(None, value=X))],
        )
        text = str(pattern)
        assert "book" in text and "//" in text and "*" in text

    def test_variables(self):
        pattern = PatternNode("book", children=[("child", PatternNode("title", value=X))])
        assert pattern.variables() == {X}


class TestMatching:
    def test_child_edge(self, catalog):
        pattern = TreePattern(
            PatternNode("book", children=[("child", PatternNode("title", value=X))]),
            output=(X,),
        )
        assert pattern.evaluate(catalog).rows == {("logic",), ("nulls",)}

    def test_descendant_edge(self, catalog):
        pattern = TreePattern(
            PatternNode("catalog", children=[("descendant", PatternNode("title", value=X))]),
            output=(X,),
        )
        assert pattern.evaluate(catalog).rows == {("logic",), ("nulls",)}

    def test_child_edge_does_not_skip_levels(self, catalog):
        pattern = TreePattern(
            PatternNode("catalog", children=[("child", PatternNode("title", value=X))]),
            output=(X,),
        )
        assert pattern.evaluate(catalog).rows == frozenset()

    def test_wildcard_label(self, catalog):
        pattern = TreePattern(
            PatternNode("book", children=[("child", PatternNode(None, value=X))]),
            output=(X,),
        )
        assert ("ann",) in pattern.evaluate(catalog).rows
        assert (2001,) in pattern.evaluate(catalog).rows

    def test_constant_value_constraint(self, catalog):
        pattern = TreePattern(
            PatternNode(
                "book",
                children=[
                    ("child", PatternNode("title", value="logic")),
                    ("child", PatternNode("author", value=X)),
                ],
            ),
            output=(X,),
        )
        assert pattern.evaluate(catalog).rows == {("ann",)}

    def test_value_constraint_requires_a_data_value(self):
        tree = DataTree("a", children=[DataTree("b")])
        pattern = TreePattern(PatternNode("b", value=X), output=(X,))
        assert pattern.evaluate(tree).rows == frozenset()

    def test_repeated_variable_forces_equal_values(self):
        tree = DataTree(
            "r",
            children=[
                DataTree("p", children=[DataTree("a", value=1), DataTree("b", value=1)]),
                DataTree("p", children=[DataTree("a", value=1), DataTree("b", value=2)]),
            ],
        )
        pattern = TreePattern(
            PatternNode(
                "p",
                children=[("child", PatternNode("a", value=X)), ("child", PatternNode("b", value=X))],
            ),
            output=(X,),
        )
        assert pattern.evaluate(tree).rows == {(1,)}

    def test_anchored_pattern_only_matches_the_root(self, catalog):
        anchored = TreePattern(PatternNode("book"), anchored=True)
        floating = TreePattern(PatternNode("book"))
        assert not anchored.evaluate_boolean(catalog)
        assert floating.evaluate_boolean(catalog)

    def test_boolean_pattern(self, catalog):
        assert TreePattern(PatternNode("year")).evaluate_boolean(catalog)
        assert not TreePattern(PatternNode("isbn")).evaluate_boolean(catalog)


class TestCertainAnswers:
    def test_null_valued_answers_are_not_certain(self, catalog):
        pattern = TreePattern(
            PatternNode("book", children=[("child", PatternNode("author", value=X))]),
            output=(X,),
        )
        naive = pattern.evaluate(catalog).rows
        certain = naive_certain_answers_tree_pattern(pattern, catalog).rows
        assert (Null("a"),) in naive
        assert certain == {("ann",)}

    def test_naive_matches_enumeration(self, catalog):
        pattern = TreePattern(
            PatternNode("book", children=[("child", PatternNode("author", value=X))]),
            output=(X,),
        )
        assert (
            naive_certain_answers_tree_pattern(pattern, catalog).rows
            == certain_answers_tree_pattern(pattern, catalog).rows
        )

    def test_shared_null_equality_is_certain(self):
        tree = DataTree(
            "r",
            children=[
                DataTree("p", value="left", children=[DataTree("v", value=Null("s"))]),
                DataTree("p", value="right", children=[DataTree("v", value=Null("s"))]),
            ],
        )
        pattern = TreePattern(
            PatternNode(
                "r",
                children=[
                    ("child", PatternNode("p", value=X, children=[("child", PatternNode("v", value=Y))])),
                    ("child", PatternNode("p", value="right", children=[("child", PatternNode("v", value=Y))])),
                ],
            ),
            output=(X,),
        )
        certain = naive_certain_answers_tree_pattern(pattern, tree).rows
        assert ("left",) in certain
        assert certain == certain_answers_tree_pattern(pattern, tree).rows

    def test_distinct_nulls_do_not_certainly_agree(self):
        tree = DataTree(
            "r",
            children=[
                DataTree("p", value="left", children=[DataTree("v", value=Null("s1"))]),
                DataTree("p", value="right", children=[DataTree("v", value=Null("s2"))]),
            ],
        )
        pattern = TreePattern(
            PatternNode(
                "r",
                children=[
                    ("child", PatternNode("p", value="left", children=[("child", PatternNode("v", value=Y))])),
                    ("child", PatternNode("p", value="right", children=[("child", PatternNode("v", value=Y))])),
                ],
            ),
        )
        assert pattern.is_boolean()
        assert naive_certain_answers_tree_pattern(pattern, tree).rows == frozenset()
        assert certain_answers_tree_pattern(pattern, tree).rows == set()
