"""Unit tests for the incomplete data-tree model."""

import pytest

from repro.datamodel import Null, Valuation
from repro.trees import DataTree, tree_from_nested


@pytest.fixture
def order_tree():
    return DataTree(
        "orders",
        children=[
            DataTree(
                "order",
                children=[DataTree("id", value="oid1"), DataTree("payer", value=Null("p"))],
            ),
            DataTree(
                "order",
                children=[DataTree("id", value="oid2"), DataTree("payer", value="ann")],
            ),
        ],
    )


class TestConstruction:
    def test_label_must_be_a_string(self):
        with pytest.raises(TypeError):
            DataTree(123)
        with pytest.raises(TypeError):
            DataTree("")

    def test_children_must_be_trees(self):
        with pytest.raises(TypeError):
            DataTree("a", children=["not a tree"])

    def test_none_value_means_no_data(self):
        node = DataTree("a")
        assert node.value is None
        assert node.values() == []

    def test_nested_builder(self):
        tree = tree_from_nested(("order", None, [("id", "oid1"), "note"]))
        assert tree.size() == 3
        assert tree.labels() == {"order", "id", "note"}
        with pytest.raises(ValueError):
            tree_from_nested(42)

    def test_nested_builder_accepts_existing_trees(self):
        inner = DataTree("x", value=1)
        assert tree_from_nested(inner) is inner


class TestMeasurements:
    def test_size_and_depth(self, order_tree):
        assert order_tree.size() == 7
        assert order_tree.depth() == 3
        assert DataTree("leaf").depth() == 1

    def test_nodes_and_descendants(self, order_tree):
        assert len(list(order_tree.nodes())) == 7
        assert len(list(order_tree.descendants())) == 6

    def test_labels_values_nulls_constants(self, order_tree):
        assert order_tree.labels() == {"orders", "order", "id", "payer"}
        assert {n.name for n in order_tree.nulls()} == {"p"}
        assert order_tree.constants() == {"oid1", "oid2", "ann"}
        assert not order_tree.is_complete()

    def test_to_text(self, order_tree):
        text = order_tree.to_text()
        assert "orders" in text
        assert "id = oid1" in text


class TestEqualityIsUnordered:
    def test_permuted_children_are_equal(self):
        left = DataTree("r", children=[DataTree("a", value=1), DataTree("b", value=2)])
        right = DataTree("r", children=[DataTree("b", value=2), DataTree("a", value=1)])
        assert left == right
        assert hash(left) == hash(right)

    def test_different_values_are_not_equal(self):
        assert DataTree("a", value=1) != DataTree("a", value=2)
        assert DataTree("a") != DataTree("b")

    def test_different_child_counts_are_not_equal(self):
        assert DataTree("r", children=[DataTree("a")]) != DataTree("r")


class TestValuations:
    def test_apply_valuation(self, order_tree):
        world = order_tree.apply_valuation(Valuation({Null("p"): "bob"}))
        assert world.is_complete()
        assert "bob" in world.constants()
        assert order_tree.nulls(), "the original tree is unchanged"

    def test_map_values_only_touches_data(self, order_tree):
        upper = order_tree.map_values(lambda v: str(v).upper() if not isinstance(v, Null) else v)
        assert "OID1" in upper.constants()
        assert upper.labels() == order_tree.labels()

    def test_with_children(self):
        node = DataTree("a", value=1)
        extended = node.with_children([DataTree("b")])
        assert extended.size() == 2
        assert node.size() == 1
