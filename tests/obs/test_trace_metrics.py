"""Unit behavior of the two observability primitives.

``repro.obs.trace``: span nesting through contextvars, both sinks, the
no-op disabled path, cross-process serialization/absorption, and the
``REPRO_TRACE`` process default.  ``repro.obs.metrics``: counter /
gauge / histogram semantics, disabled registries, and worker-delta
merging.  Thread-level guarantees live in ``test_concurrency.py``.
"""

import json

import pytest

import repro
from repro import Database, MetricsRegistry, Null, Tracer
from repro.algebra import parse_ra
from repro.obs import (
    DISABLED_METRICS,
    JSONLSink,
    RingBufferSink,
    current_metrics,
    current_tracer,
    entry_scope,
    metrics_scope,
    obs_scope,
    serialize_spans,
    span,
)


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counters_sum_and_default_increment(self):
        registry = MetricsRegistry()
        registry.count("a")
        registry.count("a")
        registry.count("b", 5)
        assert registry.counter_value("a") == 2
        assert registry.counters() == {"a": 2, "b": 5}
        assert registry.counter_value("missing") == 0

    def test_histograms_track_count_sum_min_max_mean(self):
        registry = MetricsRegistry()
        for sample in (0.5, 0.1, 0.4):
            registry.observe("lat", sample)
        histogram = registry.histograms()["lat"]
        assert histogram["count"] == 3
        assert histogram["sum"] == pytest.approx(1.0)
        assert histogram["min"] == pytest.approx(0.1)
        assert histogram["max"] == pytest.approx(0.5)
        assert histogram["mean"] == pytest.approx(1.0 / 3)

    def test_gauges_are_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("depth", 3)
        registry.gauge("depth", 1)
        assert registry.gauges() == {"depth": 1}

    def test_merge_counts_folds_worker_deltas_in(self):
        registry = MetricsRegistry()
        registry.count("worlds.evaluated", 2)
        registry.merge_counts({"worlds.evaluated": 7, "other": 1})
        registry.merge_counts({})
        assert registry.counter_value("worlds.evaluated") == 9
        assert registry.counter_value("other") == 1

    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        registry.count("a")
        registry.observe("h", 1.0)
        registry.gauge("g", 1.0)
        registry.merge_counts({"a": 3})
        assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
        assert not DISABLED_METRICS.enabled

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.count("c")
        registry.observe("h", 0.25)
        registry.gauge("g", 4)
        snapshot = registry.snapshot()
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        assert snapshot["counters"] == {"c": 1}
        assert snapshot["gauges"] == {"g": 4}
        assert snapshot["histograms"]["h"]["count"] == 1

    def test_metrics_scope_arms_and_restores_ambient_registry(self):
        registry = MetricsRegistry()
        assert current_metrics() is None
        with metrics_scope(registry) as armed:
            assert armed is registry
            assert current_metrics() is registry
        assert current_metrics() is None

    def test_metrics_scope_ignores_none_and_disabled(self):
        with metrics_scope(None) as armed:
            assert armed is None
            assert current_metrics() is None
        with metrics_scope(DISABLED_METRICS) as armed:
            assert armed is None
            assert current_metrics() is None


# ---------------------------------------------------------------------------
# tracing
# ---------------------------------------------------------------------------
class TestTracer:
    def test_spans_nest_through_the_ambient_context(self):
        tracer = Tracer()
        with obs_scope(tracer, None):
            with tracer.span("outer", kind="test") as outer:
                with span("inner") as inner:
                    inner.set(rows=3)
        spans = {s.name: s for s in tracer.spans()}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["outer"].parent_id is None
        assert spans["inner"].attrs == {"rows": 3}
        assert spans["outer"].attrs == {"kind": "test"}
        assert spans["outer"].duration >= spans["inner"].duration >= 0

    def test_module_span_is_shared_noop_when_tracing_is_off(self):
        assert current_tracer() is None
        first = span("anything", a=1)
        second = span("else")
        assert first is second  # the shared no-op scope, no allocation
        with first as sp:
            assert sp.set(rows=1) is sp  # attribute setting is accepted

    def test_exception_marks_span_status(self):
        tracer = Tracer()
        with obs_scope(tracer, None):
            with pytest.raises(ValueError):
                with tracer.span("failing"):
                    raise ValueError("boom")
        (failing,) = tracer.spans()
        assert failing.status == "ValueError"

    def test_record_and_event_hang_off_the_ambient_span(self):
        tracer = Tracer()
        with obs_scope(tracer, None):
            with tracer.span("parent"):
                tracer.record("timed", 0.125, rows=2)
                tracer.event("marker", note="x")
        spans = {s.name: s for s in tracer.spans()}
        assert spans["timed"].parent_id == spans["parent"].span_id
        assert spans["timed"].duration == pytest.approx(0.125)
        assert spans["marker"].parent_id == spans["parent"].span_id
        assert spans["marker"].duration == 0.0

    def test_ring_buffer_sink_is_bounded(self):
        tracer = Tracer(RingBufferSink(maxlen=4))
        for index in range(10):
            tracer.record(f"s{index}")
        names = [s.name for s in tracer.spans()]
        assert names == ["s6", "s7", "s8", "s9"]

    def test_serialize_and_absorb_remap_ids_and_reparent(self):
        child = Tracer()
        with obs_scope(child, None):
            with child.span("chunk.work") as work:
                child.record("world", 0.01)
        shipped = serialize_spans(child)
        assert all(isinstance(data, dict) for data in shipped)

        parent = Tracer()
        anchor = parent.record("enumerate.chunk")
        parent.absorb(shipped, parent_id=anchor.span_id)
        absorbed = {s.name: s for s in parent.spans()}
        # Child-internal nesting preserved; top level re-parented onto anchor.
        assert absorbed["chunk.work"].parent_id == anchor.span_id
        assert absorbed["world"].parent_id == absorbed["chunk.work"].span_id
        assert absorbed["chunk.work"].span_id != work.span_id or True  # ids remapped
        ids = [s.span_id for s in parent.spans()]
        assert len(ids) == len(set(ids))

    def test_absorb_empty_is_a_noop(self):
        tracer = Tracer()
        tracer.absorb([])
        assert tracer.spans() == []

    def test_jsonl_sink_writes_one_object_per_span(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(JSONLSink(str(path)))
        with obs_scope(tracer, None):
            with tracer.span("query.certain", rows=Null("n")):
                pass
        tracer.sink.close()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["name"] == "query.certain"
        assert record["status"] == "ok"
        assert "Null" in record["attrs"]["rows"]  # non-JSON values go via repr
        with pytest.raises(TypeError):
            tracer.spans()  # file sinks do not buffer

    def test_entry_scope_counts_times_and_opens_span(self):
        tracer = Tracer()
        registry = MetricsRegistry()
        with entry_scope(tracer, registry, "query.certain") as sp:
            assert current_tracer() is tracer
            assert current_metrics() is registry
            sp.set(mode="test")
        assert current_tracer() is None
        assert registry.counter_value("query.certain") == 1
        assert registry.histograms()["query.certain.seconds"]["count"] == 1
        (entry,) = tracer.spans()
        assert entry.name == "query.certain"
        assert entry.attrs == {"mode": "test"}

    def test_entry_scope_is_shared_noop_when_everything_off(self):
        disabled = entry_scope(None, DISABLED_METRICS, "query.certain")
        assert disabled is entry_scope(None, None, "query.possible")


# ---------------------------------------------------------------------------
# session wiring
# ---------------------------------------------------------------------------
QUERY = parse_ra("project[#0](R)")


def _database():
    return Database.from_dict({"R": [(1, 2), (2, 3), (Null("x"), 4)]})


class TestSessionWiring:
    def test_session_entry_points_trace_and_count(self):
        tracer = Tracer()
        with repro.connect(_database(), tracer=tracer) as session:
            query = session.query(QUERY)
            query.certain()
            query.possible()
            query.boolean()
        names = {s.name for s in tracer.spans()}
        assert {"query.certain", "query.possible", "query.boolean"} <= names
        counters = session.metrics()["counters"]
        assert counters["query.certain"] == 1
        assert counters["query.possible"] == 1
        assert counters["query.boolean"] == 1

    def test_plan_cache_counters_reach_session_metrics(self):
        with repro.connect(_database(), engine="plan") as session:
            query = session.query(QUERY)
            query.certain()
            query.certain()
            stats = session.plan_cache_stats()
        assert stats["misses"] >= 1
        assert stats["hits"] >= 1
        metrics = session.metrics()
        assert metrics["plan_cache"] == stats
        assert "kernel" in metrics

    def test_metrics_false_disables_recording(self):
        with repro.connect(_database(), metrics=False) as session:
            session.query(QUERY).certain()
            snapshot = session.metrics()
        assert snapshot["counters"] == {}
        assert snapshot["histograms"] == {}

    def test_env_tracer_defaults_sessions_to_jsonl(self, tmp_path, monkeypatch):
        path = tmp_path / "env-trace.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(path))
        with repro.connect(_database()) as session:
            assert isinstance(session.tracer.sink, JSONLSink)
            session.query(QUERY).certain()
        lines = path.read_text().strip().splitlines()
        assert any(json.loads(line)["name"] == "query.certain" for line in lines)

    def test_no_env_var_means_no_tracer(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        with repro.connect(_database()) as session:
            assert session.tracer is None

    def test_sqlite_backend_spans_nest_under_entry(self):
        tracer = Tracer()
        with repro.connect(_database(), engine="sqlite", tracer=tracer) as session:
            session.query(QUERY).certain()
        spans = {s.name: s for s in tracer.spans()}
        assert "backend.evaluate" in spans
        entry = spans["query.certain"]
        backend = spans["backend.evaluate"]
        # The backend span hangs somewhere under the entry span.
        parents = {s.span_id: s.parent_id for s in tracer.spans()}
        cursor = backend.parent_id
        seen = set()
        while cursor is not None and cursor not in seen:
            if cursor == entry.span_id:
                break
            seen.add(cursor)
            cursor = parents.get(cursor)
        assert cursor == entry.span_id
        assert backend.attrs["rows"] >= 0

    def test_retry_attempts_are_counted(self):
        from repro.resilience import RetryPolicy, with_retries

        registry = MetricsRegistry()
        tracer = Tracer()
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        policy = RetryPolicy(
            retries=4, base_delay=0.0, retryable=lambda e: isinstance(e, OSError)
        )
        with obs_scope(tracer, registry):
            result = with_retries(flaky, policy=policy, sleep=lambda _s: None)
        assert result == "ok"
        assert registry.counter_value("retry.attempts") == 2
        assert sum(1 for s in tracer.spans() if s.name == "retry.attempt") == 2
