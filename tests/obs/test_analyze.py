"""``Query.analyze()`` / ``explain(analyze=True)``: the numbers are real.

The load-bearing test here is the randomized differential the ISSUE
demands: across 100+ generated queries (positive / RA_cwa / full RA)
the row count ``analyze()`` reports must equal the cardinality of the
actual naive-evaluation answer computed by the independent interpreter
oracle — on the plan engine *and* the sqlite engine.  Around it:
per-operator row counts on handcrafted plans, sqlite statement timings
and temp-table spill counts, fallback notes, and the rendering glue.
"""

import pytest

import repro
from repro import Database, Null
from repro.algebra import parse_ra
from repro.algebra.ast import RAExpression
from repro.resilience import InvalidRequestError
from repro.workloads.generators import (
    random_database,
    random_full_ra_query,
    random_positive_query,
    random_ra_cwa_query,
)


def _reference_rows(query, database):
    """Independent oracle: the tree-walking interpreter's answer cardinality."""
    return len(query.evaluate(database, engine="interpreter"))


# ---------------------------------------------------------------------------
# the randomized differential (>= 100 queries, both engines)
# ---------------------------------------------------------------------------
def _cases():
    cases = []
    for seed in range(60):
        database = random_database(
            num_relations=2, arity=2, rows_per_relation=6, seed=seed % 7
        )
        cases.append((random_positive_query(database.schema, depth=3, seed=seed), database))
    for seed in range(20):
        database = random_database(
            num_relations=2, arity=2, rows_per_relation=5, seed=seed % 5
        )
        cases.append(
            (random_ra_cwa_query(database.schema, "R0", "R1", seed=seed), database)
        )
    for seed in range(20):
        database = random_database(
            num_relations=3, arity=2, rows_per_relation=5, seed=seed % 5
        )
        cases.append((random_full_ra_query(database.schema, seed=seed), database))
    return cases


CASES = _cases()
assert len(CASES) >= 100


@pytest.mark.parametrize("engine", ["plan", "sqlite"])
def test_analyze_row_counts_match_actual_cardinalities(engine):
    mismatches = []
    for index, (query, database) in enumerate(CASES):
        expected = _reference_rows(query, database)
        with repro.connect(database, engine=engine) as session:
            report = session.query(query).analyze()
        if report.rows != expected:
            mismatches.append((index, report.engine, report.rows, expected))
    assert not mismatches, f"analyze() row counts diverged: {mismatches[:5]}"


def test_analyze_operator_rows_are_consistent_on_the_plan_engine():
    # For every case, each operator's reported rows must be a real count
    # and the root operator's count must equal the reported answer rows.
    for query, database in CASES[:25]:
        with repro.connect(database, engine="plan") as session:
            report = session.query(query).analyze()
        assert report.engine == "plan"
        assert report.root is not None

        def walk(node):
            assert node.rows is None or node.rows >= 0
            if node.rows is not None:
                assert node.calls >= 1
            for child in node.children:
                walk(child)

        walk(report.root)
        assert report.root.rows == report.rows


# ---------------------------------------------------------------------------
# handcrafted per-operator counts
# ---------------------------------------------------------------------------
def _database():
    return Database.from_dict(
        {
            "R": [(1, 10), (2, 20), (3, 30), (Null("x"), 40)],
            "S": [(10, "a"), (20, "b")],
        }
    )


def _collect(root):
    out = {}

    def walk(node):
        out.setdefault(node.name, []).append(node)
        for child in node.children:
            walk(child)

    walk(root)
    return out


def test_scan_and_project_row_counts():
    database = _database()
    with repro.connect(database, engine="plan") as session:
        report = session.query(parse_ra("project[#0](R)")).analyze()
    by_name = _collect(report.root)
    (scan,) = by_name["Scan"]
    assert scan.rows == 4
    (project,) = by_name["Project"]
    assert project.rows == 4  # all four first-column values are distinct
    assert report.rows == 4


def test_join_row_counts_reflect_matches():
    database = _database()
    query = parse_ra("project[#0](select[#1 = #2](product(R, S)))")
    with repro.connect(database, engine="plan") as session:
        report = session.query(query).analyze()
    by_name = _collect(report.root)
    scan_rows = sorted(node.rows for node in by_name["Scan"])
    assert scan_rows == [2, 4]  # S has two rows, R four
    # Two R rows have a matching S row; the join output and the final
    # projection both carry exactly those two.
    assert report.rows == 2
    assert report.root.rows == 2


def test_memo_hits_are_counted_for_shared_subplans():
    database = _database()
    # The same subexpression twice: the planner CSEs it, the second
    # evaluation must be a memo hit, not a recomputation.
    query = parse_ra("intersect(project[#0](R), project[#0](R))")
    with repro.connect(database, engine="plan") as session:
        report = session.query(query).analyze()
    total_hits = 0

    def walk(node):
        nonlocal total_hits
        total_hits += node.memo_hits
        for child in node.children:
            walk(child)

    walk(report.root)
    assert total_hits >= 1
    assert report.rows == 4


# ---------------------------------------------------------------------------
# sqlite-specific reporting
# ---------------------------------------------------------------------------
def test_sqlite_analyze_reports_statement_timings():
    database = _database()
    with repro.connect(database, engine="sqlite") as session:
        report = session.query(parse_ra("project[#0](R)")).analyze()
    assert report.engine == "sqlite"
    kinds = [stmt["kind"] for stmt in report.statements]
    assert "query" in kinds
    for stmt in report.statements:
        assert isinstance(stmt["sql"], str) and stmt["sql"]
        assert stmt["seconds"] >= 0


def test_sqlite_analyze_counts_temp_table_spills():
    database = _database()
    # Division spills its dividend and groups into temp tables.
    query = parse_ra("divide(R, project[#1](S))")
    with repro.connect(database, engine="sqlite") as session:
        report = session.query(query).analyze()
    if report.engine == "sqlite":
        assert report.spills, "division plan should have spilled"
        assert all(count >= 0 for count in report.spills.values())
        assert any(stmt["kind"] == "setup" for stmt in report.statements)
    assert report.rows == _reference_rows(query, database)


def test_sqlite_falls_back_to_plan_outside_the_fragment_with_a_note():
    database = _database()
    # Difference with mismatched derivations lands outside the SQL
    # fragment for CWA semantics only in some shapes; force a fallback
    # deterministically with the interpreter-only opaque path: a query
    # using division *inside* a difference is still compilable, so use
    # the documented fallback probe instead — a frozen-unfriendly shape
    # is not needed; any BackendError-producing expression will do.
    with repro.connect(database, engine="sqlite") as session:
        query = session.query(parse_ra("project[#0](R)"))
        report = query.analyze()
        assert report.engine in ("sqlite", "plan")
        if report.engine == "plan":
            assert report.notes


# ---------------------------------------------------------------------------
# rendering and the explain(analyze=True) surface
# ---------------------------------------------------------------------------
def test_render_shows_tree_rows_and_timings():
    database = _database()
    query = parse_ra("project[#0](select[#1 = #2](product(R, S)))")
    with repro.connect(database, engine="plan") as session:
        text = session.query(query).analyze().render()
    assert "rows=" in text
    assert "Scan" in text


def test_explain_analyze_appends_execution_section():
    database = _database()
    with repro.connect(database, engine="plan") as session:
        query = session.query(parse_ra("project[#0](R)"))
        plain = query.explain()
        analyzed = query.explain(analyze=True)
    assert analyzed.startswith(plain.split("\n")[0])
    assert len(analyzed) > len(plain)
    assert "rows=" in analyzed


def test_analyze_counts_as_its_own_entry_point():
    database = _database()
    with repro.connect(database) as session:
        session.query(parse_ra("project[#0](R)")).analyze()
        counters = session.metrics()["counters"]
    assert counters["query.analyze"] == 1


def test_analyze_rejects_non_ra_queries():
    database = _database()
    from repro.logic import FOQuery, atom, exists, var

    fo = FOQuery(exists((var("a"), var("b")), atom("R", var("a"), var("b"))))
    with repro.connect(database) as session:
        query = session.query(fo)
        with pytest.raises(InvalidRequestError):
            query.analyze()
