"""Observability under concurrency: the guarantees the design promises.

* ``workers=`` children evaluate worlds in other *processes*; their
  counters and spans ship back with each chunk and must aggregate
  **exactly** — the parallel run reports the same ``worlds.evaluated``
  as the sequential run, and the chunk spans arrive under
  ``enumerate.chunk`` anchors.
* Frozen sessions are hammered from 8 threads: per-thread shards mean
  no lost increments (the counter equals the exact number of calls)
  and no cross-session leakage (an idle session's registry stays
  empty).
* The serve tier bounds its cursor checkout: an exhausted backend pool
  raises :class:`repro.PoolExhausted` instead of blocking forever, and
  ``Server.stats()`` carries the frozen session's metrics.
"""

import asyncio
import threading

import pytest

import repro
from repro import Database, Null, PoolExhausted, Tracer
from repro.algebra import parse_ra
from repro.serve import Server

QUERY = parse_ra("project[#0](R)")
DIFF_QUERY = parse_ra("diff(project[#0](R), project[#0](S))")


def _database():
    return Database.from_dict(
        {
            "R": [(1, 2), (2, 3), (3, 4), (Null("x"), 5)],
            "S": [(2, 0), (Null("y"), 1)],
        }
    )


# ---------------------------------------------------------------------------
# exact aggregation across worker children
# ---------------------------------------------------------------------------
class TestWorkerAggregation:
    def test_worlds_evaluated_matches_sequential_exactly(self):
        database = _database()
        with repro.connect(database) as sequential:
            answer_seq = sequential.query(QUERY).certain(method="enumeration")
            expected = sequential.metrics()["counters"]["worlds.evaluated"]
        assert expected > 0

        with repro.connect(database, workers=2) as parallel:
            answer_par = parallel.query(QUERY).certain(method="enumeration")
            observed = parallel.metrics()["counters"]["worlds.evaluated"]

        assert answer_par == answer_seq
        assert observed == expected, (
            f"parallel run counted {observed} worlds, sequential {expected}"
        )

    def test_chunk_spans_anchor_the_worlds_shipped_back(self):
        tracer = Tracer()
        with repro.connect(_database(), workers=2, tracer=tracer) as session:
            session.query(QUERY).certain(method="enumeration")
            counted = session.metrics()["counters"]["worlds.evaluated"]
        spans = tracer.spans()
        chunks = [s for s in spans if s.name == "enumerate.chunk"]
        worlds = [s for s in spans if s.name == "world.evaluate"]
        (entry,) = [s for s in spans if s.name == "query.certain"]
        assert worlds, "per-world spans must be traced"
        # Every world span hangs either under a chunk anchor (evaluated in
        # a pool child, spans shipped back and absorbed) or directly under
        # the entry span (chunk run locally while the pool was busy).
        chunk_ids = {s.span_id for s in chunks}
        anchored = [s for s in worlds if s.parent_id in chunk_ids]
        local = [s for s in worlds if s.parent_id == entry.span_id]
        assert len(anchored) + len(local) == len(worlds)
        # Chunk anchors account exactly for the worlds they shipped back.
        assert sum(s.attrs["worlds"] for s in chunks) == len(anchored)
        # Nothing went missing in transit: traced worlds == counted worlds.
        assert len(worlds) == counted

    def test_worker_and_sequential_runs_count_enumeration_fallback_equally(self):
        database = _database()
        with repro.connect(database) as sequential:
            sequential.query(DIFF_QUERY).certain()
            seq_counters = sequential.metrics()["counters"]
        with repro.connect(database, workers=2) as parallel:
            parallel.query(DIFF_QUERY).certain()
            par_counters = parallel.metrics()["counters"]
        assert (
            par_counters["worlds.evaluated"] == seq_counters["worlds.evaluated"]
        )


# ---------------------------------------------------------------------------
# frozen-session hammering
# ---------------------------------------------------------------------------
class TestFrozenSessionThreads:
    THREADS = 8
    CALLS_PER_THREAD = 25

    def test_no_lost_increments_and_no_leakage(self):
        database = _database()
        session = repro.connect(database, engine="sqlite")
        bystander = repro.connect(database, engine="sqlite")
        session.freeze(warm=[QUERY])
        errors = []
        barrier = threading.Barrier(self.THREADS)

        def hammer():
            try:
                barrier.wait(timeout=10)
                for _ in range(self.CALLS_PER_THREAD):
                    session.query(QUERY).certain()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors

        counters = session.metrics()["counters"]
        expected = self.THREADS * self.CALLS_PER_THREAD
        # The warm-up ran the query once before freezing.
        assert counters["query.certain"] == expected + 1
        histogram = session.metrics()["histograms"]["query.certain.seconds"]
        assert histogram["count"] == expected + 1

        # The bystander session observed nothing: registries are
        # per-session state, not process globals.
        assert bystander.metrics()["counters"] == {}
        session.close()
        bystander.close()

    def test_shards_survive_thread_exit(self):
        session = repro.connect(_database())
        def work():
            session.query(QUERY).certain()
        thread = threading.Thread(target=work)
        thread.start()
        thread.join()
        # The recording thread is gone; its counts must not be.
        assert session.metrics()["counters"]["query.certain"] == 1
        session.close()


# ---------------------------------------------------------------------------
# serve tier: bounded cursor checkout + merged metrics
# ---------------------------------------------------------------------------
class TestServeObservability:
    def test_cursor_checkout_times_out_with_pool_exhausted(self):
        async def scenario():
            async with Server(_database(), backends=1, cursor_timeout=5.0) as server:
                held = server.cursor(QUERY, batch_size=1)
                await held.__anext__()  # pins the only backend session
                starved = server.cursor(QUERY, timeout=0.05)
                with pytest.raises(PoolExhausted) as info:
                    await starved.__anext__()
                assert info.value.timeout == pytest.approx(0.05)
                assert isinstance(info.value, repro.ReproError)
                await held.aclose()
                # The session went back to the pool: the next stream works.
                rows = [
                    row
                    async for batch in server.cursor(QUERY, timeout=1.0)
                    for row in batch
                ]
                assert rows
                return server.stats()

        stats = asyncio.run(scenario())
        assert stats["metrics"]["counters"]["serve.cursor_timeouts"] == 1

    def test_invalid_timeouts_are_rejected(self):
        async def scenario():
            async with Server(_database(), backends=1) as server:
                with pytest.raises(repro.InvalidRequestError):
                    await server.cursor(QUERY, timeout=-1).__anext__()

        asyncio.run(scenario())
        with pytest.raises(repro.InvalidRequestError):
            Server(_database(), cursor_timeout=0)

    def test_stats_merge_frozen_session_metrics(self):
        async def scenario():
            async with Server(_database(), pool_size=4) as server:
                await asyncio.gather(*(server.certain(QUERY) for _ in range(6)))
                return server.stats()

        stats = asyncio.run(scenario())
        counters = stats["metrics"]["counters"]
        assert counters["serve.submitted"] == 6
        assert counters["serve.completed"] == 6
        assert stats["queue_depth"] == 0
        assert counters["query.certain"] == 6
        latency = stats["metrics"]["histograms"]["serve.latency"]
        assert latency["count"] == 6
        assert latency["min"] >= 0

    def test_serve_requests_trace_across_the_thread_pool(self):
        tracer = Tracer()

        async def scenario():
            async with Server(_database(), pool_size=2, tracer=tracer) as server:
                await server.certain(QUERY)
                await server.boolean(QUERY)

        asyncio.run(scenario())
        spans = {s.name: s for s in tracer.spans()}
        assert "serve.request" in spans
        requests = [s for s in tracer.spans() if s.name == "serve.request"]
        assert {s.attrs["kind"] for s in requests} == {"certain", "boolean"}
        # Entry spans opened in pool threads nest under their request span.
        request_ids = {s.span_id for s in requests}
        entries = [
            s for s in tracer.spans() if s.name in ("query.certain", "query.boolean")
        ]
        assert entries
        assert all(s.parent_id in request_ids for s in entries)
