"""Worker-pool resilience: SIGKILLed children, deterministic child failures.

The differential contract: a pool whose children are killed mid-run must
produce *answers identical to* ``workers=None`` (the failed chunks take
the sequential road), while a world whose evaluation fails
deterministically must surface as :class:`WorkerPoolError` naming the
world — never a silently dropped chunk, never a half-intersection.
"""

import multiprocessing
import os
import signal

import pytest

import repro
from repro import Database, Null, WorkerPoolError
from repro.algebra import parse_ra
from repro.semantics.certain import (
    enumerate_certain_answers,
    enumerate_certain_boolean,
)

QUERY = parse_ra("project[#0](R)")


def _database():
    return Database.from_dict({"R": [(1,), (2,), (3,), (Null("x"),)]})


# ---------------------------------------------------------------------------
# Module-level evaluators: picklable, and safe to import in pool children.
# ---------------------------------------------------------------------------
def _evaluate_world(world):
    return QUERY.evaluate(world, engine="interpreter")


def _killer_evaluate(world):
    # Dies by SIGKILL -- but only inside a pool child.  The parent's
    # sequential re-run of the same chunk evaluates normally, which is
    # exactly the recovery the differential below asserts on.
    if multiprocessing.parent_process() is not None:
        os.kill(os.getpid(), signal.SIGKILL)
    return _evaluate_world(world)


def _killer_boolean(world):
    if multiprocessing.parent_process() is not None:
        os.kill(os.getpid(), signal.SIGKILL)
    return bool(_evaluate_world(world))


class _WorldBomb(Exception):
    """A deterministic per-world failure (fails in child *and* parent)."""


def _bomb_everywhere(world):
    raise _WorldBomb("this query is broken for every world")


class TestKilledChildren:
    def test_sigkilled_pool_matches_sequential(self):
        database = _database()
        sequential = enumerate_certain_answers(
            _evaluate_world, database, semantics="cwa"
        )
        survived = enumerate_certain_answers(
            _killer_evaluate, database, semantics="cwa", workers=2
        )
        assert survived == sequential
        assert {(1,), (2,), (3,)} <= set(survived.rows)

    def test_sigkilled_boolean_pool_matches_sequential(self):
        database = _database()
        sequential = enumerate_certain_boolean(
            lambda world: bool(_evaluate_world(world)), database, semantics="cwa"
        )
        survived = enumerate_certain_boolean(
            _killer_boolean, database, semantics="cwa", workers=2
        )
        assert survived is sequential is True

    def test_session_workers_agree_with_sequential_session(self):
        database = _database()
        with repro.connect(database, workers=2) as parallel_session, repro.connect(
            database
        ) as sequential_session:
            parallel = parallel_session.query(QUERY).certain(method="enumeration")
            sequential = sequential_session.query(QUERY).certain(
                method="enumeration"
            )
        assert parallel == sequential


class TestDeterministicChildFailures:
    def test_deterministic_failure_raises_worker_pool_error_with_world(self):
        database = _database()
        with pytest.raises(WorkerPoolError) as err:
            enumerate_certain_answers(
                _bomb_everywhere, database, semantics="cwa", workers=2
            )
        # The parent's re-run identified the culprit world and chained
        # the original exception.
        assert isinstance(err.value.world, Database)
        assert isinstance(err.value.__cause__, _WorldBomb)

    def test_worker_pool_error_is_typed(self):
        from repro import ReproError

        assert issubclass(WorkerPoolError, ReproError)
        error = WorkerPoolError("boom", world="w")
        assert error.world == "w"
