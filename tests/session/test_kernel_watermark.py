"""The condition-kernel size watermark: automatic eviction, hot survival."""

import pytest

import repro
from repro import Database, Null, Relation
from repro.datamodel import ConditionKernel


class TestAutomaticEviction:
    def test_watermark_triggers_eviction(self):
        kernel = ConditionKernel(watermark=32)
        for i in range(500):
            kernel.eq(Null("n%d" % i), i)
        assert kernel.auto_evictions > 0
        # the table is bounded by max(watermark, 2x the surviving set),
        # not by the 500 conditions created
        assert kernel.stats()["interned"] < 500

    def test_hot_conditions_survive_the_automatic_sweep(self):
        kernel = ConditionKernel(watermark=16)
        hot = kernel.eq(Null("hot"), 42)
        for i in range(400):
            kernel.eq(Null("cold%d" % i), i)
            # touch the hot condition every round so every epoch sees it
            assert kernel.eq(Null("hot"), 42) is hot
        assert kernel.auto_evictions > 0
        # identity preserved across every sweep
        assert kernel.eq(Null("hot"), 42) is hot

    def test_in_flight_conjunction_survives_a_mid_build_sweep(self):
        # The watermark can fire while a conjunction is being assembled;
        # its operands were touched in the current epoch, so the composed
        # condition must come out whole.
        kernel = ConditionKernel(watermark=8)
        atoms = [kernel.eq(Null("m%d" % i), i) for i in range(30)]
        conjunction = kernel.conjunction(atoms)
        for atom_ in atoms:
            assert atom_ in getattr(conjunction, "operands", (atom_,)) or conjunction

    def test_unwatermarked_kernel_never_auto_evicts(self):
        kernel = ConditionKernel()
        for i in range(300):
            kernel.eq(Null("n%d" % i), i)
        assert kernel.auto_evictions == 0
        assert kernel.stats()["interned"] == 300

    def test_manual_clear_resets_trigger(self):
        kernel = ConditionKernel(watermark=16)
        for i in range(100):
            kernel.eq(Null("n%d" % i), i)
        kernel.clear()
        assert kernel.stats() == {"interned": 0, "and_memo": 0, "or_memo": 0, "confidence_memo": 0}
        for i in range(100):
            kernel.eq(Null("m%d" % i), i)
        assert kernel.stats()["interned"] <= 100


class TestMemoBounds:
    def test_memo_tables_stay_bounded_in_a_long_session(self):
        kernel = ConditionKernel(memo_limit=64)
        atoms = [kernel.eq(Null("n%d" % i), i) for i in range(40)]
        for i in range(40):
            for j in range(i + 1, 40):
                kernel.and_(atoms[i], atoms[j])
                kernel.or_(atoms[i], atoms[j])
        # 780 distinct pairs went through each memo; both stayed bounded.
        assert len(kernel._and2) <= 64
        assert len(kernel._or2) <= 64
        assert kernel.memo_trims > 0

    def test_trim_drops_the_oldest_half(self):
        kernel = ConditionKernel(memo_limit=8)
        atoms = [kernel.eq(Null("m%d" % i), i) for i in range(20)]
        for i in range(9):
            kernel.and_(atoms[i], atoms[i + 1])
        # Crossing the limit dropped the oldest half; the newest entry
        # (just inserted) must have survived the trim.
        assert len(kernel._and2) <= 8
        hit = kernel.and_(atoms[8], atoms[9])
        assert kernel.and_(atoms[8], atoms[9]) is hit

    def test_memo_limit_validation_and_default(self):
        with pytest.raises(ValueError):
            ConditionKernel(memo_limit=1)
        assert ConditionKernel(watermark=32).memo_limit == 256  # 8x watermark
        assert ConditionKernel().memo_limit is None

    def test_unbounded_kernel_never_trims(self):
        kernel = ConditionKernel()
        atoms = [kernel.eq(Null("u%d" % i), i) for i in range(30)]
        for i in range(29):
            kernel.and_(atoms[i], atoms[i + 1])
        assert kernel.memo_trims == 0
        assert kernel.stats()["and_memo"] == 29

    def test_stats_keys_are_stable(self):
        # The stats() contract is pinned: downstream dashboards key on it.
        assert set(ConditionKernel().stats()) == {
            "interned",
            "and_memo",
            "or_memo",
            "confidence_memo",
        }


class TestSessionWiring:
    def test_connect_passes_watermark_to_the_session_kernel(self):
        session = repro.connect(kernel_watermark=64)
        assert session.kernel.watermark == 64
        assert session.plan_cache.kernel is session.kernel

    def test_connect_passes_memo_limit_to_the_session_kernel(self):
        session = repro.connect(kernel_watermark=64, kernel_memo_limit=128)
        assert session.kernel.memo_limit == 128
        session = repro.connect(kernel_watermark=64)
        assert session.kernel.memo_limit == 512

    def test_session_ctable_evaluation_respects_watermark(self):
        from repro.algebra import CTableDatabase, parse_ra

        rows = [(Null("x%d" % i),) for i in range(40)]
        db = Database.from_relations(
            [
                Relation.create("R", rows, attributes=("a",)),
                Relation.create("S", [(Null("x0"),), (Null("x1"),)], attributes=("a",)),
            ]
        )
        session = repro.connect(db, kernel_watermark=16)
        table = session.evaluate_ctable(parse_ra("diff(R, S)"), CTableDatabase.from_database(db))
        assert table is not None
        assert session.kernel.auto_evictions >= 0  # ran through the session kernel
        assert session.kernel.stats()["interned"] > 0
