"""Session isolation: disjoint state, identical answers, thread safety."""

import threading

import pytest

import repro
from repro import Database, Null, Relation
from repro.algebra import CTableDatabase, parse_ra
from repro.workloads import random_database, random_positive_query


@pytest.fixture
def db():
    return Database.from_relations(
        [
            Relation.create("R", [(1, 2), (2, 3), (Null("x"), 2)], attributes=("a", "b")),
            Relation.create("S", [(2, "p"), (Null("x"), "q")], attributes=("b", "c")),
        ]
    )


QUERY = parse_ra("project[a](join(R, S))")


class TestStateDisjointness:
    def test_sessions_share_no_cache_objects(self, db):
        one = repro.connect(db, engine="plan")
        two = repro.connect(db, engine="sqlite")
        assert one.kernel is not two.kernel
        assert one.plan_cache is not two.plan_cache
        assert one.plan_cache._cache is not two.plan_cache._cache
        assert one.kernel._intern is not two.kernel._intern
        # neither session borrows the process-default state
        from repro.datamodel.condition_kernel import DEFAULT_KERNEL
        from repro.engine.planner import DEFAULT_PLAN_CACHE

        for session in (one, two):
            assert session.kernel is not DEFAULT_KERNEL
            assert session.plan_cache is not DEFAULT_PLAN_CACHE

    def test_identical_answers_with_different_engines_and_kernels(self, db):
        sessions = [
            repro.connect(db, engine="plan", kernel_watermark=8),
            repro.connect(db, engine="interpreter"),
            repro.connect(db, engine="sqlite"),
        ]
        answers = [session.query(QUERY).certain() for session in sessions]
        assert answers[0] == answers[1] == answers[2]
        # evaluation populated only each session's own plan cache
        assert len(sessions[0].plan_cache) > 0
        assert len(sessions[1].plan_cache) == 0  # interpreter plans nothing

    def test_ctable_evaluation_uses_session_kernel(self, db):
        one = repro.connect(db, engine="plan")
        two = repro.connect(db, engine="plan")
        ctdb = CTableDatabase.from_database(db)
        first = one.evaluate_ctable(QUERY, ctdb)
        second = two.evaluate_ctable(QUERY, ctdb)
        assert one.kernel.stats()["interned"] > 0
        assert two.kernel.stats()["interned"] > 0
        # same worlds, disjoint kernels: no canonical node is shared
        one_nodes = {id(node) for node in one.kernel._intern.values()}
        two_nodes = {id(node) for node in two.kernel._intern.values()}
        assert not (one_nodes & two_nodes)
        assert first.schema == second.schema

    def test_clearing_one_session_leaves_the_other_warm(self, db):
        one = repro.connect(db)
        two = repro.connect(db)
        one.query(QUERY).certain()
        two.query(QUERY).certain()
        one.clear_caches()
        assert len(one.plan_cache) == 0
        assert len(two.plan_cache) > 0


class TestDifferentialAcrossSessions:
    SEEDS = range(12)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_engine_pairs_agree_per_seed(self, seed):
        database = random_database(
            num_relations=2, arity=2, rows_per_relation=6, num_constants=4,
            num_nulls=2, seed=seed,
        )
        query = random_positive_query(database.schema, depth=3, seed=seed)
        plan = repro.connect(database, engine="plan")
        interp = repro.connect(database, engine="interpreter")
        sqlite = repro.connect(database, engine="sqlite")
        results = [s.query(query).certain() for s in (plan, interp, sqlite)]
        assert results[0] == results[1] == results[2]


class TestThreadSafetySmoke:
    def test_two_sessions_run_concurrently(self):
        databases = [
            random_database(
                num_relations=2, arity=2, rows_per_relation=8, num_constants=4,
                num_nulls=2, seed=seed,
            )
            for seed in range(6)
        ]
        queries = [
            random_positive_query(databases[i].schema, depth=3, seed=i)
            for i in range(6)
        ]
        errors = []
        results = {}

        def work(name, engine):
            try:
                session = repro.connect(engine=engine)
                out = []
                for _ in range(5):
                    for database, query in zip(databases, queries):
                        out.append(session.query(query, database=database).certain())
                results[name] = out
            except Exception as error:  # noqa: BLE001 - surfaced via the main thread
                errors.append((name, error))

        threads = [
            threading.Thread(target=work, args=("plan", "plan")),
            threading.Thread(target=work, args=("sqlite", "sqlite")),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors
        assert results["plan"] == results["sqlite"]
