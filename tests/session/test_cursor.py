"""Streaming cursors: batches, certain filtering, teardown, fallbacks."""

import pytest

import repro
from repro import Database, Null, Relation
from repro.algebra import parse_ra


@pytest.fixture
def db():
    rows = [("k%d" % (i % 10), "v%d" % i) for i in range(500)]
    return Database.from_relations(
        [
            Relation.create("Big", rows, attributes=("a", "b")),
            Relation.create(
                "WithNulls", [(1, 2), (Null("x"), 3), (4, Null("y"))], attributes=("a", "b")
            ),
        ]
    )


QUERY = parse_ra("project[b](select[a = 'k7'](Big))")


class TestSqliteStreaming:
    def test_cursor_yields_every_row_once(self, db):
        session = repro.connect(db, engine="sqlite")
        relation = session.query(QUERY).certain()
        streamed = list(session.query(QUERY).cursor(batch_size=7))
        assert sorted(streamed) == sorted(relation.rows)
        assert len(streamed) == len(set(streamed))  # set semantics preserved

    def test_fetchmany_and_batches(self, db):
        session = repro.connect(db, engine="sqlite")
        cursor = session.query(parse_ra("Big")).cursor(batch_size=64)
        first = cursor.fetchmany(10)
        assert len(first) == 10
        rest = [row for batch in cursor.batches() for row in batch]
        assert len(first) + len(rest) == 500
        assert cursor.fetchmany() == []

    def test_cursor_context_manager_closes_early(self, db):
        session = repro.connect(db, engine="sqlite")
        with session.query(parse_ra("Big")).cursor(batch_size=8) as cursor:
            next(iter(cursor))
        # the backend stays usable after an abandoned stream
        assert len(session.query(QUERY).certain()) == 50

    def test_certain_cursor_drops_null_rows_in_flight(self, db):
        session = repro.connect(db, engine="sqlite")
        rows = list(session.query(parse_ra("WithNulls")).cursor(certain=True))
        assert rows == [(1, 2)]
        everything = list(session.query(parse_ra("WithNulls")).cursor())
        assert len(everything) == 3

    def test_outside_fragment_falls_back_to_materializing(self, db):
        session = repro.connect(db, engine="sqlite")
        order_query = parse_ra("select[#0 < #1](WithNulls)")
        with pytest.raises(Exception):  # order comparison on nulls: same error
            list(session.query(order_query).cursor())


class TestInMemoryFallback:
    @pytest.mark.parametrize("engine", ["plan", "interpreter"])
    def test_cursor_iterates_evaluated_relation(self, db, engine):
        session = repro.connect(db, engine=engine)
        streamed = sorted(session.query(QUERY).cursor())
        assert streamed == sorted(session.query(QUERY).certain().rows)

    def test_certain_cursor_falls_back_outside_guaranteed_fragment(self, db):
        session = repro.connect(db)
        non_ucq = parse_ra("diff(project[a](WithNulls), project[a](WithNulls))")
        assert list(session.query(non_ucq).cursor(certain=True)) == []

    def test_batch_size_validated(self, db):
        session = repro.connect(db)
        with pytest.raises(ValueError, match="batch_size"):
            session.query(QUERY).cursor(batch_size=0)
