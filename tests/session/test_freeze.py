"""Frozen sessions: read-only semantics, refusal guards, and the real
multithreaded differential — many threads hammering one frozen session
(plus mutable sessions alongside) must equal sequential evaluation with
zero cross-session cache leakage.

``Session.freeze()`` is the concurrency contract behind ``repro.serve``:
after warm-up, the plan cache serves hits without LRU reordering, the
condition kernel interns nothing new, and the SQLite backend handle
refuses every mutation — so sharing the session across threads needs no
locks at all.
"""

import threading

import pytest

import repro
from repro import Database, InvalidRequestError, Null
from repro.algebra import parse_ra
from repro.datamodel.schema import DatabaseSchema

WARM_QUERY = parse_ra("project[#0](R)")
JOIN_QUERY = parse_ra("project[#0](select[#1 = #2](product(R, S)))")
UNWARMED_QUERY = parse_ra("select[#0 = 1](R)")


def _database():
    return Database.from_dict(
        {
            "R": [(1, 2), (2, 3), (3, Null("x"))],
            "S": [(2, "a"), (3, "b"), (Null("y"), "c")],
        }
    )


@pytest.fixture(params=["plan", "sqlite"])
def frozen_session(request):
    session = repro.connect(_database(), engine=request.param)
    session.freeze(warm=[WARM_QUERY, JOIN_QUERY])
    yield session
    session.close()


# ----------------------------------------------------------------------
# semantics of the frozen state
# ----------------------------------------------------------------------
def test_freeze_returns_self_and_is_idempotent():
    session = repro.connect(_database())
    try:
        assert not session.frozen
        assert session.freeze() is session
        assert session.frozen
        assert session.freeze() is session  # one-way, re-freeze is a no-op
    finally:
        session.close()


def test_frozen_session_still_answers(frozen_session):
    expected = repro.connect(_database()).query(WARM_QUERY).certain()
    assert frozen_session.query(WARM_QUERY).certain() == expected
    assert frozen_session.query(WARM_QUERY).possible() is not None
    assert frozen_session.query(parse_ra("R")).boolean() is True


def test_frozen_session_answers_unwarmed_queries_without_caching(frozen_session):
    interned_before = frozen_session.kernel.stats()["interned"]
    plans_before = len(frozen_session.plan_cache)
    expected = repro.connect(_database()).query(UNWARMED_QUERY).certain()
    for _ in range(3):
        assert frozen_session.query(UNWARMED_QUERY).certain() == expected
    assert frozen_session.kernel.stats()["interned"] == interned_before
    assert len(frozen_session.plan_cache) == plans_before


def test_frozen_session_refuses_mutation(frozen_session):
    with pytest.raises(InvalidRequestError):
        frozen_session.clear_caches()
    with pytest.raises(InvalidRequestError):
        frozen_session.create_schema(
            DatabaseSchema.from_attributes({"T": ("a",)})
        )
    with pytest.raises(InvalidRequestError):
        frozen_session.load_rows("R", [(9, 9)])


def test_frozen_caches_refuse_clear_and_evict(frozen_session):
    with pytest.raises(InvalidRequestError):
        frozen_session.plan_cache.clear()
    with pytest.raises(InvalidRequestError):
        frozen_session.kernel.clear()
    with pytest.raises(InvalidRequestError):
        frozen_session.kernel.evict()


def test_frozen_sqlite_backend_refuses_database_switch():
    session = repro.connect(_database(), engine="sqlite")
    try:
        session.query(WARM_QUERY).certain()
        session.freeze()
        other = Database.from_dict({"R": [(9, 9)], "S": [(9, "z")]})
        with pytest.raises(InvalidRequestError):
            session._ensure_backend(other)
    finally:
        session.close()


def test_freeze_on_closed_session_raises():
    session = repro.connect(_database())
    session.close()
    with pytest.raises(repro.SessionClosedError):
        session.freeze()


# ----------------------------------------------------------------------
# the multithreaded differential
# ----------------------------------------------------------------------
QUERY_SET = (WARM_QUERY, JOIN_QUERY, UNWARMED_QUERY)


def _hammer(session, iterations, failures, barrier):
    barrier.wait()
    try:
        for index in range(iterations):
            query = QUERY_SET[index % len(QUERY_SET)]
            session.query(query).certain()
    except Exception as error:  # noqa: BLE001 - recorded for the assertion
        failures.append(error)


@pytest.mark.parametrize("engine", ["plan", "sqlite"])
def test_threads_on_frozen_session_match_sequential(engine):
    """>= 8 threads on one frozen session: correct answers, no errors."""
    threads_count, iterations = 8, 25
    sequential = repro.connect(_database(), engine=engine)
    expected = [sequential.query(q).certain() for q in QUERY_SET]
    sequential.close()

    session = repro.connect(_database(), engine=engine)
    session.freeze(warm=[WARM_QUERY, JOIN_QUERY])
    results, failures = [], []
    barrier = threading.Barrier(threads_count)

    def worker():
        barrier.wait()
        try:
            local = []
            for index in range(iterations):
                query = QUERY_SET[index % len(QUERY_SET)]
                local.append((index % len(QUERY_SET), session.query(query).certain()))
            results.append(local)
        except Exception as error:  # noqa: BLE001
            failures.append(error)

    workers = [threading.Thread(target=worker) for _ in range(threads_count)]
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join(timeout=120)
    session.close()

    assert not failures, failures
    assert len(results) == threads_count
    for local in results:
        for pick, answer in local:
            assert answer == expected[pick]


def test_frozen_and_mutable_sessions_do_not_leak_into_each_other():
    """The cross-session isolation half of the differential: threads on a
    frozen session run alongside threads mutating their own sessions; the
    frozen caches must not grow and the mutable sessions must not share
    state with the frozen one (or each other)."""
    frozen = repro.connect(_database(), engine="plan")
    frozen.freeze(warm=[WARM_QUERY, JOIN_QUERY])
    interned_before = frozen.kernel.stats()["interned"]
    plans_before = len(frozen.plan_cache)
    expected = repro.connect(_database()).query(WARM_QUERY).certain()

    mutable_sessions = [repro.connect(_database(), engine="plan") for _ in range(4)]
    assert all(s.kernel is not frozen.kernel for s in mutable_sessions)
    assert all(s.plan_cache is not frozen.plan_cache for s in mutable_sessions)

    failures = []
    barrier = threading.Barrier(8)
    frozen_threads = [
        threading.Thread(target=_hammer, args=(frozen, 30, failures, barrier))
        for _ in range(4)
    ]
    mutable_threads = [
        threading.Thread(target=_hammer, args=(s, 30, failures, barrier))
        for s in mutable_sessions
    ]
    for thread in frozen_threads + mutable_threads:
        thread.start()
    for thread in frozen_threads + mutable_threads:
        thread.join(timeout=120)

    assert not failures, failures
    # The frozen caches did not move under eight threads of traffic...
    assert frozen.kernel.stats()["interned"] == interned_before
    assert len(frozen.plan_cache) == plans_before
    # ...the frozen session still answers correctly afterwards...
    assert frozen.query(WARM_QUERY).certain() == expected
    # ...and the mutable sessions kept their own, still-mutable caches.
    for session in mutable_sessions:
        assert not session.kernel.frozen
        assert not session.plan_cache.frozen
        session.clear_caches()  # would raise InvalidRequestError if leaked
        session.close()
    frozen.close()
