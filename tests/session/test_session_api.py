"""The Session/Query lifecycle: connect, query, modes of answering, sql."""

import os
import subprocess
import sys

import pytest

import repro
from repro import Database, Null, Relation
from repro.algebra import parse_ra
from repro.logic import FOQuery, atom, exists, var


@pytest.fixture
def db():
    return Database.from_relations(
        [
            Relation.create(
                "Orders", [("o1", "p1"), ("o2", "p2"), ("o3", "p3")],
                attributes=("o_id", "prod"),
            ),
            Relation.create(
                "Pay", [("x1", "o1"), ("x2", Null("n"))], attributes=("p_id", "ord")
            ),
        ]
    )


PROJECT = parse_ra("project[o_id](Orders)")
UNPAID = parse_ra("diff(project[o_id](Orders), rename[Paid(o_id)](project[ord](Pay)))")


class TestConnect:
    def test_connect_validates_engine_and_semantics(self, db):
        with pytest.raises(ValueError, match="unknown engine"):
            repro.connect(db, engine="postgres")
        with pytest.raises(ValueError, match="unknown semantics"):
            repro.connect(db, semantics="open-ish")
        with pytest.raises(TypeError, match="Database"):
            repro.connect({"Orders": []})

    def test_sessions_are_context_managers(self, db):
        with repro.connect(db, engine="sqlite") as session:
            assert len(session.query(PROJECT).certain()) == 3
        with pytest.raises(RuntimeError, match="closed"):
            session.query(PROJECT, database=db).certain()

    def test_close_is_idempotent(self, db):
        session = repro.connect(db)
        session.close()
        session.close()

    def test_kernel_watermark_validated(self, db):
        with pytest.raises(ValueError, match="watermark"):
            repro.connect(db, kernel_watermark=0)


class TestQueryModes:
    @pytest.mark.parametrize("engine", ["plan", "interpreter", "sqlite"])
    def test_certain_matches_legacy_api(self, db, engine):
        session = repro.connect(db, engine=engine)
        legacy = PROJECT.evaluate(db, engine=engine).complete_part()
        assert session.query(PROJECT).certain() == legacy

    @pytest.mark.parametrize("engine", ["plan", "sqlite"])
    def test_non_ucq_falls_back_to_enumeration(self, db, engine):
        session = repro.connect(db, engine=engine)
        certain = session.query(UNPAID).certain()
        # o1 is paid; the null payment may pay o2 *or* o3, so neither is
        # certainly unpaid — enumeration gives the empty answer where the
        # (unsound here) naive difference would keep both.
        assert sorted(certain.rows) == []
        naive = session.query(UNPAID).certain(method="naive")
        assert sorted(naive.rows) == [("o2",), ("o3",)]

    def test_possible_is_superset_of_certain(self, db):
        session = repro.connect(db)
        q = session.query(UNPAID)
        assert set(q.certain().rows) <= set(q.possible().rows)

    def test_answer_object_keeps_nulls(self, db):
        session = repro.connect(db)
        obj = session.query(parse_ra("project[ord](Pay)")).answer_object()
        assert any(value == Null("n") for (value,) in obj.rows)

    def test_boolean_certain_and_possible(self, db):
        session = repro.connect(db)
        assert session.query(PROJECT).boolean() is True
        empty = session.query(parse_ra("diff(Orders, Orders)"))
        assert empty.boolean() is False
        assert empty.boolean(mode="possible") is False
        with pytest.raises(ValueError, match="unknown mode"):
            session.query(PROJECT).boolean(mode="definitely")

    def test_fo_queries_work(self, db):
        session = repro.connect(db)
        q = session.query(FOQuery(exists((var("p"), var("pr")), atom("Orders", var("p"), var("pr")))))
        assert q.boolean() is True

    def test_knowledge_returns_formula(self, db):
        session = repro.connect(db)
        formula = session.query(PROJECT).knowledge()
        assert formula is not None

    def test_knowledge_respects_wcwa_semantics(self, db):
        # delta() supports wcwa natively; the session must not silently
        # substitute the CWA formula (regression: PR-5 review finding).
        from repro.core.answers import knowledge_strategy
        from repro.core.naive_evaluation import evaluate_query

        expected = knowledge_strategy(PROJECT, db, evaluate_query, semantics="wcwa")
        fresh = repro.connect(db, semantics="wcwa").query(PROJECT).knowledge()
        assert str(fresh) == str(expected)
        cwa = repro.connect(db, semantics="cwa").query(PROJECT).knowledge()
        assert str(fresh) != str(cwa)

    def test_database_override_per_query(self, db):
        session = repro.connect(db)
        other = Database.from_relations(
            [
                Relation.create("Orders", [("z1", "q")], attributes=("o_id", "prod")),
                Relation.create("Pay", [], attributes=("p_id", "ord")),
            ]
        )
        assert sorted(session.query(PROJECT, database=other).certain().rows) == [("z1",)]
        # the session default is untouched
        assert len(session.query(PROJECT).certain()) == 3

    def test_query_without_database_anywhere_raises(self):
        session = repro.connect()
        with pytest.raises(ValueError, match="no database"):
            session.query(PROJECT).certain()

    def test_query_rejects_unknown_types(self, db):
        session = repro.connect(db)
        with pytest.raises(TypeError, match="query\\(\\) expects"):
            session.query(12345)

    def test_wcwa_semantics_accepted(self, db):
        session = repro.connect(db, semantics="wcwa")
        assert len(session.query(PROJECT).certain()) == 3


class TestSessionSql:
    SQL = "SELECT ord FROM Pay"
    NOT_IN = "SELECT o_id FROM Orders WHERE o_id NOT IN (SELECT ord FROM Pay)"

    @pytest.mark.parametrize("engine", ["plan", "sqlite"])
    def test_three_valued_rows(self, db, engine):
        session = repro.connect(db, engine=engine)
        rows = session.sql(self.SQL)
        assert ("o1",) in rows and len(rows) == 2

    def test_unpaid_orders_bug_reproduces(self, db):
        # The Section 1 example: NOT IN over a null loses every answer.
        session = repro.connect(db)
        assert session.sql(self.NOT_IN) == []

    def test_certain_rewriting(self, db):
        session = repro.connect(db)
        assert session.sql(self.SQL, certain=True) == [("o1",)]

    def test_query_handle_over_sql(self, db):
        session = repro.connect(db, engine="sqlite")
        q = session.query(self.SQL)
        assert len(q.answer_object()) == 2
        assert q.certain() == [("o1",)]
        assert list(q.cursor(certain=True)) == [("o1",)]
        with pytest.raises(ValueError, match="not defined"):
            q.boolean()
        with pytest.raises(ValueError, match="not defined"):
            q.possible()
        assert "sql" in q.explain()

    def test_sql_requires_database(self):
        session = repro.connect()
        with pytest.raises(ValueError, match="no database"):
            session.sql(self.SQL)

    def test_sql_after_close_raises_instead_of_reopening(self, db):
        # Regression (PR-5 review finding): the 3VL path must honor the
        # closed flag, not silently re-open an uncloseable backend.
        session = repro.connect(db, engine="sqlite")
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.sql(self.SQL)
        assert session._sql3vl_backend is None


class TestExplain:
    def test_explain_sections(self, db):
        session = repro.connect(db, engine="sqlite")
        text = session.query(PROJECT).explain()
        assert "naive evaluation" in text
        assert "logical plan:" in text
        assert "physical plan:" in text
        assert "SELECT" in text

    def test_explain_marks_enumeration_and_unsupported_sql(self, db):
        session = repro.connect(db, engine="sqlite")
        text = session.query(UNPAID).explain()
        assert "world enumeration" in text
        order_query = parse_ra("select[#0 < #1](Orders)")
        text = session.query(order_query).explain()
        assert "outside the SQL fragment" in text

    def test_explain_fo_query(self, db):
        session = repro.connect(db)
        text = session.query(FOQuery(exists((var("p"), var("pr")), atom("Orders", var("p"), var("pr"))))).explain()
        assert "first-order" in text


class TestBackendLifecycle:
    def test_persistent_handle_reused_across_same_schema_databases(self, db):
        session = repro.connect(db, engine="sqlite")
        assert len(session.query(PROJECT).certain()) == 3
        backend_before = session._backend
        other = Database.from_relations(
            [
                Relation.create("Orders", [("z9", "q")], attributes=("o_id", "prod")),
                Relation.create("Pay", [], attributes=("p_id", "ord")),
            ]
        )
        rows = session.query(PROJECT, database=other).certain()
        assert sorted(rows.rows) == [("z9",)]
        assert session._backend is backend_before  # the handle survived

    def test_schema_change_rebuilds_on_same_connection(self, db):
        session = repro.connect(db, engine="sqlite")
        session.query(PROJECT).certain()
        backend_before = session._backend
        different = Database.from_dict({"Animals": [("cat",), ("dog",)]})
        rows = session.query(parse_ra("Animals"), database=different).certain()
        assert len(rows) == 2
        assert session._backend is backend_before

    def test_out_of_core_loading_without_database_object(self, tmp_path):
        from repro.datamodel.schema import DatabaseSchema

        session = repro.connect(
            engine="sqlite", backend_path=str(tmp_path / "resident.sqlite")
        )
        session.create_schema(DatabaseSchema.from_attributes({"Big": ("a", "b")}))
        written = session.load_rows("Big", (("k%d" % (i % 5), i) for i in range(1000)))
        assert written == 1000
        count = sum(1 for _ in session.query(parse_ra("Big")).cursor(batch_size=64))
        assert count == 1000
        session.close()

    def test_backend_loading_requires_sqlite_engine(self):
        from repro.datamodel.schema import DatabaseSchema

        session = repro.connect(engine="plan")
        with pytest.raises(ValueError, match='engine="sqlite"'):
            session.create_schema(DatabaseSchema.from_attributes({"R": ("a",)}))


class TestLazyEngineEnv:
    def test_invalid_repro_engine_does_not_break_import(self):
        code = (
            "import repro, repro.engine\n"
            "print('imported')\n"
            "try:\n"
            "    repro.engine.get_default_engine()\n"
            "except ValueError as error:\n"
            "    assert 'REPRO_ENGINE' in str(error), error\n"
            "    print('lazy')\n"
        )
        env = dict(os.environ, REPRO_ENGINE="bogus")
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True, env=env
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.splitlines() == ["imported", "lazy"]

    def test_valid_repro_engine_still_respected(self):
        code = (
            "import repro.engine\n"
            "print(repro.engine.get_default_engine())\n"
        )
        env = dict(os.environ, REPRO_ENGINE="interpreter")
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True, env=env
        )
        assert result.stdout.strip() == "interpreter"
