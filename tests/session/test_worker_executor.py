"""The session-held worker pool, fan-out cancellation, and the
content-digest fingerprint cache — the three PR-8 bugfixes.

* ``workers=`` used to rebuild a ``ProcessPoolExecutor`` on *every*
  ``certain()``/``boolean()`` call; a Session now holds one warm pool,
  reuses it across calls, replaces it only when broken, and shuts it
  down in ``close()``.  Callers without a session (the deprecated
  shims' road) still get the per-call pool fallback.
* ``Session.cancel()`` used to wait for in-flight chunks: a chunk of 16
  slow worlds ran to completion before the pool noticed.  The shared
  ``multiprocessing.Event`` is now checked per *world* in the children,
  so cancel latency is bounded by one world, not one chunk.
* ``ResumeToken`` fingerprinting used to hash the full database contents
  O(rows) on every stamp; the digest is now computed once per Database
  and cached (immutability makes invalidation unnecessary).
"""

import multiprocessing
import pickle
import threading
import time
from concurrent.futures import ProcessPoolExecutor

import pytest

import repro
from repro import Budget, Database, Null, PartialResult, QueryCancelled
from repro.algebra import parse_ra
from repro.semantics.certain import _pool_initializer, enumerate_certain_answers

QUERY = parse_ra("project[#0](R)")


def _database():
    return Database.from_dict({"R": [(1,), (2,), (3,), (Null("x"),)]})


# ---------------------------------------------------------------------------
# Module-level evaluators: picklable, runnable inside pool children.
# ---------------------------------------------------------------------------
def _evaluate_world(world):
    return QUERY.evaluate(world, engine="interpreter")


SLOW_WORLD_SECONDS = 0.5


def _slow_evaluate_world(world):
    # A deliberately slow per-world evaluation: a 16-world chunk of these
    # takes ~8 s, so a cancel that "waits for the chunk" is unmistakable.
    time.sleep(SLOW_WORLD_SECONDS)
    return _evaluate_world(world)


# ---------------------------------------------------------------------------
# the session-held executor
# ---------------------------------------------------------------------------
class TestSessionExecutor:
    def test_executor_is_reused_across_calls(self):
        with repro.connect(_database(), workers=2) as session:
            first = session._worker_executor()
            assert first is not None
            assert session._worker_executor() is first
            query = session.query(QUERY)
            a = query.certain(method="enumeration")
            b = query.certain(method="enumeration")
            assert a == b
            assert session._worker_executor() is first  # no per-call rebuild

    def test_no_executor_without_workers(self):
        with repro.connect(_database()) as session:
            assert session._worker_executor() is None
        with repro.connect(_database(), workers=1) as session:
            assert session._worker_executor() is None

    def test_broken_executor_is_replaced(self):
        with repro.connect(_database(), workers=2) as session:
            first = session._worker_executor()
            first._broken = "simulated child massacre"
            second = session._worker_executor()
            assert second is not first
            with pytest.raises(RuntimeError):
                first.submit(int)  # the broken pool was shut down
            assert session.query(QUERY).certain(method="enumeration") is not None

    def test_close_shuts_the_executor_down(self):
        session = repro.connect(_database(), workers=2)
        executor = session._worker_executor()
        session.close()
        assert session._executor is None
        with pytest.raises(RuntimeError):
            executor.submit(int)

    def test_per_call_pool_fallback_without_a_session(self):
        """Sessionless callers (the deprecated shims' road) still build —
        and tear down — one pool per call."""
        built = []

        def factory(n):
            built.append(n)
            return ProcessPoolExecutor(max_workers=n)

        database = _database()
        expected = enumerate_certain_answers(_evaluate_world, database)
        for _ in range(2):
            answer = enumerate_certain_answers(
                _evaluate_world, database, workers=2, pool_factory=factory
            )
            assert answer == expected
        assert built == [2, 2]


# ---------------------------------------------------------------------------
# fan-out cancellation
# ---------------------------------------------------------------------------
class TestFanOutCancellation:
    def test_cancel_does_not_wait_for_the_running_chunk(self):
        """Six slow worlds land in one chunk (~3 s of child runtime); the
        cancel event must abort it after at most one world."""
        database = Database.from_dict(
            {"R": [(1,), (2,), (3,), (4,), (5,), (6,), (Null("x"),)]}
        )
        event = multiprocessing.Event()
        chunk_seconds = 6 * SLOW_WORLD_SECONDS
        with ProcessPoolExecutor(
            max_workers=2, initializer=_pool_initializer, initargs=(event,)
        ) as pool:
            timer = threading.Timer(SLOW_WORLD_SECONDS / 2, event.set)
            timer.start()
            started = time.monotonic()
            try:
                with pytest.raises(QueryCancelled):
                    enumerate_certain_answers(
                        _slow_evaluate_world, database, workers=2, executor=pool
                    )
                elapsed = time.monotonic() - started
            finally:
                timer.cancel()
        # Bounded by the check cadence (one world + margin), not the chunk.
        assert elapsed < chunk_seconds - SLOW_WORLD_SECONDS, elapsed

    def test_session_cancel_interrupts_inflight_fanout(self, monkeypatch):
        """``Session.cancel()`` from another thread aborts a running
        ``workers=`` enumeration mid-chunk."""
        import repro.session as session_module

        monkeypatch.setattr(
            session_module, "_world_evaluate", _patched_slow_world_evaluate
        )
        database = Database.from_dict(
            {"R": [(1,), (2,), (3,), (4,), (5,), (6,), (Null("x"),)]}
        )
        outcome = {}
        with repro.connect(database, workers=2) as session:

            def run():
                started = time.monotonic()
                try:
                    session.query(QUERY).certain(method="enumeration")
                    outcome["result"] = "completed"
                except QueryCancelled:
                    outcome["result"] = "cancelled"
                outcome["seconds"] = time.monotonic() - started

            thread = threading.Thread(target=run)
            thread.start()
            time.sleep(SLOW_WORLD_SECONDS)  # let the fan-out get in flight
            session.cancel()
            thread.join(timeout=30)
            assert not thread.is_alive()
        assert outcome["result"] == "cancelled"
        # Six slow worlds per chunk: completion would need ~3 s of child
        # time; cancellation must beat the chunk by at least one world.
        assert outcome["seconds"] < 6 * SLOW_WORLD_SECONDS - SLOW_WORLD_SECONDS

    def test_cancel_event_is_cleared_for_the_next_run(self):
        """A cancelled session is not poisoned: the next query runs."""
        with repro.connect(_database(), workers=2) as session:
            session.cancel()  # sets the event with nothing in flight
            answer = session.query(QUERY).certain(method="enumeration")
            assert {(1,), (2,), (3,)} <= set(answer.rows)


def _patched_slow_world_evaluate(expression, engine, world):
    time.sleep(SLOW_WORLD_SECONDS)
    return expression.evaluate(world, engine=engine)


# ---------------------------------------------------------------------------
# the content-digest fingerprint cache
# ---------------------------------------------------------------------------
class TestContentDigestCache:
    def _counting(self, monkeypatch):
        calls = []
        original = Database._compute_content_digest

        def counted(db):
            calls.append(db)
            return original(db)

        monkeypatch.setattr(Database, "_compute_content_digest", counted)
        return calls

    def test_digest_is_computed_once(self, monkeypatch):
        calls = self._counting(monkeypatch)
        database = _database()
        first = database.content_digest()
        assert database.content_digest() == first
        assert len(calls) == 1

    def test_digest_survives_pickling_without_shipping_the_cache(self):
        database = _database()
        digest = database.content_digest()
        clone = pickle.loads(pickle.dumps(database))
        assert clone._content_digest is None  # not serialized to workers
        assert clone.content_digest() == digest

    def test_two_budget_stamps_hash_rows_at_most_once(self, monkeypatch):
        """The ISSUE's regression: two consecutive ``certain(budget=)``
        calls on an unchanged 100k-row database stamp two resume tokens
        but hash the rows at most once."""
        rows = [(i,) for i in range(100_000)]
        rows.append((Null("x"),))
        database = Database.from_dict({"R": rows})
        calls = self._counting(monkeypatch)
        with repro.connect(database) as session:
            query = session.query(QUERY)
            partials = [
                query.certain(
                    method="enumeration",
                    budget=Budget(deadline=0.001),
                    on_budget="partial",
                )
                for _ in range(2)
            ]
        for partial in partials:
            assert isinstance(partial, PartialResult)
            assert partial.token is not None  # both calls really stamped
        assert len(calls) <= 1
