"""Cooperative cancellation: Session.cancel(), in-statement deadlines,
idempotent cursor close, and RetryPolicy threading.

The progress-handler tests use a triple cross product over a 300-row
relation (~27M intermediate rows) so a single SQLite statement runs long
enough for the deadline to expire *inside* it — the PR-6 gap where a
deadline armed outside the backend could not abort a running statement.
"""

import threading
import time

import pytest

import repro
from repro import (
    Budget,
    BudgetExceeded,
    ManualClock,
    QueryCancelled,
    ReproError,
    RetryPolicy,
)
from repro.algebra import parse_ra
from repro.backends.base import Backend
from repro.datamodel import Database
from repro.resilience import DEFAULT_RETRY_POLICY, BudgetState, with_retries

SLOW_QUERY = "project[#0](product(product(R, R), R))"


def _slow_database(rows=300):
    return Database.from_dict({"R": [(i,) for i in range(rows)]})


@pytest.fixture
def slow_db():
    return _slow_database()


class TestInStatementDeadline:
    def test_deadline_aborts_running_sqlite_statement(self, slow_db):
        session = repro.connect(slow_db, engine="sqlite")
        try:
            started = time.monotonic()
            with pytest.raises(BudgetExceeded) as excinfo:
                session.query(parse_ra(SLOW_QUERY)).certain(
                    method="naive", budget=Budget(deadline=0.25),
                    on_budget="raise",
                )
            elapsed = time.monotonic() - started
            assert excinfo.value.resource == "deadline"
            # The progress handler fires every few thousand opcodes, so
            # the abort lands well within the gate's 250 ms latency bound.
            assert elapsed < 0.25 + 0.25, f"cancel latency too high: {elapsed:.3f}s"
        finally:
            session.close()

    def test_progress_handler_disarmed_after_evaluation(self, slow_db):
        session = repro.connect(slow_db, engine="sqlite")
        try:
            with pytest.raises(BudgetExceeded):
                session.query(parse_ra(SLOW_QUERY)).certain(
                    method="naive", budget=Budget(deadline=0.25),
                    on_budget="raise",
                )
            backend = session._backend
            assert backend._deadline_states == []
            # The connection still works: the handler (and the interrupt
            # flag) did not leak into subsequent statements.
            small = session.query(parse_ra("project[#0](R)")).certain(
                method="naive"
            )
            assert len(set(small.rows)) == 300
        finally:
            session.close()

    def test_manual_clock_deadline_does_not_arm_handler(self, slow_db):
        # ManualClock budgets are deterministic test fixtures; arming the
        # wall-clock progress handler for them would be meaningless.
        session = repro.connect(slow_db, engine="sqlite")
        try:
            budget = Budget(deadline=1000.0, clock=ManualClock(step=0.001))
            result = session.query(parse_ra("project[#0](R)")).certain(
                method="naive", budget=budget, on_budget="raise"
            )
            assert len(set(result.rows)) == 300
        finally:
            session.close()


class TestSessionCancel:
    def test_cancel_interrupts_running_statement_cross_thread(self, slow_db):
        session = repro.connect(slow_db, engine="sqlite")
        outcome = {}

        def victim():
            try:
                session.query(parse_ra(SLOW_QUERY)).certain(
                    method="naive", budget=Budget(deadline=300.0),
                    on_budget="raise",
                )
                outcome["error"] = None
            except ReproError as error:
                outcome["error"] = error

        worker = threading.Thread(target=victim)
        worker.start()
        time.sleep(0.3)  # let the statement start running
        session.cancel()
        worker.join(timeout=30)
        assert not worker.is_alive(), "cancel did not unblock the query"
        assert isinstance(outcome["error"], QueryCancelled)
        # NOTE: the backend connection was created lazily in the victim
        # thread; sqlite3 enforces thread affinity on close, so the
        # session is abandoned here rather than closed.

    def test_cancelled_query_never_degrades(self, slow_db):
        # QueryCancelled is an explicit user action, not a resource limit:
        # on_budget="partial" must not swallow it into a PartialResult.
        session = repro.connect(slow_db, engine="sqlite")
        outcome = {}

        def victim():
            try:
                session.query(parse_ra(SLOW_QUERY)).certain(
                    method="naive", budget=Budget(deadline=300.0),
                    on_budget="partial",
                )
                outcome["error"] = None
            except ReproError as error:
                outcome["error"] = error

        worker = threading.Thread(target=victim)
        worker.start()
        time.sleep(0.3)
        session.cancel()
        worker.join(timeout=30)
        assert not worker.is_alive()
        assert isinstance(outcome["error"], QueryCancelled)

    def test_cancel_when_idle_is_a_safe_no_op(self, slow_db):
        session = repro.connect(slow_db)
        try:
            session.cancel()
            session.cancel()
            result = session.query(parse_ra("project[#0](R)")).certain(
                method="naive"
            )
            assert len(set(result.rows)) == 300
        finally:
            session.close()

    def test_cancelled_state_raises_before_any_resource_check(self):
        state = BudgetState(Budget(max_worlds=10))
        state.cancel()
        assert state.cancelled
        with pytest.raises(QueryCancelled):
            state.check()

    def test_query_cancelled_is_not_a_budget_error(self):
        assert not issubclass(QueryCancelled, BudgetExceeded)
        assert issubclass(QueryCancelled, ReproError)

    def test_base_backend_interrupt_is_a_no_op(self):
        class Minimal(Backend):
            def create_schema(self, schema):  # pragma: no cover - unused
                raise NotImplementedError

            def load_database(self, database):  # pragma: no cover - unused
                raise NotImplementedError

            def load_rows(self, name, rows):  # pragma: no cover - unused
                raise NotImplementedError

            def extract_relation(self, name):  # pragma: no cover - unused
                raise NotImplementedError

            def evaluate(self, expression):  # pragma: no cover - unused
                raise NotImplementedError

            def close(self):  # pragma: no cover - unused
                raise NotImplementedError

        Minimal().interrupt()  # must not raise


class TestCursorCloseIdempotent:
    def test_close_is_idempotent(self, slow_db):
        session = repro.connect(slow_db, engine="sqlite")
        try:
            cursor = session.query(parse_ra("project[#0](R)")).cursor()
            cursor.fetchmany(5)
            assert not cursor.closed
            cursor.close()
            assert cursor.closed
            cursor.close()  # second close: no error, no double-teardown
            assert cursor.closed
        finally:
            session.close()

    def test_close_mid_retry_loop_is_safe(self, slow_db):
        # Regression for the retry-loop shape: a cursor closed while a
        # caller's retry wrapper is tearing down must stay closeable.
        session = repro.connect(slow_db, engine="sqlite")
        try:
            cursor = session.query(parse_ra("project[#0](R)")).cursor()

            attempts = []

            def flaky():
                attempts.append(1)
                cursor.close()
                if len(attempts) < 2:
                    raise RuntimeError("transient")
                return "ok"

            result = with_retries(
                flaky,
                policy=RetryPolicy(
                    retries=3, base_delay=0.0, max_delay=0.0,
                    retryable=lambda e: True,
                ),
                sleep=lambda _: None,
            )
            assert result == "ok"
            assert len(attempts) == 2
            assert cursor.closed
        finally:
            session.close()

    def test_reads_after_close_yield_empty(self, slow_db):
        # Documented contract: a closed cursor reads as exhausted rather
        # than raising, so a fetch racing a close stays benign.
        session = repro.connect(slow_db, engine="sqlite")
        try:
            cursor = session.query(parse_ra("project[#0](R)")).cursor()
            cursor.close()
            assert cursor.fetchmany(1) == []
            assert cursor.fetchall() == []
            assert list(cursor.batches()) == []
        finally:
            session.close()


class TestRetryPolicyThreading:
    def test_connect_accepts_and_stores_policy(self, slow_db):
        policy = RetryPolicy(retries=7, base_delay=0.01, max_delay=0.1)
        session = repro.connect(slow_db, retry_policy=policy)
        try:
            assert session.retry_policy is policy
        finally:
            session.close()

    def test_default_policy_when_omitted(self, slow_db):
        session = repro.connect(slow_db)
        try:
            assert session.retry_policy is DEFAULT_RETRY_POLICY
        finally:
            session.close()

    def test_connect_rejects_non_policy(self, slow_db):
        with pytest.raises(TypeError):
            repro.connect(slow_db, retry_policy="aggressive")

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(max_delay=-1.0)

    def test_policy_delay_caps_at_max(self):
        policy = RetryPolicy(retries=10, base_delay=0.1, max_delay=0.4)
        delays = [policy.delay_for(a) for a in range(6)]
        assert delays[0] == pytest.approx(0.1)
        assert max(delays) <= 0.4

    def test_session_policy_drives_with_retries(self, slow_db):
        # A zero-retry policy must surface the first transient error.
        policy = RetryPolicy(retries=0, base_delay=0.0, max_delay=0.0)
        calls = []

        def always_busy():
            calls.append(1)
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            with_retries(
                always_busy, policy=policy, sleep=lambda _: None
            )
        assert len(calls) == 1
