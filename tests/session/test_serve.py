"""``repro.serve.Server``: the asyncio query-service tier.

Covers the dispatch surface (every answer mode awaits to the same result
the underlying session returns), the eight-client concurrent
differential the ISSUE demands, cursor streaming through the mutable
checkout pool (including early abandonment), and the control plane
(``stats``, ``cancel``, idempotent ``close``, both context managers).
"""

import asyncio

import pytest

import repro
from repro import Database, InvalidRequestError, Null, SessionClosedError
from repro.algebra import parse_ra
from repro.serve import Server

WARM_QUERY = parse_ra("project[#0](R)")
JOIN_QUERY = parse_ra("project[#0](select[#1 = #2](product(R, S)))")
QUERY_SET = (WARM_QUERY, JOIN_QUERY)


def _database(rows=40):
    r = [(i, i % 5) for i in range(rows)]
    r.append((rows, Null("n")))
    s = [(i % 5, "c%d" % i) for i in range(rows // 4)]
    return Database.from_dict({"R": r, "S": s})


@pytest.fixture
def server():
    instance = Server(_database(), pool_size=4, engine="sqlite", warm=QUERY_SET)
    yield instance
    instance.close()


def _expected():
    with repro.connect(_database(), engine="sqlite") as session:
        return {
            "certain": [session.query(q).certain() for q in QUERY_SET],
            "possible": session.query(WARM_QUERY).possible(),
            "boolean": session.query(parse_ra("R")).boolean(),
            "rows": sorted(session.query(parse_ra("R")).answer_object().rows),
        }


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------
def test_server_validates_arguments():
    with pytest.raises(InvalidRequestError):
        Server(_database(), pool_size=0)
    with pytest.raises(InvalidRequestError):
        Server(_database(), backends=0)
    with pytest.raises(TypeError):
        Server({"R": [(1,)]})


def test_server_owns_a_frozen_session(server):
    assert server.frozen_session.frozen
    assert server.stats()["pool_size"] == 4
    assert server.stats()["backends"] == 2


# ----------------------------------------------------------------------
# async dispatch
# ----------------------------------------------------------------------
def test_every_answer_mode_matches_the_session(server):
    expected = _expected()

    async def main():
        certain = [await server.certain(q) for q in QUERY_SET]
        possible = await server.possible(WARM_QUERY)
        boolean = await server.boolean(parse_ra("R"))
        answer = await server.answer_object(parse_ra("R"))
        knowledge = await server.knowledge(WARM_QUERY)
        explanation = await server.explain(WARM_QUERY)
        return certain, possible, boolean, answer, knowledge, explanation

    certain, possible, boolean, answer, knowledge, explanation = asyncio.run(main())
    assert certain == expected["certain"]
    assert possible == expected["possible"]
    assert boolean == expected["boolean"]
    assert sorted(answer.rows) == expected["rows"]
    assert knowledge is not None
    assert isinstance(explanation, str) and explanation


def test_eight_concurrent_clients_match_sequential(server):
    """The ISSUE's differential: 8 clients, interleaved queries, answers
    identical to one-at-a-time evaluation."""
    expected = _expected()["certain"]
    clients, rounds = 8, 6

    async def client(offset):
        answers = []
        for index in range(rounds):
            pick = (offset + index) % len(QUERY_SET)
            answers.append((pick, await server.certain(QUERY_SET[pick])))
        return answers

    async def main():
        return await asyncio.gather(*(client(i) for i in range(clients)))

    for batch in asyncio.run(main()):
        for pick, answer in batch:
            assert answer == expected[pick]
    assert server.stats()["served"] == clients * rounds


# ----------------------------------------------------------------------
# cursor streaming
# ----------------------------------------------------------------------
def test_cursor_streams_all_rows_in_batches(server):
    expected = _expected()["rows"]

    async def main():
        rows = []
        batches = 0
        async for batch in server.cursor(parse_ra("R"), batch_size=7):
            assert len(batch) <= 7
            rows.extend(batch)
            batches += 1
        return rows, batches

    rows, batches = asyncio.run(main())
    assert sorted(rows) == expected
    assert batches >= 2  # the workload does not fit one batch
    assert server.stats()["cursor_sessions_idle"] == server.stats()["backends"]


def test_abandoned_cursor_returns_its_session(server):
    async def main():
        stream = server.cursor(parse_ra("R"), batch_size=2)
        await stream.__anext__()  # take one batch...
        await stream.aclose()  # ...then walk away

    asyncio.run(main())
    assert server.stats()["cursor_sessions_idle"] == server.stats()["backends"]


def test_cursor_validates_batch_size(server):
    async def main():
        async for _ in server.cursor(parse_ra("R"), batch_size=0):
            pass

    with pytest.raises(InvalidRequestError):
        asyncio.run(main())


def test_concurrent_cursors_share_the_checkout_pool(server):
    """More streams than backend sessions: they serialize, none starve."""
    expected = _expected()["rows"]

    async def stream():
        rows = []
        async for batch in server.cursor(parse_ra("R"), batch_size=16):
            rows.extend(batch)
        return rows

    async def main():
        return await asyncio.wait_for(
            asyncio.gather(*(stream() for _ in range(4))), timeout=60
        )

    results = asyncio.run(main())
    for rows in results:
        assert sorted(rows) == expected
    assert server.stats()["cursor_sessions_idle"] == server.stats()["backends"]


# ----------------------------------------------------------------------
# control plane
# ----------------------------------------------------------------------
def test_close_is_idempotent_and_rejects_new_work(server):
    server.close()
    server.close()
    assert server.closed

    async def main():
        await server.certain(WARM_QUERY)

    with pytest.raises(SessionClosedError):
        asyncio.run(main())

    async def stream():
        async for _ in server.cursor(parse_ra("R")):
            pass

    with pytest.raises(SessionClosedError):
        asyncio.run(stream())


def test_cancel_is_a_safe_no_op_when_idle(server):
    server.cancel()  # nothing in flight: must not throw or poison

    async def main():
        return await server.certain(WARM_QUERY)

    assert asyncio.run(main()) == _expected()["certain"][0]


def test_sync_context_manager():
    with Server(_database(), pool_size=2) as server:
        async def main():
            return await server.certain(WARM_QUERY)

        assert asyncio.run(main()) is not None
    assert server.closed


def test_async_context_manager():
    async def main():
        async with Server(_database(), pool_size=2) as server:
            return await server.certain(WARM_QUERY), server

    answer, server = asyncio.run(main())
    assert answer is not None
    assert server.closed
