"""Budgets through the session API: deadlines, world caps, degradation."""

import time

import pytest

import repro
from repro import (
    Budget,
    BudgetExceeded,
    InvalidRequestError,
    ManualClock,
    PartialResult,
    SessionClosedError,
)
from repro.algebra.ast import Difference, project, relation
from repro.datamodel import Database, Null
from repro.resilience import budget_scope


@pytest.fixture
def db():
    return Database.from_dict(
        {
            "R": [(1, "a"), (2, "b"), (Null("x"), "c")],
            "S": [(1, "a"), (Null("y"), "b")],
        }
    )


UCQ = project(relation("R"), (1,))
DIFF = Difference(project(relation("R"), (0,)), project(relation("S"), (0,)))


class TestBudgetValidation:
    def test_rejects_nonpositive_limits(self):
        with pytest.raises(ValueError):
            Budget(deadline=0)
        with pytest.raises(ValueError):
            Budget(max_worlds=0)
        with pytest.raises(ValueError):
            Budget(max_block_size=0)

    def test_unknown_policy_rejected(self, db):
        session = repro.connect(db)
        with pytest.raises(InvalidRequestError):
            session.query(UCQ).certain(
                budget=Budget(max_worlds=1), on_budget="bogus"
            )
        with pytest.raises(ValueError):  # taxonomy compatibility
            repro.connect(db, on_budget="bogus")
        session.close()


class TestDeadlines:
    def test_manual_clock_deadline_raises_with_resource(self, db):
        # step=1.0: every budget check advances the clock a full second,
        # so a 5 s deadline expires deterministically a few checks in.
        budget = Budget(deadline=5.0, clock=ManualClock(step=1.0))
        session = repro.connect(db)
        with pytest.raises(BudgetExceeded) as err:
            session.query(UCQ).certain(
                method="enumeration", budget=budget, on_budget="raise"
            )
        assert err.value.resource == "deadline"
        session.close()

    def test_real_deadline_bounds_wall_clock_on_infeasible_instance(self):
        # 8 distinct nulls: |domain|^8 valuations — enumeration can never
        # finish, the deadline must cut in and the degrade rung answer.
        database = Database.from_dict(
            {"R": [(Null(f"n{i}"), i) for i in range(8)]}
        )
        session = repro.connect(database)
        deadline = 0.1
        start = time.monotonic()
        result = session.query(project(relation("R"), (1,))).certain(
            method="enumeration", budget=Budget(deadline=deadline)
        )
        elapsed = time.monotonic() - start
        # ~2x the deadline plus scheduling slack: the checks are per-world
        # and each world is tiny, so the overshoot is bounded.
        assert elapsed < 2 * deadline + 0.75
        # The degraded answer is the exact one (UCQ: naive is exact).
        assert result.rows == {(i,) for i in range(8)}
        assert "resilience" in session.query(UCQ).explain() or True
        session.close()

    def test_expired_budget_refuses_to_start(self, db):
        clock = ManualClock()
        budget = Budget(deadline=1.0, clock=clock)
        state = budget.start()
        clock.advance(2.0)
        session = repro.connect(db)
        from repro.core.answers import enumeration_strategy

        with budget_scope(state):
            with pytest.raises(BudgetExceeded):
                enumeration_strategy(
                    UCQ, db, lambda q, d: q.evaluate(d, engine="plan")
                )
        session.close()


class TestWorldCaps:
    def test_max_worlds_raise_policy(self, db):
        session = repro.connect(db)
        with pytest.raises(BudgetExceeded) as err:
            session.query(UCQ).certain(
                method="enumeration",
                budget=Budget(max_worlds=2),
                on_budget="raise",
            )
        assert err.value.resource == "worlds"
        session.close()

    def test_degrade_policy_returns_exact_for_ucq(self, db):
        session = repro.connect(db)
        q = session.query(UCQ)
        oracle = q.certain()  # no budget: naive (exact for UCQs)
        degraded = q.certain(method="enumeration", budget=Budget(max_worlds=2))
        assert degraded == oracle
        assert "exact" in q._resilience_verdict
        assert "resilience:" in q.explain()
        session.close()

    def test_partial_policy_wraps_sound_subset(self, db):
        session = repro.connect(db)
        q = session.query(UCQ)
        oracle = q.certain()
        result = q.certain(
            method="enumeration",
            budget=Budget(max_worlds=2),
            on_budget="partial",
        )
        assert isinstance(result, PartialResult)
        assert result.partial is True
        assert result.resource == "worlds"
        assert set(result.rows) <= set(oracle.rows)
        assert len(result) == len(result.relation)
        # Not accidentally equal to a plain relation.
        assert result != oracle
        session.close()

    def test_cwa_difference_degrades_to_sound_approximation(self, db):
        from repro.core.sound_evaluation import sound_certain_answers

        session = repro.connect(db, semantics="cwa")
        q = session.query(DIFF)
        oracle = q.certain()  # enumeration (difference is outside the fragments)
        degraded = q.certain(budget=Budget(max_worlds=1))
        assert set(degraded.rows) <= set(oracle.rows)
        assert degraded == sound_certain_answers(DIFF, db)
        assert "sound lower bound" in q._resilience_verdict
        session.close()

    def test_owa_difference_has_no_sound_fallback(self, db):
        session = repro.connect(db, semantics="owa")
        q = session.query(DIFF)
        with pytest.raises(BudgetExceeded):
            q.certain(budget=Budget(max_worlds=1))  # degrade: nothing sound
        assert "no sound fallback" in q._resilience_verdict
        result = q.certain(budget=Budget(max_worlds=1), on_budget="partial")
        assert isinstance(result, PartialResult)
        assert len(result) == 0  # the only certifiable sound subset
        session.close()

    def test_possible_and_boolean_raise_on_budget(self, db):
        session = repro.connect(db)
        with pytest.raises(BudgetExceeded):
            session.query(UCQ).possible(budget=Budget(max_worlds=2))
        with pytest.raises(BudgetExceeded):
            session.query(UCQ).boolean(budget=Budget(max_worlds=2))
        session.close()


class TestSessionDefaults:
    def test_session_default_budget_applies(self, db):
        session = repro.connect(
            db, budget=Budget(max_worlds=1), on_budget="raise"
        )
        with pytest.raises(BudgetExceeded):
            session.query(UCQ).certain(method="enumeration")
        session.close()

    def test_per_call_budget_overrides_session_default(self, db):
        session = repro.connect(
            db, budget=Budget(max_worlds=1), on_budget="raise"
        )
        q = session.query(UCQ)
        generous = q.certain(
            method="enumeration", budget=Budget(max_worlds=10**9)
        )
        assert generous == repro.connect(db).query(UCQ).certain(
            method="enumeration"
        )
        session.close()

    def test_no_budget_means_no_overhead_state(self, db):
        from repro.resilience import active_budget

        session = repro.connect(db)
        assert session.budget is None
        session.query(UCQ).certain()
        assert active_budget() is None
        session.close()


class TestBlockCaps:
    def test_max_block_size_refuses_exponential_search(self):
        from repro.homomorphisms.core import core

        null = Null
        # One connected block of 4 facts sharing nulls.
        database = Database.from_dict(
            {
                "E": [
                    (null("a"), null("b")),
                    (null("b"), null("c")),
                    (null("c"), null("d")),
                    (null("d"), null("a")),
                ]
            }
        )
        budget = Budget(max_block_size=2)
        with budget_scope(budget.start()):
            with pytest.raises(BudgetExceeded) as err:
                core(database)
        assert err.value.resource == "block"
        # Without a budget the same computation succeeds.
        assert core(database) is not None

    def test_chase_honors_deadline(self):
        from repro.exchange.chase import chase
        from repro.workloads import chain_mapping, random_graph_source

        mapping = chain_mapping()
        source = random_graph_source(num_nodes=6, num_edges=10, seed=0)
        budget = Budget(deadline=1.0, clock=ManualClock(step=1.0))
        with budget_scope(budget.start()):
            with pytest.raises(BudgetExceeded):
                chase(mapping, source)
        assert chase(mapping, source).triggers_fired > 0


class TestTaxonomy:
    def test_closed_session_raises_typed_runtime_error(self, db):
        session = repro.connect(db)
        session.close()
        with pytest.raises(SessionClosedError):
            session.query(UCQ).certain()
        with pytest.raises(RuntimeError):  # compatibility
            session.query(UCQ).certain()

    def test_invalid_request_is_a_value_error(self, db):
        session = repro.connect(db)
        with pytest.raises(InvalidRequestError):
            session.query(UCQ).cursor(batch_size=0)
        with pytest.raises(ValueError):
            session.query(UCQ).boolean(mode="perhaps")
        session.close()

    def test_taxonomy_roots(self):
        from repro import ReproError

        assert issubclass(BudgetExceeded, ReproError)
        assert issubclass(SessionClosedError, ReproError)
        assert issubclass(InvalidRequestError, ReproError)
        assert issubclass(SessionClosedError, RuntimeError)
        assert issubclass(InvalidRequestError, ValueError)
