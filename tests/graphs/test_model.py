"""Unit tests for the incomplete-graph data model."""

import pytest

from repro.datamodel import Database, Null, Valuation
from repro.graphs import IncompleteGraph, graph_from_database, graph_to_database
from repro.homomorphisms import exists_homomorphism


@pytest.fixture
def sample_graph():
    return IncompleteGraph(
        edges=[
            ("a", "knows", "b"),
            ("b", "knows", Null("x")),
            (Null("x"), "worksFor", Null("y")),
        ],
        nodes=["isolated"],
    )


class TestConstruction:
    def test_nodes_are_collected_from_edges_and_explicit_list(self, sample_graph):
        assert "a" in sample_graph.nodes()
        assert "isolated" in sample_graph.nodes()
        assert Null("x") in sample_graph.nodes()
        assert sample_graph.num_nodes() == 5

    def test_edge_must_be_a_triple(self):
        with pytest.raises(ValueError):
            IncompleteGraph(edges=[("a", "b")])

    def test_none_is_rejected_as_a_value(self):
        with pytest.raises(TypeError):
            IncompleteGraph(edges=[("a", None, "b")])

    def test_duplicate_edges_are_collapsed(self):
        graph = IncompleteGraph(edges=[("a", "r", "b"), ("a", "r", "b")])
        assert graph.num_edges() == 1

    def test_empty_graph_is_falsy(self):
        assert not IncompleteGraph()
        assert IncompleteGraph(nodes=["a"])


class TestAccessors:
    def test_labels(self, sample_graph):
        assert sample_graph.labels() == {"knows", "worksFor"}

    def test_nulls_and_constants(self, sample_graph):
        assert {n.name for n in sample_graph.nulls()} == {"x", "y"}
        assert "a" in sample_graph.constants()
        assert "knows" in sample_graph.constants()

    def test_is_complete(self, sample_graph):
        assert not sample_graph.is_complete()
        assert IncompleteGraph(edges=[("a", "r", "b")]).is_complete()

    def test_successors_map(self, sample_graph):
        successors = sample_graph.successors()
        assert ("knows", "b") in successors["a"]
        assert successors["isolated"] == []

    def test_membership_and_iteration(self, sample_graph):
        assert ("a", "knows", "b") in sample_graph
        assert len(list(sample_graph)) == sample_graph.num_edges()

    def test_equality_and_hash(self):
        g1 = IncompleteGraph(edges=[("a", "r", "b")])
        g2 = IncompleteGraph(edges=[("a", "r", "b")])
        assert g1 == g2
        assert hash(g1) == hash(g2)
        assert g1 != IncompleteGraph(edges=[("a", "r", "c")])

    def test_to_text_mentions_isolated_nodes(self, sample_graph):
        text = sample_graph.to_text()
        assert "isolated" in text
        assert "-knows->" in text


class TestTransformations:
    def test_apply_valuation_replaces_nulls(self, sample_graph):
        valuation = Valuation({Null("x"): "c", Null("y"): "acme"})
        world = sample_graph.apply_valuation(valuation)
        assert world.is_complete()
        assert ("b", "knows", "c") in world.edges()
        assert ("c", "worksFor", "acme") in world.edges()

    def test_valuation_respects_shared_nulls(self):
        graph = IncompleteGraph(edges=[("a", "r", Null("x")), (Null("x"), "r", "b")])
        world = graph.apply_valuation(Valuation({Null("x"): "m"}))
        assert world.edges() == frozenset({("a", "r", "m"), ("m", "r", "b")})

    def test_add_edges_and_union(self):
        g1 = IncompleteGraph(edges=[("a", "r", "b")])
        g2 = g1.add_edges([("b", "r", "c")])
        assert g2.num_edges() == 2
        g3 = g1.union(IncompleteGraph(edges=[("c", "s", "d")], nodes=["lone"]))
        assert g3.num_edges() == 2
        assert "lone" in g3.nodes()

    def test_subgraph(self, sample_graph):
        sub = sample_graph.subgraph({"a", "b"})
        assert sub.edges() == frozenset({("a", "knows", "b")})
        assert sub.nodes() == frozenset({"a", "b"})

    def test_contains_graph(self, sample_graph):
        sub = sample_graph.subgraph({"a", "b"})
        assert sample_graph.contains_graph(sub)
        assert not sub.contains_graph(sample_graph)


class TestRelationalEncoding:
    def test_round_trip(self, sample_graph):
        database = graph_to_database(sample_graph)
        assert graph_from_database(database) == sample_graph

    def test_encoding_exposes_node_and_edge_relations(self, sample_graph):
        database = sample_graph.to_database()
        assert database.relation("Edge").arity == 3
        assert database.relation("Node").arity == 1
        assert database.relation("Edge").rows == sample_graph.edges()

    def test_encoding_preserves_nulls(self, sample_graph):
        database = sample_graph.to_database()
        assert database.nulls() == sample_graph.nulls()

    def test_decoding_requires_edge_relation(self):
        database = Database.from_dict({"R": [(1, 2)]})
        with pytest.raises(KeyError):
            graph_from_database(database)

    def test_homomorphism_machinery_applies_through_encoding(self):
        # The graph with the null maps into its instantiation but not back.
        with_null = IncompleteGraph(edges=[("a", "r", Null("x"))]).to_database()
        instantiated = IncompleteGraph(edges=[("a", "r", "b")]).to_database()
        assert exists_homomorphism(with_null, instantiated)
        assert not exists_homomorphism(instantiated, with_null)

    def test_empty_graph_encodes_to_empty_relations(self):
        database = IncompleteGraph().to_database()
        assert len(database.relation("Edge")) == 0
        assert len(database.relation("Node")) == 0
