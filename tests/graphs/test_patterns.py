"""Unit tests for conjunctive graph patterns."""

import pytest

from repro.datamodel import Null
from repro.graphs import (
    EdgeAtom,
    GraphPattern,
    IncompleteGraph,
    certain_answers_pattern,
    naive_certain_answers_pattern,
)
from repro.logic import var


@pytest.fixture
def social():
    return IncompleteGraph(
        edges=[
            ("ann", "knows", "bob"),
            ("bob", "knows", "cat"),
            ("ann", "worksFor", "acme"),
            ("bob", "worksFor", Null("e")),
        ]
    )


class TestConstruction:
    def test_requires_at_least_one_atom(self):
        with pytest.raises(ValueError):
            GraphPattern([], output=())

    def test_output_variables_must_occur_in_the_body(self):
        x, y = var("x"), var("y")
        with pytest.raises(ValueError):
            GraphPattern([EdgeAtom(x, "knows", x)], output=(y,))

    def test_variables_and_str(self):
        x, y = var("x"), var("y")
        pattern = GraphPattern([EdgeAtom(x, "knows", y)], output=(x,))
        assert pattern.variables() == {x, y}
        assert "knows" in str(pattern)
        assert not pattern.is_boolean()
        assert GraphPattern([EdgeAtom(x, "knows", y)]).is_boolean()


class TestEvaluation:
    def test_single_atom(self, social):
        x, y = var("x"), var("y")
        pattern = GraphPattern([EdgeAtom(x, "knows", y)], output=(x, y))
        assert pattern.evaluate(social).rows == {("ann", "bob"), ("bob", "cat")}

    def test_join_on_shared_variable(self, social):
        x, y, z = var("x"), var("y"), var("z")
        pattern = GraphPattern(
            [EdgeAtom(x, "knows", y), EdgeAtom(y, "knows", z)], output=(x, z)
        )
        assert pattern.evaluate(social).rows == {("ann", "cat")}

    def test_constant_in_atom(self, social):
        x = var("x")
        pattern = GraphPattern([EdgeAtom(x, "worksFor", "acme")], output=(x,))
        assert pattern.evaluate(social).rows == {("ann",)}

    def test_variable_label(self, social):
        x, l = var("x"), var("l")
        pattern = GraphPattern([EdgeAtom("ann", l, x)], output=(l, x))
        assert pattern.evaluate(social).rows == {("knows", "bob"), ("worksFor", "acme")}

    def test_boolean_pattern(self, social):
        x, y = var("x"), var("y")
        present = GraphPattern([EdgeAtom(x, "worksFor", y)])
        absent = GraphPattern([EdgeAtom(x, "dislikes", y)])
        assert present.evaluate_boolean(social)
        assert not absent.evaluate_boolean(social)

    def test_same_variable_twice_forces_equality(self):
        x = var("x")
        graph = IncompleteGraph(edges=[("a", "r", "a"), ("a", "r", "b")])
        loops = GraphPattern([EdgeAtom(x, "r", x)], output=(x,))
        assert loops.evaluate(graph).rows == {("a",)}


class TestCertainAnswers:
    def test_naive_certain_drops_null_rows(self, social):
        x, y = var("x"), var("y")
        pattern = GraphPattern([EdgeAtom(x, "worksFor", y)], output=(x, y))
        naive = pattern.evaluate(social).rows
        certain = naive_certain_answers_pattern(pattern, social).rows
        assert ("bob", Null("e")) in naive
        assert certain == {("ann", "acme")}

    def test_naive_matches_enumeration(self, social):
        x, y = var("x"), var("y")
        pattern = GraphPattern([EdgeAtom(x, "worksFor", y)], output=(x, y))
        assert (
            naive_certain_answers_pattern(pattern, social).rows
            == certain_answers_pattern(pattern, social, semantics="cwa").rows
        )

    def test_projected_variable_over_null_edge_is_certain(self, social):
        # "bob works for someone" is certain even though the employer is unknown.
        x, y = var("x"), var("y")
        pattern = GraphPattern([EdgeAtom(x, "worksFor", y)], output=(x,))
        certain = naive_certain_answers_pattern(pattern, social).rows
        assert certain == {("ann",), ("bob",)}
        assert certain == certain_answers_pattern(pattern, social).rows

    def test_shared_null_join_is_certain(self):
        x, z = var("x"), var("z")
        graph = IncompleteGraph(edges=[("a", "r", Null("m")), (Null("m"), "r", "c")])
        pattern = GraphPattern([EdgeAtom(x, "r", var("y")), EdgeAtom(var("y"), "r", z)], output=(x, z))
        assert naive_certain_answers_pattern(pattern, graph).rows == {("a", "c")}
        assert certain_answers_pattern(pattern, graph).rows == {("a", "c")}

    def test_unshared_nulls_do_not_join_certainly(self):
        x, z = var("x"), var("z")
        graph = IncompleteGraph(edges=[("a", "r", Null("m")), (Null("n"), "r", "c")])
        pattern = GraphPattern([EdgeAtom(x, "r", var("y")), EdgeAtom(var("y"), "r", z)], output=(x, z))
        # Naive evaluation does not join distinct nulls, matching the certain answer.
        assert naive_certain_answers_pattern(pattern, graph).rows == frozenset()
        assert certain_answers_pattern(pattern, graph).rows == set()

    def test_invalid_semantics_rejected(self, social):
        x, y = var("x"), var("y")
        pattern = GraphPattern([EdgeAtom(x, "knows", y)], output=(x, y))
        with pytest.raises(ValueError):
            certain_answers_pattern(pattern, social, semantics="open")
