"""Unit tests for conjunctive regular path queries (CRPQs)."""

import pytest

from repro.datamodel import Null
from repro.graphs import (
    ConjunctiveRPQ,
    IncompleteGraph,
    PathAtom,
    certain_answers_crpq,
    naive_certain_answers_crpq,
    parse_rpq,
)
from repro.logic import var

X, Y, Z = var("x"), var("y"), var("z")


@pytest.fixture
def transport():
    """Cities connected by train/bus edges, with one unknown hub."""
    hub = Null("hub")
    return IncompleteGraph(
        edges=[
            ("oslo", "train", "gothenburg"),
            ("gothenburg", "train", "copenhagen"),
            ("copenhagen", "bus", "berlin"),
            ("oslo", "bus", hub),
            (hub, "train", "berlin"),
        ]
    )


class TestConstruction:
    def test_atoms_accept_text_or_rpq_objects(self):
        atom = PathAtom(X, "train+", Y)
        assert atom.rpq.labels() == {"train"}
        atom2 = PathAtom(X, parse_rpq("bus"), Y)
        assert atom2.rpq.labels() == {"bus"}
        with pytest.raises(TypeError):
            PathAtom(X, 42, Y)

    def test_query_validation(self):
        with pytest.raises(ValueError):
            ConjunctiveRPQ([], output=())
        with pytest.raises(ValueError):
            ConjunctiveRPQ([PathAtom(X, "train", Y)], output=(Z,))

    def test_str_and_variables(self):
        query = ConjunctiveRPQ([PathAtom(X, "train", Y)], output=(X,))
        assert "─[train]→" in str(query)
        assert query.variables() == {X, Y}
        assert not query.is_boolean()


class TestEvaluation:
    def test_single_atom_is_an_rpq(self, transport):
        query = ConjunctiveRPQ([PathAtom(X, "train . train", Y)], output=(X, Y))
        assert query.evaluate(transport).rows == parse_rpq("train . train").evaluate(transport).rows

    def test_join_over_shared_variable(self, transport):
        """Cities reachable from oslo by train* and then one bus hop."""
        query = ConjunctiveRPQ(
            [PathAtom("oslo", "train*", Y), PathAtom(Y, "bus", Z)], output=(Z,)
        )
        # Naive evaluation traverses the unknown hub like any other node.
        assert query.evaluate(transport).rows == {("berlin",), (Null("hub"),)}
        assert naive_certain_answers_crpq(query, transport).rows == {("berlin",)}

    def test_constant_endpoints(self, transport):
        reaches_berlin = ConjunctiveRPQ(
            [PathAtom("oslo", "(train | bus)+", "berlin")]
        )
        assert reaches_berlin.evaluate_boolean(transport)
        no_route = ConjunctiveRPQ([PathAtom("berlin", "train+", "oslo")])
        assert not no_route.evaluate_boolean(transport)

    def test_multiple_atoms_must_all_hold(self, transport):
        query = ConjunctiveRPQ(
            [PathAtom(X, "train", Y), PathAtom(X, "bus", Z)], output=(X,)
        )
        # Only oslo has both an outgoing train and an outgoing bus edge.
        assert query.evaluate(transport).rows == {("oslo",)}

    def test_boolean_query_row(self, transport):
        query = ConjunctiveRPQ([PathAtom(X, "train", Y)])
        assert query.evaluate(transport).rows == {("true",)}


class TestCertainAnswers:
    def test_path_through_unknown_hub_is_certain(self, transport):
        """oslo certainly reaches berlin via bus then train, whatever the hub is."""
        query = ConjunctiveRPQ([PathAtom(X, "bus . train", Y)], output=(X, Y))
        naive = naive_certain_answers_crpq(query, transport)
        brute = certain_answers_crpq(query, transport, semantics="cwa")
        assert ("oslo", "berlin") in naive.rows
        assert naive.rows == brute.rows

    def test_answers_mentioning_the_hub_are_dropped(self, transport):
        query = ConjunctiveRPQ([PathAtom("oslo", "bus", Y)], output=(Y,))
        naive_all = query.evaluate(transport).rows
        certain = naive_certain_answers_crpq(query, transport).rows
        assert (Null("hub"),) in naive_all
        assert certain == frozenset()

    def test_invalid_semantics_rejected(self, transport):
        query = ConjunctiveRPQ([PathAtom(X, "train", Y)], output=(X,))
        with pytest.raises(ValueError):
            certain_answers_crpq(query, transport, semantics="open")

    @pytest.mark.parametrize("seed", range(3))
    def test_naive_matches_enumeration_on_random_graphs(self, seed):
        from repro.workloads import random_labelled_graph

        graph = random_labelled_graph(num_nodes=5, num_edges=7, seed=seed)
        query = ConjunctiveRPQ([PathAtom(X, "a+", Y), PathAtom(Y, "b", Z)], output=(X, Z))
        assert (
            naive_certain_answers_crpq(query, graph).rows
            == certain_answers_crpq(query, graph, semantics="cwa").rows
        )
