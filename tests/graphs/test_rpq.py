"""Unit tests for regular path queries: parsing, evaluation, certain answers."""

import pytest

from repro.datamodel import Null
from repro.graphs import (
    Alt,
    Concat,
    IncompleteGraph,
    Label,
    Opt,
    Plus,
    RegularPathQuery,
    RPQParseError,
    Star,
    certain_answers_rpq,
    naive_certain_answers_rpq,
    parse_rpq,
)


@pytest.fixture
def chain():
    return IncompleteGraph(edges=[("a", "r", "b"), ("b", "r", "c"), ("c", "s", "d")])


class TestParser:
    def test_single_label(self):
        query = parse_rpq("knows")
        assert isinstance(query.expression, Label)
        assert query.labels() == {"knows"}

    def test_concatenation_with_dot_slash_and_juxtaposition(self):
        for text in ("a . b", "a / b", "a b"):
            query = parse_rpq(text)
            assert isinstance(query.expression, Concat), text

    def test_alternation_and_star(self):
        query = parse_rpq("a | b*")
        assert isinstance(query.expression, Alt)
        assert isinstance(query.expression.right, Star)

    def test_plus_and_optional(self):
        query = parse_rpq("a+ . b?")
        assert isinstance(query.expression, Concat)
        assert isinstance(query.expression.left, Plus)
        assert isinstance(query.expression.right, Opt)

    def test_parentheses_group(self):
        query = parse_rpq("(a | b) . c")
        assert isinstance(query.expression, Concat)
        assert isinstance(query.expression.left, Alt)

    def test_quoted_labels(self):
        query = parse_rpq("'works for' . knows")
        assert "works for" in query.labels()

    def test_errors(self):
        with pytest.raises(RPQParseError):
            parse_rpq("")
        with pytest.raises(RPQParseError):
            parse_rpq("(a . b")
        with pytest.raises(RPQParseError):
            parse_rpq("a | | b")
        with pytest.raises(RPQParseError):
            parse_rpq("'unterminated")

    def test_operator_overloads_build_the_same_queries(self):
        built = RegularPathQuery(Concat(Label("a"), Star(Label("b"))))
        parsed = parse_rpq("a . b*")
        graph = IncompleteGraph(edges=[("x", "a", "y"), ("y", "b", "z")])
        assert built.evaluate(graph).rows == parsed.evaluate(graph).rows


class TestEvaluation:
    def test_single_step(self, chain):
        assert parse_rpq("r").evaluate(chain).rows == {("a", "b"), ("b", "c")}

    def test_concatenation(self, chain):
        assert parse_rpq("r . r").evaluate(chain).rows == {("a", "c")}
        assert parse_rpq("r . s").evaluate(chain).rows == {("b", "d")}

    def test_alternation(self, chain):
        assert parse_rpq("r | s").evaluate(chain).rows == {("a", "b"), ("b", "c"), ("c", "d")}

    def test_star_includes_empty_path(self, chain):
        answers = parse_rpq("r*").evaluate(chain).rows
        for node in chain.nodes():
            assert (node, node) in answers
        assert ("a", "c") in answers

    def test_plus_excludes_empty_path(self, chain):
        answers = parse_rpq("r+").evaluate(chain).rows
        assert ("a", "a") not in answers
        assert ("a", "c") in answers

    def test_optional(self, chain):
        answers = parse_rpq("r . s?").evaluate(chain).rows
        assert ("b", "c") in answers  # s skipped
        assert ("b", "d") in answers  # s taken

    def test_cycle_termination(self):
        graph = IncompleteGraph(edges=[("a", "r", "b"), ("b", "r", "a")])
        answers = parse_rpq("r*").evaluate(graph).rows
        assert answers == {("a", "a"), ("a", "b"), ("b", "a"), ("b", "b")}

    def test_boolean_evaluation(self, chain):
        assert parse_rpq("r . r").evaluate_boolean(chain)
        assert not parse_rpq("s . s").evaluate_boolean(chain)

    def test_no_matching_label(self, chain):
        assert parse_rpq("missing").evaluate(chain).rows == frozenset()

    def test_answer_schema(self, chain):
        answer = parse_rpq("r").evaluate(chain)
        assert answer.attributes == ("source", "target")


class TestNaiveEvaluationOverNulls:
    def test_null_node_is_traversed(self):
        graph = IncompleteGraph(edges=[("a", "r", Null("x")), (Null("x"), "r", "b")])
        assert ("a", "b") in parse_rpq("r . r").evaluate(graph).rows

    def test_null_label_does_not_match_a_constant_label(self):
        graph = IncompleteGraph(edges=[("a", Null("l"), "b")])
        assert parse_rpq("r").evaluate(graph).rows == frozenset()

    def test_naive_certain_drops_null_endpoints(self):
        graph = IncompleteGraph(edges=[("a", "r", Null("x")), (Null("x"), "r", "b")])
        naive = parse_rpq("r").evaluate(graph).rows
        certain = naive_certain_answers_rpq(parse_rpq("r"), graph).rows
        assert ("a", Null("x")) in naive
        assert all(not isinstance(v, Null) for row in certain for v in row)


class TestCertainAnswers:
    def test_naive_equals_enumeration_on_shared_null(self):
        graph = IncompleteGraph(edges=[("a", "r", Null("x")), (Null("x"), "r", "b")])
        query = parse_rpq("r . r")
        naive = naive_certain_answers_rpq(query, graph)
        brute = certain_answers_rpq(query, graph, semantics="cwa")
        assert naive.rows == brute.rows == frozenset({("a", "b")})

    def test_owa_and_cwa_enumeration_agree_for_rpqs(self):
        graph = IncompleteGraph(edges=[("a", "r", Null("x")), ("a", "r", "b")])
        query = parse_rpq("r")
        assert (
            certain_answers_rpq(query, graph, semantics="owa").rows
            == certain_answers_rpq(query, graph, semantics="cwa").rows
        )

    def test_uncertain_answer_is_not_reported(self):
        # The edge to the unknown node may or may not coincide with b.
        graph = IncompleteGraph(edges=[("a", "r", Null("x"))], nodes=["b"])
        query = parse_rpq("r")
        assert naive_certain_answers_rpq(query, graph).rows == frozenset()
        assert certain_answers_rpq(query, graph).rows == frozenset()

    def test_invalid_semantics_rejected(self):
        with pytest.raises(ValueError):
            certain_answers_rpq(parse_rpq("r"), IncompleteGraph(), semantics="open")

    @pytest.mark.parametrize("seed", range(3))
    def test_naive_matches_enumeration_on_random_graphs(self, seed):
        from repro.workloads import random_labelled_graph

        graph = random_labelled_graph(num_nodes=5, num_edges=8, seed=seed)
        query = parse_rpq("a . b | a")
        naive = naive_certain_answers_rpq(query, graph)
        brute = certain_answers_rpq(query, graph, semantics="cwa")
        assert naive.rows == brute.rows
