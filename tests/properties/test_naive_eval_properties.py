"""Property-based tests for naive evaluation (eq. (4)) on random positive queries."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import (
    Attr,
    Comparison,
    Projection,
    RelationRef,
    Selection,
    Union_,
    is_positive,
    naive_certain_answers,
    parse_ra,
)
from repro.core import certain_answers_intersection
from repro.datamodel import Database

from .strategies import databases


def positive_queries():
    """A small strategy of structurally distinct positive queries over R/2, S/1."""
    r, s = RelationRef("R"), RelationRef("S")
    pool = [
        r,
        s,
        Projection(r, (0,)),
        Projection(r, (1,)),
        Selection(r, Comparison(Attr(0), "=", "a")),
        Selection(r, Comparison(Attr(0), "=", Attr(1))),
        Union_(Projection(r, (0,)), s),
        Union_(Projection(r, (1,)), s),
        Projection(Selection(r, Comparison(Attr(1), "=", "b")), (0,)),
    ]
    return st.sampled_from(pool)


@settings(max_examples=50, deadline=None)
@given(databases(max_rows=3), positive_queries())
def test_naive_evaluation_computes_certain_answers_cwa(database, query):
    """Q(D)_cmpl = certain_cwa(Q, D) for every generated positive query."""
    assert is_positive(query)
    naive = naive_certain_answers(query, database)
    exact = certain_answers_intersection(query, database, semantics="cwa")
    assert naive.rows == exact.rows


@settings(max_examples=25, deadline=None)
@given(databases(max_rows=2), positive_queries())
def test_naive_evaluation_computes_certain_answers_owa(database, query):
    """The OWA variant of eq. (4), with a bounded fact extension (monotone queries)."""
    naive = naive_certain_answers(query, database)
    exact = certain_answers_intersection(
        query, database, semantics="owa", max_extra_facts=1
    )
    assert naive.rows == exact.rows


@settings(max_examples=50, deadline=None)
@given(databases(max_rows=3), positive_queries())
def test_certain_answers_are_a_subset_of_the_naive_answer(database, query):
    """Even before filtering, every certain answer appears in the naive answer."""
    naive_all = query.evaluate(database)
    exact = certain_answers_intersection(query, database, semantics="cwa")
    assert exact.rows <= naive_all.rows | exact.rows  # certain tuples are null-free
    assert exact.rows <= set(naive_all.rows) | {
        row for row in exact.rows
    }  # and contained in the naive rows
    assert exact.rows <= naive_all.rows


@settings(max_examples=50, deadline=None)
@given(databases(max_rows=3), positive_queries())
def test_positive_queries_monotone_under_valuations(database, query):
    """Q(D) ⊑_owa Q(v(D)): answers only gain information as nulls are resolved."""
    from repro.core import relation_leq
    from repro.datamodel import Valuation

    valuation = Valuation({null: "z" for null in database.nulls()})
    before = query.evaluate(database)
    after = query.evaluate(valuation.apply(database))
    assert relation_leq(before, after, semantics="owa")
