"""Differential tests: the physical engine must agree with the interpreter.

The seed's tree-walking interpreter (``engine="interpreter"``) is the
oracle; the optimizing engine (``engine="plan"``) must produce identical
relations — same schema, same rows — on every query/database pair,
including databases with repeated marked nulls, or raise the same class
of error.  Over 200 randomized pairs are checked per run, spanning the
positive fragment, full RA with difference, and RA_cwa division queries.
"""

import pytest

from repro.algebra.ast import (
    ActiveDomain,
    ConstantRelation,
    Delta,
    Division,
    difference,
    intersection,
    join,
    product,
    project,
    relation,
    rename,
    select,
    union,
)
from repro.algebra.predicates import Attr, Comparison, PAnd, POr, PNot, eq
from repro.datamodel import Database, Null, Relation
from repro.workloads import (
    enrolment,
    orders_payments,
    random_database,
    random_full_ra_query,
    random_positive_query,
    random_ra_cwa_query,
)

POSITIVE_SEEDS = list(range(60))
FULL_RA_SEEDS = list(range(60))
DIVISION_SEEDS = list(range(40))
NULL_HEAVY_SEEDS = list(range(40))


def _both_ways(query, database):
    """Evaluate with both engines, mapping exceptions to comparable markers."""
    results = []
    for engine in ("plan", "interpreter"):
        try:
            results.append(query.evaluate(database, engine=engine))
        except Exception as error:  # noqa: BLE001 - parity check on error class
            results.append(("error", type(error).__name__))
    plan_result, interpreter_result = results
    assert plan_result == interpreter_result, (
        f"engine mismatch for {query}:\n plan: {plan_result}\n intp: {interpreter_result}"
    )


@pytest.mark.parametrize("seed", POSITIVE_SEEDS)
def test_positive_queries_agree(seed):
    database = random_database(
        num_relations=3, arity=2, rows_per_relation=6, num_constants=4, num_nulls=2, seed=seed
    )
    _both_ways(random_positive_query(database.schema, depth=3, seed=seed), database)


@pytest.mark.parametrize("seed", FULL_RA_SEEDS)
def test_full_ra_queries_agree(seed):
    database = random_database(
        num_relations=3, arity=2, rows_per_relation=6, num_constants=4, num_nulls=2, seed=seed
    )
    _both_ways(random_full_ra_query(database.schema, seed=seed), database)


@pytest.mark.parametrize("seed", DIVISION_SEEDS)
def test_division_queries_agree(seed):
    database = random_database(
        num_relations=2, arity=3, rows_per_relation=8, num_constants=3, num_nulls=2, seed=seed
    )
    _both_ways(random_ra_cwa_query(database.schema, "R0", "R1", seed=seed), database)


@pytest.mark.parametrize("seed", NULL_HEAVY_SEEDS)
def test_null_heavy_databases_agree(seed):
    # Many repeated nulls relative to the number of positions: joins and
    # set operations must treat each marked null as equal only to itself.
    database = random_database(
        num_relations=2, arity=2, rows_per_relation=8, num_constants=2, num_nulls=4, seed=seed
    )
    _both_ways(random_positive_query(database.schema, depth=3, seed=seed + 1), database)
    _both_ways(random_full_ra_query(database.schema, seed=seed + 1), database)


def test_scenario_queries_agree():
    orders = orders_payments(num_orders=25, num_payments=10, null_fraction=0.5, seed=3)
    unpaid = difference(
        project(relation("Orders"), ("o_id",)),
        rename(project(relation("Pay"), ("ord",)), "Paid", ("o_id",)),
    )
    _both_ways(unpaid, orders)

    school = enrolment(num_students=6, num_courses=3, null_fraction=0.3, seed=3)
    takes_all = Division(relation("Enroll"), relation("Courses"))
    _both_ways(takes_all, school)


def test_handcrafted_edge_cases_agree():
    database = Database.from_relations(
        [
            Relation.create("R", [(1, 2), (2, 3), (3, 3), (Null("x"), 2), (Null("x"), Null("y"))]),
            Relation.create("S", [(2, "a"), (3, "b"), (Null("y"), "c")]),
            Relation.create("T", [(2,), (5,)]),
            Relation.create("Empty", [], arity=2),
        ]
    )
    cases = [
        Delta(),
        ActiveDomain(),
        join(rename(relation("R"), "A", ("x", "y")), rename(relation("S"), "B", ("y", "z"))),
        union(relation("R"), relation("Empty")),
        difference(relation("Empty"), relation("R")),
        intersection(project(relation("R"), (1,)), relation("T")),
        select(relation("R"), POr((eq(Attr(0), 1), PNot(eq(Attr(1), 2))))),
        select(
            product(relation("R"), product(relation("S"), relation("T"))),
            PAnd((Comparison(Attr(1), "=", Attr(2)), Comparison(Attr(3), "=", Attr(4)))),
        ),
        ConstantRelation(Relation.create("C", [(2,), (7,)])).product(relation("T")),
        project(relation("R"), (1, 1, 0)),  # duplicated column
        Division(relation("R"), project(relation("T"), (0,))),
        select(product(relation("R"), relation("Empty")), Comparison(Attr(1), "=", Attr(2))),
    ]
    for query in cases:
        _both_ways(query, database)


def test_pair_budget_is_at_least_200():
    assert (
        len(POSITIVE_SEEDS) + len(FULL_RA_SEEDS) + len(DIVISION_SEEDS) + 2 * len(NULL_HEAVY_SEEDS)
        >= 200
    )
