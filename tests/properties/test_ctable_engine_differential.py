"""Differential tests: the planned c-table path vs the interpreter oracle.

The planned path (``engine="plan"``, :mod:`repro.engine.ctable`) may
produce a syntactically different c-table than the tree-walking algebra
(``engine="interpreter"``) — different row order, kernel-shaped
conditions — but both must represent exactly the same set of possible
worlds over any finite domain, in the style of
``tests/properties/test_engine_differential.py``.
"""

import pytest

from repro.algebra import CTableDatabase, ctable_evaluate, parse_ra
from repro.algebra.predicates import Attr, Comparison
from repro.algebra.ast import Selection, relation
from repro.datamodel import ConditionalTable, Database, Eq, Null, Or, Relation
from repro.semantics import default_domain
from repro.workloads import (
    random_database,
    random_full_ra_query,
    random_positive_query,
    random_ra_cwa_query,
)

POSITIVE_SEEDS = list(range(40))
FULL_RA_SEEDS = list(range(30))
DIVISION_SEEDS = list(range(20))


def _both_ways(query, database, domain=None):
    """Evaluate with both engines; their world sets (or error classes) must agree."""
    ctdb = CTableDatabase.from_database(database)
    if domain is None:
        domain = default_domain(database)
    results = []
    for engine in ("plan", "interpreter"):
        try:
            results.append(ctable_evaluate(query, ctdb, engine=engine).possible_worlds(domain))
        except Exception as error:  # noqa: BLE001 - parity check on error class
            results.append(("error", type(error).__name__))
    planned, interpreted = results
    assert planned == interpreted, (
        f"c-table engine mismatch for {query}:\n plan: {planned}\n intp: {interpreted}"
    )


@pytest.mark.parametrize("seed", POSITIVE_SEEDS)
def test_positive_queries_agree(seed):
    database = random_database(
        num_relations=2, arity=2, rows_per_relation=4, num_constants=3, num_nulls=2, seed=seed
    )
    _both_ways(random_positive_query(database.schema, depth=2, seed=seed), database)


@pytest.mark.parametrize("seed", FULL_RA_SEEDS)
def test_full_ra_queries_agree(seed):
    database = random_database(
        num_relations=2, arity=2, rows_per_relation=4, num_constants=3, num_nulls=2, seed=seed
    )
    _both_ways(random_full_ra_query(database.schema, seed=seed), database)


@pytest.mark.parametrize("seed", DIVISION_SEEDS)
def test_division_queries_agree(seed):
    database = random_database(
        num_relations=2, arity=3, rows_per_relation=4, num_constants=3, num_nulls=2, seed=seed
    )
    _both_ways(random_ra_cwa_query(database.schema, "R0", "R1", seed=seed), database)


def test_handcrafted_cases_agree():
    database = Database.from_relations(
        [
            Relation.create("R", [(1, 2), (Null("x"), 2), (Null("x"), Null("y"))]),
            Relation.create("S", [(2, "a"), (Null("y"), "b")]),
            Relation.create("Empty", [], arity=2),
        ]
    )
    cases = [
        parse_ra("delta"),
        parse_ra("adom"),
        parse_ra("union(R, Empty)"),
        parse_ra("diff(Empty, R)"),
        parse_ra("intersect(project[#1](R), project[#0](S))"),
        parse_ra("select[#0 = #1](R)"),
        parse_ra("project[#1, #1, #0](R)"),
        parse_ra("project[#0](select[#1 = #2](product(R, project[#0](S))))"),
        parse_ra("join(rename[A(a, b)](R), rename[B(b, c)](S))"),
    ]
    for query in cases:
        _both_ways(query, database)


def test_order_comparison_error_parity():
    """Order comparisons on nulls raise the same error class on both paths."""
    database = Database.from_relations([Relation.create("R", [(Null("x"), 1)])])
    query = Selection(relation("R"), Comparison(Attr(0), "<", 5))
    _both_ways(query, database)


def test_disjunctive_global_condition_agrees():
    """Inputs with genuine global conditions, not just lifted naive tables."""
    bot = Null("b")
    table = ConditionalTable.create(
        "C",
        [((1,), Eq(bot, 1)), ((0,), Eq(bot, 0))],
        global_condition=Or((Eq(bot, 0), Eq(bot, 1))),
    )
    ctdb = CTableDatabase([table])
    query = parse_ra("select[#0 = 1](C)")
    domain = [0, 1, 2]
    planned = ctable_evaluate(query, ctdb, engine="plan").possible_worlds(domain)
    interpreted = ctable_evaluate(query, ctdb, engine="interpreter").possible_worlds(domain)
    assert planned == interpreted == {frozenset(), frozenset({(1,)})}


def test_pair_budget_is_at_least_90():
    assert len(POSITIVE_SEEDS) + len(FULL_RA_SEEDS) + len(DIVISION_SEEDS) >= 90
