"""Property-based tests for constraint satisfaction over incomplete databases."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import FunctionalDependency, InclusionDependency
from repro.datamodel import Database, Null, Relation
from repro.semantics import certain_boolean, possible_boolean

FD = FunctionalDependency("R", ("#0",), ("#1",))
IND = InclusionDependency("R", ("#1",), "S", ("#0",))

CONSTANTS = ["a", "b"]
NULL_NAMES = ["n1", "n2"]


def values():
    return st.one_of(st.sampled_from(CONSTANTS), st.sampled_from(NULL_NAMES).map(Null))


def databases():
    r_rows = st.lists(st.tuples(values(), values()), min_size=0, max_size=3)
    s_rows = st.lists(st.tuples(values()), min_size=0, max_size=2)
    return st.builds(
        lambda r, s: Database.from_relations(
            [Relation.create("R", r, arity=2), Relation.create("S", s, arity=1)]
        ),
        r_rows,
        s_rows,
    )


@settings(max_examples=50, deadline=None)
@given(databases())
def test_fd_certain_implies_possible(db):
    if FD.satisfied_certainly(db):
        assert FD.satisfied_possibly(db)


@settings(max_examples=50, deadline=None)
@given(databases())
def test_fd_satisfaction_matches_world_enumeration(db):
    check = lambda world: FD.satisfied_naively(world)
    assert FD.satisfied_certainly(db) == certain_boolean(check, db, semantics="cwa")
    assert FD.satisfied_possibly(db) == possible_boolean(check, db, semantics="cwa")


@settings(max_examples=50, deadline=None)
@given(databases())
def test_ind_certain_implies_naive_and_possible(db):
    if IND.satisfied_certainly(db):
        assert IND.satisfied_naively(db)
        assert IND.satisfied_possibly(db)


@settings(max_examples=50, deadline=None)
@given(databases())
def test_ind_satisfaction_matches_world_enumeration(db):
    check = lambda world: IND.satisfied_naively(world)
    assert IND.satisfied_certainly(db) == certain_boolean(check, db, semantics="cwa")
    assert IND.satisfied_possibly(db) == possible_boolean(check, db, semantics="cwa")


@settings(max_examples=50, deadline=None)
@given(databases())
def test_complete_databases_collapse_the_three_notions(db):
    if db.is_complete():
        assert (
            FD.satisfied_naively(db)
            == FD.satisfied_certainly(db)
            == FD.satisfied_possibly(db)
        )
        assert (
            IND.satisfied_naively(db)
            == IND.satisfied_certainly(db)
            == IND.satisfied_possibly(db)
        )
