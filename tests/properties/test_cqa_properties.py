"""Property-based tests for repairs and consistent answers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import parse_ra
from repro.constraints import FunctionalDependency
from repro.cqa import consistent_answers, is_consistent, repairs
from repro.datamodel import Database, Relation

KEY = FunctionalDependency("Person", ("name",), ("city",))
NAMES = ["ann", "bob", "cat"]
CITIES = ["paris", "rome", "oslo"]


def person_databases():
    row = st.tuples(st.sampled_from(NAMES), st.sampled_from(CITIES))
    return st.lists(row, min_size=0, max_size=6).map(
        lambda rows: Database.from_relations(
            [Relation.create("Person", rows, attributes=("name", "city"))]
        )
    )


@settings(max_examples=50, deadline=None)
@given(person_databases())
def test_every_repair_is_consistent(db):
    for repair in repairs(db, KEY):
        assert is_consistent(repair, KEY)


@settings(max_examples=50, deadline=None)
@given(person_databases())
def test_every_repair_is_maximal(db):
    all_facts = set(db.facts())
    for repair in repairs(db, KEY):
        kept = set(repair.facts())
        assert kept <= all_facts
        for fact in all_facts - kept:
            assert not is_consistent(repair.add_facts([fact]), KEY)


@settings(max_examples=50, deadline=None)
@given(person_databases())
def test_repairs_of_consistent_databases_are_trivial(db):
    if is_consistent(db, KEY):
        assert repairs(db, KEY) == [db]


@settings(max_examples=50, deadline=None)
@given(person_databases())
def test_consistent_answers_are_sound(db):
    query = lambda d: parse_ra("Person").evaluate(d)
    consistent = consistent_answers(query, db, KEY).rows
    for repair in repairs(db, KEY):
        assert consistent <= query(repair).rows


@settings(max_examples=50, deadline=None)
@given(person_databases())
def test_name_projection_survives_repairing(db):
    """Every person name occurs in every repair (repairs only choose among cities)."""
    query = lambda d: parse_ra("project[#0](Person)").evaluate(d)
    consistent = consistent_answers(query, db, KEY).rows
    assert consistent == query(db).rows
