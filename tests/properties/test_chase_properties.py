"""Property-based tests for the chase: universality and determinism."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datamodel import Database, DatabaseSchema
from repro.exchange import canonical_solution, chase, order_preferences_mapping
from repro.homomorphisms import exists_homomorphism
from repro.workloads import chain_mapping


def order_sources():
    """Random small sources for the paper's Order → Cust/Pref mapping."""
    mapping = order_preferences_mapping()

    def build(pairs):
        rows = [(f"o{i}", f"p{p}") for i, p in enumerate(pairs)]
        return Database(mapping.source_schema, {"Order": rows})

    return st.lists(st.integers(min_value=0, max_value=3), min_size=0, max_size=5).map(build)


def edge_sources():
    schema = DatabaseSchema.from_attributes({"E": ("src", "dst")})

    def build(edges):
        return Database(schema, {"E": [(f"n{a}", f"n{b}") for a, b in edges]})

    return st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3)), min_size=0, max_size=5
    ).map(build)


@settings(max_examples=40, deadline=None)
@given(order_sources())
def test_chase_output_size_is_linear_in_triggers(source):
    mapping = order_preferences_mapping()
    result = chase(mapping, source)
    assert result.triggers_fired == len(source["Order"])
    assert result.nulls_introduced == result.triggers_fired
    assert result.target.size() == 2 * result.triggers_fired


@settings(max_examples=40, deadline=None)
@given(order_sources())
def test_chase_is_deterministic(source):
    mapping = order_preferences_mapping()
    first = canonical_solution(mapping, source)
    second = canonical_solution(mapping, source)
    assert first.schema == second.schema
    assert first.size() == second.size()
    assert exists_homomorphism(first, second) and exists_homomorphism(second, first)


@settings(max_examples=30, deadline=None)
@given(edge_sources(), st.integers(min_value=2, max_value=4))
def test_chain_chase_universality(source, length):
    """The canonical solution maps homomorphically into the 'collapse' solution
    that reuses a single intermediate node per edge (a valid solution)."""
    mapping = chain_mapping(length)
    canonical = chase(mapping, source).target
    collapse_facts = []
    for src, dst in source["E"]:
        # a concrete solution: route every edge through one shared midpoint
        collapse_facts.append(("P", (src, "mid")))
        collapse_facts.append(("P", ("mid", dst)))
        collapse_facts.append(("P", ("mid", "mid")))
    collapse = Database(mapping.target_schema, {})
    collapse = collapse.add_facts(collapse_facts)
    if source["E"]:
        assert exists_homomorphism(canonical, collapse)


@settings(max_examples=30, deadline=None)
@given(edge_sources(), st.integers(min_value=2, max_value=3))
def test_chain_chase_counts(source, length):
    mapping = chain_mapping(length)
    result = chase(mapping, source)
    num_edges = len(source["E"])
    assert result.triggers_fired == num_edges
    assert result.nulls_introduced == num_edges * (length - 1)
    assert result.target.size() <= num_edges * length
