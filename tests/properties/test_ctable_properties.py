"""Property-based tests for the c-table algebra (strong representation invariant)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import (
    Attr,
    Comparison,
    CTableDatabase,
    Difference,
    Intersection,
    Projection,
    RelationRef,
    Selection,
    Union_,
    ctable_evaluate,
)
from repro.semantics import answer_space, default_domain

from .strategies import databases


def ctable_queries():
    """Queries covering every operator the Imieliński–Lipski algebra implements."""
    r, s = RelationRef("R"), RelationRef("S")
    pool = [
        Projection(r, (0,)),
        Selection(r, Comparison(Attr(0), "=", "a")),
        Selection(r, Comparison(Attr(0), "=", Attr(1))),
        Union_(Projection(r, (0,)), s),
        Difference(Projection(r, (0,)), s),
        Difference(s, Projection(r, (1,))),
        Intersection(Projection(r, (0,)), s),
    ]
    return st.sampled_from(pool)


@settings(max_examples=40, deadline=None)
@given(databases(max_rows=2), ctable_queries())
def test_ctable_algebra_is_a_strong_representation_system(database, query):
    """[[Q̂(T)]]_cwa = Q([[T]]_cwa) for every generated database and operator mix."""
    domain = default_domain(database)
    ctable = ctable_evaluate(query, CTableDatabase.from_database(database))
    from_ctable = ctable.possible_worlds(domain)
    from_worlds = answer_space(query.evaluate, database, semantics="cwa", domain=domain)
    assert from_ctable == from_worlds


@settings(max_examples=40, deadline=None)
@given(databases(max_rows=2), ctable_queries())
def test_certain_rows_of_the_answer_table_match_intersection(database, query):
    """Reading certainty off the c-table equals the intersection over worlds."""
    domain = default_domain(database)
    ctable = ctable_evaluate(query, CTableDatabase.from_database(database))
    space = answer_space(query.evaluate, database, semantics="cwa", domain=domain)
    intersection = set.intersection(*(set(world) for world in space)) if space else set()
    assert ctable.certain_rows(domain) == intersection


@settings(max_examples=40, deadline=None)
@given(databases(max_rows=2), ctable_queries())
def test_possible_rows_match_union_over_worlds(database, query):
    domain = default_domain(database)
    ctable = ctable_evaluate(query, CTableDatabase.from_database(database))
    space = answer_space(query.evaluate, database, semantics="cwa", domain=domain)
    union = set().union(*space) if space else set()
    assert ctable.possible_rows(domain) == union
