"""Differential tests: the SQLite backend must agree with both engines.

``engine="sqlite"`` compiles the planner's logical plans to SQL over
sentinel-encoded values; the in-memory physical engine and the seed
interpreter are the oracles.  All three must produce identical relations
— same schema, same rows, nulls included — on every query/database pair,
or raise the same class of error.  Over 200 randomized pairs are checked
per run, spanning the positive fragment, full RA with difference, and
RA_cwa division queries, plus null-heavy instances where naive equality
of marked nulls is the whole game.
"""

import pytest

from repro.algebra.ast import (
    ActiveDomain,
    ConstantRelation,
    Delta,
    Division,
    difference,
    intersection,
    join,
    product,
    project,
    relation,
    rename,
    select,
    union,
)
from repro.algebra.predicates import Attr, Comparison, PAnd, PNot, POr, eq
from repro.datamodel import Database, Null, Relation
from repro.workloads import (
    enrolment,
    orders_payments,
    random_database,
    random_full_ra_query,
    random_positive_query,
    random_ra_cwa_query,
)

POSITIVE_SEEDS = list(range(60))
FULL_RA_SEEDS = list(range(40))
DIVISION_SEEDS = list(range(50))
NULL_HEAVY_SEEDS = list(range(30))


def _three_ways(query, database):
    """Evaluate with all engines, mapping exceptions to comparable markers."""
    results = []
    for engine in ("sqlite", "plan", "interpreter"):
        try:
            results.append(query.evaluate(database, engine=engine))
        except Exception as error:  # noqa: BLE001 - parity check on error class
            results.append(("error", type(error).__name__))
    sqlite_result, plan_result, interpreter_result = results
    assert sqlite_result == plan_result == interpreter_result, (
        f"engine mismatch for {query}:\n sqlite: {sqlite_result}\n"
        f" plan: {plan_result}\n intp: {interpreter_result}"
    )


@pytest.mark.parametrize("seed", POSITIVE_SEEDS)
def test_positive_queries_agree(seed):
    database = random_database(
        num_relations=3, arity=2, rows_per_relation=6, num_constants=4, num_nulls=2, seed=seed
    )
    _three_ways(random_positive_query(database.schema, depth=3, seed=seed), database)


@pytest.mark.parametrize("seed", FULL_RA_SEEDS)
def test_full_ra_queries_agree(seed):
    database = random_database(
        num_relations=3, arity=2, rows_per_relation=6, num_constants=4, num_nulls=2, seed=seed
    )
    _three_ways(random_full_ra_query(database.schema, seed=seed), database)


@pytest.mark.parametrize("seed", DIVISION_SEEDS)
def test_ra_cwa_division_queries_agree(seed):
    database = random_database(
        num_relations=2, arity=3, rows_per_relation=8, num_constants=3, num_nulls=2, seed=seed
    )
    _three_ways(random_ra_cwa_query(database.schema, "R0", "R1", seed=seed), database)


@pytest.mark.parametrize("seed", NULL_HEAVY_SEEDS)
def test_null_heavy_databases_agree(seed):
    # Many repeated nulls relative to the number of positions: the sentinel
    # encoding must make SQL treat each marked null as equal only to itself.
    database = random_database(
        num_relations=2, arity=2, rows_per_relation=8, num_constants=2, num_nulls=4, seed=seed
    )
    _three_ways(random_positive_query(database.schema, depth=3, seed=seed + 1), database)
    _three_ways(random_full_ra_query(database.schema, seed=seed + 1), database)


def test_scenario_queries_agree():
    orders = orders_payments(num_orders=25, num_payments=10, null_fraction=0.5, seed=3)
    unpaid = difference(
        project(relation("Orders"), ("o_id",)),
        rename(project(relation("Pay"), ("ord",)), "Paid", ("o_id",)),
    )
    _three_ways(unpaid, orders)

    school = enrolment(num_students=6, num_courses=3, null_fraction=0.3, seed=3)
    takes_all = Division(relation("Enroll"), relation("Courses"))
    _three_ways(takes_all, school)


def test_handcrafted_edge_cases_agree():
    database = Database.from_relations(
        [
            Relation.create("R", [(1, 2), (2, 3), (3, 3), (Null("x"), 2), (Null("x"), Null("y"))]),
            Relation.create("S", [(2, "a"), (3, "b"), (Null("y"), "c")]),
            Relation.create("T", [(2,), (5,)]),
            Relation.create("Empty", [], arity=2),
        ]
    )
    cases = [
        Delta(),
        ActiveDomain(),
        join(rename(relation("R"), "A", ("x", "y")), rename(relation("S"), "B", ("y", "z"))),
        join(
            join(rename(relation("R"), "A", ("x", "y")), rename(relation("S"), "B", ("y", "z"))),
            rename(relation("T"), "C", ("y",)),
        ),
        union(relation("R"), relation("Empty")),
        difference(relation("Empty"), relation("R")),
        intersection(project(relation("R"), (1,)), relation("T")),
        select(relation("R"), POr((eq(Attr(0), 1), PNot(eq(Attr(1), 2))))),
        select(
            product(relation("R"), product(relation("S"), relation("T"))),
            PAnd((Comparison(Attr(1), "=", Attr(2)), Comparison(Attr(3), "=", Attr(4)))),
        ),
        ConstantRelation(Relation.create("C", [(2,), (7,)])).product(relation("T")),
        ConstantRelation(Relation.create("C", [(Null("x"),), (7,)])).product(relation("T")),
        project(relation("R"), (1, 1, 0)),  # duplicated column
        Division(relation("R"), project(relation("T"), (0,))),
        select(product(relation("R"), relation("Empty")), Comparison(Attr(1), "=", Attr(2))),
        select(relation("R"), Comparison(Attr(0), "!=", Attr(1))),  # ≠ on nulls
    ]
    for query in cases:
        _three_ways(query, database)


def test_adversarial_constants_do_not_collide_with_sentinels():
    # Constants crafted to look like null sentinels must stay distinct
    # from the actual marked nulls through the SQL round trip.
    database = Database.from_relations(
        [
            Relation.create("R", [("nx", 1), (Null("x"), 1), ("i1", 2), (1, 2)]),
            Relation.create("S", [(Null("x"),), ("nx",), (1,), ("i1",)]),
        ]
    )
    cases = [
        join(rename(relation("R"), "A", ("a", "b")), rename(relation("S"), "B", ("a",))),
        difference(project(relation("R"), (0,)), relation("S")),
        intersection(project(relation("R"), (0,)), relation("S")),
    ]
    for query in cases:
        _three_ways(query, database)


def test_pair_budget_is_at_least_200():
    assert (
        len(POSITIVE_SEEDS)
        + len(FULL_RA_SEEDS)
        + len(DIVISION_SEEDS)
        + 2 * len(NULL_HEAVY_SEEDS)
        >= 200
    )
