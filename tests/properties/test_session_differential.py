"""Differential suite through the session API: 200+ pairs, zero shared state.

Every pair is answered by three *live, concurrent* sessions — ``plan``,
``interpreter`` and ``sqlite`` — that must return identical certain
answers while provably sharing no mutable evaluation state (plan caches
and condition kernels are distinct objects, and none of them is the
process-default).  The module-scoped sessions stay open across all pairs,
so the suite also exercises the persistent-backend path: one SQLite
handle serves hundreds of different databases.

This suite is deprecation-clean by construction: the CI leg runs it under
``-W error::DeprecationWarning`` to guarantee the library never calls its
own deprecated entry points on the session path.
"""

import pytest

import repro
from repro.workloads import (
    enrolment,
    orders_payments,
    random_database,
    random_full_ra_query,
    random_positive_query,
    random_ra_cwa_query,
)

POSITIVE_SEEDS = list(range(80))
FULL_RA_SEEDS = list(range(60))
DIVISION_SEEDS = list(range(40))
NULL_HEAVY_SEEDS = list(range(30))


@pytest.fixture(scope="module")
def sessions():
    trio = {
        "plan": repro.connect(engine="plan", kernel_watermark=4096),
        "interpreter": repro.connect(engine="interpreter"),
        "sqlite": repro.connect(engine="sqlite"),
    }
    # state disjointness is a precondition of the whole suite
    kernels = [session.kernel for session in trio.values()]
    caches = [session.plan_cache for session in trio.values()]
    assert len({id(k) for k in kernels}) == len(kernels)
    assert len({id(c) for c in caches}) == len(caches)
    from repro.datamodel.condition_kernel import DEFAULT_KERNEL
    from repro.engine.planner import DEFAULT_PLAN_CACHE

    for session in trio.values():
        assert session.kernel is not DEFAULT_KERNEL
        assert session.plan_cache is not DEFAULT_PLAN_CACHE
    yield trio
    for session in trio.values():
        session.close()


def _all_sessions_agree(sessions, query, database, method="auto"):
    results = []
    for name, session in sessions.items():
        try:
            results.append((name, session.query(query, database=database).certain(method=method)))
        except Exception as error:  # noqa: BLE001 - error-class parity
            results.append((name, ("error", type(error).__name__)))
    baseline_name, baseline = results[0]
    for name, result in results[1:]:
        assert result == baseline, (
            f"session mismatch for {query}:\n {baseline_name}: {baseline}\n {name}: {result}"
        )


@pytest.mark.parametrize("seed", POSITIVE_SEEDS)
def test_positive_pairs_agree_across_sessions(sessions, seed):
    database = random_database(
        num_relations=3, arity=2, rows_per_relation=6, num_constants=4, num_nulls=2, seed=seed
    )
    query = random_positive_query(database.schema, depth=3, seed=seed)
    _all_sessions_agree(sessions, query, database)


@pytest.mark.parametrize("seed", FULL_RA_SEEDS)
def test_full_ra_pairs_agree_on_naive_evaluation(sessions, seed):
    # Full-RA queries force the enumeration strategy under method="auto",
    # which is exponential; the engines are differentially compared on
    # the naive strategy (the evaluation itself) instead.
    database = random_database(
        num_relations=3, arity=2, rows_per_relation=6, num_constants=4, num_nulls=2, seed=seed
    )
    query = random_full_ra_query(database.schema, seed=seed)
    _all_sessions_agree(sessions, query, database, method="naive")


@pytest.mark.parametrize("seed", DIVISION_SEEDS)
def test_division_pairs_agree_across_sessions(sessions, seed):
    database = random_database(
        num_relations=2, arity=3, rows_per_relation=8, num_constants=3, num_nulls=2, seed=seed
    )
    query = random_ra_cwa_query(database.schema, "R0", "R1", seed=seed)
    _all_sessions_agree(sessions, query, database)


@pytest.mark.parametrize("seed", NULL_HEAVY_SEEDS)
def test_null_heavy_pairs_agree_across_sessions(sessions, seed):
    database = random_database(
        num_relations=2, arity=2, rows_per_relation=8, num_constants=2, num_nulls=4, seed=seed
    )
    _all_sessions_agree(
        sessions, random_positive_query(database.schema, depth=3, seed=seed + 1), database
    )


def test_scenario_pairs_agree_across_sessions(sessions):
    from repro.algebra.ast import Division, difference, project, relation, rename

    orders = orders_payments(num_orders=20, num_payments=8, null_fraction=0.5, seed=3)
    unpaid = difference(
        project(relation("Orders"), ("o_id",)),
        rename(project(relation("Pay"), ("ord",)), "Paid", ("o_id",)),
    )
    _all_sessions_agree(sessions, unpaid, orders, method="naive")

    school = enrolment(num_students=6, num_courses=3, null_fraction=0.3, seed=3)
    _all_sessions_agree(sessions, Division(relation("Enroll"), relation("Courses")), school)


def test_sessions_shared_nothing_after_the_whole_run(sessions):
    # After 200+ evaluations the kernels must still be disjoint down to
    # the individual canonical nodes.
    node_sets = [
        {id(node) for node in session.kernel._intern.values()}
        for session in sessions.values()
    ]
    for i in range(len(node_sets)):
        for j in range(i + 1, len(node_sets)):
            assert not (node_sets[i] & node_sets[j])
