"""Property-based tests for incomplete graphs and graph queries."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datamodel import Null, Valuation
from repro.graphs import IncompleteGraph, graph_from_database, naive_certain_answers_rpq, parse_rpq
from repro.datamodel.values import is_null

NODE_VALUES = ["a", "b", "c"]
NULL_NAMES = ["x", "y"]
LABELS = ["r", "s"]


def node_values():
    return st.one_of(st.sampled_from(NODE_VALUES), st.sampled_from(NULL_NAMES).map(Null))


def edges():
    return st.tuples(node_values(), st.sampled_from(LABELS), node_values())


def graphs():
    return st.lists(edges(), min_size=0, max_size=6).map(lambda e: IncompleteGraph(edges=e))


def valuations():
    return st.fixed_dictionaries({name: st.sampled_from(NODE_VALUES) for name in NULL_NAMES}).map(
        lambda mapping: Valuation({Null(k): v for k, v in mapping.items()})
    )


QUERIES = [parse_rpq(text) for text in ("r", "r . s", "r*", "(r | s)+")]


@settings(max_examples=60, deadline=None)
@given(graphs())
def test_relational_encoding_round_trips(graph):
    assert graph_from_database(graph.to_database()) == graph


@settings(max_examples=60, deadline=None)
@given(graphs(), valuations())
def test_valuation_commutes_with_encoding(graph, valuation):
    via_graph = graph.apply_valuation(valuation).to_database()
    via_database = valuation.apply(graph.to_database())
    assert via_graph.relation("Edge").rows == via_database.relation("Edge").rows


@settings(max_examples=60, deadline=None)
@given(graphs(), valuations())
def test_valuation_image_is_complete_and_no_larger(graph, valuation):
    world = graph.apply_valuation(valuation)
    assert world.is_complete()
    assert world.num_edges() <= graph.num_edges()


@settings(max_examples=40, deadline=None)
@given(graphs(), valuations(), st.sampled_from(QUERIES))
def test_naive_certain_answers_hold_in_every_valuation_image(graph, valuation, query):
    """Soundness of the naive shortcut: certain answers survive every valuation."""
    certain = naive_certain_answers_rpq(query, graph).rows
    world_answers = query.evaluate(graph.apply_valuation(valuation)).rows
    assert certain <= world_answers


@settings(max_examples=40, deadline=None)
@given(graphs(), st.lists(edges(), min_size=0, max_size=3), st.sampled_from(QUERIES))
def test_rpq_answers_are_monotone_under_edge_addition(graph, extra, query):
    """RPQs are monotone: adding edges never removes an answer pair."""
    extended = graph.add_edges(extra)
    assert query.evaluate(graph).rows <= query.evaluate(extended).rows


@settings(max_examples=60, deadline=None)
@given(graphs())
def test_naive_certain_answers_mention_no_nulls(graph):
    for query in QUERIES:
        rows = naive_certain_answers_rpq(query, graph).rows
        assert all(not is_null(value) for row in rows for value in row)
