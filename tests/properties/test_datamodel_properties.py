"""Property-based tests for the data-model substrate (valuations, semantics conditions)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import cwa_leq, owa_leq
from repro.datamodel import Null, Valuation
from repro.semantics import in_cwa, in_owa

from .strategies import databases, valuations


@settings(max_examples=60, deadline=None)
@given(databases(), valuations())
def test_applying_a_total_valuation_yields_a_complete_database(database, valuation):
    world = valuation.apply(database)
    assert world.is_complete()
    assert world.size() <= database.size()


@settings(max_examples=60, deadline=None)
@given(databases(), valuations())
def test_valuation_image_is_in_both_semantics(database, valuation):
    """Condition at the heart of the semantics: v(D) ∈ [[D]]_cwa ⊆ [[D]]_owa."""
    world = valuation.apply(database)
    assert in_cwa(database, world)
    assert in_owa(database, world)


@settings(max_examples=60, deadline=None)
@given(databases(), valuations())
def test_represented_worlds_are_more_informative(database, valuation):
    """Section 5.1 condition 2: c ∈ [[x]] implies x ⊑ c, for OWA and CWA."""
    world = valuation.apply(database)
    assert cwa_leq(database, world)
    assert owa_leq(database, world)


@settings(max_examples=60, deadline=None)
@given(databases(allow_nulls=False))
def test_complete_databases_represent_themselves(database):
    """Section 5.1 condition 1: c ∈ [[c]]."""
    assert in_cwa(database, database)
    assert in_owa(database, database)


@settings(max_examples=60, deadline=None)
@given(databases(), valuations(), valuations())
def test_valuation_application_is_idempotent_once_complete(database, first, second):
    world = first.apply(database)
    assert second.apply(world) == world


@settings(max_examples=60, deadline=None)
@given(databases())
def test_complete_part_is_below_the_database(database):
    """Dropping null tuples can only lose information (OWA ordering)."""
    assert owa_leq(database.complete_part(), database)


@settings(max_examples=60, deadline=None)
@given(databases(), valuations())
def test_valuation_commutes_with_complete_part_containment(database, valuation):
    """v(D_cmpl) ⊆ v(D) as sets of facts."""
    applied_then_restricted = valuation.apply(database.complete_part())
    applied = valuation.apply(database)
    assert applied.contains_database(applied_then_restricted)


@settings(max_examples=40, deadline=None)
@given(databases())
def test_nulls_and_constants_partition_the_active_domain(database):
    nulls = database.nulls()
    constants = database.constants()
    assert nulls.isdisjoint(constants)
    assert nulls | constants == database.active_domain()
