"""Differential tests: exact confidence vs brute-force world enumeration.

The decomposition evaluator (:func:`repro.prob.confidence`) takes
independent-AND/OR splits, exclusive-OR shortcuts and Shannon expansions
over the interned condition DAG; the oracle
(:func:`repro.prob.brute_force_confidence`) enumerates every joint
outcome of the model.  On every randomized pc-table they must agree to
floating-point tolerance — including adversarial lineages where the same
null threads through many answer rows, which is exactly where a wrong
independence split would silently miscount.
"""

import itertools
import random

import pytest

from repro.algebra import naive_evaluate, parse_ra
from repro.datamodel import Database, Eq, Null, Relation, Valuation
from repro.datamodel.condition_kernel import ConditionKernel
from repro.datamodel.conditional import And, Not, Or, TRUE
from repro.prob import (
    Conditioner,
    ExclusiveBlock,
    ProbabilityModel,
    brute_force_confidence,
    confidence,
    monte_carlo_confidence,
)
from repro.resilience import InvalidRequestError
from repro.session import connect

CONDITION_SEEDS = list(range(120))
LINEAGE_SEEDS = list(range(50))
CONDITIONING_SEEDS = list(range(40))
MONTE_CARLO_SEEDS = list(range(10))


# ----------------------------------------------------------------------
# generators
# ----------------------------------------------------------------------
def random_model(rng, with_block=True):
    """A model over x0..x3 (independent) plus an optional 2-null block."""
    independent = {}
    for index in range(rng.randint(2, 4)):
        null = Null(f"x{index}")
        size = rng.randint(2, 3)
        weights = [rng.uniform(0.2, 1.0) for _ in range(size)]
        total = sum(weights)
        independent[null] = {
            value: weight / total
            for value, weight in zip(rng.sample([1, 2, 3, 4], size), weights)
        }
    blocks = []
    if with_block and rng.random() < 0.7:
        b0, b1 = Null("b0"), Null("b1")
        count = rng.randint(2, 3)
        weights = [rng.uniform(0.2, 1.0) for _ in range(count)]
        total = sum(weights)
        pairs = rng.sample(list(itertools.product([1, 2, 3], repeat=2)), count)
        blocks.append(
            ExclusiveBlock(
                [
                    ({b0: v0, b1: v1}, weight / total)
                    for (v0, v1), weight in zip(pairs, weights)
                ]
            )
        )
    return ProbabilityModel(independent=independent, blocks=blocks)


def random_condition(rng, nulls, depth):
    """A random condition tree: null=const / null=null atoms under ∧/∨/¬."""
    if depth == 0 or rng.random() < 0.3:
        null = rng.choice(nulls)
        if rng.random() < 0.6:
            # Constants drawn slightly wider than the supports, so some
            # atoms are certainly false and some pinnings contradict.
            return Eq(null, rng.choice([1, 2, 3, 4, 5]))
        other = rng.choice(nulls)
        if other is null:
            return Eq(null, rng.choice([1, 2, 3]))
        return Eq(null, other)
    roll = rng.random()
    if roll < 0.2:
        return Not(random_condition(rng, nulls, depth - 1))
    parts = tuple(
        random_condition(rng, nulls, depth - 1) for _ in range(rng.randint(2, 3))
    )
    return And(parts) if roll < 0.6 else Or(parts)


# ----------------------------------------------------------------------
# exact vs brute force
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", CONDITION_SEEDS)
def test_exact_matches_brute_force(seed):
    rng = random.Random(seed)
    model = random_model(rng)
    nulls = sorted(model.nulls(), key=lambda n: n.name)
    kernel = ConditionKernel()
    for _ in range(4):
        cond = random_condition(rng, nulls, depth=3)
        exact = confidence(cond, model, kernel)
        oracle = brute_force_confidence(cond, model)
        assert exact == pytest.approx(oracle, abs=1e-9), f"{cond!r}"


@pytest.mark.parametrize("seed", CONDITION_SEEDS[:30])
def test_memoized_reevaluation_is_stable(seed):
    # The same kernel answers the same condition twice (second time from
    # the shared memo); both answers must equal the oracle.
    rng = random.Random(seed)
    model = random_model(rng)
    nulls = sorted(model.nulls(), key=lambda n: n.name)
    kernel = ConditionKernel()
    cond = random_condition(rng, nulls, depth=3)
    first = confidence(cond, model, kernel)
    second = confidence(cond, model, kernel)
    assert first == second == pytest.approx(brute_force_confidence(cond, model), abs=1e-9)


# ----------------------------------------------------------------------
# adversarial shared-null lineages through the session path
# ----------------------------------------------------------------------
def shared_null_database(rng, model):
    """R/2 ⋈ S/2 with model nulls reused across rows of both relations.

    Reusing one null in many rows correlates the answer lineages — the
    adversarial case for the evaluator's independence detection.
    """
    nulls = sorted(model.nulls(), key=lambda n: n.name)
    constants = [1, 2, 3]

    def cell():
        if rng.random() < 0.5:
            return rng.choice(nulls)
        return rng.choice(constants)

    r_rows = [(cell(), cell()) for _ in range(rng.randint(2, 4))]
    s_rows = [(cell(), cell()) for _ in range(rng.randint(2, 4))]
    return Database.from_relations(
        [
            Relation.create("R", r_rows, attributes=("a", "b")),
            Relation.create("S", s_rows, attributes=("b", "c")),
        ]
    )


def oracle_confidences(query, database, model, constraint=None):
    """Answer probabilities by full world enumeration."""
    answers = {}
    normalization = 0.0
    for assignment, probability in model.joint_outcomes(model.nulls()):
        valuation = Valuation(assignment)
        if constraint is not None and not constraint.evaluate(valuation):
            continue
        normalization += probability
        world = valuation.apply(database)
        for row in naive_evaluate(query, world):
            answers[row] = answers.get(row, 0.0) + probability
    if constraint is not None:
        assert normalization > 0.0
        answers = {row: p / normalization for row, p in answers.items()}
    return answers


@pytest.mark.parametrize("seed", LINEAGE_SEEDS)
def test_query_confidence_matches_world_enumeration(seed):
    rng = random.Random(seed)
    model = random_model(rng)
    database = shared_null_database(rng, model)
    session = connect(database, semantics="prob", model=model)
    query = parse_ra("join(R, S)")
    ranked = session.query(query).confidence()
    oracle = oracle_confidences(query, database, model)
    assert {row: p for row, p in ranked} == pytest.approx(
        {row: p for row, p in oracle.items() if p > 0.0}, abs=1e-9
    )
    # Ranking is by descending probability.
    probabilities = [float(p) for _, p in ranked]
    assert probabilities == sorted(probabilities, reverse=True)


@pytest.mark.parametrize("seed", LINEAGE_SEEDS[:20])
def test_projection_lineage_matches_world_enumeration(seed):
    # Projection merges lineages with OR — the disjuncts share nulls.
    rng = random.Random(seed)
    model = random_model(rng)
    database = shared_null_database(rng, model)
    session = connect(database, semantics="prob", model=model)
    query = parse_ra("project[a](join(R, S))")
    ranked = session.query(query).confidence()
    oracle = oracle_confidences(query, database, model)
    assert {row: p for row, p in ranked} == pytest.approx(
        {row: p for row, p in oracle.items() if p > 0.0}, abs=1e-9
    )


# ----------------------------------------------------------------------
# conditioning
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", CONDITIONING_SEEDS)
def test_conditioning_matches_conditional_brute_force(seed):
    rng = random.Random(seed)
    model = random_model(rng)
    nulls = sorted(model.nulls(), key=lambda n: n.name)
    kernel = ConditionKernel()
    constraint = random_condition(rng, nulls, depth=2)
    p_constraint = brute_force_confidence(constraint, model)
    if p_constraint <= 0.0:
        with pytest.raises(InvalidRequestError):
            Conditioner(constraint, model, kernel)
        return
    conditioner = Conditioner(constraint, model, kernel)
    for _ in range(3):
        cond = random_condition(rng, nulls, depth=2)
        joint = brute_force_confidence(And((cond, constraint)).simplify(), model)
        assert conditioner.probability(cond) == pytest.approx(
            joint / p_constraint, abs=1e-9
        )


def test_conditioning_on_true_is_identity():
    model = ProbabilityModel(independent={Null("x"): {1: 0.5, 2: 0.5}})
    conditioner = Conditioner(TRUE, model)
    assert conditioner.normalization == 1.0
    assert conditioner.given() is None
    assert conditioner.probability(Eq(Null("x"), 1)) == pytest.approx(0.5)


# ----------------------------------------------------------------------
# Monte Carlo fallback
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", MONTE_CARLO_SEEDS)
def test_monte_carlo_interval_contains_exact(seed):
    rng = random.Random(seed)
    model = random_model(rng)
    nulls = sorted(model.nulls(), key=lambda n: n.name)
    cond = random_condition(rng, nulls, depth=3)
    exact = brute_force_confidence(cond, model)
    interval = monte_carlo_confidence(cond, model, samples=20_000, seed=seed)
    # 95% Wilson interval over 20k samples on fixed seeds: the exact
    # value sits inside (seeds are pinned, so no flakiness).
    assert exact in interval
    assert interval.low <= interval.estimate <= interval.high
