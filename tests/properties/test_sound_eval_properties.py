"""Property-based tests for sound evaluation: never a false positive."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import (
    Attr,
    Comparison,
    Difference,
    Intersection,
    Projection,
    RelationRef,
    Selection,
    Union_,
)
from repro.core import (
    certain_answers_intersection,
    possible_answers,
    possible_answer_bound,
    rows_unifiable,
    sound_certain_answers,
)

from .strategies import databases


def full_ra_queries():
    r, s = RelationRef("R"), RelationRef("S")
    pool = [
        Difference(Projection(r, (0,)), s),
        Difference(s, Projection(r, (1,))),
        Difference(Projection(r, (0,)), Projection(r, (1,))),
        Projection(Difference(r, Union_(r, r)), (0,)),
        Intersection(Projection(Selection(r, Comparison(Attr(0), "=", "a")), (1,)), s),
        Difference(Union_(Projection(r, (0,)), s), s),
    ]
    return st.sampled_from(pool)


@settings(max_examples=50, deadline=None)
@given(databases(max_rows=3), full_ra_queries())
def test_sound_evaluation_never_returns_a_false_positive(database, query):
    sound = sound_certain_answers(query, database)
    exact = certain_answers_intersection(query, database, semantics="cwa")
    assert sound.rows <= exact.rows


@settings(max_examples=40, deadline=None)
@given(databases(max_rows=2), full_ra_queries())
def test_upper_bound_covers_every_possible_answer(database, query):
    upper = possible_answer_bound(query, database)
    possible = possible_answers(query, database, semantics="cwa")
    for row in possible.rows:
        assert any(rows_unifiable(row, candidate) for candidate in upper.rows)


@settings(max_examples=40, deadline=None)
@given(databases(allow_nulls=False, max_rows=3), full_ra_queries())
def test_sound_evaluation_is_exact_on_complete_databases(database, query):
    sound = sound_certain_answers(query, database)
    exact = certain_answers_intersection(query, database, semantics="cwa")
    assert sound.rows == exact.rows == query.evaluate(database).rows
