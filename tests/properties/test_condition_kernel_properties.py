"""Property tests: kernel-simplified conditions agree with the seed semantics.

Random condition trees are built from the seed constructors, pushed
through :func:`intern_condition`, and both versions are evaluated under
*every* valuation of their nulls over a small domain.  The kernel may
restructure a condition (flattening, deduplication, unsat collapse) but
must never change its truth table.
"""

import itertools
import random

import pytest

from repro.datamodel import (
    FALSE,
    And,
    Eq,
    Not,
    Null,
    Or,
    Valuation,
    intern_condition,
    kernel_nulls,
)

NULLS = [Null("k1"), Null("k2"), Null("k3")]
CONSTANTS = ["a", "b", 1, 2]
DOMAIN = ["a", "b", 1, 3]
SEEDS = list(range(120))


def random_condition(rng, depth=3):
    """A random condition over the shared nulls and constants."""
    if depth <= 0 or rng.random() < 0.35:
        pool = NULLS + CONSTANTS
        return Eq(rng.choice(pool), rng.choice(pool))
    choice = rng.random()
    if choice < 0.25:
        return Not(random_condition(rng, depth - 1))
    width = rng.randrange(2, 4)
    operands = tuple(random_condition(rng, depth - 1) for _ in range(width))
    return And(operands) if choice < 0.65 else Or(operands)


def all_valuations(nulls):
    nulls = sorted(nulls, key=lambda n: n.name)
    for combo in itertools.product(DOMAIN, repeat=len(nulls)):
        yield Valuation(dict(zip(nulls, combo)))


@pytest.mark.parametrize("seed", SEEDS)
def test_kernel_agrees_with_seed_evaluation(seed):
    rng = random.Random(seed)
    condition = random_condition(rng)
    canonical = intern_condition(condition)
    # the kernel never invents nulls, and evaluation agrees everywhere
    assert kernel_nulls(canonical) <= condition.nulls()
    for valuation in all_valuations(condition.nulls()):
        assert canonical.evaluate(valuation) == condition.evaluate(valuation), (
            f"kernel changed the truth table of {condition} under {valuation}"
        )


@pytest.mark.parametrize("seed", SEEDS[:40])
def test_unsat_collapse_is_sound(seed):
    """Whenever the kernel returns FALSE, no valuation satisfies the seed form."""
    rng = random.Random(seed)
    operands = tuple(
        Eq(rng.choice(NULLS + CONSTANTS), rng.choice(NULLS + CONSTANTS)) for _ in range(4)
    )
    seed_condition = And(operands)
    canonical = intern_condition(seed_condition)
    if canonical is FALSE:
        assert not any(
            seed_condition.evaluate(v) for v in all_valuations(seed_condition.nulls())
        )


def test_seed_budget():
    assert len(SEEDS) >= 100
