"""Property-based tests for view-based certain answers (LAV integration)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import parse_ra
from repro.datamodel import Database, DatabaseSchema
from repro.exchange import MappingAtom
from repro.logic import var
from repro.views import ViewCollection, ViewDefinition, canonical_instance, certain_answers_views

X, Y, Z = var("x"), var("y"), var("z")

BASE = DatabaseSchema.from_attributes({"Emp": ("name", "dept"), "Dept": ("dept", "city")})

VIEWS = ViewCollection(
    BASE,
    [
        ViewDefinition("EmpCity", (X, Z), [MappingAtom("Emp", (X, Y)), MappingAtom("Dept", (Y, Z))]),
        ViewDefinition("Emps", (X,), [MappingAtom("Emp", (X, Y))]),
    ],
)

QUERIES = [
    parse_ra("project[#0](Emp)"),
    parse_ra("project[#1](Dept)"),
    parse_ra("project[#0](select[#1 = #2](product(Emp, Dept)))"),
]

NAMES = ["ann", "bob"]
DEPTS = ["it", "hr"]
CITIES = ["oslo", "rome"]


def base_databases():
    emp_row = st.tuples(st.sampled_from(NAMES), st.sampled_from(DEPTS))
    dept_row = st.tuples(st.sampled_from(DEPTS), st.sampled_from(CITIES))
    return st.builds(
        lambda emp, dept: Database(BASE, {"Emp": emp, "Dept": dept}),
        st.lists(emp_row, min_size=0, max_size=4),
        st.lists(dept_row, min_size=0, max_size=3),
    )


@settings(max_examples=40, deadline=None)
@given(base_databases())
def test_view_based_certain_answers_are_sound(base):
    """Whatever the hidden base database is, the view-based certain answers hold in it."""
    extensions = VIEWS.materialize(base)
    for query in QUERIES:
        certain = certain_answers_views(query, VIEWS, extensions).rows
        assert certain <= query.evaluate(base).rows


@settings(max_examples=40, deadline=None)
@given(base_databases(), st.integers(min_value=0, max_value=3))
def test_soundness_survives_dropping_view_tuples(base, drop):
    """Sound views may under-report; certain answers must stay sound."""
    extensions = VIEWS.materialize(base)
    emp_city = sorted(extensions.relation("EmpCity").rows, key=str)
    reduced = Database(
        VIEWS.view_schema(),
        {"EmpCity": emp_city[drop:], "Emps": extensions.relation("Emps").rows},
    )
    for query in QUERIES:
        certain = certain_answers_views(query, VIEWS, reduced).rows
        assert certain <= query.evaluate(base).rows


@settings(max_examples=40, deadline=None)
@given(base_databases())
def test_canonical_instance_maps_homomorphically_into_the_base(base):
    """The canonical instance is a universal description of the possible bases."""
    from repro.homomorphisms import exists_homomorphism

    extensions = VIEWS.materialize(base)
    instance = canonical_instance(VIEWS, extensions)
    assert exists_homomorphism(instance, base)
