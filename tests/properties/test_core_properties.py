"""Differential tests: the block-based core must agree with the greedy oracle.

The seed's greedy whole-instance retraction loop (``algorithm="greedy"``)
is the oracle; the block-by-block algorithm (``algorithm="block"``, the
default) must produce an *isomorphic* result on every instance — cores
are unique up to isomorphism, so the two results must have the same size
per relation and be homomorphically equivalent.  Over 200 randomized
instances are checked per run, mixing nulls and constants over two- and
three-relation schemas of arities 2 and 3, plus the core invariants:
idempotence, ``D ↔ core(D)`` homomorphic equivalence, ``is_core`` on both
paths, and ground instances being their own core.
"""

import pytest

from repro.datamodel import Database, Null, Relation
from repro.homomorphisms import core, exists_homomorphism, is_core, retract
from repro.workloads import random_database

TWO_RELATION_SEEDS = list(range(130))
MULTI_RELATION_SEEDS = list(range(50))
WIDE_SEEDS = list(range(30))
INVARIANT_SEEDS = list(range(40))


def _random_instance(seed, num_relations=2, arity=2):
    # Vary density and null count with the seed so the suite covers Codd-ish
    # instances (few shared nulls) as well as heavily entangled ones.
    return random_database(
        num_relations=num_relations,
        arity=arity,
        rows_per_relation=3 + seed % 4,
        num_constants=2 + seed % 3,
        num_nulls=1 + seed % 4,
        seed=seed,
    )


def _assert_isomorphic_cores(database):
    block = core(database, algorithm="block")
    greedy = core(database, algorithm="greedy")
    # Cores of one instance are unique up to isomorphism: same number of
    # facts relation by relation, homomorphisms in both directions.
    for name in database.schema.names():
        assert len(block.relation(name)) == len(greedy.relation(name)), (
            f"core size mismatch in {name}: block={sorted(map(str, block.relation(name).rows))} "
            f"greedy={sorted(map(str, greedy.relation(name).rows))}"
        )
    assert exists_homomorphism(block, greedy)
    assert exists_homomorphism(greedy, block)
    return block


@pytest.mark.parametrize("seed", TWO_RELATION_SEEDS)
def test_block_core_matches_greedy_oracle(seed):
    _assert_isomorphic_cores(_random_instance(seed))


@pytest.mark.parametrize("seed", MULTI_RELATION_SEEDS)
def test_block_core_matches_oracle_on_multi_relation_schemas(seed):
    _assert_isomorphic_cores(_random_instance(seed, num_relations=3))


@pytest.mark.parametrize("seed", WIDE_SEEDS)
def test_block_core_matches_oracle_on_wide_rows(seed):
    # Arity 3 packs more nulls per fact, giving larger (and faster-merging)
    # blocks — the regime where per-block search order matters most.
    _assert_isomorphic_cores(_random_instance(seed, arity=3))


@pytest.mark.parametrize("seed", INVARIANT_SEEDS)
def test_core_invariants(seed):
    database = _random_instance(seed * 13 + 7, num_relations=2 + seed % 2)
    result = core(database)
    # D and core(D) are homomorphically equivalent.
    assert exists_homomorphism(database, result)
    assert exists_homomorphism(result, database)
    # core(D) is a sub-instance of D and actually a core, on both checkers.
    assert database.contains_database(result)
    assert is_core(result)
    assert is_core(result, algorithm="greedy")
    # Idempotence: core(core(D)) ≅ core(D) (the block path returns the
    # instance unchanged once no retraction applies).
    assert core(result) == result
    # The accumulated retraction of retract() maps D exactly onto the core.
    core_db, hom = retract(database)
    assert hom is not None
    assert hom.apply(database) == core_db


@pytest.mark.parametrize("seed", range(20))
def test_ground_instances_are_their_own_core(seed):
    database = random_database(
        num_relations=2,
        arity=2,
        rows_per_relation=4 + seed % 3,
        num_constants=4,
        num_nulls=0,
        seed=seed,
    )
    assert database.is_complete()
    assert core(database) == database
    assert core(database, algorithm="greedy") == database
    assert is_core(database)


def test_codd_instance_with_distinct_constants_keeps_every_fact():
    # Codd nulls in otherwise distinct facts are never redundant.
    database = Database.from_relations(
        [Relation.create("R", [(i, Null(f"n{i}")) for i in range(5)], arity=2)]
    )
    assert core(database) == database
    assert is_core(database)


def test_instance_budget_is_at_least_200():
    assert (
        len(TWO_RELATION_SEEDS) + len(MULTI_RELATION_SEEDS) + len(WIDE_SEEDS)
    ) >= 200
