"""Chaos differential suite: ~200 randomized (query, fault-schedule) pairs.

Every pair wires a randomized fault schedule (or budget) into a live
session and asserts the robustness contract:

* the outcome is the **correct answer**, a **sound subset flagged
  partial**, or a **typed** :class:`repro.ReproError` — never a wrong
  answer, and never a raw infrastructure exception from a recoverable
  path;
* no evaluation hangs past its deadline (deadlines are driven by
  deterministic :class:`~repro.resilience.ManualClock` instances, plus
  one real-clock smoke test);
* no pair leaks a spilled temp table on the backend connection.

Three populations: sqlite-backend fault schedules (transient and
persistent), plan-engine budget expiries under every ``on_budget``
policy, and homomorphism-layer budgets (block caps and deadlines).
"""

import random
import warnings

import pytest

import repro
from repro import BudgetExceeded, PartialResult, ReproError
from repro.backends.faults import FaultInjectingBackend, FaultSchedule
from repro.resilience import BackendRecoveryWarning, Budget, ManualClock, budget_scope
from repro.workloads import (
    random_database,
    random_full_ra_query,
    random_positive_query,
)

SQLITE_FAULT_SEEDS = list(range(80))
BUDGET_SEEDS = list(range(80))
HOM_SEEDS = list(range(40))

#: Backend operations a random schedule may fail.  Indexes stay small so
#: both the retry path (<= 3 consecutive faults recover in place) and the
#: give-up path (4+ exhaust the retries and recover in-memory) occur.
_FAULTABLE_OPS = ("evaluate", "replace_database", "execute_cursor", "fetch")


def _random_schedule(rng):
    plan = {}
    for op in _FAULTABLE_OPS:
        if rng.random() < 0.45:
            start = rng.randint(1, 2)
            plan[op] = set(range(start, start + rng.randint(1, 4)))
    return FaultSchedule(plan)


def _leaked_temp_tables(connection):
    rows = connection.execute(
        "SELECT name FROM sqlite_temp_master "
        "WHERE type = 'table' AND name LIKE '\\_repro\\_tmp%' ESCAPE '\\'"
    ).fetchall()
    return [row[0] for row in rows]


@pytest.mark.parametrize("seed", SQLITE_FAULT_SEEDS)
def test_sqlite_fault_pairs_never_answer_wrong(seed):
    rng = random.Random(seed)
    database = random_database(
        num_relations=2, arity=2, rows_per_relation=4, num_constants=4,
        num_nulls=2, seed=seed,
    )
    query = random_positive_query(database.schema, seed=seed)
    with repro.connect(database, engine="plan") as oracle_session:
        oracle = oracle_session.query(query).certain()

    schedule = _random_schedule(rng)
    session = repro.connect(database, engine="sqlite")
    session._ensure_backend(database)
    session._backend = FaultInjectingBackend(session._backend, schedule)
    try:
        with warnings.catch_warnings():
            # In-memory recovery warnings are an expected chaos outcome.
            warnings.simplefilter("ignore", BackendRecoveryWarning)
            try:
                answer = session.query(query).certain()
            except ReproError:
                # A typed failure is an acceptable outcome; a wrong answer
                # or a raw driver exception is not.
                answer = None
        if answer is not None:
            assert answer == oracle, f"seed {seed}: faulted session answered wrong"
        assert _leaked_temp_tables(session._backend.connection) == []
    finally:
        session.close()


@pytest.mark.parametrize("seed", BUDGET_SEEDS)
def test_budget_pairs_degrade_soundly(seed):
    rng = random.Random(seed)
    database = random_database(
        num_relations=2, arity=2, rows_per_relation=4, num_constants=4,
        num_nulls=2, seed=1000 + seed,
    )
    if rng.random() < 0.5:
        query = random_positive_query(database.schema, seed=seed)
    else:
        query = random_full_ra_query(database.schema, seed=seed)
    policy = rng.choice(("degrade", "raise", "partial"))
    if rng.random() < 0.5:
        budget = Budget(max_worlds=rng.randint(1, 40))
    else:
        # A deterministic deadline: expires after deadline/step checks.
        budget = Budget(
            deadline=float(rng.randint(1, 30)),
            clock=ManualClock(step=rng.choice((0.25, 1.0, 4.0))),
        )

    with repro.connect(database) as session:
        oracle = session.query(query).certain(method="enumeration")
        q = session.query(query)
        try:
            answer = q.certain(method="enumeration", budget=budget, on_budget=policy)
        except BudgetExceeded:
            # 'raise' always may; 'degrade' only when nothing sound exists.
            assert policy in ("raise", "degrade")
            return
        if isinstance(answer, PartialResult):
            assert policy == "partial"
            assert set(answer.rows) <= set(oracle.rows), (
                f"seed {seed}: partial result is not a sound subset"
            )
        else:
            # A plain relation: sound always, exact when nothing degraded.
            assert set(answer.rows) <= set(oracle.rows), (
                f"seed {seed}: degraded answer is not a sound subset"
            )
            if q._resilience_verdict is None:
                assert answer == oracle, f"seed {seed}: unbudgeted path diverged"


@pytest.mark.parametrize("seed", HOM_SEEDS)
def test_homomorphism_budget_pairs(seed):
    from repro.homomorphisms.core import core, is_core

    rng = random.Random(seed)
    database = random_database(
        num_relations=2, arity=2, rows_per_relation=5, num_constants=3,
        num_nulls=3, seed=2000 + seed,
    )
    unbudgeted = core(database)
    if rng.random() < 0.5:
        budget = Budget(max_block_size=rng.randint(1, 6))
    else:
        budget = Budget(
            deadline=float(rng.randint(1, 50)),
            clock=ManualClock(step=rng.choice((0.05, 0.5, 2.0))),
        )
    try:
        with budget_scope(budget.start()):
            bounded = core(database)
    except BudgetExceeded as error:
        assert error.resource in ("block", "deadline")
        return
    # A budget that never trips must not change the computation.
    assert bounded == unbudgeted
    assert is_core(bounded)


def test_possible_answers_budget_is_typed():
    database = random_database(num_nulls=2, seed=7)
    query = random_positive_query(database.schema, seed=7)
    with repro.connect(database) as session:
        oracle = session.query(query).possible()
        try:
            answer = session.query(query).possible(budget=Budget(max_worlds=3))
        except BudgetExceeded:
            return
        assert answer == oracle


def test_boolean_budget_is_typed():
    database = random_database(num_nulls=2, seed=11)
    query = random_positive_query(database.schema, seed=11)
    with repro.connect(database) as session:
        oracle = session.query(query).boolean()
        try:
            answer = session.query(query).boolean(budget=Budget(max_worlds=3))
        except BudgetExceeded:
            return
        assert answer == oracle
