"""Property-based tests for incomplete data trees and tree patterns."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datamodel import Null, Valuation
from repro.datamodel.values import is_null
from repro.logic import var
from repro.trees import DataTree, PatternNode, TreePattern, naive_certain_answers_tree_pattern

X = var("x")

VALUES = ["a", "b", 1]
NULL_NAMES = ["n1", "n2"]
LABELS = ["item", "name", "price"]


def leaf_values():
    return st.one_of(
        st.none(), st.sampled_from(VALUES), st.sampled_from(NULL_NAMES).map(Null)
    )


def trees(depth=2):
    leaves = st.builds(DataTree, st.sampled_from(LABELS), leaf_values())
    if depth == 0:
        return leaves
    return st.builds(
        DataTree,
        st.sampled_from(LABELS),
        leaf_values(),
        st.lists(trees(depth - 1), min_size=0, max_size=3),
    )


def valuations():
    return st.fixed_dictionaries({name: st.sampled_from(VALUES) for name in NULL_NAMES}).map(
        lambda mapping: Valuation({Null(k): v for k, v in mapping.items()})
    )


PATTERNS = [
    TreePattern(PatternNode("item", children=[("child", PatternNode("name", value=X))]), output=(X,)),
    TreePattern(PatternNode("item", children=[("descendant", PatternNode(None, value=X))]), output=(X,)),
    TreePattern(PatternNode(None, value=X), output=(X,)),
]


@settings(max_examples=60, deadline=None)
@given(trees(), valuations())
def test_valuation_image_is_complete_and_preserves_structure(tree, valuation):
    world = tree.apply_valuation(valuation)
    assert world.is_complete()
    assert world.size() == tree.size()
    assert world.labels() == tree.labels()
    assert world.depth() == tree.depth()


@settings(max_examples=60, deadline=None)
@given(trees(), valuations())
def test_naive_certain_answers_survive_every_valuation(tree, valuation):
    world = tree.apply_valuation(valuation)
    for pattern in PATTERNS:
        certain = naive_certain_answers_tree_pattern(pattern, tree).rows
        assert certain <= pattern.evaluate(world).rows


@settings(max_examples=60, deadline=None)
@given(trees())
def test_naive_certain_answers_mention_no_nulls(tree):
    for pattern in PATTERNS:
        rows = naive_certain_answers_tree_pattern(pattern, tree).rows
        assert all(not is_null(value) for row in rows for value in row)


@settings(max_examples=60, deadline=None)
@given(trees())
def test_equality_is_reflexive_and_valuation_is_idempotent_on_complete_trees(tree):
    assert tree == tree
    if tree.is_complete():
        assert tree.apply_valuation(Valuation({})) == tree
