"""Resume differential suite: interrupted-then-resumed == uninterrupted.

Each pair interrupts a world enumeration with a budget, then resumes from
the checkpointed :class:`~repro.resilience.ResumeToken` until the
enumeration completes, and asserts the run-to-completion answer equals
the uninterrupted one — the core contract of ``certain(resume=)``.
210 randomized pairs across two interruption modes (world caps and
deterministic :class:`~repro.resilience.ManualClock` deadlines), plus
directed tests for token validation, multi-hop progress and soundness of
every intermediate partial.

The deterministic world order (nulls sorted by name, domains sorted —
see :mod:`repro.semantics.worlds`) is what makes the plain world count in
the token a valid checkpoint; these tests are the differential evidence.
"""

import random

import pytest

import repro
from repro import Budget, BudgetExceeded, PartialResult
from repro.resilience import ManualClock, ResumeToken
from repro.workloads import random_database, random_positive_query

WORLD_CAP_SEEDS = list(range(140))
DEADLINE_SEEDS = list(range(70))

#: Generous bound on resume hops: every hop banks at least one world (or
#: one chunk), so hitting this means resumption stopped making progress.
_MAX_HOPS = 400


def _pair(seed, offset=0):
    database = random_database(
        num_relations=2, arity=2, rows_per_relation=3, num_constants=4,
        num_nulls=2, seed=offset + seed,
    )
    query = random_positive_query(database.schema, seed=seed)
    return database, query


def _resume_to_completion(session, query, budget_factory, oracle):
    """Interrupt + resume until complete; assert every hop stays sound.

    ``budget_factory(scale)`` builds the budget for each hop.  World-cap
    budgets guarantee progress at scale 1; deadline budgets can expire
    before a single world completes, so whenever a hop banks no new
    worlds the scale doubles — loosening the deadline until the
    enumeration moves again (what a real caller would do).
    """
    scale = 1
    result = session.query(query).certain(
        method="enumeration", budget=budget_factory(scale), on_budget="partial"
    )
    hops = 0
    last_done = -1
    while isinstance(result, PartialResult):
        assert set(result.rows) <= set(oracle.rows), "partial is not a sound subset"
        if result.token is None:
            # The interruption preceded any enumeration checkpoint (e.g.
            # the budget expired on the upfront check): nothing to resume.
            result = session.query(query).certain(method="enumeration")
            break
        assert isinstance(result.token, ResumeToken)
        if result.token.worlds_done <= last_done:
            scale *= 2
        last_done = result.token.worlds_done
        result = session.query(query).certain(
            budget=budget_factory(scale), on_budget="partial", resume=result
        )
        hops += 1
        assert hops < _MAX_HOPS, "resume loop stopped making progress"
    return result, hops


@pytest.mark.parametrize("seed", WORLD_CAP_SEEDS)
def test_world_cap_interrupt_then_resume_equals_uninterrupted(seed):
    rng = random.Random(seed)
    database, query = _pair(seed)
    cap = rng.randint(1, 6)
    with repro.connect(database) as session:
        oracle = session.query(query).certain(method="enumeration")
        result, _ = _resume_to_completion(
            session, query, lambda scale: Budget(max_worlds=cap * scale), oracle
        )
        assert set(result.rows) == set(oracle.rows), (
            f"seed {seed}: resumed enumeration diverged from uninterrupted"
        )


@pytest.mark.parametrize("seed", DEADLINE_SEEDS)
def test_deadline_interrupt_then_resume_equals_uninterrupted(seed):
    rng = random.Random(10_000 + seed)
    database, query = _pair(seed, offset=10_000)
    deadline = float(rng.randint(2, 12))
    step = rng.choice((0.5, 1.0, 2.0))
    with repro.connect(database) as session:
        oracle = session.query(query).certain(method="enumeration")
        # Each hop gets a fresh deterministic clock, so the deadline trips
        # after the same number of budget checks every time.
        result, _ = _resume_to_completion(
            session,
            query,
            lambda scale: Budget(
                deadline=deadline * scale, clock=ManualClock(step=step)
            ),
            oracle,
        )
        assert set(result.rows) == set(oracle.rows), (
            f"seed {seed}: deadline-resumed enumeration diverged"
        )


def test_resume_makes_progress_every_hop():
    database, query = _pair(3)
    with repro.connect(database) as session:
        oracle = session.query(query).certain(method="enumeration")
        partial = session.query(query).certain(
            method="enumeration", budget=Budget(max_worlds=2), on_budget="partial"
        )
        done = partial.token.worlds_done
        assert done >= 2
        result = partial
        while isinstance(result, PartialResult):
            result = session.query(query).certain(
                budget=Budget(max_worlds=2), on_budget="partial", resume=result
            )
            if isinstance(result, PartialResult):
                assert result.token.worlds_done > done, "checkpoint did not advance"
                done = result.token.worlds_done
        assert set(result.rows) == set(oracle.rows)


def test_resume_token_rides_on_raised_budget_exceeded():
    database, query = _pair(5)
    with repro.connect(database) as session:
        try:
            session.query(query).certain(
                method="enumeration", budget=Budget(max_worlds=2), on_budget="raise"
            )
        except BudgetExceeded as error:
            assert error.resume_token is not None
            assert error.resume_token.key is not None
            resumed = session.query(query).certain(resume=error.resume_token)
            oracle = session.query(query).certain(method="enumeration")
            assert set(resumed.rows) == set(oracle.rows)
        else:
            pytest.skip("enumeration finished inside the cap")


def test_resume_rejects_token_from_different_database():
    database, query = _pair(7)
    other = random_database(
        num_relations=2, arity=2, rows_per_relation=3, num_constants=4,
        num_nulls=2, seed=7777,
    )
    with repro.connect(database) as session:
        partial = session.query(query).certain(
            method="enumeration", budget=Budget(max_worlds=1), on_budget="partial"
        )
        assert partial.token is not None
    with repro.connect(other) as session:
        with pytest.raises(repro.InvalidRequestError):
            session.query(query).certain(resume=partial)


def test_resume_rejects_token_after_kernel_eviction():
    database, query = _pair(9)
    with repro.connect(database) as session:
        partial = session.query(query).certain(
            method="enumeration", budget=Budget(max_worlds=1), on_budget="partial"
        )
        assert partial.token is not None
        session.kernel.clear()
        with pytest.raises(repro.InvalidRequestError):
            session.query(query).certain(resume=partial)


def test_resume_rejects_naive_method_and_foreign_objects():
    database, query = _pair(11)
    with repro.connect(database) as session:
        partial = session.query(query).certain(
            method="enumeration", budget=Budget(max_worlds=1), on_budget="partial"
        )
        with pytest.raises(repro.InvalidRequestError):
            session.query(query).certain(method="naive", resume=partial)
        with pytest.raises(repro.InvalidRequestError):
            session.query(query).certain(resume="not a token")
        with pytest.raises(repro.InvalidRequestError):
            # A PartialResult that never reached a checkpoint has no token.
            session.query(query).certain(
                resume=PartialResult(partial.relation, "no checkpoint")
            )


def test_resume_token_pickle_round_trip_resumes():
    import pickle

    database, query = _pair(13)
    with repro.connect(database) as session:
        oracle = session.query(query).certain(method="enumeration")
        partial = session.query(query).certain(
            method="enumeration", budget=Budget(max_worlds=2), on_budget="partial"
        )
        assert partial.token is not None
        revived = pickle.loads(pickle.dumps(partial))
        assert isinstance(revived, PartialResult)
        assert revived.token.worlds_done == partial.token.worlds_done
        assert revived.token.key == partial.token.key
        result = revived
        hops = 0
        while isinstance(result, PartialResult):
            result = session.query(query).certain(
                budget=Budget(max_worlds=4), on_budget="partial", resume=result
            )
            hops += 1
            assert hops < _MAX_HOPS
        assert set(result.rows) == set(oracle.rows)
