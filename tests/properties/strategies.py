"""Hypothesis strategies for generating incomplete databases, valuations and queries."""

from hypothesis import strategies as st

from repro.datamodel import Database, Null, Relation, Valuation

CONSTANTS = ["a", "b", "c", 1, 2]
NULL_NAMES = ["n1", "n2", "n3"]


def values(allow_nulls=True):
    """A strategy for single values: small constants and a few shared marked nulls."""
    constant = st.sampled_from(CONSTANTS)
    if not allow_nulls:
        return constant
    null = st.sampled_from(NULL_NAMES).map(Null)
    return st.one_of(constant, null)


def rows(arity, allow_nulls=True):
    """A strategy for tuples of the given arity."""
    return st.tuples(*[values(allow_nulls) for _ in range(arity)])


def relations(name="R", arity=2, max_rows=4, allow_nulls=True):
    """A strategy for relations with up to ``max_rows`` tuples."""
    return st.lists(rows(arity, allow_nulls), min_size=0, max_size=max_rows).map(
        lambda rs: Relation.create(name, rs, arity=arity)
    )


def databases(allow_nulls=True, max_rows=3):
    """A strategy for two-relation databases R/2 and S/1."""
    return st.builds(
        lambda r_rows, s_rows: Database.from_relations(
            [
                Relation.create("R", r_rows, arity=2),
                Relation.create("S", s_rows, arity=1),
            ]
        ),
        st.lists(rows(2, allow_nulls), min_size=0, max_size=max_rows),
        st.lists(rows(1, allow_nulls), min_size=0, max_size=max_rows),
    )


def valuations():
    """A strategy for total valuations of the shared null names."""
    return st.builds(
        lambda assignment: Valuation({Null(name): value for name, value in assignment.items()}),
        st.fixed_dictionaries({name: st.sampled_from(CONSTANTS) for name in NULL_NAMES}),
    )
