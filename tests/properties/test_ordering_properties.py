"""Property-based tests for information orderings and homomorphisms."""

from hypothesis import given, settings

from repro.core import cwa_leq, owa_leq, wcwa_leq
from repro.datamodel import Valuation
from repro.homomorphisms import (
    Homomorphism,
    exists_homomorphism,
    find_homomorphism,
)

from .strategies import databases, valuations


@settings(max_examples=50, deadline=None)
@given(databases())
def test_orderings_are_reflexive(database):
    assert owa_leq(database, database)
    assert cwa_leq(database, database)
    assert wcwa_leq(database, database)


@settings(max_examples=40, deadline=None)
@given(databases(max_rows=2), valuations(), valuations())
def test_orderings_compose_along_valuations(database, first, second):
    """D ⊑ v(D) and chains of valuations stay above the original (transitivity witness)."""
    middle = first.apply(database)
    top = second.apply(middle)
    assert owa_leq(database, middle) and owa_leq(middle, top) and owa_leq(database, top)
    assert cwa_leq(database, middle) and cwa_leq(middle, top) and cwa_leq(database, top)


@settings(max_examples=40, deadline=None)
@given(databases(max_rows=3))
def test_cwa_implies_wcwa_implies_owa(database):
    """Checked against the database's own valuation images and fact extensions."""
    candidates = [
        Valuation({null: "a" for null in database.nulls()}).apply(database),
        Valuation({null: "b" for null in database.nulls()}).apply(database),
    ]
    candidates.append(candidates[0].add_facts([("S", ("a",))]))
    for candidate in candidates:
        if cwa_leq(database, candidate):
            assert wcwa_leq(database, candidate)
        if wcwa_leq(database, candidate):
            assert owa_leq(database, candidate)


@settings(max_examples=40, deadline=None)
@given(databases(max_rows=3), valuations())
def test_found_homomorphisms_are_actual_homomorphisms(database, valuation):
    """Whenever the search finds h : D → v(D), its image is contained in v(D)."""
    target = valuation.apply(database)
    hom = find_homomorphism(database, target)
    assert hom is not None
    assert target.contains_database(hom.apply(database))


@settings(max_examples=40, deadline=None)
@given(databases(max_rows=2), databases(max_rows=2))
def test_homomorphisms_compose(first, second):
    """If D₁ → D₂ and D₂ → D₃ exist then D₁ → D₃ exists (via composition)."""
    intermediate = Valuation({null: "a" for null in first.nulls()}).apply(first)
    hom1 = find_homomorphism(first, intermediate)
    hom2 = find_homomorphism(intermediate, second)
    if hom1 is None or hom2 is None:
        return
    composed = Homomorphism({null: hom2(hom1(null)) for null in first.nulls()})
    assert second.contains_database(composed.apply(first))
    assert exists_homomorphism(first, second)
