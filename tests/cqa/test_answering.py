"""Unit tests for consistent query answering over repairs."""

import pytest

from repro.algebra import parse_ra
from repro.constraints import FunctionalDependency
from repro.cqa import (
    consistent_answers,
    consistent_boolean,
    possible_answers_over_repairs,
    repair_semantics,
)
from repro.datamodel import Database, Relation


@pytest.fixture
def person_key():
    return FunctionalDependency("Person", ("name",), ("city",))


@pytest.fixture
def inconsistent_db():
    return Database.from_relations(
        [
            Relation.create(
                "Person",
                [("ann", "paris"), ("ann", "rome"), ("bob", "oslo")],
                attributes=("name", "city"),
            )
        ]
    )


def _names_query(db):
    return parse_ra("project[#0](Person)").evaluate(db)


def _full_query(db):
    return parse_ra("Person").evaluate(db)


class TestRepairSemantics:
    def test_repair_semantics_is_the_set_of_repairs(self, inconsistent_db, person_key):
        worlds = repair_semantics(inconsistent_db, person_key)
        assert len(worlds) == 2
        assert all(world.size() == 2 for world in worlds)

    def test_consistent_database_has_one_world(self, person_key):
        clean = Database.from_relations(
            [Relation.create("Person", [("ann", "paris")], attributes=("name", "city"))]
        )
        assert repair_semantics(clean, person_key) == [clean]


class TestConsistentAnswers:
    def test_name_projection_is_consistently_answerable(self, inconsistent_db, person_key):
        answer = consistent_answers(_names_query, inconsistent_db, person_key)
        assert answer.rows == {("ann",), ("bob",)}

    def test_conflicting_tuples_are_not_consistent_answers(self, inconsistent_db, person_key):
        answer = consistent_answers(_full_query, inconsistent_db, person_key)
        assert answer.rows == {("bob", "oslo")}

    def test_possible_answers_keep_both_alternatives(self, inconsistent_db, person_key):
        answer = possible_answers_over_repairs(_full_query, inconsistent_db, person_key)
        assert answer.rows == {("ann", "paris"), ("ann", "rome"), ("bob", "oslo")}

    def test_consistent_answers_on_a_consistent_database_are_plain_answers(self, person_key):
        clean = Database.from_relations(
            [
                Relation.create(
                    "Person", [("ann", "paris"), ("bob", "oslo")], attributes=("name", "city")
                )
            ]
        )
        assert consistent_answers(_full_query, clean, person_key).rows == _full_query(clean).rows

    def test_consistent_answers_are_contained_in_every_repair_answer(
        self, inconsistent_db, person_key
    ):
        consistent = consistent_answers(_full_query, inconsistent_db, person_key).rows
        for repair in repair_semantics(inconsistent_db, person_key):
            assert consistent <= _full_query(repair).rows

    def test_boolean_queries(self, inconsistent_db, person_key):
        ann_exists = lambda db: ("ann",) in parse_ra("project[#0](Person)").evaluate(db).rows
        ann_in_paris = lambda db: ("ann", "paris") in db.relation("Person").rows
        assert consistent_boolean(ann_exists, inconsistent_db, person_key)
        assert not consistent_boolean(ann_in_paris, inconsistent_db, person_key)

    def test_empty_answer_schema_is_preserved(self, person_key):
        clean = Database.from_relations(
            [Relation.create("Person", [], attributes=("name", "city"))]
        )
        answer = consistent_answers(_full_query, clean, person_key)
        assert len(answer) == 0
        assert answer.arity == 2
