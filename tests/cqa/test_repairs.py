"""Unit tests for conflict detection and subset repairs."""

import pytest

from repro.constraints import ConstraintSet, FunctionalDependency, key
from repro.cqa import (
    conflict_graph,
    conflicting_facts,
    count_repairs,
    is_consistent,
    repairs,
)
from repro.datamodel import Database, Null, Relation


@pytest.fixture
def person_key():
    """Key constraint: a person lives in a single city."""
    return FunctionalDependency("Person", ("name",), ("city",))


@pytest.fixture
def inconsistent_db():
    return Database.from_relations(
        [
            Relation.create(
                "Person",
                [("ann", "paris"), ("ann", "rome"), ("bob", "oslo")],
                attributes=("name", "city"),
            )
        ]
    )


class TestConflictDetection:
    def test_conflicts_found(self, inconsistent_db, person_key):
        conflicts = conflicting_facts(inconsistent_db, person_key)
        assert len(conflicts) == 1
        first, second = conflicts[0].facts()
        assert {first[1], second[1]} == {("ann", "paris"), ("ann", "rome")}

    def test_consistent_database_has_no_conflicts(self, person_key):
        clean = Database.from_relations(
            [Relation.create("Person", [("ann", "paris"), ("bob", "oslo")], attributes=("name", "city"))]
        )
        assert is_consistent(clean, person_key)
        assert conflict_graph(clean, person_key) == {}

    def test_constraint_set_and_single_fd_are_both_accepted(self, inconsistent_db, person_key):
        as_set = ConstraintSet([person_key])
        assert len(conflicting_facts(inconsistent_db, as_set)) == 1
        assert len(conflicting_facts(inconsistent_db, [person_key])) == 1

    def test_invalid_violation_mode(self, inconsistent_db, person_key):
        with pytest.raises(ValueError):
            conflicting_facts(inconsistent_db, person_key, violation="open")

    def test_certain_violation_mode_ignores_null_conflicts(self, person_key):
        maybe = Database.from_relations(
            [
                Relation.create(
                    "Person",
                    [("ann", "paris"), ("ann", Null("c"))],
                    attributes=("name", "city"),
                )
            ]
        )
        # Naively the two tuples disagree on city; but the null may well be
        # 'paris', so the violation is not certain.
        assert len(conflicting_facts(maybe, person_key, violation="naive")) == 1
        assert conflicting_facts(maybe, person_key, violation="certain") == []

    def test_certain_violation_mode_keeps_constant_conflicts(self, inconsistent_db, person_key):
        assert len(conflicting_facts(inconsistent_db, person_key, violation="certain")) == 1


class TestRepairs:
    def test_consistent_database_is_its_own_repair(self, person_key):
        clean = Database.from_relations(
            [Relation.create("Person", [("ann", "paris")], attributes=("name", "city"))]
        )
        assert repairs(clean, person_key) == [clean]

    def test_two_repairs_for_one_key_conflict(self, inconsistent_db, person_key):
        result = repairs(inconsistent_db, person_key)
        assert len(result) == 2
        cities = {
            tuple(sorted(row[1] for row in repair.relation("Person"))) for repair in result
        }
        assert cities == {("oslo", "paris"), ("oslo", "rome")}

    def test_safe_facts_appear_in_every_repair(self, inconsistent_db, person_key):
        for repair in repairs(inconsistent_db, person_key):
            assert ("bob", "oslo") in repair.relation("Person").rows

    def test_every_repair_is_consistent_and_maximal(self, inconsistent_db, person_key):
        all_repairs = repairs(inconsistent_db, person_key)
        all_facts = set(inconsistent_db.facts())
        for repair in all_repairs:
            assert is_consistent(repair, person_key)
            missing = all_facts - set(repair.facts())
            for fact in missing:
                extended = repair.add_facts([fact])
                assert not is_consistent(extended, person_key), "repair is not maximal"

    def test_repair_count_is_exponential_in_independent_conflicts(self, person_key):
        rows = []
        for i in range(4):
            rows.append((f"p{i}", "cityA"))
            rows.append((f"p{i}", "cityB"))
        db = Database.from_relations(
            [Relation.create("Person", rows, attributes=("name", "city"))]
        )
        assert count_repairs(db, person_key) == 2 ** 4

    def test_three_way_conflict_yields_three_repairs(self, person_key):
        db = Database.from_relations(
            [
                Relation.create(
                    "Person",
                    [("ann", "paris"), ("ann", "rome"), ("ann", "oslo")],
                    attributes=("name", "city"),
                )
            ]
        )
        result = repairs(db, person_key)
        assert len(result) == 3
        assert all(len(r.relation("Person")) == 1 for r in result)

    def test_multiple_relations_and_key_helper(self):
        emp_key = key("Emp", ("id",), ("id", "dept"))
        db = Database.from_relations(
            [
                Relation.create("Emp", [(1, "hr"), (1, "it"), (2, "hr")], attributes=("id", "dept")),
                Relation.create("Dept", [("hr",), ("it",)], attributes=("dept",)),
            ]
        )
        result = repairs(db, emp_key)
        assert len(result) == 2
        for repair in result:
            assert len(repair.relation("Dept")) == 2
