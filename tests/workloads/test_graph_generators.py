"""Unit tests for the graph workload generators."""

from repro.datamodel import Null
from repro.workloads import random_labelled_graph, social_network_graph


class TestRandomLabelledGraph:
    def test_deterministic_for_a_seed(self):
        assert random_labelled_graph(seed=7) == random_labelled_graph(seed=7)
        assert random_labelled_graph(seed=7) != random_labelled_graph(seed=8)

    def test_respects_size_parameters(self):
        graph = random_labelled_graph(num_nodes=5, num_edges=9, seed=1)
        assert graph.num_edges() <= 9
        constant_nodes = {n for n in graph.nodes() if not isinstance(n, Null)}
        assert len(constant_nodes) >= 5

    def test_null_fractions_control_incompleteness(self):
        complete = random_labelled_graph(null_node_fraction=0.0, null_label_fraction=0.0, seed=2)
        assert complete.is_complete()
        incomplete = random_labelled_graph(null_node_fraction=0.5, null_label_fraction=0.5, seed=2)
        assert not incomplete.is_complete()

    def test_labels_come_from_the_requested_alphabet(self):
        graph = random_labelled_graph(labels=("x", "y"), null_label_fraction=0.0, seed=3)
        assert graph.labels() <= {"x", "y"}


class TestSocialNetworkGraph:
    def test_every_person_knows_someone_and_works_somewhere(self):
        graph = social_network_graph(num_people=5, seed=0)
        people = {f"p{i}" for i in range(5)}
        knows_sources = {s for s, label, _t in graph.edges() if label == "knows"}
        works_sources = {s for s, label, _t in graph.edges() if label == "worksFor"}
        assert people <= knows_sources
        assert people <= works_sources

    def test_unknown_employers_are_marked_nulls(self):
        graph = social_network_graph(num_people=6, unknown_employer_fraction=1.0, seed=1)
        employers = {t for _s, label, t in graph.edges() if label == "worksFor"}
        assert all(isinstance(e, Null) for e in employers)
        known = social_network_graph(num_people=6, unknown_employer_fraction=0.0, seed=1)
        assert known.is_complete()

    def test_deterministic_for_a_seed(self):
        assert social_network_graph(seed=4) == social_network_graph(seed=4)
