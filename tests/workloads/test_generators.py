"""Unit tests for the synthetic workload generators."""

from repro.algebra import is_positive, is_ra_cwa, uses_difference, uses_division
from repro.datamodel import Database
from repro.exchange import chase
from repro.workloads import (
    chain_mapping,
    enrolment,
    order_preferences_source,
    orders_payments,
    random_database,
    random_full_ra_query,
    random_graph_source,
    random_positive_query,
    random_ra_cwa_query,
)


class TestScenarioGenerators:
    def test_orders_payments_shape(self):
        db = orders_payments(num_orders=7, num_payments=5, null_fraction=0.5, seed=3)
        assert len(db["Orders"]) == 7
        assert len(db["Pay"]) == 5
        assert db["Orders"].is_complete()

    def test_orders_payments_null_fraction_extremes(self):
        no_nulls = orders_payments(null_fraction=0.0, seed=1)
        all_nulls = orders_payments(num_payments=5, null_fraction=1.0, seed=1)
        assert no_nulls.is_complete()
        assert len(all_nulls.nulls()) == 5

    def test_orders_payments_deterministic(self):
        assert orders_payments(seed=4) == orders_payments(seed=4)
        assert orders_payments(seed=4) != orders_payments(seed=5)

    def test_enrolment_shape(self):
        db = enrolment(num_students=5, num_courses=3, seed=2)
        assert len(db["Courses"]) == 3
        assert db["Enroll"].arity == 2
        assert {"Enroll", "Courses"} == set(db.schema.names())

    def test_enrolment_deterministic(self):
        assert enrolment(seed=7) == enrolment(seed=7)

    def test_random_database_null_count(self):
        for seed in range(5):
            db = random_database(num_nulls=3, seed=seed)
            assert len(db.nulls()) == 3
        complete = random_database(num_nulls=0, seed=1)
        assert complete.is_complete()

    def test_random_database_structure(self):
        db = random_database(num_relations=3, arity=2, rows_per_relation=4, seed=0)
        assert len(db.schema) == 3
        assert all(rel.arity == 2 for rel in db)


class TestQueryGenerators:
    def test_random_positive_queries_are_positive(self):
        db = random_database(seed=0)
        for seed in range(10):
            query = random_positive_query(db.schema, seed=seed)
            assert is_positive(query)
            # they must also evaluate without error
            query.evaluate(db)

    def test_random_ra_cwa_queries_use_division(self):
        db = enrolment(seed=0)
        for seed in range(5):
            query = random_ra_cwa_query(db.schema, "Enroll", "Courses", seed=seed)
            assert is_ra_cwa(query)
            assert uses_division(query)
            query.evaluate(db)

    def test_random_full_ra_queries_use_difference(self):
        db = random_database(seed=0)
        for seed in range(5):
            query = random_full_ra_query(db.schema, seed=seed)
            assert uses_difference(query)
            query.evaluate(db)

    def test_query_generators_deterministic(self):
        db = random_database(seed=0)
        assert random_positive_query(db.schema, seed=3) == random_positive_query(db.schema, seed=3)


class TestExchangeWorkloads:
    def test_order_preferences_source(self):
        source = order_preferences_source(num_orders=6, seed=1)
        assert len(source["Order"]) == 6
        assert source.is_complete()

    def test_chain_mapping_null_count_scales_with_length(self):
        source = random_graph_source(num_nodes=4, num_edges=5, seed=0)
        short = chase(chain_mapping(2), source)
        long = chase(chain_mapping(4), source)
        assert short.nulls_introduced == 5
        assert long.nulls_introduced == 15
        assert long.target.size() > short.target.size()

    def test_random_graph_source_size(self):
        source = random_graph_source(num_nodes=5, num_edges=7, seed=2)
        assert len(source["E"]) == 7
