"""Unit tests for the physical evaluation engine: plans, operators, caches."""

import pytest

from repro.algebra.ast import (
    ActiveDomain,
    ConstantRelation,
    Delta,
    Division,
    NaturalJoin,
    Product,
    Projection,
    RelationRef,
    Selection,
    Union_,
    difference,
    join,
    product,
    project,
    relation,
    rename,
    select,
    union,
)
from repro.algebra.predicates import Attr, Comparison, PAnd, eq
from repro.datamodel import Database, Null, Relation
from repro.datamodel.values import intern_null, intern_value
from repro.engine import (
    clear_plan_cache,
    compile_plan,
    execute,
    explain,
    get_default_engine,
    set_default_engine,
)
from repro.engine.logical import (
    LDifference,
    LFilter,
    LMultiJoin,
    LProject,
    LScan,
    optimize,
)
from repro.engine.physical import ExecutionContext, compile_predicate
from repro.engine.planner import lower


@pytest.fixture
def db():
    return Database.from_dict(
        {
            "R": [(1, 2), (2, 3), (3, 3), (Null("x"), 2)],
            "S": [(2, "a"), (3, "b")],
            "T": [(2,), (5,)],
        }
    )


class TestLogicalOptimizer:
    def test_selection_pushdown_through_product(self, db):
        # σ_{0=c}(R × S) pushes the predicate onto the R side.
        query = select(product(relation("R"), relation("S")), eq(Attr(0), 1))
        plan = compile_plan(query, db.schema)
        assert isinstance(plan, LMultiJoin)
        assert isinstance(plan.factors[0], LFilter)
        assert isinstance(plan.factors[0].child, LScan)
        assert plan.factors[0].child.name == "R"
        assert isinstance(plan.factors[1], LScan)

    def test_cross_equality_becomes_join_pair(self, db):
        query = select(
            product(relation("R"), relation("S")), Comparison(Attr(1), "=", Attr(2))
        )
        plan = compile_plan(query, db.schema)
        assert isinstance(plan, LMultiJoin)
        assert plan.pairs == ((1, 2),)
        assert plan.residual == ()

    def test_nested_products_flatten(self, db):
        query = select(
            product(relation("R"), product(relation("S"), relation("T"))),
            PAnd((Comparison(Attr(1), "=", Attr(2)), Comparison(Attr(3), "=", Attr(4)))),
        )
        plan = compile_plan(query, db.schema)
        assert isinstance(plan, LMultiJoin)
        assert len(plan.factors) == 3
        assert set(plan.pairs) == {(1, 2), (3, 4)}

    def test_projection_resolves_names_to_positions(self, db):
        query = project(relation("S"), ("#1", "#0"))
        plan = compile_plan(query, db.schema)
        assert isinstance(plan, LProject)
        assert plan.positions == (1, 0)

    def test_rename_disappears_from_plan(self, db):
        query = rename(relation("R"), "Other", ("a", "b"))
        plan = compile_plan(query, db.schema)
        assert isinstance(plan, LScan)

    def test_selection_pushes_through_union_and_difference(self, db):
        query = select(difference(relation("R"), relation("R")), eq(Attr(0), 1))
        plan = compile_plan(query, db.schema)
        assert isinstance(plan, LDifference)
        assert isinstance(plan.left, LFilter)
        assert isinstance(plan.right, LFilter)

    def test_order_comparisons_are_not_pushed(self, db):
        # σ_{#0<5}(R × S): the order comparison must stay above the product,
        # exactly where the interpreter evaluates it.
        query = select(product(relation("T"), relation("S")), Comparison(Attr(0), "<", 5))
        plan = compile_plan(query, db.schema)
        assert isinstance(plan, LFilter)

    def test_explain_renders_tree(self, db):
        text = explain(compile_plan(join(relation("R"), relation("R")), db.schema))
        assert "equijoin" in text
        assert "scan R" in text

    def test_two_way_natural_join_stays_equijoin(self, db):
        # A plain two-way natural join keeps the direct LEquiJoin shape
        # (no extra projection over dropped right columns).
        plan = compile_plan(
            join(rename(relation("R"), "A", ("a", "b")), rename(relation("S"), "B", ("b", "c"))),
            db.schema,
        )
        assert type(plan).__name__ == "LEquiJoin"

    def test_natural_join_chain_flattens_to_multijoin(self, db):
        # Chains of natural joins collapse into one n-ary multijoin (with
        # a projection restoring the natural-join layout), so the planner
        # orders the whole chain by cardinality estimate.
        chain = join(
            join(
                rename(relation("R"), "A", ("a", "b")),
                rename(relation("S"), "B", ("b", "c")),
            ),
            rename(relation("T"), "C", ("b",)),
        )
        plan = compile_plan(chain, db.schema)
        assert isinstance(plan, LProject)
        assert isinstance(plan.child, LMultiJoin)
        assert len(plan.child.factors) == 3
        # Both join equalities survive as multijoin pairs over the
        # concatenated layout: R.b = S.b (1=2) and R.b = T.b (1=4).
        assert set(plan.child.pairs) == {(1, 2), (3, 4)} or set(plan.child.pairs) == {
            (1, 2),
            (1, 4),
        }

    def test_natural_join_chain_reordered_by_estimate(self):
        # The smallest factor should be joined first even when it appears
        # last in the chain — the behaviour Product chains already had.
        big = Relation.create("Big", [(i, i % 7) for i in range(60)], attributes=("a", "b"))
        mid = Relation.create("Mid", [(i % 7, i % 3) for i in range(25)], attributes=("b", "c"))
        tiny = Relation.create("Tiny", [(0, 1)], attributes=("c", "d"))
        database = Database.from_relations([big, mid, tiny])
        chain = join(join(relation("Big"), relation("Mid")), relation("Tiny"))
        plan = compile_plan(chain, database.schema)
        assert isinstance(plan, LProject) and isinstance(plan.child, LMultiJoin)
        assert lower(plan, database) is not None
        # Correctness seals the join-order permutation and the final
        # layout-restoring projection.
        assert chain.evaluate(database, engine="plan") == chain.evaluate(
            database, engine="interpreter"
        )

    def test_mixed_product_and_natural_join_chain_agrees(self, db):
        query = join(
            product(rename(relation("T"), "P", ("t",)), rename(relation("R"), "A", ("a", "b"))),
            rename(relation("S"), "B", ("b", "c")),
        )
        plan = compile_plan(query, db.schema)
        assert isinstance(plan, LProject) and isinstance(plan.child, LMultiJoin)
        assert len(plan.child.factors) == 3
        assert query.evaluate(db, engine="plan") == query.evaluate(db, engine="interpreter")

    def test_projection_inside_join_chain_flattens(self, db):
        # A user-written projection between joins used to stop flattening
        # (the π(join) subtree became an opaque leaf factor); now the view
        # composes through it, so the whole chain is one 3-ary multijoin.
        inner = project(
            join(
                rename(relation("R"), "A", ("a", "b")),
                rename(relation("S"), "B", ("b", "c")),
            ),
            ("b", "c"),
        )
        query = join(inner, rename(relation("S"), "C", ("c", "d")))
        plan = compile_plan(query, db.schema)
        assert isinstance(plan, LProject)
        assert isinstance(plan.child, LMultiJoin)
        assert len(plan.child.factors) == 3
        assert query.evaluate(db, engine="plan") == query.evaluate(db, engine="interpreter")

    def test_stacked_projections_compose_through_flattening(self, db):
        # π over π over a join chain: positions compose, results agree.
        inner = project(
            project(
                join(
                    rename(relation("R"), "A", ("a", "b")),
                    rename(relation("S"), "B", ("b", "c")),
                ),
                ("b", "c"),
            ),
            ("c", "b"),
        )
        query = join(inner, rename(relation("T"), "C", ("b",)))
        plan = compile_plan(query, db.schema)
        assert isinstance(plan, LProject)
        assert isinstance(plan.child, LMultiJoin)
        assert len(plan.child.factors) == 3
        assert query.evaluate(db, engine="plan") == query.evaluate(db, engine="interpreter")

    def test_bare_projection_over_scan_stays_a_leaf(self, db):
        # The recursion must not turn π(scan) into a (vacuous) multijoin
        # view — leaves stay leaves.
        query = project(relation("S"), ("#1", "#0"))
        plan = compile_plan(query, db.schema)
        assert isinstance(plan, LProject)
        assert isinstance(plan.child, LScan)


class TestExecution:
    def test_common_subexpression_runs_once(self, db):
        # R ∪ R: both sides are the same logical node; lowering shares the
        # physical operator, so the scan happens once and is memoized.
        query = union(relation("R"), relation("R"))
        plan = optimize(query, db.schema)
        op = lower(plan, db)
        assert op.left is op.right

    def test_join_output_layout_matches_interpreter(self, db):
        # Multijoin ordering permutes factors; the final projection must
        # restore the declared column order.
        big = Relation.create("Big", [(i, i + 1) for i in range(20)])
        database = Database.from_relations(
            [big, Relation.create("Small", [(1, 2)]), Relation.create("Mid", [(i, 1) for i in range(5)])]
        )
        query = select(
            product(relation("Big"), product(relation("Mid"), relation("Small"))),
            PAnd((Comparison(Attr(0), "=", Attr(3)), Comparison(Attr(2), "=", Attr(4)))),
        )
        assert query.evaluate(database, engine="plan") == query.evaluate(
            database, engine="interpreter"
        )

    def test_division_positional_and_named(self, db):
        enrolled = Relation.create(
            "Enroll", [("s1", "c1"), ("s1", "c2"), ("s2", "c1")], attributes=("student", "course")
        )
        courses = Relation.create("Courses", [("c1",), ("c2",)], attributes=("course",))
        database = Database.from_relations([enrolled, courses])
        query = Division(relation("Enroll"), relation("Courses"))
        assert query.evaluate(database, engine="plan") == query.evaluate(
            database, engine="interpreter"
        )
        assert query.evaluate(database).rows == {("s1",)}

    def test_delta_and_adom(self, db):
        for query in (Delta(), ActiveDomain()):
            assert query.evaluate(db, engine="plan") == query.evaluate(db, engine="interpreter")

    def test_schema_errors_match_interpreter(self, db):
        query = union(relation("R"), relation("T"))  # arity mismatch
        with pytest.raises(ValueError):
            query.evaluate(db, engine="plan")
        with pytest.raises(ValueError):
            query.evaluate(db, engine="interpreter")

    def test_order_comparison_on_null_raises_like_interpreter(self, db):
        query = select(relation("R"), Comparison(Attr(0), "<", 5))
        with pytest.raises(TypeError):
            query.evaluate(db, engine="plan")
        with pytest.raises(TypeError):
            query.evaluate(db, engine="interpreter")

    def test_plan_cache_reused_and_clearable(self, db):
        query = project(relation("R"), (0,))
        first = execute(query, db)
        entry = query._plan_entries
        second = execute(query, db)
        assert query._plan_entries is entry
        assert first == second
        clear_plan_cache()
        assert execute(query, db) == first

    def test_plan_cache_clear_evicts_cold_conditions_keeps_hot(self):
        # Long-running services reset every engine-level cache through
        # clear_plan_cache().  The condition kernel uses an epoch-based
        # eviction policy there: conditions touched since the previous
        # clear survive (still canonical), untouched ones are evicted, and
        # a condition untouched for a full epoch disappears entirely.
        from repro.datamodel import Null, clear_condition_kernel
        from repro.datamodel.condition_kernel import (
            kernel_and,
            kernel_eq,
            kernel_or,
            kernel_stats,
        )

        clear_condition_kernel()
        x, y = Null("x"), Null("y")
        left, right = kernel_eq(x, 1), kernel_eq(y, 2)
        conjunction = kernel_and(left, right)
        kernel_or(left, right)
        stats = kernel_stats()
        assert stats["interned"] > 0
        assert stats["and_memo"] > 0 and stats["or_memo"] > 0

        # Everything was touched in the epoch now ending: all survive, and
        # identity (canonicity) is preserved across the clear.
        clear_plan_cache()
        assert kernel_stats()["interned"] == stats["interned"]
        assert kernel_eq(x, 1) is left
        assert kernel_and(left, right) is conjunction

        # New epoch: touch only `left`.  The next clear keeps it (and the
        # conjunction's members it reaches) but evicts the untouched
        # disjunction, whose memo entry must go with it.
        clear_plan_cache()  # ends the epoch in which left/conjunction were touched
        kernel_eq(x, 1)  # touch `left` only in the current epoch
        clear_plan_cache()
        assert kernel_eq(x, 1) is left  # hot condition still canonical
        assert kernel_stats()["or_memo"] == 0  # cold disjunction evicted
        assert kernel_eq(y, 2) is not right  # cold atom was re-interned fresh

        # The full wipe remains available for tests and benchmarks.
        clear_condition_kernel()
        assert kernel_stats() == {
            "interned": 0,
            "and_memo": 0,
            "or_memo": 0,
            "confidence_memo": 0,
        }

    def test_unknown_engine_rejected(self, db):
        with pytest.raises(ValueError):
            relation("R").evaluate(db, engine="quantum")

    def test_seed_style_subclass_still_works_nested(self, db):
        # Subclasses written against the seed API override evaluate()
        # directly; the engine must treat them as opaque and the
        # interpreter must honor the override when they are nested.
        from repro.algebra.ast import RAExpression
        from repro.datamodel.schema import RelationSchema

        class LegacyOp(RAExpression):
            def children(self):
                return ()

            def output_schema(self, schema):
                return RelationSchema("Legacy", ("#0",))

            def evaluate(self, database):  # seed signature, no engine kwarg
                return Relation(RelationSchema("Legacy", ("#0",)), [(1,), (2,)])

        nested = Projection(LegacyOp(), (0,))
        for engine in ("plan", "interpreter"):
            assert nested.evaluate(db, engine=engine).rows == {(1,), (2,)}

    def test_default_engine_switch(self, db):
        previous = set_default_engine("interpreter")
        try:
            assert get_default_engine() == "interpreter"
            assert relation("R").evaluate(db) == db.relation("R")
        finally:
            set_default_engine(previous)


class TestPredicateCompilation:
    def test_equality_and_connectives(self, db):
        schema = db.schema["R"]
        for predicate in (
            eq(Attr(0), 1),
            Comparison(Attr(0), "=", Attr(1)),
            Comparison(Attr(0), "!=", 2),
            PAnd((eq(Attr(0), 1), eq(Attr(1), 2))),
            eq(Attr(0), 1) | eq(Attr(1), 3),
            ~eq(Attr(0), 1),
        ):
            compiled = compile_predicate(predicate)
            for row in db.relation("R"):
                assert compiled(row) == predicate.holds(row, schema)


class TestDatamodelSupport:
    def test_index_on_groups_rows(self, db):
        index = db.relation("R").index_on((1,))
        assert set(index[(2,)]) == {(1, 2), (Null("x"), 2)}
        # cached: same object on repeat call
        assert db.relation("R").index_on((1,)) is index

    def test_interning_canonicalises(self):
        assert intern_value("abc") is intern_value("abc")
        assert intern_null(Null("same")) is intern_null(Null("same"))
        assert intern_value(42) == 42

    def test_trusted_constructor_round_trip(self, db):
        source = db.relation("R")
        copy = Relation._from_trusted(source.schema, source.rows)
        assert copy == source
