"""Unit tests for the planned c-table evaluation path (`repro.engine.ctable`)."""

import pytest

from repro.algebra import CTableDatabase, ctable_evaluate, parse_ra
from repro.datamodel import (
    TRUE,
    ConditionalTable,
    Database,
    Eq,
    FALSE,
    Null,
    Relation,
)
from repro.engine import clear_plan_cache, execute_ctable
from repro.engine.ctable import CMembershipIndex, _merge_sorted
from repro.engine.planner import _PLAN_CACHE
from repro.semantics import default_domain


def _lifted(mapping):
    return CTableDatabase.from_database(Database.from_dict(mapping))


class TestExecuteCTable:
    def test_engine_selection(self):
        ctdb = _lifted({"R": [(1,), (Null("x"),)]})
        query = parse_ra("project[#0](R)")
        planned = ctable_evaluate(query, ctdb, engine="plan")
        interpreted = ctable_evaluate(query, ctdb, engine="interpreter")
        domain = [1, 2, "w"]
        assert planned.possible_worlds(domain) == interpreted.possible_worlds(domain)
        with pytest.raises(ValueError):
            ctable_evaluate(query, ctdb, engine="no-such-engine")

    def test_default_engine_is_plan(self):
        ctdb = _lifted({"R": [(1,)]})
        query = parse_ra("project[#0](R)")
        default = ctable_evaluate(query, ctdb)
        planned = ctable_evaluate(query, ctdb, engine="plan")
        assert default.rows == planned.rows

    def test_plans_are_cached_and_shared_with_relation_engine(self):
        clear_plan_cache()
        ctdb = _lifted({"R": [(1, 2), (3, Null("x"))], "S": [(2, "a")]})
        query = parse_ra("join(rename[A(a, b)](R), rename[B(b, c)](S))")
        execute_ctable(query, ctdb)
        (entry,) = [e for (expr, _), e in _PLAN_CACHE.items() if expr is query]
        assert entry.ctable_physical is not None
        first = entry.ctable_physical
        execute_ctable(query, ctdb)
        assert entry.ctable_physical is first  # same sizes -> same lowering

    def test_lowering_refreshes_when_sizes_change(self):
        clear_plan_cache()
        query = parse_ra("join(rename[A(a, b)](R), rename[B(b, c)](S))")
        small = _lifted({"R": [(1, 2)], "S": [(2, "a")]})
        big = _lifted({"R": [(i, i + 1) for i in range(20)], "S": [(2, "a")]})
        execute_ctable(query, small)
        (entry,) = [e for (expr, _), e in _PLAN_CACHE.items() if expr is query]
        first = entry.ctable_physical
        execute_ctable(query, big)
        assert entry.ctable_physical is not first

    def test_false_global_condition_empties_the_table(self):
        table = ConditionalTable.create(
            "R", [((1,), TRUE)], global_condition=Eq(1, 2)
        )
        result = execute_ctable(parse_ra("project[#0](R)"), CTableDatabase([table]))
        assert len(result) == 0
        assert result.global_condition is FALSE

    def test_division_matches_interpreter(self):
        ctdb = _lifted(
            {"R": [("a", 1), ("a", 2), ("b", 1), ("c", Null("x"))], "S": [(1,), (2,)]}
        )
        query = parse_ra("divide(R, S)")
        planned = ctable_evaluate(query, ctdb, engine="plan")
        interpreted = ctable_evaluate(query, ctdb, engine="interpreter")
        domain = [1, 2, 3, "w"]
        assert planned.possible_worlds(domain) == interpreted.possible_worlds(domain)

    def test_division_by_empty_divisor(self):
        # positional divisor: last column of R; empty S keeps every candidate
        ctdb = CTableDatabase.from_database(
            Database.from_relations(
                [
                    Relation.create("R", [("a", 1), ("b", 2)]),
                    Relation.create("S", [], arity=1),
                ]
            )
        )
        query = parse_ra("divide(R, S)")
        planned = ctable_evaluate(query, ctdb, engine="plan")
        interpreted = ctable_evaluate(query, ctdb, engine="interpreter")
        assert {row.values for row in planned} == {row.values for row in interpreted}

    def test_dense_join_row_values_match_interpreter(self):
        database = Database.from_relations(
            [
                Relation.create("R", [("a", 0), ("b", 1), ("c", Null("x"))], attributes=("k", "j")),
                Relation.create("S", [(0, "p"), (Null("y"), "q")], attributes=("j", "v")),
            ]
        )
        ctdb = CTableDatabase.from_database(database)
        query = parse_ra("join(R, S)")
        planned = ctable_evaluate(query, ctdb, engine="plan")
        interpreted = ctable_evaluate(query, ctdb, engine="interpreter")
        domain = default_domain(database)
        assert planned.possible_worlds(domain) == interpreted.possible_worlds(domain)


class TestHelpers:
    def test_merge_sorted(self):
        assert list(_merge_sorted([1, 4, 7], [2, 4, 9])) == [1, 2, 4, 4, 7, 9]
        assert list(_merge_sorted([], [3, 5])) == [3, 5]
        assert list(_merge_sorted((0,), ())) == [0]

    def test_membership_index_constant_probe(self):
        rows = [((1, 2), TRUE), ((3, 4), TRUE), ((Null("x"), 2), TRUE)]
        index = CMembershipIndex(rows)
        assert index.condition((1, 2)) is TRUE  # exact constant match, condition true
        missing = index.condition((9, 9))
        assert missing is FALSE  # no exact match; null row can't equal (9,9) in col 2

    def test_membership_index_null_row_probe(self):
        x = Null("x")
        rows = [((x, 2), TRUE)]
        index = CMembershipIndex(rows)
        condition = index.condition((5, 2))
        assert condition == Eq(5, x) or condition == Eq(x, 5)
