"""Unit tests for the information orderings ⊑_owa, ⊑_cwa, ⊑_wcwa."""

import pytest

from repro.core import (
    CWA_ORDERING,
    OWA_ORDERING,
    WCWA_ORDERING,
    cwa_leq,
    ordering,
    owa_leq,
    relation_leq,
    semantic_leq,
    wcwa_leq,
)
from repro.datamodel import Database, Null, Relation
from repro.semantics import cwa_worlds, default_domain


@pytest.fixture
def less_informative():
    return Database.from_dict({"R": [(1, Null("x"))]})


@pytest.fixture
def more_informative():
    return Database.from_dict({"R": [(1, 2)]})


class TestOwaOrdering:
    def test_replacing_a_null_increases_information(self, less_informative, more_informative):
        assert owa_leq(less_informative, more_informative)
        assert not owa_leq(more_informative, less_informative)

    def test_adding_facts_increases_information(self, more_informative):
        bigger = more_informative.add_facts([("R", (3, 4))])
        assert owa_leq(more_informative, bigger)
        assert not owa_leq(bigger, more_informative)

    def test_reflexive(self, less_informative):
        assert owa_leq(less_informative, less_informative)

    def test_renaming_nulls_gives_equivalence(self):
        left = Database.from_dict({"R": [(Null("x"), 1)]})
        right = Database.from_dict({"R": [(Null("y"), 1)]})
        assert OWA_ORDERING.equivalent(left, right)


class TestCwaOrdering:
    def test_replacing_a_null_increases_information(self, less_informative, more_informative):
        assert cwa_leq(less_informative, more_informative)

    def test_adding_facts_is_not_cwa_increase(self, more_informative):
        bigger = more_informative.add_facts([("R", (3, 4))])
        assert not cwa_leq(more_informative, bigger)
        assert owa_leq(more_informative, bigger)

    def test_collapsing_nulls_is_a_cwa_increase(self):
        two_rows = Database.from_dict({"R": [(Null("x"),), (Null("y"),)]})
        one_row = Database.from_dict({"R": [(5,)]})
        assert cwa_leq(two_rows, one_row)

    def test_cwa_implies_owa(self, less_informative):
        candidates = [
            Database.from_dict({"R": [(1, 7)]}),
            Database.from_dict({"R": [(1, 7), (2, 2)]}),
            Database.from_dict({"R": [(3, 3)]}),
        ]
        for candidate in candidates:
            if cwa_leq(less_informative, candidate):
                assert owa_leq(less_informative, candidate)


class TestWcwaOrdering:
    def test_between_owa_and_cwa(self, less_informative):
        same_adom_extra_fact = Database.from_dict({"R": [(1, 1), (1, 1)]}).add_facts(
            [("R", (1, 1))]
        )
        assert wcwa_leq(less_informative, same_adom_extra_fact)
        new_value_fact = Database.from_dict({"R": [(1, 1), (9, 9)]})
        assert not wcwa_leq(less_informative, new_value_fact)
        assert owa_leq(less_informative, new_value_fact)


class TestOrderingHelpers:
    def test_ordering_lookup(self):
        assert ordering("owa") is OWA_ORDERING
        assert ordering("cwa") is CWA_ORDERING
        assert ordering("wcwa") is WCWA_ORDERING
        with pytest.raises(ValueError):
            ordering("other")

    def test_lower_and_upper_bounds(self, less_informative, more_informative):
        another = Database.from_dict({"R": [(1, 3)]})
        assert OWA_ORDERING.is_lower_bound(less_informative, [more_informative, another])
        assert not OWA_ORDERING.is_upper_bound(less_informative, [more_informative])

    def test_greatest_lower_bound_check(self, less_informative, more_informative):
        another = Database.from_dict({"R": [(1, 3)]})
        weaker = Database.from_dict({"R": [(Null("a"), Null("b"))]})
        assert OWA_ORDERING.is_greatest_lower_bound(
            less_informative, [more_informative, another], competitors=[weaker]
        )
        assert not OWA_ORDERING.is_greatest_lower_bound(
            weaker, [more_informative, another], competitors=[less_informative]
        )

    def test_relation_leq(self):
        smaller = Relation.create("A", [(1, Null("x"))])
        larger = Relation.create("A", [(1, 2), (3, 4)])
        assert relation_leq(smaller, larger, "owa")
        assert not relation_leq(smaller, larger, "cwa")
        with pytest.raises(ValueError):
            relation_leq(smaller, Relation.create("A", [(1,)]), "owa")

    def test_semantic_definition_agrees_with_hom_characterisation(self):
        """x ⊑ y ⇔ [[y]] ⊆ [[x]], cross-checked over finite CWA worlds."""
        left = Database.from_dict({"R": [(1, Null("x"))]})
        candidates = [
            Database.from_dict({"R": [(1, 2)]}),
            Database.from_dict({"R": [(1, Null("y"))]}),
            Database.from_dict({"R": [(2, 2)]}),
        ]
        shared_domain = default_domain(left, extra_constants=2, constants=[2])

        def worlds_of(db):
            return cwa_worlds(db, domain=shared_domain)

        for right in candidates:
            assert cwa_leq(left, right) == semantic_leq(left, right, worlds_of)
