"""Unit tests for the user-facing certain-answer API."""

import pytest

from repro.algebra import parse_ra
from repro.core import (
    certain_answer_knowledge,
    certain_answer_object,
    certain_answers,
    certain_answers_intersection,
    certain_answers_naive,
    explain_method,
    possible_answers,
)
from repro.datamodel import Database, Null
from repro.logic import FOQuery, atom, exists, var
from repro.semantics import cwa_worlds


@pytest.fixture
def db():
    return Database.from_dict(
        {"R": [(1, Null("x")), (2, 3)], "S": [(3,), (Null("y"),)]}
    )


class TestCertainAnswersNaive:
    def test_projection(self, db):
        query = parse_ra("project[#0](R)")
        assert certain_answers_naive(query, db).rows == frozenset({(1,), (2,)})

    def test_fo_query_supported(self, db):
        x, y = var("x"), var("y")
        query = FOQuery(exists(y, atom("R", x, y)), (x,))
        assert certain_answers_naive(query, db).rows == frozenset({(1,), (2,)})

    def test_object_answer_keeps_nulls(self, db):
        query = parse_ra("project[#1](R)")
        assert (Null("x"),) in certain_answer_object(query, db).rows
        assert (Null("x"),) not in certain_answers_naive(query, db).rows


class TestCertainAnswersIntersection:
    def test_matches_naive_for_positive_queries(self, db):
        query = parse_ra("project[#0](select[#1 = 3](R))")
        naive = certain_answers_naive(query, db)
        enumerated = certain_answers_intersection(query, db, semantics="cwa")
        assert naive.rows == enumerated.rows

    def test_detects_overclaim_of_naive_for_difference(self):
        database = Database.from_dict({"R": [(1, Null("a"))], "S": [(1, Null("b"))]})
        query = parse_ra("project[#0](diff(R, S))")
        assert certain_answers_naive(query, database).rows == frozenset({(1,)})
        assert certain_answers_intersection(query, database, semantics="cwa").rows == frozenset()


class TestAutoDispatch:
    def test_auto_uses_naive_for_positive(self, db):
        query = parse_ra("project[#0](R)")
        assert certain_answers(query, db, semantics="cwa").rows == frozenset({(1,), (2,)})
        assert explain_method(query, "cwa").applies

    def test_auto_falls_back_to_enumeration_for_difference(self):
        database = Database.from_dict({"R": [(1, Null("a"))], "S": [(1, Null("b"))]})
        query = parse_ra("project[#0](diff(R, S))")
        assert certain_answers(query, database, semantics="cwa").rows == frozenset()
        assert not explain_method(query, "cwa").applies

    def test_explicit_methods(self, db):
        query = parse_ra("project[#0](R)")
        assert certain_answers(query, db, method="naive").rows == frozenset({(1,), (2,)})
        assert certain_answers(query, db, method="enumeration", semantics="cwa").rows == frozenset(
            {(1,), (2,)}
        )
        with pytest.raises(ValueError):
            certain_answers(query, db, method="bogus")

    def test_division_auto_under_cwa(self):
        database = Database.from_dict(
            {"Enroll": [("alice", "db"), ("alice", "os"), ("bob", "db")], "Courses": [("db",), ("os",)]}
        )
        query = parse_ra("divide(Enroll, Courses)")
        assert certain_answers(query, database, semantics="cwa").rows == frozenset({("alice",)})


class TestPossibleAnswers:
    def test_possible_superset_of_certain(self, db):
        query = parse_ra("project[#1](R)")
        certain = certain_answers_intersection(query, db, semantics="cwa")
        possible = possible_answers(query, db, semantics="cwa")
        assert certain.rows <= possible.rows
        assert (3,) in possible.rows


class TestKnowledgeAnswer:
    def test_knowledge_formula_holds_in_every_answer_world(self, db):
        query = parse_ra("project[#0](R)")
        formula = certain_answer_knowledge(query, db, semantics="cwa")
        for world in cwa_worlds(db):
            answer_db = Database.from_relations([query.evaluate(world).rename("Answer")])
            assert formula.holds(answer_db)
