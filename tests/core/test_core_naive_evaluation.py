"""Unit tests for naive-evaluation applicability and the semantic criteria."""

import pytest

from repro.algebra import parse_ra
from repro.core import (
    is_generic_on,
    is_monotone_on,
    is_preserved_under_homomorphisms,
    naive_evaluation_applies,
)
from repro.datamodel import Database, Null, Relation
from repro.homomorphisms import all_homomorphisms
from repro.logic import FOQuery, Implies, Not, atom, conj, exists, forall, ra_to_calculus, var
from repro.workloads import random_database


X, Y = var("x"), var("y")


class TestSyntacticApplicability:
    def test_positive_ra_applies_under_both_semantics(self):
        query = parse_ra("project[#0](select[#1 = 'a'](R))")
        assert naive_evaluation_applies(query, "owa").applies
        assert naive_evaluation_applies(query, "cwa").applies

    def test_division_applies_only_under_cwa(self):
        query = parse_ra("divide(R, S)")
        assert naive_evaluation_applies(query, "cwa").applies
        assert not naive_evaluation_applies(query, "owa").applies

    def test_difference_never_guaranteed(self):
        query = parse_ra("diff(R, S)")
        assert not naive_evaluation_applies(query, "cwa").applies
        assert not naive_evaluation_applies(query, "owa").applies

    def test_fo_queries(self):
        ucq = FOQuery(exists((X, Y), atom("R", X, Y)))
        guarded = FOQuery(forall((X, Y), Implies(atom("R", X, Y), atom("S", X))))
        negated = FOQuery(Not(exists((X, Y), atom("R", X, Y))))
        assert naive_evaluation_applies(ucq, "owa").applies
        assert naive_evaluation_applies(ucq, "cwa").applies
        assert naive_evaluation_applies(guarded, "cwa").applies
        assert not naive_evaluation_applies(guarded, "owa").applies
        assert not naive_evaluation_applies(negated, "cwa").applies

    def test_verdict_carries_reason_and_fragment(self):
        verdict = naive_evaluation_applies(parse_ra("divide(R, S)"), "cwa")
        assert verdict.fragment == "ra_cwa"
        assert "CWA" in verdict.reason
        assert bool(verdict) is True

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            naive_evaluation_applies(parse_ra("R"), "nonsense")
        with pytest.raises(TypeError):
            naive_evaluation_applies("not a query", "cwa")  # type: ignore[arg-type]


class TestMonotonicity:
    def _ordered_pairs(self):
        smaller = Database.from_dict({"R": [(1, Null("x"))], "S": [(Null("x"),)]})
        larger = Database.from_dict({"R": [(1, 5)], "S": [(5,)]})
        even_larger = larger.add_facts([("R", (7, 7))])
        return [(smaller, larger), (larger, even_larger), (smaller, even_larger)]

    def test_positive_query_is_monotone_owa(self):
        query = parse_ra("project[#0](R)")
        assert is_monotone_on(query, self._ordered_pairs(), input_semantics="owa")

    def test_difference_not_monotone_owa(self):
        query = parse_ra("diff(project[#0](R), S)")
        smaller = Database.from_relations(
            [
                Relation.create("R", [(1, 2)]),
                Relation.create("S", [], arity=1),
            ]
        )
        larger = smaller.add_facts([("S", (1,))])
        assert not is_monotone_on(query, [(smaller, larger)], input_semantics="owa")

    def test_unordered_pairs_are_skipped(self):
        query = parse_ra("R")
        left = Database.from_dict({"R": [(1, 2)], "S": [(1,)]})
        right = Database.from_dict({"R": [(3, 4)], "S": [(2,)]})
        assert is_monotone_on(query, [(left, right)], input_semantics="owa")


class TestPreservation:
    def _hom_pairs(self, strong_onto=False):
        pairs = []
        for seed in range(4):
            source = random_database(num_nulls=2, rows_per_relation=3, seed=seed)
            target = random_database(num_nulls=0, rows_per_relation=3, seed=seed + 10)
            for hom in all_homomorphisms(source, target, strong_onto=strong_onto, limit=3):
                pairs.append((source, target, hom))
            pairs.append((source, source.map_values(lambda v: v), _identity_hom()))
        return pairs

    def test_ucq_preserved_under_homomorphisms(self):
        query = FOQuery(exists((X, Y), conj(atom("R0", X, Y), atom("R1", Y, X))))
        assert is_preserved_under_homomorphisms(query, self._hom_pairs())

    def test_negated_query_not_preserved(self):
        query = FOQuery(Not(exists((X, Y), atom("R0", X, Y))))
        source = Database.from_relations(
            [
                Relation.create("R0", [], arity=2),
                Relation.create("R1", [(1, 1)]),
            ]
        )
        target = source.add_facts([("R0", (1, 1))])
        pairs = [(source, target, _identity_hom())]
        assert not is_preserved_under_homomorphisms(query, pairs)

    def test_boolean_query_required(self):
        query = FOQuery(atom("R0", X, Y), (X, Y))
        with pytest.raises(ValueError):
            is_preserved_under_homomorphisms(query, [])


class TestGenericity:
    def test_relational_query_is_generic(self):
        db = random_database(num_nulls=1, seed=5)
        query = parse_ra("project[#0](R0)")

        def swap(value):
            mapping = {"a0": "a1", "a1": "a0"}
            return mapping.get(value, value)

        assert is_generic_on(query, db, [swap])

    def test_constant_mentioning_query_is_not_generic_for_that_constant(self):
        db = Database.from_dict({"R0": [("a0", "a1")]})
        query = parse_ra("select[#0 = 'a0'](R0)")

        def swap(value):
            mapping = {"a0": "a1", "a1": "a0"}
            return mapping.get(value, value)

        assert not is_generic_on(query, db, [swap])


def _identity_hom():
    from repro.homomorphisms import Homomorphism

    return Homomorphism({})
