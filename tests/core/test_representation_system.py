"""Unit tests for the abstract representation-system framework (Section 5.1–5.2)."""

import pytest

from repro.core import (
    cwa_representation_system,
    owa_representation_system,
    relational_domain,
)
from repro.datamodel import Database, Null, Valuation
from repro.logic import delta_cwa, delta_owa
from repro.semantics import cwa_worlds, default_domain, owa_worlds


@pytest.fixture
def incomplete_db():
    return Database.from_dict({"R": [(1, Null("x")), (Null("x"), 2)]})


@pytest.fixture
def complete_db():
    return Database.from_dict({"R": [(1, 3), (3, 2)]})


class TestRelationalDomain:
    def test_is_complete(self, incomplete_db, complete_db):
        domain = relational_domain("cwa")
        assert not domain.is_complete(incomplete_db)
        assert domain.is_complete(complete_db)

    def test_semantics_enumeration(self, incomplete_db):
        domain = relational_domain("cwa")
        worlds = domain.semantics(incomplete_db)
        assert worlds
        assert all(world.is_complete() for world in worlds)

    def test_contains_is_exact_membership(self, incomplete_db, complete_db):
        cwa = relational_domain("cwa")
        owa = relational_domain("owa")
        assert cwa.contains(incomplete_db, complete_db)
        bigger = complete_db.add_facts([("R", (9, 9))])
        assert not cwa.contains(incomplete_db, bigger)
        assert owa.contains(incomplete_db, bigger)

    def test_condition_1_complete_object_denotes_itself(self, complete_db):
        for name in ("owa", "cwa"):
            domain = relational_domain(name)
            assert domain.condition_reflexivity(complete_db)

    def test_condition_2_represented_objects_are_above(self, incomplete_db):
        for name in ("owa", "cwa"):
            domain = relational_domain(name)
            for world in domain.semantics(incomplete_db):
                assert domain.condition_dominance(incomplete_db, world)

    def test_ordering_exposed(self, incomplete_db, complete_db):
        domain = relational_domain("cwa")
        assert domain.less_equal(incomplete_db, complete_db)
        assert not domain.less_equal(complete_db, incomplete_db)


class TestOwaRepresentationSystem:
    def test_delta_formula_is_in_fragment(self, incomplete_db):
        system = owa_representation_system()
        assert system.in_fragment(system.delta(incomplete_db))

    def test_delta_is_delta_owa(self, incomplete_db):
        system = owa_representation_system()
        assert str(system.delta(incomplete_db)) == str(delta_owa(incomplete_db))

    def test_delta_defines_semantics(self, incomplete_db):
        system = owa_representation_system()
        domain = default_domain(incomplete_db, extra_constants=1)
        pool = list(owa_worlds(incomplete_db, domain, max_extra_facts=1))
        pool.append(Database.from_dict({"R": [(5, 5)]}))
        assert system.delta_defines_semantics(incomplete_db, pool)

    def test_satisfaction_upward_closed(self, incomplete_db):
        system = owa_representation_system()
        more = Valuation({Null("x"): 9}).apply(incomplete_db)
        formulas = [system.delta(incomplete_db)]
        assert system.satisfaction_is_upward_closed(incomplete_db, more, formulas)

    def test_models_of_delta_are_upward_cone(self, incomplete_db):
        """Mod(δ_x) = ↑x over a pool of incomplete and complete candidates."""
        system = owa_representation_system()
        candidates = [
            incomplete_db,
            Valuation({Null("x"): 9}).apply(incomplete_db),
            Valuation({Null("x"): 9}).apply(incomplete_db).add_facts([("R", (7, 7))]),
            Database.from_dict({"R": [(1, 4)]}),
            Database.from_dict({"R": [(1, Null("z")), (Null("z"), 2), (0, 0)]}),
        ]
        assert system.models_of_delta_are_upward_cone(incomplete_db, candidates)


class TestCwaRepresentationSystem:
    def test_delta_formula_is_in_fragment(self, incomplete_db):
        system = cwa_representation_system()
        assert system.in_fragment(system.delta(incomplete_db))

    def test_delta_is_delta_cwa(self, incomplete_db):
        system = cwa_representation_system()
        assert str(system.delta(incomplete_db)) == str(delta_cwa(incomplete_db))

    def test_delta_defines_semantics(self, incomplete_db):
        system = cwa_representation_system()
        domain = default_domain(incomplete_db, extra_constants=1)
        pool = list(owa_worlds(incomplete_db, domain, max_extra_facts=1))
        pool.append(Database.from_dict({"R": [(5, 5)]}))
        assert system.delta_defines_semantics(incomplete_db, pool)

    def test_models_of_delta_are_upward_cone(self, incomplete_db):
        system = cwa_representation_system()
        candidates = [
            incomplete_db,
            Valuation({Null("x"): 9}).apply(incomplete_db),
            # adding facts leaves the CWA cone
            Valuation({Null("x"): 9}).apply(incomplete_db).add_facts([("R", (7, 7))]),
            Database.from_dict({"R": [(1, 4)]}),
        ]
        assert system.models_of_delta_are_upward_cone(incomplete_db, candidates)

    def test_ucq_delta_would_not_capture_cwa(self, incomplete_db):
        """Sanity: the OWA δ-formula over-approximates the CWA semantics."""
        owa_delta = delta_owa(incomplete_db)
        bigger = Valuation({Null("x"): 9}).apply(incomplete_db).add_facts([("R", (7, 7))])
        cwa_domain = relational_domain("cwa")
        assert owa_delta.holds(bigger)
        assert not cwa_domain.contains(incomplete_db, bigger)
