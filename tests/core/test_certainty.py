"""Unit tests for certainO / certainK (Section 5.3) and the intersection critique."""

import pytest

from repro.algebra import parse_ra
from repro.core import (
    CWA_ORDERING,
    OWA_ORDERING,
    certain_answer_object,
    certain_knowledge_formula,
    certain_object_owa,
    intersection_object,
    is_certain_knowledge,
    is_certain_object,
    is_lower_bound,
    knowledge_includes,
    product_object,
    theory_of,
)
from repro.homomorphisms import exists_homomorphism, is_core
from repro.datamodel import Database, Null, Relation
from repro.logic import atom, delta_cwa, delta_owa, exists, var
from repro.semantics import cwa_worlds, default_domain


@pytest.fixture
def paper_r():
    """R = {(1,2), (2,⊥)} from Section 6."""
    return Database.from_dict({"R": [(1, 2), (2, Null("x"))]})


def answer_databases(query, database):
    """Q(D') for every CWA world D', wrapped back into one-relation databases."""
    return [
        Database.from_relations([query.evaluate(world).rename("__answer__")])
        for world in cwa_worlds(database)
    ]


class TestCertainObject:
    def test_naive_answer_is_owa_glb(self, paper_r):
        query = parse_ra("R")
        answers = answer_databases(query, paper_r)
        naive_object = Database.from_relations(
            [certain_answer_object(query, paper_r).rename("__answer__")]
        )
        intersection = intersection_object(answers)
        assert is_certain_object(naive_object, answers, OWA_ORDERING, competitors=[intersection])

    def test_naive_answer_is_cwa_glb(self, paper_r):
        query = parse_ra("R")
        answers = answer_databases(query, paper_r)
        naive_object = Database.from_relations(
            [certain_answer_object(query, paper_r).rename("__answer__")]
        )
        assert is_certain_object(naive_object, answers, CWA_ORDERING, competitors=[])

    def test_intersection_is_not_even_a_cwa_lower_bound(self, paper_r):
        """The paper's critique: {(1,2)} is not ⊑_cwa below any Q(R'), R' ∈ [[R]]_cwa."""
        query = parse_ra("R")
        answers = answer_databases(query, paper_r)
        intersection = intersection_object(answers)
        assert intersection is not None
        assert not is_lower_bound(intersection, answers, CWA_ORDERING)
        assert not any(CWA_ORDERING(intersection, answer) for answer in answers)

    def test_intersection_is_an_owa_lower_bound_but_not_greatest(self, paper_r):
        query = parse_ra("R")
        answers = answer_databases(query, paper_r)
        intersection = intersection_object(answers)
        naive_object = Database.from_relations(
            [certain_answer_object(query, paper_r).rename("__answer__")]
        )
        assert is_lower_bound(intersection, answers, OWA_ORDERING)
        assert not is_certain_object(
            intersection, answers, OWA_ORDERING, competitors=[naive_object]
        )

    def test_intersection_object_requires_common_schema(self):
        left = Database.from_dict({"R": [(1,)]})
        right = Database.from_dict({"S": [(1,)]})
        with pytest.raises(ValueError):
            intersection_object([left, right])
        assert intersection_object([]) is None

    def test_certain_object_of_singleton_is_itself(self, paper_r):
        assert is_certain_object(paper_r, [paper_r], CWA_ORDERING, competitors=[])


class TestProductObject:
    """The categorical product and the core-minimized certainO glue."""

    def test_product_projections_are_homomorphisms(self):
        left = Database.from_dict({"R": [(1, 2), (1, Null("x"))]})
        right = Database.from_dict({"R": [(1, 2), (3, 2)]})
        product = product_object(left, right)
        assert is_lower_bound(product, [left, right], OWA_ORDERING)

    def test_product_keeps_only_agreeing_constants(self):
        left = Database.from_dict({"R": [(1, 2)]})
        right = Database.from_dict({"R": [(1, 3)]})
        product = product_object(left, right)
        (row,) = product["R"].rows
        assert row[0] == 1  # both sides agree on the constant
        assert row[1] != 2 and row[1] != 3  # disagreeing pair became a null

    def test_product_requires_common_schema(self):
        with pytest.raises(ValueError):
            product_object(
                Database.from_dict({"R": [(1,)]}), Database.from_dict({"S": [(1,)]})
            )

    def test_certain_object_owa_is_the_glb(self):
        # Two instances with a common certain part: the glb must be exactly
        # that part (up to homomorphic equivalence), beating the weaker
        # fact-wise intersection competitor.
        left = Database.from_dict({"R": [(1, 2), (5, 6)]})
        right = Database.from_dict({"R": [(1, 2), (7, 8)]})
        glb = certain_object_owa([left, right])
        intersection = intersection_object([left, right])
        assert is_certain_object(glb, [left, right], OWA_ORDERING, competitors=[intersection])
        assert is_core(glb)

    def test_certain_object_owa_collapses_redundant_pairs(self):
        # The raw product of these two 2-fact instances has 4 facts; the
        # core collapses the homomorphically redundant pair rows.
        left = Database.from_dict({"R": [(1, Null("x")), (1, 2)]})
        right = Database.from_dict({"R": [(1, 2), (1, 9)]})
        glb = certain_object_owa([left, right])
        raw = product_object(left, right)
        assert glb.size() <= raw.size()
        assert exists_homomorphism(glb, raw) and exists_homomorphism(raw, glb)
        assert is_certain_object(glb, [left, right], OWA_ORDERING)

    def test_certain_object_owa_of_singleton_is_its_core(self):
        redundant = Database.from_dict({"R": [(1, 2), (1, Null("x"))]})
        glb = certain_object_owa([redundant])
        assert glb["R"].rows == frozenset({(1, 2)})

    def test_certain_object_owa_rejects_empty_family(self):
        with pytest.raises(ValueError):
            certain_object_owa([])

    def test_greedy_algorithm_switch_agrees(self):
        left = Database.from_dict({"R": [(1, Null("x")), (3, 4)]})
        right = Database.from_dict({"R": [(1, 5), (3, 4)]})
        block = certain_object_owa([left, right])
        greedy = certain_object_owa([left, right], algorithm="greedy")
        assert block.size() == greedy.size()
        assert exists_homomorphism(block, greedy) and exists_homomorphism(greedy, block)


class TestCertainKnowledge:
    def test_certain_knowledge_of_semantics_is_delta(self, paper_r):
        for semantics, delta_fn in (("owa", delta_owa), ("cwa", delta_cwa)):
            formula = certain_knowledge_formula(paper_r, semantics)
            assert str(formula) == str(delta_fn(paper_r))

    def test_delta_holds_in_every_represented_world(self, paper_r):
        formula = certain_knowledge_formula(paper_r, "cwa")
        worlds = list(cwa_worlds(paper_r))
        assert knowledge_includes(formula, worlds)

    def test_is_certain_knowledge_against_weaker_competitors(self, paper_r):
        formula = certain_knowledge_formula(paper_r, "cwa")
        worlds = list(cwa_worlds(paper_r))
        # A weaker formula that is also true everywhere must be implied on the pool.
        weaker = exists(var("x"), atom("R", 1, var("x")))
        candidates = worlds + [Database.from_dict({"R": [(9, 9)]})]
        assert is_certain_knowledge(formula, worlds, candidates, competitors=[weaker])

    def test_is_certain_knowledge_rejects_unsound_formula(self, paper_r):
        unsound = exists(var("x"), atom("R", 3, var("x")))
        worlds = list(cwa_worlds(paper_r))
        assert not is_certain_knowledge(unsound, worlds, worlds)

    def test_theory_of(self, paper_r):
        worlds = list(cwa_worlds(paper_r))
        true_everywhere = exists(var("x"), atom("R", 1, var("x")))
        false_somewhere = exists(var("x"), atom("R", 3, var("x")))
        theory = theory_of(worlds, [true_everywhere, false_somewhere])
        assert theory == [true_everywhere]
