"""Unit tests for sound (no-false-positive) evaluation of full relational algebra."""

import pytest

from repro.algebra import parse_ra
from repro.core import (
    evaluate_pair,
    possible_answer_bound,
    rows_unifiable,
    sound_certain_answers,
    values_unifiable,
)
from repro.core.answers import certain_answers_intersection, possible_answers
from repro.datamodel import Database, Null
from repro.workloads import random_database, random_full_ra_query


class TestUnification:
    def test_constants_unify_only_when_equal(self):
        assert values_unifiable([(1, 1)])
        assert not values_unifiable([(1, 2)])

    def test_null_unifies_with_constant(self):
        assert values_unifiable([(Null("x"), 1)])
        assert values_unifiable([(1, Null("x"))])

    def test_marked_null_consistency(self):
        x = Null("x")
        assert not values_unifiable([(x, 1), (x, 2)])
        assert values_unifiable([(x, 1), (x, 1)])

    def test_null_to_null_chains(self):
        x, y = Null("x"), Null("y")
        assert values_unifiable([(x, y), (y, 1)])
        assert not values_unifiable([(x, y), (x, 1), (y, 2)])

    def test_rows_unifiable(self):
        x = Null("x")
        assert rows_unifiable((1, x), (1, 2))
        assert not rows_unifiable((1, x, x), (1, 2, 3))
        assert not rows_unifiable((1,), (1, 2))


class TestSoundness:
    """Every tuple returned by sound evaluation must be a true certain answer."""

    def assert_sound(self, query_text, database):
        query = parse_ra(query_text)
        sound = sound_certain_answers(query, database)
        exact = certain_answers_intersection(query, database, semantics="cwa")
        assert sound.rows <= exact.rows

    def test_unpaid_orders_query(self):
        database = Database.from_dict(
            {"Orders": [("oid1",), ("oid2",)], "Pay": [(Null("o"),)]}
        )
        self.assert_sound("diff(Orders, Pay)", database)

    def test_difference_recovers_certain_answer_blocked_by_constants(self):
        database = Database.from_dict({"R": [(2, 3), (1, 2)], "S": [(Null("s"), 2)]})
        query = parse_ra("diff(R, S)")
        sound = sound_certain_answers(query, database)
        exact = certain_answers_intersection(query, database, semantics="cwa")
        # (2,3) can never be produced by S (second component is 2), so it is
        # certain and the unification-based check keeps it; (1,2) is not.
        assert sound.rows == exact.rows == frozenset({(2, 3)})

    def test_difference_uses_marked_null_consistency(self):
        repeated = Null("s")
        database = Database.from_dict({"R": [(1, 2)], "S": [(repeated, repeated)]})
        query = parse_ra("diff(R, S)")
        sound = sound_certain_answers(query, database)
        exact = certain_answers_intersection(query, database, semantics="cwa")
        # S only ever contains tuples of the form (c, c), never (1, 2): the
        # marked-null unification check sees the conflict and keeps (1, 2).
        assert sound.rows == exact.rows == frozenset({(1, 2)})

    def test_selection_and_projection(self):
        database = Database.from_dict({"R": [(1, Null("x")), (2, 3)]})
        self.assert_sound("project[#0](select[#1 = 3](R))", database)

    def test_division(self):
        database = Database.from_dict(
            {"R": [("a", 1), ("a", 2), ("b", Null("x"))], "S": [(1,), (2,)]}
        )
        self.assert_sound("divide(R, S)", database)

    def test_random_full_ra_queries_are_sound(self):
        for seed in range(8):
            database = random_database(num_nulls=2, rows_per_relation=3, seed=seed)
            query = random_full_ra_query(database.schema, seed=seed)
            sound = sound_certain_answers(query, database)
            exact = certain_answers_intersection(query, database, semantics="cwa")
            assert sound.rows <= exact.rows

    def test_completeness_on_complete_databases(self):
        database = Database.from_dict({"R": [(1,), (2,)], "S": [(2,)]})
        query = parse_ra("diff(R, S)")
        assert sound_certain_answers(query, database).rows == frozenset({(1,)})


class TestUpperBound:
    def test_upper_bound_contains_possible_answers(self):
        database = Database.from_dict({"R": [(1, Null("x")), (2, 3)], "S": [(3,)]})
        query = parse_ra("project[#1](diff(R, product(S, S)))")
        upper = possible_answer_bound(query, database)
        possible = possible_answers(query, database, semantics="cwa")
        # every possible answer must be an instantiation of some upper row
        for row in possible.rows:
            assert any(rows_unifiable(row, candidate) for candidate in upper.rows)

    def test_pair_structure(self):
        database = Database.from_dict({"R": [(1, Null("x"))]})
        pair = evaluate_pair(parse_ra("R"), database)
        assert pair.lower == pair.upper

    def test_selection_splits_lower_and_upper(self):
        database = Database.from_dict({"R": [(1, Null("x")), (2, 3)]})
        pair = evaluate_pair(parse_ra("select[#1 = 3](R)"), database)
        assert pair.lower.rows == frozenset({(2, 3)})
        assert pair.upper.rows == frozenset({(1, Null("x")), (2, 3)})
