"""Unit tests for relation and database schemas."""

import pytest

from repro.datamodel import DatabaseSchema, RelationSchema


class TestRelationSchema:
    def test_named_attributes(self):
        schema = RelationSchema("Order", ("o_id", "product"))
        assert schema.arity == 2
        assert schema.attributes == ("o_id", "product")

    def test_with_arity_generates_positional_names(self):
        schema = RelationSchema.with_arity("R", 3)
        assert schema.attributes == ("#0", "#1", "#2")

    def test_duplicate_attribute_names_rejected(self):
        with pytest.raises(ValueError):
            RelationSchema("R", ("a", "a"))

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            RelationSchema("", ("a",))

    def test_index_of_by_name_and_position(self):
        schema = RelationSchema("R", ("a", "b", "c"))
        assert schema.index_of("b") == 1
        assert schema.index_of(2) == 2

    def test_index_of_unknown_attribute(self):
        schema = RelationSchema("R", ("a",))
        with pytest.raises(KeyError):
            schema.index_of("z")
        with pytest.raises(KeyError):
            schema.index_of(5)

    def test_rename_keeps_attributes(self):
        schema = RelationSchema("R", ("a", "b")).rename("S")
        assert schema.name == "S"
        assert schema.attributes == ("a", "b")

    def test_project_reorders_attributes(self):
        schema = RelationSchema("R", ("a", "b", "c")).project(["c", "a"])
        assert schema.attributes == ("c", "a")

    def test_zero_arity_schema(self):
        schema = RelationSchema.with_arity("B", 0)
        assert schema.arity == 0

    def test_iteration_and_str(self):
        schema = RelationSchema("R", ("a", "b"))
        assert list(schema) == ["a", "b"]
        assert str(schema) == "R(a, b)"


class TestDatabaseSchema:
    def test_from_arities(self):
        schema = DatabaseSchema.from_arities({"R": 2, "S": 1})
        assert schema["R"].arity == 2
        assert schema.arity("S") == 1
        assert set(schema.names()) == {"R", "S"}

    def test_from_attributes(self):
        schema = DatabaseSchema.from_attributes({"Order": ("o_id", "product")})
        assert schema["Order"].attributes == ("o_id", "product")

    def test_unknown_relation_raises(self):
        schema = DatabaseSchema.from_arities({"R": 1})
        with pytest.raises(KeyError):
            schema["Missing"]

    def test_conflicting_redeclaration_rejected(self):
        schema = DatabaseSchema.from_arities({"R": 1})
        with pytest.raises(ValueError):
            schema.add(RelationSchema.with_arity("R", 2))

    def test_identical_redeclaration_is_noop(self):
        schema = DatabaseSchema.from_arities({"R": 1})
        schema.add(RelationSchema.with_arity("R", 1))
        assert len(schema) == 1

    def test_contains_and_len(self):
        schema = DatabaseSchema.from_arities({"R": 1, "S": 2})
        assert "R" in schema
        assert "T" not in schema
        assert len(schema) == 2

    def test_equality_and_hash(self):
        first = DatabaseSchema.from_arities({"R": 2})
        second = DatabaseSchema.from_arities({"R": 2})
        assert first == second
        assert hash(first) == hash(second)

    def test_restrict(self):
        schema = DatabaseSchema.from_arities({"R": 1, "S": 2, "T": 3})
        restricted = schema.restrict(["R", "T"])
        assert set(restricted.names()) == {"R", "T"}

    def test_merge(self):
        left = DatabaseSchema.from_arities({"R": 1})
        right = DatabaseSchema.from_arities({"S": 2})
        merged = left.merge(right)
        assert set(merged.names()) == {"R", "S"}

    def test_merge_conflict(self):
        left = DatabaseSchema.from_arities({"R": 1})
        right = DatabaseSchema.from_arities({"R": 2})
        with pytest.raises(ValueError):
            left.merge(right)
