"""Unit tests for conditions and conditional tables (c-tables)."""

import pytest

from repro.datamodel import (
    FALSE,
    TRUE,
    And,
    ConditionalRow,
    ConditionalTable,
    Eq,
    Neq,
    Not,
    Null,
    Or,
    Relation,
    Valuation,
    conjunction,
    disjunction,
    row_equality,
)


class TestConditions:
    def test_eq_on_constants_simplifies(self):
        assert Eq(1, 1).simplify() is TRUE
        assert Eq(1, 2).simplify() is FALSE

    def test_eq_on_same_null_simplifies_to_true(self):
        null = Null("x")
        assert Eq(null, null).simplify() is TRUE

    def test_eq_evaluation_under_valuation(self):
        null = Null("x")
        assert Eq(null, 1).evaluate(Valuation({null: 1}))
        assert not Eq(null, 1).evaluate(Valuation({null: 2}))

    def test_neq_is_negated_equality(self):
        null = Null("x")
        cond = Neq(null, 1)
        assert not cond.evaluate(Valuation({null: 1}))
        assert cond.evaluate(Valuation({null: 2}))

    def test_connective_simplification(self):
        null = Null("x")
        assert (Eq(null, 1) & TRUE) == Eq(null, 1)
        assert (Eq(null, 1) & FALSE) is FALSE
        assert (Eq(null, 1) | TRUE) is TRUE
        assert (Eq(null, 1) | FALSE) == Eq(null, 1)
        assert (~TRUE) is FALSE
        assert (~FALSE) is TRUE

    def test_double_negation(self):
        null = Null("x")
        assert Not(Not(Eq(null, 1))).simplify() == Eq(null, 1)

    def test_and_or_evaluation(self):
        x, y = Null("x"), Null("y")
        cond = And((Eq(x, 1), Or((Eq(y, 2), Eq(y, 3)))))
        assert cond.evaluate(Valuation({x: 1, y: 3}))
        assert not cond.evaluate(Valuation({x: 2, y: 3}))
        assert not cond.evaluate(Valuation({x: 1, y: 4}))

    def test_nulls_collection(self):
        x, y = Null("x"), Null("y")
        cond = And((Eq(x, 1), Neq(y, x)))
        assert cond.nulls() == {x, y}

    def test_substitute(self):
        x, y = Null("x"), Null("y")
        cond = And((Eq(x, 1), Eq(y, 2)))
        partially = cond.substitute(Valuation({x: 1}))
        assert partially == Eq(y, 2)
        assert cond.substitute(Valuation({x: 3})) is FALSE

    def test_conjunction_disjunction_helpers(self):
        assert conjunction([]) is TRUE
        assert disjunction([]) is FALSE
        x = Null("x")
        assert conjunction([Eq(x, 1)]) == Eq(x, 1)

    def test_row_equality(self):
        x = Null("x")
        cond = row_equality((x, 2), (1, 2))
        assert cond == Eq(x, 1)
        with pytest.raises(ValueError):
            row_equality((1,), (1, 2))

    def test_str_representations(self):
        x = Null("x")
        assert "=" in str(Eq(x, 1))
        assert "≠" in str(Neq(x, 1))
        assert str(TRUE) == "true"
        assert str(FALSE) == "false"


class TestConditionalTable:
    def test_paper_disjunction_example(self):
        """The Section 2 c-table representing 'either 0 or 1 is in the database'."""
        bot = Null("b")
        table = ConditionalTable.create(
            "C",
            [((1,), Eq(bot, 1)), ((0,), Eq(bot, 0))],
            global_condition=Or((Eq(bot, 0), Eq(bot, 1))),
        )
        worlds = table.possible_worlds(domain=[0, 1, 2, 3])
        assert worlds == {frozenset({(0,)}), frozenset({(1,)})}

    def test_from_relation_has_true_conditions(self):
        rel = Relation.create("R", [(1, 2), (3, Null("x"))])
        table = ConditionalTable.from_relation(rel)
        assert len(table) == 2
        assert all(row.condition is TRUE for row in table)

    def test_arity_checked(self):
        with pytest.raises(ValueError):
            ConditionalTable.create("C", [((1, 2), TRUE)], attributes=("a",))

    def test_empty_table_needs_attributes(self):
        with pytest.raises(ValueError):
            ConditionalTable.create("C", [])
        table = ConditionalTable.create("C", [], attributes=("a",))
        assert len(table) == 0

    def test_instantiate_respects_local_conditions(self):
        bot = Null("b")
        table = ConditionalTable.create("C", [((1,), Eq(bot, 1)), ((2,), TRUE)])
        world = table.instantiate(Valuation({bot: 5}))
        assert world is not None
        assert world.rows == frozenset({(2,)})

    def test_instantiate_respects_global_condition(self):
        bot = Null("b")
        table = ConditionalTable.create("C", [((1,), TRUE)], global_condition=Eq(bot, 0))
        assert table.instantiate(Valuation({bot: 1})) is None
        assert table.instantiate(Valuation({bot: 0})) is not None

    def test_certain_and_possible_rows(self):
        bot = Null("b")
        table = ConditionalTable.create(
            "C", [((1,), TRUE), ((2,), Eq(bot, 0))]
        )
        domain = [0, 1]
        assert table.certain_rows(domain) == {(1,)}
        assert table.possible_rows(domain) == {(1,), (2,)}

    def test_nulls_include_condition_only_nulls(self):
        bot = Null("b")
        table = ConditionalTable.create("C", [((1,), Eq(bot, 1))])
        assert bot in table.nulls()

    def test_simplified_drops_false_rows(self):
        table = ConditionalTable.create("C", [((1,), FALSE), ((2,), TRUE)])
        simplified = table.simplified()
        assert len(simplified) == 1
        assert simplified.rows[0].values == (2,)

    def test_simplified_false_global_empties_table(self):
        table = ConditionalTable.create("C", [((1,), TRUE)], global_condition=FALSE)
        assert len(table.simplified()) == 0

    def test_with_global_strengthens(self):
        bot = Null("b")
        table = ConditionalTable.create("C", [((1,), TRUE)])
        restricted = table.with_global(Eq(bot, 0))
        assert restricted.instantiate(Valuation({bot: 1})) is None

    def test_rename(self):
        table = ConditionalTable.create("C", [((1,), TRUE)]).rename("D")
        assert table.name == "D"

    def test_tuples_with_nulls_instantiated(self):
        bot = Null("b")
        table = ConditionalTable.create("C", [((bot, 1), TRUE)])
        worlds = table.possible_worlds([7])
        assert worlds == {frozenset({(7, 1)})}

    def test_str_and_repr(self):
        table = ConditionalTable.create("C", [((1,), TRUE)])
        assert "C" in str(table)
        assert "C" in repr(table)
