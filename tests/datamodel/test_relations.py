"""Unit tests for relations (naive tables / Codd tables)."""

import pytest

from repro.datamodel import Null, Relation, RelationSchema
from repro.datamodel.relations import drop_null_rows, rows_with_nulls


@pytest.fixture
def paper_naive_table():
    """The naive table R of Section 2: {(⊥,1,⊥'), (2,⊥',⊥)}."""
    bot, bot_prime = Null("b"), Null("bp")
    return Relation.create("R", [(bot, 1, bot_prime), (2, bot_prime, bot)])


@pytest.fixture
def paper_codd_table():
    """The Codd table S of Section 2: every null occurs once."""
    return Relation.create(
        "S", [(Null("1"), 1, Null("2")), (2, Null("3"), Null("4"))]
    )


class TestConstruction:
    def test_create_infers_arity(self):
        rel = Relation.create("R", [(1, 2)])
        assert rel.arity == 2

    def test_create_with_attributes(self):
        rel = Relation.create("R", [(1, 2)], attributes=("a", "b"))
        assert rel.attributes == ("a", "b")

    def test_empty_relation_needs_arity(self):
        with pytest.raises(ValueError):
            Relation.create("R", [])
        rel = Relation.create("R", [], arity=2)
        assert len(rel) == 0

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Relation.create("R", [(1, 2), (3,)])

    def test_none_rejected(self):
        with pytest.raises(TypeError):
            Relation.create("R", [(None, 1)])

    def test_set_semantics_deduplicates(self):
        rel = Relation.create("R", [(1, 2), (1, 2)])
        assert len(rel) == 1

    def test_schema_must_be_relation_schema(self):
        with pytest.raises(TypeError):
            Relation("R", [(1,)])  # type: ignore[arg-type]


class TestNullsAndConstants:
    def test_paper_example_constants_and_nulls(self, paper_naive_table, paper_codd_table):
        assert paper_naive_table.constants() == {1, 2}
        assert {n.name for n in paper_naive_table.nulls()} == {"b", "bp"}
        assert paper_codd_table.constants() == {1, 2}
        assert len(paper_codd_table.nulls()) == 4

    def test_naive_table_is_not_codd(self, paper_naive_table):
        assert not paper_naive_table.is_codd()

    def test_codd_table_is_codd(self, paper_codd_table):
        assert paper_codd_table.is_codd()

    def test_complete_relation(self):
        rel = Relation.create("R", [(1, 2), (3, 4)])
        assert rel.is_complete()
        assert rel.is_codd()

    def test_null_occurrences(self, paper_naive_table):
        counts = {n.name: c for n, c in paper_naive_table.null_occurrences().items()}
        assert counts == {"b": 2, "bp": 2}

    def test_complete_part_drops_null_rows(self):
        rel = Relation.create("R", [(1, 2), (1, Null("x"))])
        assert rel.complete_part().rows == frozenset({(1, 2)})

    def test_active_domain(self):
        null = Null("x")
        rel = Relation.create("R", [(1, null)])
        assert rel.active_domain() == {1, null}


class TestTransformations:
    def test_map_values(self):
        null = Null("x")
        rel = Relation.create("R", [(1, null)])
        mapped = rel.map_values(lambda v: 9 if v == null else v)
        assert mapped.rows == frozenset({(1, 9)})

    def test_union_difference_intersection(self):
        left = Relation.create("R", [(1,), (2,)])
        right = Relation.create("R", [(2,), (3,)])
        assert left.union(right).rows == frozenset({(1,), (2,), (3,)})
        assert left.difference(right).rows == frozenset({(1,)})
        assert left.intersection(right).rows == frozenset({(2,)})

    def test_incompatible_arities_rejected(self):
        left = Relation.create("R", [(1,)])
        right = Relation.create("S", [(1, 2)])
        with pytest.raises(ValueError):
            left.union(right)

    def test_add_rows_and_with_rows(self):
        rel = Relation.create("R", [(1,)])
        assert len(rel.add_rows([(2,), (3,)])) == 3
        assert rel.with_rows([(9,)]).rows == frozenset({(9,)})

    def test_rename(self):
        rel = Relation.create("R", [(1, 2)], attributes=("a", "b"))
        renamed = rel.rename("S", attributes=("x", "y"))
        assert renamed.name == "S"
        assert renamed.attributes == ("x", "y")
        with pytest.raises(ValueError):
            rel.rename("S", attributes=("only_one",))

    def test_equality_and_hash(self):
        first = Relation.create("R", [(1, 2)])
        second = Relation.create("R", [(1, 2)])
        assert first == second
        assert hash(first) == hash(second)

    def test_equality_distinguishes_nulls(self):
        first = Relation.create("R", [(Null("x"),)])
        second = Relation.create("R", [(Null("y"),)])
        assert first != second


class TestHelpers:
    def test_rows_with_nulls(self):
        rel = Relation.create("R", [(1, 2), (1, Null("x"))])
        assert list(rows_with_nulls(rel)) == [(1, Null("x"))]

    def test_drop_null_rows(self):
        rows = [(1, 2), (Null("x"), 2)]
        assert drop_null_rows(rows) == [(1, 2)]

    def test_to_table_renders_all_rows(self, paper_naive_table):
        rendered = paper_naive_table.to_table()
        assert "R:" in rendered
        assert rendered.count("|") > 0

    def test_sorted_rows_deterministic(self):
        rel = Relation.create("R", [(2,), (1,), (3,)])
        assert rel.sorted_rows() == sorted(rel.sorted_rows())

    def test_contains_and_iteration(self):
        rel = Relation.create("R", [(1, 2)])
        assert (1, 2) in rel
        assert list(rel) == [(1, 2)]
        assert bool(rel)
        assert not bool(Relation.create("R", [], arity=1))
