"""Unit tests for constants, marked nulls and constant pools."""

import pytest

from repro.datamodel import ConstantPool, Null, is_constant, is_null
from repro.datamodel.values import check_value, constants_in, nulls_in


class TestNull:
    def test_nulls_with_same_name_are_equal(self):
        assert Null("x") == Null("x")
        assert hash(Null("x")) == hash(Null("x"))

    def test_nulls_with_different_names_differ(self):
        assert Null("x") != Null("y")

    def test_null_never_equals_a_constant(self):
        assert Null("x") != "x"
        assert Null("1") != 1

    def test_fresh_nulls_are_pairwise_distinct(self):
        fresh = [Null.fresh() for _ in range(50)]
        assert len(set(fresh)) == 50

    def test_anonymous_nulls_get_generated_names(self):
        assert Null().name != Null().name

    def test_name_must_be_a_nonempty_string(self):
        with pytest.raises(TypeError):
            Null("")
        with pytest.raises(TypeError):
            Null(3)  # type: ignore[arg-type]

    def test_is_null_property_and_repr(self):
        null = Null("x")
        assert null.is_null
        assert "x" in repr(null)
        assert str(null).startswith("⊥")

    def test_nulls_usable_in_sets_and_dicts(self):
        mapping = {Null("a"): 1, Null("b"): 2}
        assert mapping[Null("a")] == 1
        assert Null("b") in mapping


class TestPredicates:
    def test_is_null(self):
        assert is_null(Null("x"))
        assert not is_null("x")
        assert not is_null(0)

    def test_is_constant_accepts_ordinary_values(self):
        assert is_constant("a")
        assert is_constant(17)
        assert is_constant((1, 2))

    def test_is_constant_rejects_null_and_none(self):
        assert not is_constant(Null("x"))
        assert not is_constant(None)

    def test_check_value_rejects_none(self):
        with pytest.raises(TypeError):
            check_value(None)

    def test_check_value_rejects_unhashable(self):
        with pytest.raises(TypeError):
            check_value([1, 2])

    def test_check_value_passes_through(self):
        assert check_value("a") == "a"
        null = Null("x")
        assert check_value(null) is null

    def test_nulls_in_and_constants_in(self):
        values = [1, Null("x"), "a", Null("x"), Null("y")]
        assert list(constants_in(values)) == [1, "a"]
        assert [n.name for n in nulls_in(values)] == ["x", "x", "y"]


class TestConstantPool:
    def test_fresh_constants_avoid_forbidden(self):
        pool = ConstantPool(forbidden=["c0", "c1"])
        first = pool.fresh()
        assert first not in ("c0", "c1")

    def test_fresh_constants_never_repeat(self):
        pool = ConstantPool()
        taken = pool.take(20)
        assert len(set(taken)) == 20

    def test_take_negative_raises(self):
        with pytest.raises(ValueError):
            ConstantPool().take(-1)

    def test_forbid_extends_the_exclusion_set(self):
        pool = ConstantPool(prefix="x")
        pool.forbid(["x0", "x1"])
        assert pool.fresh() == "x2"

    def test_iteration_yields_fresh_values(self):
        pool = ConstantPool()
        iterator = iter(pool)
        values = [next(iterator) for _ in range(5)]
        assert len(set(values)) == 5
