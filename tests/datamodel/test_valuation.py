"""Unit tests for valuations of nulls."""

import pytest

from repro.datamodel import (
    Database,
    Null,
    Relation,
    Valuation,
    count_valuations,
    enumerate_valuations,
    fresh_valuation,
)


class TestValuationBasics:
    def test_maps_nulls_and_fixes_constants(self):
        v = Valuation({Null("x"): 1})
        assert v(Null("x")) == 1
        assert v("a") == "a"
        assert v(5) == 5

    def test_uncovered_null_left_alone(self):
        v = Valuation({Null("x"): 1})
        assert v(Null("y")) == Null("y")

    def test_keys_must_be_nulls(self):
        with pytest.raises(TypeError):
            Valuation({"x": 1})  # type: ignore[dict-item]

    def test_values_must_be_constants(self):
        with pytest.raises(TypeError):
            Valuation({Null("x"): Null("y")})
        with pytest.raises(TypeError):
            Valuation({Null("x"): None})

    def test_mapping_protocol(self):
        v = Valuation({Null("x"): 1, Null("y"): 2})
        assert len(v) == 2
        assert Null("x") in v
        assert v[Null("y")] == 2
        assert v.get(Null("z")) is None
        assert set(v.domain()) == {Null("x"), Null("y")}
        assert v.image() == {1, 2}
        assert v.as_dict() == {Null("x"): 1, Null("y"): 2}

    def test_equality_and_hash(self):
        assert Valuation({Null("x"): 1}) == Valuation({Null("x"): 1})
        assert hash(Valuation({Null("x"): 1})) == hash(Valuation({Null("x"): 1}))

    def test_identity(self):
        v = Valuation.identity()
        assert len(v) == 0
        assert v(Null("x")) == Null("x")


class TestApplication:
    def test_apply_row(self):
        v = Valuation({Null("x"): 1})
        assert v.apply_row((Null("x"), "a", Null("x"))) == (1, "a", 1)

    def test_apply_relation_and_database(self):
        null = Null("x")
        db = Database.from_dict({"R": [(null, 2)], "S": [(null,)]})
        v = Valuation({null: 7})
        applied = v.apply(db)
        assert applied["R"].rows == frozenset({(7, 2)})
        assert applied["S"].rows == frozenset({(7,)})
        assert applied.is_complete()

    def test_same_null_gets_same_value_everywhere(self):
        null = Null("x")
        rel = Relation.create("R", [(null, null)])
        applied = Valuation({null: 3}).apply_relation(rel)
        assert applied.rows == frozenset({(3, 3)})

    def test_is_total_for(self):
        db = Database.from_dict({"R": [(Null("x"), Null("y"))]})
        assert not Valuation({Null("x"): 1}).is_total_for(db)
        assert Valuation({Null("x"): 1, Null("y"): 2}).is_total_for(db)


class TestCombination:
    def test_extend(self):
        v = Valuation({Null("x"): 1}).extend({Null("y"): 2})
        assert v[Null("y")] == 2
        assert v[Null("x")] == 1

    def test_extend_conflict_rejected(self):
        with pytest.raises(ValueError):
            Valuation({Null("x"): 1}).extend({Null("x"): 2})

    def test_extend_same_value_allowed(self):
        v = Valuation({Null("x"): 1}).extend({Null("x"): 1})
        assert v[Null("x")] == 1

    def test_restrict(self):
        v = Valuation({Null("x"): 1, Null("y"): 2}).restrict([Null("x")])
        assert Null("x") in v
        assert Null("y") not in v


class TestFreshValuation:
    def test_maps_all_nulls_to_distinct_new_constants(self):
        db = Database.from_dict({"R": [(Null("x"), Null("y")), ("a", 1)]})
        v = fresh_valuation(db, avoid=["f0"])
        assert v.is_total_for(db)
        images = list(v.image())
        assert len(set(images)) == 2
        assert "f0" not in images
        assert not (set(images) & db.constants())


class TestEnumeration:
    def test_counts(self):
        nulls = [Null("x"), Null("y")]
        assert count_valuations(nulls, [1, 2, 3]) == 9
        assert count_valuations([], [1, 2]) == 1

    def test_enumerates_all_combinations(self):
        nulls = [Null("x"), Null("y")]
        valuations = list(enumerate_valuations(nulls, [0, 1]))
        assert len(valuations) == 4
        images = {(v[Null("x")], v[Null("y")]) for v in valuations}
        assert images == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_no_nulls_yields_identity(self):
        valuations = list(enumerate_valuations([], [1, 2]))
        assert valuations == [Valuation({})]

    def test_empty_domain_with_nulls_yields_nothing(self):
        assert list(enumerate_valuations([Null("x")], [])) == []

    def test_enumeration_is_deterministic(self):
        nulls = [Null("b"), Null("a")]
        first = [v.as_dict() for v in enumerate_valuations(nulls, [1, 2])]
        second = [v.as_dict() for v in enumerate_valuations(nulls, [1, 2])]
        assert first == second
