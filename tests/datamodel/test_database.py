"""Unit tests for incomplete database instances."""

import pytest

from repro.datamodel import Database, DatabaseSchema, Null, Relation
from repro.datamodel.database import facts_with_nulls


@pytest.fixture
def orders_db():
    return Database.from_dict(
        {
            "Order": [("oid1", "pr1"), ("oid2", "pr2")],
            "Pay": [("pid1", Null("o"), 100)],
        }
    )


class TestConstruction:
    def test_from_dict_infers_schema(self, orders_db):
        assert orders_db.schema.arity("Order") == 2
        assert orders_db.schema.arity("Pay") == 3

    def test_from_relations(self):
        db = Database.from_relations([Relation.create("R", [(1,)])])
        assert db.relation("R").rows == frozenset({(1,)})

    def test_missing_relations_default_to_empty(self):
        schema = DatabaseSchema.from_arities({"R": 1, "S": 2})
        db = Database(schema, {"R": [(1,)]})
        assert len(db.relation("S")) == 0

    def test_unknown_relation_in_data_rejected(self):
        schema = DatabaseSchema.from_arities({"R": 1})
        with pytest.raises(KeyError):
            Database(schema, {"Z": [(1,)]})

    def test_from_facts(self):
        schema = DatabaseSchema.from_arities({"R": 2})
        db = Database.from_facts(schema, [("R", (1, 2)), ("R", (3, 4))])
        assert db.size() == 2

    def test_from_facts_unknown_relation(self):
        schema = DatabaseSchema.from_arities({"R": 2})
        with pytest.raises(KeyError):
            Database.from_facts(schema, [("S", (1, 2))])

    def test_empty(self):
        schema = DatabaseSchema.from_arities({"R": 1})
        assert Database.empty(schema).size() == 0

    def test_arity_mismatch_rejected(self):
        schema = DatabaseSchema.from_arities({"R": 2})
        with pytest.raises(ValueError):
            Database(schema, {"R": Relation.create("R", [(1,)])})


class TestAccessors:
    def test_relation_lookup(self, orders_db):
        assert len(orders_db["Order"]) == 2
        with pytest.raises(KeyError):
            orders_db.relation("Nope")

    def test_contains(self, orders_db):
        assert "Pay" in orders_db
        assert "Nope" not in orders_db

    def test_facts(self, orders_db):
        facts = orders_db.facts()
        assert ("Order", ("oid1", "pr1")) in facts
        assert len(facts) == 3

    def test_size_and_len(self, orders_db):
        assert orders_db.size() == 3
        assert len(orders_db) == 3

    def test_iteration_yields_relations(self, orders_db):
        names = [rel.name for rel in orders_db]
        assert names == ["Order", "Pay"]

    def test_to_table(self, orders_db):
        assert "Order:" in orders_db.to_table()


class TestNullsAndCompleteness:
    def test_nulls_and_constants(self, orders_db):
        assert {n.name for n in orders_db.nulls()} == {"o"}
        assert "oid1" in orders_db.constants()

    def test_is_complete(self, orders_db):
        assert not orders_db.is_complete()
        assert orders_db.complete_part().is_complete()

    def test_is_codd_single_occurrence(self, orders_db):
        assert orders_db.is_codd()

    def test_is_codd_shared_null(self):
        shared = Null("x")
        db = Database.from_dict({"R": [(shared,)], "S": [(shared, 1)]})
        assert not db.is_codd()

    def test_complete_part(self, orders_db):
        cmpl = orders_db.complete_part()
        assert cmpl.size() == 2
        assert len(cmpl["Pay"]) == 0

    def test_facts_with_nulls(self, orders_db):
        facts = facts_with_nulls(orders_db)
        assert len(facts) == 1
        assert facts[0][0] == "Pay"

    def test_active_domain(self, orders_db):
        adom = orders_db.active_domain()
        assert "oid1" in adom
        assert Null("o") in adom


class TestTransformations:
    def test_map_values(self, orders_db):
        replaced = orders_db.map_values(lambda v: "X" if isinstance(v, Null) else v)
        assert replaced.is_complete()

    def test_map_relations_must_preserve_names(self, orders_db):
        with pytest.raises(ValueError):
            orders_db.map_relations(lambda rel: rel.rename("Other"))

    def test_with_relation(self, orders_db):
        new_rel = Relation.create("Order", [("oid9", "pr9")])
        updated = orders_db.with_relation(new_rel)
        assert updated["Order"].rows == frozenset({("oid9", "pr9")})
        with pytest.raises(KeyError):
            orders_db.with_relation(Relation.create("Missing", [(1,)]))

    def test_add_facts(self, orders_db):
        bigger = orders_db.add_facts([("Order", ("oid3", "pr3"))])
        assert bigger.size() == 4
        with pytest.raises(KeyError):
            orders_db.add_facts([("Missing", (1,))])

    def test_union(self, orders_db):
        other = Database(orders_db.schema, {"Order": [("oid5", "pr5")]})
        merged = orders_db.union(other)
        assert merged.size() == 4

    def test_union_schema_mismatch(self, orders_db):
        other = Database.from_dict({"Z": [(1,)]})
        with pytest.raises(ValueError):
            orders_db.union(other)

    def test_contains_database(self, orders_db):
        smaller = Database(orders_db.schema, {"Order": [("oid1", "pr1")]})
        assert orders_db.contains_database(smaller)
        assert not smaller.contains_database(orders_db)

    def test_equality_and_hash(self, orders_db):
        clone = Database.from_dict(
            {
                "Order": [("oid1", "pr1"), ("oid2", "pr2")],
                "Pay": [("pid1", Null("o"), 100)],
            }
        )
        assert clone == orders_db
        assert hash(clone) == hash(orders_db)
