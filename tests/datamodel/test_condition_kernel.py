"""Unit tests for the hash-consed condition kernel."""

import pytest

from repro.datamodel import (
    FALSE,
    TRUE,
    And,
    Eq,
    Neq,
    Not,
    Null,
    Or,
    Valuation,
    clear_condition_kernel,
    intern_condition,
    kernel_and,
    kernel_conjunction,
    kernel_disjunction,
    kernel_eq,
    kernel_not,
    kernel_nulls,
    kernel_or,
    kernel_row_equality,
    kernel_stats,
)

x, y, z = Null("x"), Null("y"), Null("z")


class TestInterning:
    def test_structurally_equal_conditions_become_identical(self):
        assert kernel_eq(x, 1) is kernel_eq(Null("x"), 1)
        a = kernel_conjunction((kernel_eq(x, 1), kernel_eq(y, 2)))
        b = kernel_conjunction((kernel_eq(x, 1), kernel_eq(y, 2)))
        assert a is b

    def test_intern_condition_is_idempotent(self):
        condition = intern_condition(And((Eq(x, 1), Or((Eq(y, 2), Eq(z, 3))))))
        assert intern_condition(condition) is condition

    def test_interning_simplifies(self):
        assert intern_condition(Eq(1, 1)) is TRUE
        assert intern_condition(Eq(1, 2)) is FALSE
        assert intern_condition(Eq(x, x)) is TRUE
        assert intern_condition(Not(Not(Eq(x, 1)))) is kernel_eq(x, 1)
        assert intern_condition(And((Eq(x, 1), TRUE))) is kernel_eq(x, 1)
        assert intern_condition(Or((Eq(x, 1), TRUE))) is TRUE

    def test_singletons_are_canonical(self):
        assert intern_condition(TRUE) is TRUE
        assert intern_condition(FALSE) is FALSE

    def test_clear_resets_tables(self):
        kernel_eq(x, "fresh-value")
        assert kernel_stats()["interned"] > 0
        clear_condition_kernel()
        assert kernel_stats() == {"interned": 0, "and_memo": 0, "or_memo": 0, "confidence_memo": 0}

    def test_nodes_surviving_a_clear_reintern(self):
        """A pre-clear canonical node must not satisfy identity checks by a stale mark."""
        old = kernel_eq(x, 1)
        old_negation = kernel_not(old)
        clear_condition_kernel()
        fresh = kernel_eq(x, 1)
        assert intern_condition(old) is fresh
        # composing a survivor with its new-generation twin must still dedup
        assert kernel_conjunction((old, fresh)) is fresh
        # and cached negations from the old generation are not reused
        assert kernel_not(fresh) is not old_negation
        assert kernel_not(fresh) == old_negation


class TestConnectives:
    def test_and_flattens_and_deduplicates(self):
        e1, e2 = kernel_eq(x, 1), kernel_eq(y, 2)
        nested = kernel_and(kernel_and(e1, e2), e1)
        assert isinstance(nested, And)
        assert nested.operands == (e1, e2)

    def test_or_flattens_and_deduplicates(self):
        e1, e2 = kernel_eq(x, 1), kernel_eq(y, 2)
        nested = kernel_or(kernel_or(e1, e2), e2)
        assert isinstance(nested, Or)
        assert nested.operands == (e1, e2)

    def test_connective_constants(self):
        e = kernel_eq(x, 1)
        assert kernel_and(TRUE, e) is e
        assert kernel_and(e, FALSE) is FALSE
        assert kernel_or(FALSE, e) is e
        assert kernel_or(e, TRUE) is TRUE
        assert kernel_conjunction(()) is TRUE
        assert kernel_disjunction(()) is FALSE

    def test_binary_memo_returns_same_object(self):
        e1, e2 = kernel_eq(x, 1), kernel_eq(y, 2)
        assert kernel_and(e1, e2) is kernel_and(e1, e2)
        assert kernel_or(e1, e2) is kernel_or(e1, e2)

    def test_not_round_trip(self):
        e = kernel_eq(x, 1)
        assert kernel_not(kernel_not(e)) is e
        assert kernel_not(TRUE) is FALSE
        assert kernel_not(FALSE) is TRUE

    def test_row_equality(self):
        condition = kernel_row_equality((x, 1), (2, 1))
        assert condition is kernel_eq(x, 2)
        with pytest.raises(ValueError):
            kernel_row_equality((x,), (1, 2))


class TestUnsatisfiability:
    def test_conflicting_constants_collapse_to_false(self):
        assert kernel_conjunction((kernel_eq(x, 1), kernel_eq(x, 2))) is FALSE

    def test_transitive_conflict(self):
        assert (
            kernel_conjunction((kernel_eq(x, y), kernel_eq(y, 1), kernel_eq(x, 2))) is FALSE
        )

    def test_disequality_in_same_class(self):
        neq = intern_condition(Neq(x, y))
        assert kernel_conjunction((kernel_eq(x, z), kernel_eq(z, y), neq)) is FALSE

    def test_satisfiable_conjunction_survives(self):
        condition = kernel_conjunction((kernel_eq(x, y), kernel_eq(y, 1)))
        assert condition is not FALSE
        assert condition.evaluate(Valuation({x: 1, y: 1}))
        assert not condition.evaluate(Valuation({x: 2, y: 1}))

    def test_atoms_under_or_are_not_consulted(self):
        # x=1 ∧ (x=2 ∨ y=1) is satisfiable; the union-find must ignore the Or.
        condition = kernel_conjunction(
            (kernel_eq(x, 1), kernel_or(kernel_eq(x, 2), kernel_eq(y, 1)))
        )
        assert condition is not FALSE
        assert condition.evaluate(Valuation({x: 1, y: 1}))


class TestCachedNulls:
    def test_nulls_match_seed_and_are_cached(self):
        condition = kernel_conjunction(
            (kernel_eq(x, 1), kernel_or(kernel_eq(y, 2), intern_condition(Neq(z, x))))
        )
        assert kernel_nulls(condition) == condition.nulls() == {x, y, z}
        assert kernel_nulls(condition) is kernel_nulls(condition)

    def test_constant_conditions_have_no_nulls(self):
        assert kernel_nulls(TRUE) == frozenset()
        assert kernel_nulls(FALSE) == frozenset()


class TestEpochEviction:
    """The epoch-based eviction policy behind clear_plan_cache()."""

    def setup_method(self):
        clear_condition_kernel()

    def test_touched_conditions_survive_eviction(self):
        from repro.datamodel import evict_condition_kernel

        hot = kernel_eq(x, 1)
        verdict = evict_condition_kernel()
        assert verdict["kept"] >= 1 and verdict["evicted"] == 0
        assert kernel_eq(x, 1) is hot

    def test_untouched_conditions_evicted_after_one_full_epoch(self):
        from repro.datamodel import evict_condition_kernel

        cold = kernel_eq(x, 1)
        evict_condition_kernel()  # cold was touched in the ending epoch: kept
        evict_condition_kernel()  # a full epoch with no touch: evicted
        assert kernel_stats()["interned"] == 0
        fresh = kernel_eq(x, 1)
        assert fresh is not cold
        # the survivor lost its canonical mark: composing it re-interns
        assert intern_condition(cold) is fresh

    def test_retained_composites_keep_their_operands(self):
        from repro.datamodel import evict_condition_kernel

        a, b = kernel_eq(x, 1), kernel_eq(y, 2)
        both = kernel_and(a, b)
        evict_condition_kernel()
        # New epoch: touch only the conjunction, never the atoms directly.
        assert kernel_conjunction((a, b)) is both
        evict_condition_kernel()
        # The operand closure of the touched conjunction survives with it,
        # so flattening through the retained node still dedups by identity.
        assert kernel_eq(x, 1) is a
        assert kernel_eq(y, 2) is b
        assert kernel_and(a, b) is both

    def test_memo_entries_involving_evicted_nodes_are_dropped(self):
        from repro.datamodel import evict_condition_kernel

        a, b = kernel_eq(x, 1), kernel_eq(y, 2)
        kernel_or(a, b)
        assert kernel_stats()["or_memo"] == 1
        evict_condition_kernel()
        kernel_eq(x, 1)  # touch one atom; the disjunction stays cold
        evict_condition_kernel()
        assert kernel_stats()["or_memo"] == 0

    def test_eviction_preserves_semantics_of_survivor_composition(self):
        from repro.datamodel import evict_condition_kernel

        survivor = kernel_conjunction((kernel_eq(x, y), kernel_eq(y, 1)))
        evict_condition_kernel()
        evict_condition_kernel()
        # The evicted node still evaluates correctly and re-interns into
        # a semantically identical canonical condition.
        rebuilt = intern_condition(survivor)
        for assignment in ({x: 1, y: 1}, {x: 2, y: 1}):
            valuation = Valuation(assignment)
            assert rebuilt.evaluate(valuation) == survivor.evaluate(valuation)
