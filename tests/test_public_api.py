"""Public-API snapshot: the exported surface, and one warning per shim.

Two invariants this file pins down:

* the top-level package exports exactly the session-centric surface
  (additions are deliberate: update the snapshot here *and* docs/api.md);
* every deprecated entry point kept as a shim over the process-default
  session emits **exactly one** ``DeprecationWarning`` per call — not
  zero (silent deprecation helps nobody) and not two (shims must delegate
  to non-warning internals, never to each other).
"""

import warnings

import pytest

import repro
from repro import Database, Null, Relation
from repro.algebra import parse_ra


EXPECTED_TOP_LEVEL = {
    "AnalyzeReport",
    "BackendRecoveryWarning",
    "BackendUnavailable",
    "Budget",
    "BudgetExceeded",
    "ConditionalTable",
    "ConfidenceInterval",
    "ConstantPool",
    "Cursor",
    "Database",
    "ExclusiveBlock",
    "DatabaseSchema",
    "InvalidRequestError",
    "ManualClock",
    "MetricsRegistry",
    "Null",
    "PartialResult",
    "ProbabilityModel",
    "PoolExhausted",
    "Query",
    "QueryCancelled",
    "Relation",
    "RelationSchema",
    "ReproError",
    "ResumeToken",
    "RetryPolicy",
    "Session",
    "SessionClosedError",
    "Tracer",
    "Valuation",
    "WorkerPoolError",
    "__version__",
    "connect",
    "default_session",
    "obs",
    "prob",
    "serve",
}


def test_top_level_surface_is_the_session_api():
    assert set(repro.__all__) == EXPECTED_TOP_LEVEL
    for name in repro.__all__:
        assert hasattr(repro, name), f"__all__ exports missing attribute {name}"


def test_session_and_query_expose_the_documented_methods():
    for method in ("query", "sql", "evaluate_ctable", "create_schema",
                   "load_rows", "clear_caches", "cancel", "close"):
        assert callable(getattr(repro.Session, method))
    for method in ("certain", "possible", "answer_object", "knowledge",
                   "boolean", "explain", "cursor"):
        assert callable(getattr(repro.Query, method))
    for method in ("fetchmany", "fetchall", "batches", "close"):
        assert callable(getattr(repro.Cursor, method))


@pytest.fixture
def db():
    return Database.from_relations(
        [
            Relation.create("Orders", [("o1",), ("o2",)], attributes=("o_id",)),
            Relation.create(
                "Pay", [("x1", "o1"), ("x2", Null("n"))], attributes=("p_id", "ord")
            ),
        ]
    )


QUERY = parse_ra("project[o_id](Orders)")


def _shim_calls(db):
    """Every deprecated shim, as (label, zero-argument callable)."""
    from repro.core import (
        certain_answer_knowledge,
        certain_answer_object,
        certain_answers,
        certain_answers_intersection,
        certain_answers_naive,
        possible_answers,
    )
    from repro.engine import set_default_engine
    from repro.semantics import (
        certain_answers_enumeration,
        certain_boolean,
        possible_answers_enumeration,
        possible_boolean,
    )
    from repro.sqlnulls import parse_sql, run_sql

    sql = parse_sql("SELECT ord FROM Pay")
    return [
        ("certain_answers", lambda: certain_answers(QUERY, db)),
        ("certain_answers_naive", lambda: certain_answers_naive(QUERY, db)),
        ("certain_answers_intersection", lambda: certain_answers_intersection(QUERY, db)),
        ("certain_answer_object", lambda: certain_answer_object(QUERY, db)),
        ("certain_answer_knowledge", lambda: certain_answer_knowledge(QUERY, db)),
        ("possible_answers", lambda: possible_answers(QUERY, db)),
        (
            "certain_answers_enumeration",
            lambda: certain_answers_enumeration(QUERY.evaluate, db),
        ),
        (
            "possible_answers_enumeration",
            lambda: possible_answers_enumeration(QUERY.evaluate, db),
        ),
        (
            "certain_boolean",
            lambda: certain_boolean(lambda world: bool(QUERY.evaluate(world)), db),
        ),
        (
            "possible_boolean",
            lambda: possible_boolean(lambda world: bool(QUERY.evaluate(world)), db),
        ),
        ("run_sql", lambda: run_sql(db, sql)),
        ("set_default_engine", lambda: set_default_engine("plan")),
    ]


def test_every_shim_warns_exactly_once_per_call(db):
    for label, call in _shim_calls(db):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            call()
        deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1, (
            f"{label} emitted {len(deprecations)} DeprecationWarnings, expected 1: "
            f"{[str(w.message) for w in deprecations]}"
        )
        assert "docs/api.md" in str(deprecations[0].message)


def test_shims_still_answer_correctly_through_the_default_session(db):
    from repro.core import certain_answers

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy = certain_answers(QUERY, db)
    fresh = repro.connect(db).query(QUERY).certain()
    assert legacy == fresh


def test_session_paths_never_touch_deprecated_internals(db):
    # The library must not call its own deprecated entry points: the whole
    # session path runs clean under error-on-DeprecationWarning.
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        session = repro.connect(db, engine="sqlite")
        session.query(QUERY).certain()
        session.query(QUERY).possible()
        session.query(QUERY).boolean()
        session.query(QUERY).explain()
        list(session.query(QUERY).cursor())
        session.sql("SELECT ord FROM Pay")
        unpaid = parse_ra(
            "diff(project[o_id](Orders), rename[Paid(o_id)](project[ord](Pay)))"
        )
        session.query(unpaid).certain()  # enumeration path
