"""Unit tests for conjunctive-query view definitions and their materialization."""

import pytest

from repro.datamodel import Database, DatabaseSchema, Null, Relation
from repro.exchange import MappingAtom
from repro.logic import var
from repro.views import ViewCollection, ViewDefinition

X, Y, Z = var("x"), var("y"), var("z")

BASE = DatabaseSchema.from_attributes(
    {"Emp": ("name", "dept"), "Dept": ("dept", "city")}
)


def _emp_view():
    return ViewDefinition("EmpCity", (X, Z), [MappingAtom("Emp", (X, Y)), MappingAtom("Dept", (Y, Z))])


def _dept_view():
    return ViewDefinition("Depts", (Y,), [MappingAtom("Dept", (Y, Z))])


@pytest.fixture
def base_db():
    return Database(
        BASE,
        {
            "Emp": [("ann", "it"), ("bob", "hr")],
            "Dept": [("it", "oslo"), ("hr", "rome")],
        },
    )


class TestViewDefinition:
    def test_arity_and_variables(self):
        view = _emp_view()
        assert view.arity == 2
        assert view.existential_variables() == {Y}
        assert view.body_variables() == {X, Y, Z}

    def test_validation(self):
        with pytest.raises(ValueError):
            ViewDefinition("V", (X,), [])
        with pytest.raises(ValueError):
            ViewDefinition("", (X,), [MappingAtom("Emp", (X, Y))])
        with pytest.raises(ValueError):
            ViewDefinition("V", (Z,), [MappingAtom("Emp", (X, Y))])
        with pytest.raises(TypeError):
            ViewDefinition("V", ("not a variable",), [MappingAtom("Emp", (X, Y))])

    def test_str(self):
        assert "EmpCity(x, z) :- Emp(x, y) ∧ Dept(y, z)" == str(_emp_view())

    def test_evaluate_joins_the_body(self, base_db):
        assert _emp_view().evaluate(base_db).rows == {("ann", "oslo"), ("bob", "rome")}

    def test_evaluate_with_constant_in_body(self, base_db):
        view = ViewDefinition("ItStaff", (X,), [MappingAtom("Emp", (X, "it"))])
        assert view.evaluate(base_db).rows == {("ann",)}

    def test_evaluate_is_naive_over_nulls(self):
        db = Database(BASE, {"Emp": [("ann", Null("d"))], "Dept": [(Null("d"), "oslo")]})
        assert _emp_view().evaluate(db).rows == {("ann", "oslo")}


class TestViewCollection:
    def test_schema_and_lookup(self):
        collection = ViewCollection(BASE, [_emp_view(), _dept_view()])
        assert collection.view_schema().names() == ["EmpCity", "Depts"]
        assert collection.view("Depts").arity == 1
        with pytest.raises(KeyError):
            collection.view("Nope")
        assert len(collection) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ViewCollection(BASE, [])
        with pytest.raises(ValueError):
            ViewCollection(BASE, [_emp_view(), _emp_view()])
        with pytest.raises(ValueError):
            ViewCollection(BASE, [ViewDefinition("Emp", (X,), [MappingAtom("Emp", (X, Y))])])
        with pytest.raises(ValueError):
            ViewCollection(BASE, [ViewDefinition("V", (X,), [MappingAtom("Unknown", (X,))])])
        with pytest.raises(ValueError):
            ViewCollection(BASE, [ViewDefinition("V", (X,), [MappingAtom("Emp", (X, Y, Z))])])

    def test_materialize(self, base_db):
        collection = ViewCollection(BASE, [_emp_view(), _dept_view()])
        materialized = collection.materialize(base_db)
        assert materialized.relation("EmpCity").rows == {("ann", "oslo"), ("bob", "rome")}
        assert materialized.relation("Depts").rows == {("it",), ("hr",)}
