"""Unit tests for view-based certain answers (LAV integration)."""

import pytest

from repro.algebra import parse_ra
from repro.datamodel import Database, DatabaseSchema
from repro.exchange import MappingAtom
from repro.logic import var
from repro.views import (
    ViewCollection,
    ViewDefinition,
    canonical_instance,
    certain_answers_views,
    inverse_mapping,
)

X, Y, Z = var("x"), var("y"), var("z")

BASE = DatabaseSchema.from_attributes(
    {"Emp": ("name", "dept"), "Dept": ("dept", "city")}
)


@pytest.fixture
def views():
    return ViewCollection(
        BASE,
        [
            # Exposes who works in some department located in which city,
            # hiding the department itself.
            ViewDefinition("EmpCity", (X, Z), [MappingAtom("Emp", (X, Y)), MappingAtom("Dept", (Y, Z))]),
            # Exposes the list of employees.
            ViewDefinition("Emps", (X,), [MappingAtom("Emp", (X, Y))]),
        ],
    )


@pytest.fixture
def extensions(views):
    return Database(
        views.view_schema(),
        {
            "EmpCity": [("ann", "oslo"), ("bob", "rome")],
            "Emps": [("ann",), ("bob",), ("cleo",)],
        },
    )


class TestInverseMapping:
    def test_one_rule_per_view(self, views):
        mapping = inverse_mapping(views)
        assert len(mapping) == 2
        assert {tgd.body[0].relation for tgd in mapping} == {"EmpCity", "Emps"}

    def test_existential_variables_become_nulls(self, views, extensions):
        instance = canonical_instance(views, extensions)
        # Each EmpCity tuple creates an unknown department; each Emps tuple
        # creates an unknown department too.
        assert len(instance.nulls()) == 2 + 3
        assert len(instance.relation("Emp")) == 5
        assert len(instance.relation("Dept")) == 2

    def test_shared_null_links_emp_and_dept(self, views, extensions):
        instance = canonical_instance(views, extensions)
        emp_rows = instance.relation("Emp").rows
        dept_rows = instance.relation("Dept").rows
        ann_depts = {dept for name, dept in emp_rows if name == "ann"}
        oslo_depts = {dept for dept, city in dept_rows if city == "oslo"}
        assert ann_depts & oslo_depts, "ann's unknown department must be the one located in oslo"

    def test_missing_view_extension_is_rejected(self, views):
        partial = Database.from_dict({"EmpCity": [("ann", "oslo")]})
        with pytest.raises(ValueError):
            canonical_instance(views, partial)


class TestCertainAnswers:
    def test_positive_query_over_hidden_relation(self, views, extensions):
        # Who works in a department located in oslo?  Certain: ann (through
        # the marked null shared between the reconstructed Emp and Dept facts).
        query = parse_ra("project[#0](select[#1 = #2 and #3 = 'oslo'](product(Emp, Dept)))")
        answer = certain_answers_views(query, views, extensions)
        assert answer.rows == {("ann",)}

    def test_all_employees_are_certain(self, views, extensions):
        query = parse_ra("project[#0](Emp)")
        answer = certain_answers_views(query, views, extensions)
        assert answer.rows == {("ann",), ("bob",), ("cleo",)}

    def test_departments_are_unknown_so_not_certain(self, views, extensions):
        query = parse_ra("project[#1](Emp)")
        answer = certain_answers_views(query, views, extensions)
        assert answer.rows == set()

    def test_keep_nulls_returns_the_object_answer(self, views, extensions):
        query = parse_ra("project[#1](Emp)")
        answer = certain_answers_views(query, views, extensions, keep_nulls=True)
        assert len(answer) == 5
        assert all(len(row) == 1 for row in answer.rows)

    def test_callable_queries_are_accepted(self, views, extensions):
        answer = certain_answers_views(
            lambda db: db.relation("Dept").complete_part(), views, extensions
        )
        assert answer.rows == set()

    def test_soundness_against_a_real_base_database(self, views):
        base = Database(
            BASE,
            {
                "Emp": [("ann", "it"), ("bob", "hr"), ("cleo", "it")],
                "Dept": [("it", "oslo"), ("hr", "rome")],
            },
        )
        extensions = views.materialize(base)
        query = parse_ra("project[#0](select[#1 = #2 and #3 = 'oslo'](product(Emp, Dept)))")
        certain = certain_answers_views(query, views, extensions).rows
        assert certain <= query.evaluate(base).rows
