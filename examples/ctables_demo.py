"""Conditional tables: exact answers to any relational-algebra query.

Run with::

    python examples/ctables_demo.py

Shows the Imieliński–Lipski algebra at work: evaluating full relational
algebra (including difference) over conditional tables yields another
conditional table that represents the space of possible answers *exactly*
— the strong representation system of Section 2 — and certain/possible
answers can be read off it.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.algebra import CTableDatabase, ctable_evaluate, parse_ra
from repro.datamodel import ConditionalTable, Database, Eq, Null, Or, Relation
from repro.semantics import answer_space, default_domain


def main():
    # ------------------------------------------------------------------
    # 1. The paper's R − S example.
    # ------------------------------------------------------------------
    database = Database.from_relations(
        [
            Relation.create("R", [(1,), (2,)], attributes=("A",)),
            Relation.create("S", [(Null("s"),)], attributes=("A",)),
        ]
    )
    query = parse_ra("diff(R, S)")
    ctdb = CTableDatabase.from_database(database)
    answer = ctable_evaluate(query, ctdb)

    print("Query:", query)
    print("\nThe answer as a conditional table:")
    print(answer)

    domain = default_domain(database)
    print("\nWorlds represented by the answer table:")
    for world in sorted(answer.possible_worlds(domain), key=sorted):
        print("  ", sorted(world))
    print("Direct enumeration of Q([[D]]_cwa) gives:")
    for world in sorted(answer_space(query.evaluate, database, semantics="cwa", domain=domain), key=sorted):
        print("  ", sorted(world))

    print("\nCertain rows :", sorted(answer.certain_rows(domain)))
    print("Possible rows:", sorted(answer.possible_rows(domain)))

    # ------------------------------------------------------------------
    # 2. A genuinely disjunctive input: either 0 or 1 is in the database.
    # ------------------------------------------------------------------
    bot = Null("b")
    disjunctive = ConditionalTable.create(
        "C",
        [((1,), Eq(bot, 1)), ((0,), Eq(bot, 0))],
        global_condition=Or((Eq(bot, 0), Eq(bot, 1))),
    )
    print("\nA disjunctive c-table (the paper's 0-or-1 example):")
    print(disjunctive)
    print("Its worlds:", sorted(sorted(w) for w in disjunctive.possible_worlds([0, 1, 2])))

    filtered = ctable_evaluate(parse_ra("select[#0 = 1](C)"), CTableDatabase([disjunctive]))
    print("\nAfter select[#0 = 1]:")
    print(filtered)
    print("Worlds:", sorted(sorted(w) for w in filtered.possible_worlds([0, 1, 2])))
    print("(the answer is conditional: {1} when ⊥=1, ∅ when ⊥=0 — no naive table can say that)")


if __name__ == "__main__":
    main()
