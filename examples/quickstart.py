"""Quickstart: certain answers over a database with nulls in five minutes.

Run with::

    python examples/quickstart.py

The script builds a small incomplete database (marked nulls), opens a
*session* — the library's connection-style entry point owning all
evaluation state — and shows how SQL three-valued logic, naive
evaluation, and certain answers differ, and how the session picks a
correct evaluation strategy automatically.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

import repro
from repro.algebra import parse_ra
from repro.datamodel import Database, Null, Relation


def main():
    # ------------------------------------------------------------------
    # 1. An incomplete database: who supervises whom, with unknown values.
    # ------------------------------------------------------------------
    unknown_manager = Null("m")  # one *marked* null: the same unknown person
    database = Database.from_relations(
        [
            Relation.create(
                "Works",
                [("ann", "sales"), ("bob", "it"), ("cat", "it")],
                attributes=("emp", "dept"),
            ),
            Relation.create(
                "Boss",
                [("sales", unknown_manager), ("it", unknown_manager)],
                attributes=("dept", "manager"),
            ),
        ]
    )
    print("The incomplete database (⊥m is one shared marked null):\n")
    print(database.to_table())

    # ------------------------------------------------------------------
    # 2. Open a session.  It owns the engine choice, the plan cache, the
    #    condition kernel and (for engine="sqlite") the backend handle.
    # ------------------------------------------------------------------
    session = repro.connect(database, engine="plan", semantics="cwa")

    # ------------------------------------------------------------------
    # 3. A positive query: which employees certainly have a manager?
    # ------------------------------------------------------------------
    q = session.query(parse_ra("project[emp](join(Works, Boss))"))
    print("\nQuery:", q.expression)
    print("Naive certain answers  :", sorted(q.certain(method="naive").rows))
    print("Exact certain answers  :", sorted(q.certain(method="enumeration").rows))
    print("Plan (explain):")
    print(q.explain())

    # ------------------------------------------------------------------
    # 4. Both departments certainly share a manager (the null is marked!).
    # ------------------------------------------------------------------
    same_manager = session.query(parse_ra("project[#0](select[#1 = #3](product(Boss, Boss)))"))
    print("\nDepartments certainly sharing a manager with some department:",
          sorted(same_manager.certain().rows))

    # ------------------------------------------------------------------
    # 5. Negation: who certainly works outside 'it'?  The session refuses
    #    to trust naive evaluation and falls back to world enumeration —
    #    explain() shows the verdict before anything runs.
    # ------------------------------------------------------------------
    outside_it = session.query(
        parse_ra("diff(project[emp](Works), project[emp](select[dept = 'it'](Works)))")
    )
    print("\nQuery:", outside_it.expression)
    print(outside_it.explain().splitlines()[2])  # the certain() verdict line
    print("Certain answers:", sorted(outside_it.certain().rows))

    # ------------------------------------------------------------------
    # 6. What SQL would have said (three-valued logic, unmarked nulls).
    # ------------------------------------------------------------------
    rows = session.sql("SELECT emp FROM Works WHERE dept NOT IN (SELECT dept FROM Boss)")
    print("\nSQL 'departments without a boss entry' →", rows)
    print("(empty, as always when the subquery could be hiding the value)")

    # ------------------------------------------------------------------
    # 7. Streaming: answers come off a cursor in batches, so results
    #    larger than memory never materialize (pair with engine="sqlite"
    #    and a backend_path for out-of-core work).
    # ------------------------------------------------------------------
    with repro.connect(database, engine="sqlite") as sqlite_session:
        streamed = list(sqlite_session.query(parse_ra("Works")).cursor(batch_size=2))
        print("\nStreamed through a cursor:", sorted(streamed))


if __name__ == "__main__":
    main()
