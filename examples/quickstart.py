"""Quickstart: certain answers over a database with nulls in five minutes.

Run with::

    python examples/quickstart.py

The script builds a small incomplete database (marked nulls), shows how SQL
three-valued logic, naive evaluation, and certain answers differ, and how
the library picks a correct evaluation strategy automatically.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.algebra import parse_ra
from repro.core import (
    certain_answers,
    certain_answers_intersection,
    certain_answers_naive,
    explain_method,
)
from repro.datamodel import Database, Null, Relation
from repro.sqlnulls import parse_sql, run_sql


def main():
    # ------------------------------------------------------------------
    # 1. An incomplete database: who supervises whom, with unknown values.
    # ------------------------------------------------------------------
    unknown_manager = Null("m")  # one *marked* null: the same unknown person
    database = Database.from_relations(
        [
            Relation.create(
                "Works",
                [("ann", "sales"), ("bob", "it"), ("cat", "it")],
                attributes=("emp", "dept"),
            ),
            Relation.create(
                "Boss",
                [("sales", unknown_manager), ("it", unknown_manager)],
                attributes=("dept", "manager"),
            ),
        ]
    )
    print("The incomplete database (⊥m is one shared marked null):\n")
    print(database.to_table())

    # ------------------------------------------------------------------
    # 2. A positive query: which employees certainly have a manager?
    # ------------------------------------------------------------------
    query = parse_ra("project[emp](join(Works, Boss))")
    print("\nQuery:", query)
    print("Naive certain answers  :", sorted(certain_answers_naive(query, database).rows))
    print("Exact certain answers  :", sorted(certain_answers_intersection(query, database, semantics='cwa').rows))
    print("Method chosen by 'auto':", explain_method(query, "cwa"))

    # ------------------------------------------------------------------
    # 3. Both departments certainly share a manager (the null is marked!).
    # ------------------------------------------------------------------
    same_manager = parse_ra(
        "project[#0](select[#1 = #3](product(Boss, Boss)))"
    )
    answers = certain_answers(same_manager, database, semantics="cwa")
    print("\nDepartments certainly sharing a manager with some department:",
          sorted(answers.rows))

    # ------------------------------------------------------------------
    # 4. Negation: who certainly works outside 'it'? The library refuses to
    #    trust naive evaluation and falls back to world enumeration.
    # ------------------------------------------------------------------
    outside_it = parse_ra("diff(project[emp](Works), project[emp](select[dept = 'it'](Works)))")
    print("\nQuery:", outside_it)
    print("Method verdict:", explain_method(outside_it, "cwa"))
    print("Certain answers:", sorted(certain_answers(outside_it, database, semantics="cwa").rows))

    # ------------------------------------------------------------------
    # 5. What SQL would have said (three-valued logic, unmarked nulls).
    # ------------------------------------------------------------------
    sql = parse_sql("SELECT emp FROM Works WHERE dept NOT IN (SELECT dept FROM Boss)")
    print("\nSQL 'departments without a boss entry' →", run_sql(database, sql))
    print("(empty, as always when the subquery could be hiding the value)")


if __name__ == "__main__":
    main()
