"""The paper's Section 1 scenario end to end: chasing unpaid orders.

Run with::

    python examples/unpaid_orders.py

Reproduces the unpaid-orders example through the session API: the
textbook SQL query silently returns nothing, the tautological filter
drops the null row, and the certain-answer machinery — one lazy
``Query`` handle, four modes of answering — explains what can and cannot
be trusted.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

import repro
from repro.algebra import parse_ra
from repro.core import sound_certain_answers
from repro.datamodel import Database, Null, Relation


def build_database():
    return Database.from_relations(
        [
            Relation.create(
                "Orders", [("oid1", "pr1"), ("oid2", "pr2")], attributes=("o_id", "product")
            ),
            Relation.create(
                "Pay", [("pid1", Null("order_ref"), 100)], attributes=("p_id", "ord", "amount")
            ),
        ]
    )


def main():
    database = build_database()
    print("The database of the paper's introduction:\n")
    print(database.to_table())

    # One session for the Python 3VL oracle, one on real SQLite.
    session = repro.connect(database, semantics="cwa")
    sqlite_session = repro.connect(database, engine="sqlite", semantics="cwa")

    # ------------------------------------------------------------------
    # What the student writes, and what SQL answers.
    # ------------------------------------------------------------------
    sql_unpaid = "SELECT o_id FROM Orders WHERE o_id NOT IN (SELECT ord FROM Pay)"
    print("\nSQL:", sql_unpaid)
    print("SQL answer:", session.sql(sql_unpaid), " ← nobody gets chased for payment!")
    print(
        "Real SQLite agrees:",
        sqlite_session.sql(sql_unpaid),
        " ← not a simulation artifact",
    )

    sql_tautology = "SELECT p_id FROM Pay WHERE ord = 'oid1' OR ord <> 'oid1'"
    print("\nSQL: ... WHERE ord = 'oid1' OR ord <> 'oid1'")
    print("SQL answer:", session.sql(sql_tautology), " ← the tautology is 'unknown' on ⊥")

    # ------------------------------------------------------------------
    # What is actually certain: one lazy Query, four modes of answering.
    # ------------------------------------------------------------------
    unpaid = session.query(
        parse_ra("diff(project[o_id](Orders), rename[Paid(o_id)](project[ord](Pay)))")
    )
    print("\nRelational-algebra query:", unpaid.expression)

    print("Is 'there exists an unpaid order' certain?       ", unpaid.boolean())
    print("Which specific orders are certainly unpaid?      ",
          sorted(unpaid.certain(method="enumeration").rows))
    print("Which orders are possibly unpaid?                ",
          sorted(unpaid.possible().rows))

    sound = sound_certain_answers(unpaid.expression, database)
    print("Sound evaluation (never a false positive) returns", sorted(sound.rows))

    print(
        "\nSummary: SQL says 'all paid' (wrong); the certain Boolean answer says\n"
        "'at least one order is unpaid' (right); no individual order can be\n"
        "pinned down, which the tuple-level certain answers make explicit."
    )


if __name__ == "__main__":
    main()
