"""The paper's Section 1 scenario end to end: chasing unpaid orders.

Run with::

    python examples/unpaid_orders.py

Reproduces the unpaid-orders example: the textbook SQL query silently
returns nothing, the tautological filter drops the null row, and the
certain-answer machinery explains what can and cannot be trusted.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.algebra import parse_ra
from repro.core import certain_answers_intersection, possible_answers, sound_certain_answers
from repro.datamodel import Database, Null, Relation
from repro.semantics import certain_boolean
from repro.sqlnulls import parse_sql, run_sql


def build_database():
    return Database.from_relations(
        [
            Relation.create(
                "Orders", [("oid1", "pr1"), ("oid2", "pr2")], attributes=("o_id", "product")
            ),
            Relation.create(
                "Pay", [("pid1", Null("order_ref"), 100)], attributes=("p_id", "ord", "amount")
            ),
        ]
    )


def main():
    database = build_database()
    print("The database of the paper's introduction:\n")
    print(database.to_table())

    # ------------------------------------------------------------------
    # What the student writes, and what SQL answers.
    # ------------------------------------------------------------------
    sql_unpaid = parse_sql("SELECT o_id FROM Orders WHERE o_id NOT IN (SELECT ord FROM Pay)")
    print("\nSQL: SELECT o_id FROM Orders WHERE o_id NOT IN (SELECT ord FROM Pay)")
    print("SQL answer:", run_sql(database, sql_unpaid), " ← nobody gets chased for payment!")
    print(
        "Real SQLite agrees:",
        run_sql(database, sql_unpaid, backend="sqlite"),
        " ← not a simulation artifact",
    )

    sql_tautology = parse_sql("SELECT p_id FROM Pay WHERE ord = 'oid1' OR ord <> 'oid1'")
    print("\nSQL: ... WHERE ord = 'oid1' OR ord <> 'oid1'")
    print("SQL answer:", run_sql(database, sql_tautology), " ← the tautology is 'unknown' on ⊥")

    # ------------------------------------------------------------------
    # What is actually certain.
    # ------------------------------------------------------------------
    unpaid = parse_ra("diff(project[o_id](Orders), rename[Paid(o_id)](project[ord](Pay)))")
    print("\nRelational-algebra query:", unpaid)

    some_unpaid = certain_boolean(
        lambda world: bool(unpaid.evaluate(world)), database, semantics="cwa"
    )
    print("Is 'there exists an unpaid order' certain?       ", some_unpaid)

    certain = certain_answers_intersection(unpaid, database, semantics="cwa")
    print("Which specific orders are certainly unpaid?      ", sorted(certain.rows))

    possible = possible_answers(unpaid, database, semantics="cwa")
    print("Which orders are possibly unpaid?                ", sorted(possible.rows))

    sound = sound_certain_answers(unpaid, database)
    print("Sound evaluation (never a false positive) returns", sorted(sound.rows))

    print(
        "\nSummary: SQL says 'all paid' (wrong); the certain Boolean answer says\n"
        "'at least one order is unpaid' (right); no individual order can be\n"
        "pinned down, which the tuple-level certain answers make explicit."
    )


if __name__ == "__main__":
    main()
