"""Certain answers over an incomplete graph database (Section 7: beyond relations).

Run with::

    python examples/graph_queries.py

Builds a small social/employment graph in which some employers are marked
nulls, evaluates regular path queries and graph patterns naively, and shows
that naive evaluation plus null-filtering produces exactly the certain
answers (validated against brute-force possible-world enumeration).
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.datamodel import Null
from repro.graphs import (
    ConjunctiveRPQ,
    EdgeAtom,
    GraphPattern,
    IncompleteGraph,
    PathAtom,
    certain_answers_rpq,
    naive_certain_answers_crpq,
    naive_certain_answers_pattern,
    naive_certain_answers_rpq,
    parse_rpq,
)
from repro.logic import var


def main():
    # ------------------------------------------------------------------
    # 1. An incomplete graph: bob's and carl's employer is the *same*
    #    unknown company (one shared marked null).
    # ------------------------------------------------------------------
    unknown_employer = Null("e")
    graph = IncompleteGraph(
        edges=[
            ("ann", "knows", "bob"),
            ("bob", "knows", "carl"),
            ("carl", "knows", "dora"),
            ("ann", "worksFor", "acme"),
            ("bob", "worksFor", unknown_employer),
            ("carl", "worksFor", unknown_employer),
            ("dora", "worksFor", "initech"),
        ]
    )
    print("The incomplete graph (⊥e is one shared marked null):\n")
    print(graph.to_text())

    # ------------------------------------------------------------------
    # 2. A regular path query: who can reach an employer via knows* . worksFor?
    # ------------------------------------------------------------------
    reach_employer = parse_rpq("knows* . worksFor")
    naive = naive_certain_answers_rpq(reach_employer, graph)
    brute = certain_answers_rpq(reach_employer, graph, semantics="cwa")
    print("\nRPQ:", reach_employer)
    print("Certain answers (naive evaluation):", sorted(naive.rows))
    print("Certain answers (world enumeration):", sorted(brute.rows))
    print("The two agree — RPQs are monotone and generic, so naive evaluation works.")

    # ------------------------------------------------------------------
    # 3. A graph pattern: who certainly shares an employer?
    # ------------------------------------------------------------------
    x, y, e = var("x"), var("y"), var("e")
    colleagues = GraphPattern(
        [EdgeAtom(x, "worksFor", e), EdgeAtom(y, "worksFor", e)], output=(x, y)
    )
    certain = naive_certain_answers_pattern(colleagues, graph)
    proper = sorted(row for row in certain.rows if row[0] != row[1])
    print("\nPattern:", colleagues)
    print("Certainly colleagues (distinct pairs):", proper)
    print("bob and carl are certainly colleagues although nobody knows where they work.")

    # ------------------------------------------------------------------
    # 4. What is *not* certain: reaching a specific company.
    # ------------------------------------------------------------------
    to_acme = parse_rpq("worksFor")
    naive_all = to_acme.evaluate(graph)
    certain_only = naive_certain_answers_rpq(to_acme, graph)
    print("\nAll naive worksFor edges     :", sorted(naive_all.rows, key=str))
    print("Certain worksFor edges        :", sorted(certain_only.rows))
    print("The null-valued edges are possible, not certain, and are filtered out.")

    # ------------------------------------------------------------------
    # 5. A conjunctive regular path query (CRPQ): pairs of acquaintances —
    #    possibly through intermediaries — who certainly share an employer.
    # ------------------------------------------------------------------
    crpq = ConjunctiveRPQ(
        [
            PathAtom(x, "knows+", y),
            PathAtom(x, "worksFor", e),
            PathAtom(y, "worksFor", e),
        ],
        output=(x, y),
    )
    certain_pairs = naive_certain_answers_crpq(crpq, graph)
    print("\nCRPQ:", crpq)
    print("Certainly acquainted colleagues:", sorted(certain_pairs.rows))


if __name__ == "__main__":
    main()
