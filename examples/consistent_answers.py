"""Consistent query answering: certain answers over the repairs of dirty data.

Run with::

    python examples/consistent_answers.py

Takes a payments table that violates its key constraint, enumerates its
subset repairs, and answers queries with the consistent-answer semantics —
the same certain-answer idea the paper builds its framework around, with
"possible world" instantiated to "repair".
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.algebra import parse_ra
from repro.constraints import FunctionalDependency
from repro.cqa import (
    conflicting_facts,
    consistent_answers,
    count_repairs,
    possible_answers_over_repairs,
    repairs,
)
from repro.datamodel import Database, Relation


def main():
    # ------------------------------------------------------------------
    # 1. A dirty database: two sources disagree about two payment amounts.
    # ------------------------------------------------------------------
    database = Database.from_relations(
        [
            Relation.create(
                "Pay",
                [
                    ("pid1", "oid1", 100),
                    ("pid1", "oid1", 150),   # conflicting amount for pid1
                    ("pid2", "oid2", 80),
                    ("pid2", "oid2", 95),    # conflicting amount for pid2
                    ("pid3", "oid3", 60),
                ],
                attributes=("p_id", "ord", "amount"),
            )
        ]
    )
    pay_key = FunctionalDependency("Pay", ("p_id",), ("ord", "amount"))
    print("The inconsistent database:\n")
    print(database.to_table())
    print("\nKey constraint:", pay_key)

    conflicts = conflicting_facts(database, pay_key)
    print(f"\n{len(conflicts)} conflicting pairs detected:")
    for conflict in conflicts:
        print("  ", conflict)

    # ------------------------------------------------------------------
    # 2. Repairs: every maximal consistent sub-instance.
    # ------------------------------------------------------------------
    all_repairs = repairs(database, pay_key)
    print(f"\n{count_repairs(database, pay_key)} subset repairs "
          f"(2 independent conflicts → 2² repairs):")
    for index, repair in enumerate(all_repairs):
        amounts = sorted((row[0], row[2]) for row in repair.relation("Pay"))
        print(f"  repair {index + 1}: {amounts}")

    # ------------------------------------------------------------------
    # 3. Consistent answers = certain answers over the repairs.
    # ------------------------------------------------------------------
    ids = parse_ra("project[p_id](Pay)")
    amounts = parse_ra("project[p_id, amount](Pay)")
    print("\nConsistently known payment ids :",
          sorted(consistent_answers(lambda d: ids.evaluate(d), database, pay_key).rows))
    print("Consistently known amounts     :",
          sorted(consistent_answers(lambda d: amounts.evaluate(d), database, pay_key).rows))
    print("Possibly correct amounts       :",
          sorted(possible_answers_over_repairs(lambda d: amounts.evaluate(d), database, pay_key).rows))
    print("\nThe disputed amounts drop out of the consistent answers, exactly like")
    print("null-dependent tuples drop out of certain answers over incomplete data.")


if __name__ == "__main__":
    main()
