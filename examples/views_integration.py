"""Answering queries using views: marked nulls born from data integration.

Run with::

    python examples/views_integration.py

A mediator only sees two materialized views over a hidden Emp/Dept base
schema.  The inverse-rules chase reconstructs an incomplete description of
the base data — full of shared marked nulls — and naive evaluation of
positive queries over it yields certain answers.  A query with negation
shows why the same shortcut must not be trusted outside the positive
fragment.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.algebra import parse_ra
from repro.datamodel import Database, DatabaseSchema
from repro.exchange import MappingAtom
from repro.logic import var
from repro.views import (
    ViewCollection,
    ViewDefinition,
    canonical_instance,
    certain_answers_views,
    inverse_mapping,
)


def main():
    x, y, z = var("x"), var("y"), var("z")
    base_schema = DatabaseSchema.from_attributes(
        {"Emp": ("name", "dept"), "Dept": ("dept", "city")}
    )

    # ------------------------------------------------------------------
    # 1. The views the sources expose (the base data itself is hidden).
    # ------------------------------------------------------------------
    views = ViewCollection(
        base_schema,
        [
            ViewDefinition(
                "EmpCity", (x, z), [MappingAtom("Emp", (x, y)), MappingAtom("Dept", (y, z))]
            ),
            ViewDefinition("Emps", (x,), [MappingAtom("Emp", (x, y))]),
        ],
    )
    print("View definitions (LAV):")
    print(views)

    extensions = Database(
        views.view_schema(),
        {
            "EmpCity": [("ann", "oslo"), ("bob", "rome")],
            "Emps": [("ann",), ("bob",), ("cleo",)],
        },
    )
    print("\nWhat the mediator can see:\n")
    print(extensions.to_table())

    # ------------------------------------------------------------------
    # 2. Inverse rules + chase: an incomplete picture of the base data.
    # ------------------------------------------------------------------
    print("\nInverse rules:")
    print(inverse_mapping(views))
    instance = canonical_instance(views, extensions)
    print("\nCanonical base instance (marked nulls = unknown departments):\n")
    print(instance.to_table())

    # ------------------------------------------------------------------
    # 3. Certain answers to base-schema queries, from the views alone.
    # ------------------------------------------------------------------
    employees = parse_ra("project[#0](Emp)")
    in_oslo = parse_ra("project[#0](select[#1 = #2 and #3 = 'oslo'](product(Emp, Dept)))")
    departments = parse_ra("project[#1](Emp)")

    print("Certainly employees           :",
          sorted(certain_answers_views(employees, views, extensions).rows))
    print("Certainly working in Oslo     :",
          sorted(certain_answers_views(in_oslo, views, extensions).rows))
    print("Certainly known departments   :",
          sorted(certain_answers_views(departments, views, extensions).rows),
          " (none — the views hide them)")

    # ------------------------------------------------------------------
    # 4. Negation over views: naive evaluation overclaims.
    # ------------------------------------------------------------------
    not_in_oslo = parse_ra(
        "diff(project[#0](Emp), "
        "project[#0](select[#1 = #2 and #3 = 'oslo'](product(Emp, Dept))))"
    )
    naive = certain_answers_views(not_in_oslo, views, extensions)
    print("\n'Employees certainly NOT working in Oslo' via naive evaluation:",
          sorted(naive.rows))
    print("…but cleo and bob might work in Oslo for all the views tell us —")
    print("naive evaluation of non-positive queries over views is unsound,")
    print("exactly the misuse the paper's Section 7 warns about.")


if __name__ == "__main__":
    main()
