"""RA_cwa in action: trusting division queries under the closed-world semantics.

Run with::

    python examples/division_cwa.py

The Section 6.2 message of the paper: positive relational algebra extended
with division (by base relations or RA(Δ,π,×,∪) queries) can be evaluated
naively under CWA and the answers are certain.  This script runs the
classic "students who take every course" query over an incomplete
enrolment database and cross-checks naive evaluation against brute-force
possible-world enumeration.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

import repro
from repro.algebra import classify, parse_ra
from repro.core import explain_method
from repro.datamodel import Database, Null, Relation
from repro.logic import ra_to_calculus


def build_database():
    return Database.from_relations(
        [
            Relation.create(
                "Enroll",
                [
                    ("alice", "db"),
                    ("alice", "os"),
                    ("alice", "ml"),
                    ("bob", "db"),
                    ("bob", Null("bob_other")),
                    ("carol", "db"),
                    ("carol", "os"),
                ],
                attributes=("student", "course"),
            ),
            Relation.create("Courses", [("db",), ("os",), ("ml",)], attributes=("course",)),
        ]
    )


def main():
    database = build_database()
    print("Incomplete enrolment data (bob's second course is unknown):\n")
    print(database.to_table())

    query = parse_ra("divide(Enroll, Courses)")
    print("\nQuery:", query)
    print("Fragment:", classify(query).value)
    print("Naive evaluation trustworthy under CWA?", explain_method(query, "cwa"))
    print("Naive evaluation trustworthy under OWA?", explain_method(query, "owa"))

    session = repro.connect(database, semantics="cwa")
    handle = session.query(query)
    naive = handle.certain(method="naive")
    exact = handle.certain(method="enumeration")
    print("\nStudents certainly taking every course (naive):", sorted(naive.rows))
    print("Students certainly taking every course (exact):", sorted(exact.rows))
    assert naive.rows == exact.rows

    # The Pos∀G view of the same query (Section 6.2: RA_cwa = Pos∀G).
    translated = ra_to_calculus(query, database.schema)
    print("\nThe same query in relational calculus (a Pos∀G formula):")
    print(" ", translated)

    # Under OWA the division answer would not be certain: a world may add a
    # course nobody heard of.  Show the contrast on fully complete data.
    complete = database.map_values(lambda v: "os" if isinstance(v, Null) else v)
    owa_session = repro.connect(complete, semantics="owa")
    owa_exact = owa_session.query(query).certain(method="enumeration", max_extra_facts=1)
    print("\nOn complete data, certain answers under OWA:", sorted(owa_exact.rows))
    print("(empty: an open world might always contain one more course)")


if __name__ == "__main__":
    main()
