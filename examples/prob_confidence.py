"""Probabilistic c-tables: ranked answers with exact confidence.

Run with::

    python examples/prob_confidence.py

A c-table plus a probability distribution over its nulls is a pc-table:
every possible world gets a probability, and each answer tuple's
confidence is the probability of its lineage condition.  This demo
builds a small supplier database with uncertain attributes, ranks join
answers by exact probability, conditions on partial knowledge
(Koch–Olteanu), and shows the budgeted Monte Carlo fallback.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

import repro
from repro.algebra import parse_ra
from repro.datamodel import Database, Eq, Null, Relation


def main():
    # ------------------------------------------------------------------
    # 1. A pc-table: uncertain city and an exclusive either/or rating.
    # ------------------------------------------------------------------
    city = Null("city")          # where is supplier s2 based?
    r1, r2 = Null("r1"), Null("r2")  # ratings of s1/s2 — correlated!

    model = repro.ProbabilityModel(
        independent={city: {"Oslo": 0.7, "Paris": 0.3}},
        blocks=[
            # One audit report covers both suppliers: either both scored
            # "A", or s1 slipped to "B" — never any other combination.
            repro.ExclusiveBlock(
                [
                    ({r1: "A", r2: "A"}, 0.6),
                    ({r1: "B", r2: "A"}, 0.4),
                ]
            )
        ],
    )

    database = Database.from_relations(
        [
            Relation.create(
                "Supplier",
                [("s1", "Oslo", r1), ("s2", city, r2)],
                attributes=("sid", "scity", "rating"),
            ),
            Relation.create(
                "Route",
                [("Oslo", "fast"), ("Paris", "slow")],
                attributes=("scity", "shipping"),
            ),
        ]
    )

    query = parse_ra("project[sid, shipping, rating](join(Supplier, Route))")

    # ------------------------------------------------------------------
    # 2. Ranked answers: P(tuple ∈ answer), exactly.
    # ------------------------------------------------------------------
    with repro.connect(database, semantics="prob", model=model) as session:
        print("P(answer):")
        for row, p in session.query(query).confidence():
            print(f"  {row}  ->  {p:.3f}")

        # --------------------------------------------------------------
        # 3. Conditioning: a field report pins down s2's city.
        # --------------------------------------------------------------
        print("\nP(answer | s2 based in Oslo):")
        conditioned = session.query(query).condition_on(Eq(city, "Oslo"))
        for row, p in conditioned.confidence():
            print(f"  {row}  ->  {p:.3f}")

        # --------------------------------------------------------------
        # 4. The exact evaluator explains itself.
        # --------------------------------------------------------------
        print("\nexplain():")
        for line in session.query(query).explain().splitlines():
            if "confidence" in line or "semantics" in line:
                print(" ", line)

    # ------------------------------------------------------------------
    # 5. Budgets: confidence computation is #P-hard in general.  On a
    #    database whose rows *share* nulls (entangled lineages forcing
    #    Shannon expansion), a tight budget cuts exact evaluation off
    #    and the remaining answers degrade to Monte Carlo intervals.
    # ------------------------------------------------------------------
    x, y = Null("x"), Null("y")
    entangled = Database.from_relations(
        [
            Relation.create("R", [(x, y), (y, x), (x, 2)], attributes=("a", "b")),
            Relation.create("S", [(y, "p"), (2, "q")], attributes=("b", "c")),
        ]
    )
    shared = repro.ProbabilityModel(
        independent={x: {1: 0.5, 2: 0.5}, y: {1: 0.4, 2: 0.6}}
    )
    with repro.connect(entangled, semantics="prob", model=shared) as session:
        result = session.query(parse_ra("join(R, S)")).confidence(
            budget=repro.Budget(max_worlds=20), samples=20_000, seed=42
        )
        print("\nentangled join under a 20-world budget:")
        for row, p in result:
            if isinstance(p, repro.ConfidenceInterval):
                print(f"  {row}  ->  {p.estimate:.3f} in [{p.low:.3f}, {p.high:.3f}] (sampled)")
            else:
                print(f"  {row}  ->  {float(p):.3f} (exact)")


if __name__ == "__main__":
    main()
