"""Data exchange with marked nulls: the Order → Cust/Pref mapping at work.

Run with::

    python examples/data_exchange.py

Builds the paper's schema mapping, chases a source database into a
canonical solution full of marked nulls, and answers queries over the
target with certain-answer semantics — including one query for which naive
evaluation would silently produce wrong answers.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.algebra import parse_ra
from repro.datamodel import Database
from repro.exchange import (
    canonical_solution,
    certain_answers_exchange,
    chase,
    core_solution,
    order_preferences_mapping,
)
from repro.logic import FOQuery, Not, atom, var


def main():
    mapping = order_preferences_mapping()
    print("Schema mapping:")
    print(" ", mapping)

    source = Database(
        mapping.source_schema,
        {"Order": [("oid1", "pr1"), ("oid2", "pr2"), ("oid3", "pr1")]},
    )
    print("\nSource instance:\n")
    print(source.to_table())

    result = chase(mapping, source)
    print(f"\nChase: {result.triggers_fired} triggers fired, "
          f"{result.nulls_introduced} marked nulls introduced.\n")
    print(result.target.to_table())

    core = core_solution(mapping, source)
    print(f"\nCore solution has {core.size()} facts "
          f"(canonical has {result.target.size()}).")

    # ------------------------------------------------------------------
    # Certain answers over the exchanged data.
    # ------------------------------------------------------------------
    preferred = parse_ra("project[product](Pref)")
    print("\nCertainly preferred products:",
          sorted(certain_answers_exchange(mapping, source, preferred).rows))

    who = parse_ra("project[c_id](Cust)")
    print("Certainly known customer ids :",
          sorted(certain_answers_exchange(mapping, source, who).rows),
          " (none — they are all invented nulls)")

    linked = parse_ra("project[product](join(Cust, Pref))")
    print("Products certainly linked to a customer:",
          sorted(certain_answers_exchange(mapping, source, linked).rows))

    # ------------------------------------------------------------------
    # A query with negation: naive evaluation is no longer trustworthy.
    # ------------------------------------------------------------------
    p = var("p")
    not_alices = FOQuery(Not(atom("Pref", "alice", p)), (p,))
    naive = certain_answers_exchange(mapping, source, not_alices, method="naive")
    exact = certain_answers_exchange(
        mapping, source, not_alices, method="enumeration", semantics="owa", max_extra_facts=1
    )
    print("\nQuery with negation: products not preferred by 'alice'")
    print("  naive evaluation claims:", sorted(naive.rows))
    print("  actually certain       :", sorted(exact.rows))
    print("  → exchange systems that naively evaluate non-UCQ queries overclaim.")


if __name__ == "__main__":
    main()
