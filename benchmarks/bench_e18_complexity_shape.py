"""Benchmark E18 — the headline complexity picture of Section 2.

Two sweeps:

* over the number of nulls (fixed database size): naive evaluation of a
  positive query stays flat, intersection-of-worlds grows exponentially —
  the operational face of AC⁰ vs coNP-complete;
* over the database size (fixed nulls): both grow polynomially, so the
  exponential separation is genuinely in the number of nulls.

An ablation is included: the same positive query evaluated through the
natural-join (hash) path vs an equivalent product+selection plan, to show
the engine-level design choice called out in DESIGN.md.
"""

import pytest

from repro.algebra import naive_certain_answers, parse_ra
from repro.core import certain_answers_intersection
from repro.semantics import count_cwa_worlds, default_domain
from repro.workloads import random_database

POSITIVE_QUERY = parse_ra("project[#0](select[#1 = #2](product(R0, project[#0](R1))))")
JOIN_PLAN = parse_ra(
    "project[a](join(rename[A(a, b)](R0), rename[B(b, c)](R1)))"
)
FULL_RA_QUERY = parse_ra("diff(project[#0](R0), project[#0](R1))")

NULL_SWEEP = [0, 1, 2, 3]
SIZE_SWEEP = [5, 15, 40]


def _db(num_nulls, rows=6):
    return random_database(
        num_relations=2, arity=2, rows_per_relation=rows, num_nulls=num_nulls, seed=21
    )


class TestNullSweep:
    @pytest.mark.parametrize("num_nulls", NULL_SWEEP)
    def test_naive_positive_query(self, benchmark, num_nulls):
        database = _db(num_nulls)
        benchmark.group = f"e18 nulls={num_nulls}"
        benchmark(naive_certain_answers, POSITIVE_QUERY, database)

    @pytest.mark.parametrize("num_nulls", NULL_SWEEP[:3])
    def test_enumeration_positive_query(self, benchmark, num_nulls):
        database = _db(num_nulls)
        benchmark.group = f"e18 nulls={num_nulls}"
        benchmark(certain_answers_intersection, POSITIVE_QUERY, database, "cwa")

    @pytest.mark.parametrize("num_nulls", NULL_SWEEP[:3])
    def test_enumeration_full_ra_query(self, benchmark, num_nulls):
        database = _db(num_nulls)
        benchmark.group = f"e18 nulls={num_nulls}"
        benchmark(certain_answers_intersection, FULL_RA_QUERY, database, "cwa")


class TestSizeSweep:
    @pytest.mark.parametrize("rows", SIZE_SWEEP)
    def test_naive_positive_query(self, benchmark, rows):
        database = _db(2, rows=rows)
        benchmark.group = f"e18 rows={rows}"
        benchmark(naive_certain_answers, POSITIVE_QUERY, database)

    @pytest.mark.parametrize("rows", SIZE_SWEEP[:2])
    def test_enumeration_positive_query(self, benchmark, rows):
        database = _db(2, rows=rows)
        benchmark.group = f"e18 rows={rows}"
        benchmark(certain_answers_intersection, POSITIVE_QUERY, database, "cwa")


class TestJoinPlanAblation:
    @pytest.mark.parametrize("rows", SIZE_SWEEP)
    def test_hash_join_plan(self, benchmark, rows):
        database = _db(2, rows=rows)
        benchmark.group = f"e18 ablation rows={rows}"
        benchmark(JOIN_PLAN.evaluate, database)

    @pytest.mark.parametrize("rows", SIZE_SWEEP)
    def test_product_selection_plan(self, benchmark, rows):
        database = _db(2, rows=rows)
        benchmark.group = f"e18 ablation rows={rows}"
        benchmark(POSITIVE_QUERY.evaluate, database)


def test_report_table(benchmark, report):
    def build_rows():
        rows = []
        for num_nulls in NULL_SWEEP:
            database = _db(num_nulls)
            domain = default_domain(database)
            rows.append(
                [
                    num_nulls,
                    database.size(),
                    len(domain),
                    count_cwa_worlds(database, domain),
                    len(naive_certain_answers(POSITIVE_QUERY, database)),
                ]
            )
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    report(
        "E18: worlds to enumerate vs naive evaluation (work grows only with nulls)",
        ["nulls", "facts", "domain", "worlds (domain^nulls)", "|naive answer|"],
        rows,
    )
    worlds = [row[3] for row in rows]
    assert all(earlier <= later for earlier, later in zip(worlds, worlds[1:]))
