"""Benchmark E4 — chase cost and null generation for schema mappings.

Regenerates the Section 1 schema-mapping scenario at scale: chase time
grows linearly with the number of source facts, and the number of marked
nulls introduced equals the number of existential positions fired
(one per Order tuple for the paper's mapping; ``length − 1`` per edge for
the chain mapping).
"""

import pytest

from repro.exchange import chase, order_preferences_mapping
from repro.workloads import chain_mapping, order_preferences_source, random_graph_source

SOURCE_SIZES = [10, 50, 200]
CHAIN_LENGTHS = [2, 4, 8]


@pytest.mark.parametrize("size", SOURCE_SIZES)
def test_chase_order_preferences(benchmark, size):
    mapping = order_preferences_mapping()
    source = order_preferences_source(num_orders=size, seed=1)
    benchmark.group = f"e04 orders={size}"
    result = benchmark(chase, mapping, source)
    assert result.nulls_introduced == size


@pytest.mark.parametrize("length", CHAIN_LENGTHS)
def test_chase_chain_mapping(benchmark, length):
    mapping = chain_mapping(length)
    source = random_graph_source(num_nodes=10, num_edges=30, seed=2)
    benchmark.group = f"e04 chain length={length}"
    result = benchmark(chase, mapping, source)
    assert result.nulls_introduced == 30 * (length - 1)


@pytest.mark.parametrize("size", SOURCE_SIZES[:2])
def test_restricted_chase(benchmark, size):
    mapping = order_preferences_mapping()
    source = order_preferences_source(num_orders=size, seed=1)
    benchmark.group = f"e04 orders={size}"
    benchmark(chase, mapping, source, False)


def test_report_table(benchmark, report):
    def build_rows():
        rows = []
        mapping = order_preferences_mapping()
        for size in SOURCE_SIZES:
            source = order_preferences_source(num_orders=size, seed=1)
            result = chase(mapping, source)
            rows.append(
                [size, result.triggers_fired, result.nulls_introduced, result.target.size()]
            )
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    report(
        "E4: chase of Order(i,p) → ∃x Cust(x), Pref(x,p) — linear growth",
        ["source facts", "triggers fired", "nulls introduced", "target facts"],
        rows,
    )
    for source_facts, triggers, nulls, target_facts in rows:
        assert triggers == source_facts
        assert nulls == source_facts
        assert target_facts == 2 * source_facts
