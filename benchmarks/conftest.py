"""Shared configuration and reporting helpers for the benchmark suite.

Every benchmark module regenerates one experiment from DESIGN.md §3/§4.
Absolute timings depend on the machine; what must reproduce is the *shape*
(who wins, by roughly what factor, where the crossover falls).  To make the
shape visible without inspecting pytest-benchmark's JSON, each module also
prints a small table of the series it measured (via the ``report`` fixture).
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def format_table(title, headers, rows):
    """Render a small ASCII table used by the benchmark reports."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [f"\n=== {title} ==="]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


@pytest.fixture(scope="module")
def report():
    """Collects (title, headers, rows) tables and prints them at module teardown."""
    tables = []

    def add(title, headers, rows):
        tables.append((title, headers, rows))

    yield add
    for title, headers, rows in tables:
        print(format_table(title, headers, rows))
