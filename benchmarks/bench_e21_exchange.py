"""Benchmark E21 — certain answers in data exchange via chase + naive evaluation.

Regenerates the "applications" claim of Sections 1/7 as a scaling series:
answering a UCQ over the exchanged data by (chase, naive evaluation, drop
nulls) scales linearly with the source, and computing the core of the
canonical solution is the expensive optional step.
"""

import pytest

from repro.algebra import parse_ra
from repro.exchange import (
    canonical_solution,
    certain_answers_exchange,
    core_solution,
    order_preferences_mapping,
)
from repro.workloads import order_preferences_source

QUERY = parse_ra("project[product](Pref)")
JOIN_QUERY = parse_ra("project[product](join(Cust, Pref))")

SOURCE_SIZES = [10, 40, 160]


@pytest.mark.parametrize("size", SOURCE_SIZES)
def test_exchange_certain_answers_projection(benchmark, size):
    mapping = order_preferences_mapping()
    source = order_preferences_source(num_orders=size, seed=3)
    benchmark.group = f"e21 source={size}"
    benchmark(certain_answers_exchange, mapping, source, QUERY)


@pytest.mark.parametrize("size", SOURCE_SIZES)
def test_exchange_certain_answers_join(benchmark, size):
    mapping = order_preferences_mapping()
    source = order_preferences_source(num_orders=size, seed=3)
    benchmark.group = f"e21 source={size}"
    benchmark(certain_answers_exchange, mapping, source, JOIN_QUERY)


@pytest.mark.parametrize("size", SOURCE_SIZES)
def test_core_solution(benchmark, size):
    # The block-based core algorithm (default) makes all sizes feasible;
    # the seed greedy path was intractable beyond ~10 sources.
    mapping = order_preferences_mapping()
    source = order_preferences_source(num_orders=size, seed=3)
    benchmark.group = f"e21 core source={size}"
    benchmark(core_solution, mapping, source)


def test_core_solution_greedy_oracle(benchmark):
    # The greedy whole-instance oracle, at the largest size where it is
    # still tractable, as a reference point for the block-based numbers.
    mapping = order_preferences_mapping()
    source = order_preferences_source(num_orders=10, seed=3)
    benchmark.group = "e21 core source=10"
    result = benchmark.pedantic(
        core_solution, args=(mapping, source), kwargs={"algorithm": "greedy"}, rounds=1
    )
    assert result.size() == core_solution(mapping, source).size()


def test_report_table(benchmark, report):
    def build_rows():
        rows = []
        mapping = order_preferences_mapping()
        for size in SOURCE_SIZES:
            source = order_preferences_source(num_orders=size, seed=3)
            solution = canonical_solution(mapping, source)
            answers = certain_answers_exchange(mapping, source, QUERY)
            rows.append([size, solution.size(), len(solution.nulls()), len(answers)])
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    report(
        "E21: exchange certain answers — everything scales linearly with the source",
        ["source facts", "solution facts", "solution nulls", "|certain answers|"],
        rows,
    )
    assert all(row[1] == 2 * row[0] and row[2] == row[0] for row in rows)
