"""Benchmark E16 — RA_cwa (division) queries: naive evaluation vs enumeration.

The "who takes every course" division query is in ``RA_cwa``, so CWA-naive
evaluation is correct; the series shows it is also orders of magnitude
cheaper than the intersection-of-worlds baseline as soon as nulls appear,
and that it scales polynomially with the number of students.
"""

import pytest

from repro.algebra import naive_certain_answers, parse_ra
from repro.core import certain_answers_intersection
from repro.workloads import enrolment

QUERY = parse_ra("divide(Enroll, Courses)")

STUDENT_COUNTS = [5, 15, 40]


def _db(num_students, null_fraction=0.1, courses=3):
    return enrolment(
        num_students=num_students,
        num_courses=courses,
        enrol_probability=0.8,
        null_fraction=null_fraction,
        seed=4,
    )


@pytest.mark.parametrize("num_students", STUDENT_COUNTS)
def test_naive_division(benchmark, num_students):
    database = _db(num_students)
    benchmark.group = f"e16 students={num_students}"
    benchmark(naive_certain_answers, QUERY, database)


@pytest.mark.parametrize("num_students", STUDENT_COUNTS[:1])
def test_enumeration_division(benchmark, num_students):
    database = _db(num_students)
    benchmark.group = f"e16 students={num_students}"
    benchmark(certain_answers_intersection, QUERY, database, "cwa")


@pytest.mark.parametrize("num_students", STUDENT_COUNTS)
def test_naive_division_complete_data(benchmark, num_students):
    database = _db(num_students, null_fraction=0.0)
    benchmark.group = f"e16 complete students={num_students}"
    benchmark(naive_certain_answers, QUERY, database)


def test_report_table(benchmark, report):
    def build_rows():
        rows = []
        for num_students in STUDENT_COUNTS:
            database = _db(num_students)
            naive = naive_certain_answers(QUERY, database)
            if len(database.nulls()) <= 3:
                exact = certain_answers_intersection(QUERY, database, semantics="cwa")
                agree = naive.rows == exact.rows
                exact_size = len(exact)
            else:
                agree, exact_size = "(guaranteed by Thm)", "-"
            rows.append(
                [num_students, database.size(), len(database.nulls()), len(naive), exact_size, agree]
            )
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    report(
        "E16: division under CWA — naive certain answers (= exact where checked)",
        ["students", "facts", "nulls", "|naive|", "|exact|", "agree?"],
        rows,
    )
    assert rows
