"""Benchmark E23 — consistent query answering: repair explosion vs safe projections.

The number of subset repairs doubles with every independent key conflict,
so intersection-over-repairs blows up exactly like intersection-over-worlds
does with nulls, while a projection that avoids the disputed attribute is
answered at plain-evaluation cost (its consistent answer equals its naive
answer).
"""

import pytest

from repro.algebra import parse_ra
from repro.constraints import FunctionalDependency
from repro.cqa import consistent_answers, count_repairs
from repro.datamodel import Database, Relation

PAY_KEY = FunctionalDependency("Pay", ("p_id",), ("amount",))
CONFLICT_COUNTS = [1, 2, 4, 6]

FULL_QUERY = parse_ra("Pay")
ID_QUERY = parse_ra("project[#0](Pay)")


def _db(num_conflicts, clean_rows=10):
    rows = []
    for i in range(num_conflicts):
        rows.append((f"pid{i}", 100))
        rows.append((f"pid{i}", 200))
    for i in range(clean_rows):
        rows.append((f"clean{i}", 10 * i))
    return Database.from_relations(
        [Relation.create("Pay", rows, attributes=("p_id", "amount"))]
    )


@pytest.mark.parametrize("conflicts", CONFLICT_COUNTS)
def test_consistent_answers_full_query(benchmark, conflicts):
    database = _db(conflicts)
    benchmark.group = f"e23 conflicts={conflicts}"
    benchmark(consistent_answers, lambda d: FULL_QUERY.evaluate(d), database, PAY_KEY)


@pytest.mark.parametrize("conflicts", CONFLICT_COUNTS)
def test_consistent_answers_id_projection(benchmark, conflicts):
    database = _db(conflicts)
    benchmark.group = f"e23 conflicts={conflicts}"
    benchmark(consistent_answers, lambda d: ID_QUERY.evaluate(d), database, PAY_KEY)


@pytest.mark.parametrize("conflicts", CONFLICT_COUNTS)
def test_plain_evaluation_baseline(benchmark, conflicts):
    database = _db(conflicts)
    benchmark.group = f"e23 conflicts={conflicts}"
    benchmark(FULL_QUERY.evaluate, database)


def test_report_table(benchmark, report):
    def build_rows():
        rows = []
        for conflicts in CONFLICT_COUNTS:
            database = _db(conflicts)
            repairs_count = count_repairs(database, PAY_KEY)
            consistent_full = consistent_answers(
                lambda d: FULL_QUERY.evaluate(d), database, PAY_KEY
            )
            consistent_ids = consistent_answers(
                lambda d: ID_QUERY.evaluate(d), database, PAY_KEY
            )
            rows.append(
                [
                    conflicts,
                    database.size(),
                    repairs_count,
                    len(consistent_full),
                    len(consistent_ids),
                ]
            )
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    report(
        "E23: repairs double per conflict; id projection stays fully answerable",
        ["conflicts", "db facts", "repairs", "|consistent full|", "|consistent ids|"],
        rows,
    )
    for conflicts, _facts, repairs_count, full, ids in rows:
        assert repairs_count == 2 ** conflicts
        assert ids == conflicts + 10  # every payment id survives repairing
        assert full == 10  # only the clean tuples are consistent answers
