"""Benchmark E7 — c-table algebra vs explicit possible-world enumeration.

Regenerates the Section 2 strong-representation discussion as a cost series:
building the answer *conditional table* for ``R − S`` stays polynomial in
the data, while materialising ``Q([[D]]_cwa)`` by enumerating valuations
grows with (domain size)^(number of nulls).

Also measures the planned c-table path (hash-consed condition kernel +
physical operators, ``engine="plan"``) against the seed interpreter on a
dense join — the workload whose per-row-pair condition construction the
kernel exists to amortize.  ``run_all.py --quick --check`` gates the same
workload at >= 3x.
"""

import random

import pytest

from repro.algebra import CTableDatabase, ctable_evaluate, parse_ra
from repro.datamodel import Database, Null, Relation
from repro.semantics import answer_space, default_domain

QUERY = parse_ra("diff(R, S)")

CASES = [(4, 1), (6, 2), (8, 3)]  # (|R|, number of nulls in S)

DENSE_QUERY = parse_ra("project[a, c](join(R, S))")
DENSE_CASES = [(40, 6, 0.15), (60, 8, 0.2)]  # (rows per side, join values, null fraction)


def _db(r_size, s_nulls):
    return Database.from_relations(
        [
            Relation.create("R", [(i,) for i in range(r_size)], attributes=("A",)),
            Relation.create("S", [(Null(f"s{i}"),) for i in range(s_nulls)], attributes=("A",)),
        ]
    )


def _dense_ctdb(n, vals, null_fraction, seed=7):
    rng = random.Random(seed)
    rows_r = [
        (f"a{i}", Null(f"x{i % 6}") if rng.random() < null_fraction else rng.randrange(vals))
        for i in range(n)
    ]
    rows_s = [
        (Null(f"y{i % 6}") if rng.random() < null_fraction else rng.randrange(vals), f"c{i}")
        for i in range(n)
    ]
    return CTableDatabase.from_database(
        Database.from_relations(
            [
                Relation.create("R", rows_r, attributes=("a", "b")),
                Relation.create("S", rows_s, attributes=("b", "c")),
            ]
        )
    )


@pytest.mark.parametrize("r_size,s_nulls", CASES)
def test_ctable_algebra(benchmark, r_size, s_nulls):
    database = _db(r_size, s_nulls)
    ctdb = CTableDatabase.from_database(database)
    benchmark.group = f"e07 |R|={r_size} nulls={s_nulls}"
    result = benchmark(ctable_evaluate, QUERY, ctdb)
    assert len(result) == r_size  # one conditional row per R tuple


@pytest.mark.parametrize("r_size,s_nulls", CASES[:2])
def test_world_enumeration(benchmark, r_size, s_nulls):
    database = _db(r_size, s_nulls)
    domain = default_domain(database)
    benchmark.group = f"e07 |R|={r_size} nulls={s_nulls}"
    benchmark(answer_space, QUERY.evaluate, database, "cwa", domain)


@pytest.mark.parametrize("engine", ["plan", "interpreter"])
@pytest.mark.parametrize("n,vals,null_fraction", DENSE_CASES)
def test_ctable_dense_join(benchmark, engine, n, vals, null_fraction):
    ctdb = _dense_ctdb(n, vals, null_fraction)
    benchmark.group = f"e07 dense join n={n} vals={vals} nulls={null_fraction}"
    result = benchmark(ctable_evaluate, DENSE_QUERY, ctdb, engine)
    assert len(result) > n  # dense: strictly more join pairs than rows per side


def test_dense_join_engines_agree():
    """Both engines represent the same worlds on a small dense instance."""
    ctdb = CTableDatabase.from_database(
        Database.from_relations(
            [
                Relation.create(
                    "R", [("a0", 0), ("a1", 1), ("a2", Null("x")), ("a3", 0)], attributes=("a", "b")
                ),
                Relation.create(
                    "S", [(0, "c0"), (1, "c1"), (Null("y"), "c2"), (0, "c3")], attributes=("b", "c")
                ),
            ]
        )
    )
    planned = ctable_evaluate(DENSE_QUERY, ctdb, engine="plan")
    interpreted = ctable_evaluate(DENSE_QUERY, ctdb, engine="interpreter")
    domain = [0, 1, "w0", "w1"]
    assert planned.possible_worlds(domain) == interpreted.possible_worlds(domain)


def test_report_table(benchmark, report):
    def build_rows():
        rows = []
        for r_size, s_nulls in CASES:
            database = _db(r_size, s_nulls)
            domain = default_domain(database)
            ctable = ctable_evaluate(QUERY, CTableDatabase.from_database(database))
            worlds = len(domain) ** s_nulls
            rows.append([r_size, s_nulls, len(domain), len(ctable), worlds])
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    report(
        "E7: representing Q([[D]]_cwa) — c-table rows vs worlds to enumerate",
        ["|R|", "nulls in S", "domain size", "c-table rows", "worlds (domain^nulls)"],
        rows,
    )
    # the representation stays linear while the enumeration explodes
    assert rows[-1][3] == CASES[-1][0]
    assert rows[-1][4] > rows[-1][3] ** 2
