"""Benchmark E7 — c-table algebra vs explicit possible-world enumeration.

Regenerates the Section 2 strong-representation discussion as a cost series:
building the answer *conditional table* for ``R − S`` stays polynomial in
the data, while materialising ``Q([[D]]_cwa)`` by enumerating valuations
grows with (domain size)^(number of nulls).
"""

import pytest

from repro.algebra import CTableDatabase, ctable_evaluate, parse_ra
from repro.datamodel import Database, Null, Relation
from repro.semantics import answer_space, default_domain

QUERY = parse_ra("diff(R, S)")

CASES = [(4, 1), (6, 2), (8, 3)]  # (|R|, number of nulls in S)


def _db(r_size, s_nulls):
    return Database.from_relations(
        [
            Relation.create("R", [(i,) for i in range(r_size)], attributes=("A",)),
            Relation.create("S", [(Null(f"s{i}"),) for i in range(s_nulls)], attributes=("A",)),
        ]
    )


@pytest.mark.parametrize("r_size,s_nulls", CASES)
def test_ctable_algebra(benchmark, r_size, s_nulls):
    database = _db(r_size, s_nulls)
    ctdb = CTableDatabase.from_database(database)
    benchmark.group = f"e07 |R|={r_size} nulls={s_nulls}"
    result = benchmark(ctable_evaluate, QUERY, ctdb)
    assert len(result) == r_size  # one conditional row per R tuple


@pytest.mark.parametrize("r_size,s_nulls", CASES[:2])
def test_world_enumeration(benchmark, r_size, s_nulls):
    database = _db(r_size, s_nulls)
    domain = default_domain(database)
    benchmark.group = f"e07 |R|={r_size} nulls={s_nulls}"
    benchmark(answer_space, QUERY.evaluate, database, "cwa", domain)


def test_report_table(benchmark, report):
    def build_rows():
        rows = []
        for r_size, s_nulls in CASES:
            database = _db(r_size, s_nulls)
            domain = default_domain(database)
            ctable = ctable_evaluate(QUERY, CTableDatabase.from_database(database))
            worlds = len(domain) ** s_nulls
            rows.append([r_size, s_nulls, len(domain), len(ctable), worlds])
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    report(
        "E7: representing Q([[D]]_cwa) — c-table rows vs worlds to enumerate",
        ["|R|", "nulls in S", "domain size", "c-table rows", "worlds (domain^nulls)"],
        rows,
    )
    # the representation stays linear while the enumeration explodes
    assert rows[-1][3] == CASES[-1][0]
    assert rows[-1][4] > rows[-1][3] ** 2
