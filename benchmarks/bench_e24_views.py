"""Benchmark E24 — answering queries using views via the inverse-rules chase.

The canonical instance grows linearly with the number of view tuples (one
marked null per hidden value), and naive evaluation of positive queries
over it stays polynomial — view-based certain answering at ordinary query
evaluation cost, which is the practical pay-off of the paper's programme.
"""

import pytest

from repro.algebra import parse_ra
from repro.datamodel import Database, DatabaseSchema
from repro.exchange import MappingAtom
from repro.logic import var
from repro.views import ViewCollection, ViewDefinition, canonical_instance, certain_answers_views

X, Y, Z = var("x"), var("y"), var("z")

BASE = DatabaseSchema.from_attributes({"Emp": ("name", "dept"), "Dept": ("dept", "city")})

VIEWS = ViewCollection(
    BASE,
    [
        ViewDefinition("EmpCity", (X, Z), [MappingAtom("Emp", (X, Y)), MappingAtom("Dept", (Y, Z))]),
        ViewDefinition("Emps", (X,), [MappingAtom("Emp", (X, Y))]),
    ],
)

QUERY = parse_ra("project[#0](select[#1 = #2 and #3 = 'city0'](product(Emp, Dept)))")

VIEW_SIZES = [10, 30, 90]


def _extensions(size):
    emp_city = [(f"p{i}", f"city{i % 3}") for i in range(size)]
    emps = [(f"p{i}",) for i in range(size)] + [(f"q{i}",) for i in range(size // 2)]
    return Database(VIEWS.view_schema(), {"EmpCity": emp_city, "Emps": emps})


@pytest.mark.parametrize("size", VIEW_SIZES)
def test_canonical_instance_construction(benchmark, size):
    extensions = _extensions(size)
    benchmark.group = f"e24 view tuples={size}"
    benchmark(canonical_instance, VIEWS, extensions)


@pytest.mark.parametrize("size", VIEW_SIZES)
def test_view_based_certain_answers(benchmark, size):
    extensions = _extensions(size)
    benchmark.group = f"e24 view tuples={size}"
    benchmark(certain_answers_views, QUERY, VIEWS, extensions)


def test_report_table(benchmark, report):
    def build_rows():
        rows = []
        for size in VIEW_SIZES:
            extensions = _extensions(size)
            instance = canonical_instance(VIEWS, extensions)
            answer = certain_answers_views(QUERY, VIEWS, extensions)
            rows.append(
                [size, extensions.size(), instance.size(), len(instance.nulls()), len(answer)]
            )
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    report(
        "E24: canonical instance and certain answers scale linearly with the views",
        ["view tuples/view", "view facts", "canonical facts", "marked nulls", "|certain answer|"],
        rows,
    )
    # Linear shape: canonical facts and nulls grow proportionally to the view size.
    assert rows[1][2] > rows[0][2]
    assert rows[2][2] > rows[1][2]
