"""Benchmark E12 — homomorphism-based information-ordering checks.

The orderings ⊑_owa / ⊑_cwa are decided by (strong onto) homomorphism
search.  The series shows how the checks scale with instance size and that
the strong-onto variant costs more than the plain one (it must also cover
every target fact).
"""

import pytest

from repro.core import cwa_leq, owa_leq, wcwa_leq
from repro.datamodel import Valuation
from repro.workloads import random_database

SIZES = [4, 8, 16]


def _pair(rows, seed=5):
    source = random_database(
        num_relations=2, arity=2, rows_per_relation=rows, num_nulls=3, seed=seed
    )
    valuation = Valuation(
        {null: f"v{i}" for i, null in enumerate(sorted(source.nulls(), key=lambda n: n.name))}
    )
    return source, valuation.apply(source)


@pytest.mark.parametrize("rows", SIZES)
def test_owa_ordering_check(benchmark, rows):
    source, target = _pair(rows)
    benchmark.group = f"e12 rows={rows}"
    assert benchmark(owa_leq, source, target)


@pytest.mark.parametrize("rows", SIZES)
def test_cwa_ordering_check(benchmark, rows):
    source, target = _pair(rows)
    benchmark.group = f"e12 rows={rows}"
    assert benchmark(cwa_leq, source, target)


@pytest.mark.parametrize("rows", SIZES)
def test_wcwa_ordering_check(benchmark, rows):
    source, target = _pair(rows)
    benchmark.group = f"e12 rows={rows}"
    assert benchmark(wcwa_leq, source, target)


@pytest.mark.parametrize("rows", SIZES)
def test_negative_owa_check(benchmark, rows):
    source, _ = _pair(rows)
    other = random_database(
        num_relations=2, arity=2, rows_per_relation=rows, num_nulls=0, seed=99
    )
    benchmark.group = f"e12 negative rows={rows}"
    benchmark(owa_leq, source, other)


def test_report_table(benchmark, report):
    def build_rows():
        rows_out = []
        for rows in SIZES:
            source, target = _pair(rows)
            rows_out.append(
                [
                    rows,
                    source.size(),
                    owa_leq(source, target),
                    cwa_leq(source, target),
                    wcwa_leq(source, target),
                ]
            )
        return rows_out

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    report(
        "E12: ordering checks D ⊑ v(D) (all must hold)",
        ["rows/relation", "facts", "⊑_owa", "⊑_cwa", "⊑_wcwa"],
        rows,
    )
    assert all(row[2] and row[3] and row[4] for row in rows)
