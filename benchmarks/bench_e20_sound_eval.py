"""Benchmark E20 — sound evaluation of full relational algebra.

The series shows that the Reiter-style sound evaluation costs a small
constant factor over naive evaluation (one lower/upper pair per node plus
unification checks) while the exact intersection-based answer needs world
enumeration; the report records that it never produced a false positive
and how much of the exact answer it recovered.
"""

import pytest

from repro.algebra import naive_evaluate, parse_ra
from repro.core import certain_answers_intersection, sound_certain_answers
from repro.workloads import orders_payments, random_database, random_full_ra_query

QUERY = parse_ra("diff(project[o_id](Orders), rename[Paid(o_id)](project[ord](Pay)))")

ORDER_SIZES = [10, 30, 80]


def _db(num_orders):
    return orders_payments(
        num_orders=num_orders, num_payments=num_orders // 2, null_fraction=0.3, seed=13
    )


@pytest.mark.parametrize("num_orders", ORDER_SIZES)
def test_naive_evaluation(benchmark, num_orders):
    database = _db(num_orders)
    benchmark.group = f"e20 orders={num_orders}"
    benchmark(naive_evaluate, QUERY, database)


@pytest.mark.parametrize("num_orders", ORDER_SIZES)
def test_sound_evaluation(benchmark, num_orders):
    database = _db(num_orders)
    benchmark.group = f"e20 orders={num_orders}"
    benchmark(sound_certain_answers, QUERY, database)


@pytest.mark.parametrize("seed", range(3))
def test_sound_evaluation_random_queries(benchmark, seed):
    database = random_database(num_nulls=3, rows_per_relation=8, seed=seed)
    query = random_full_ra_query(database.schema, seed=seed)
    benchmark.group = "e20 random full-RA"
    benchmark(sound_certain_answers, query, database)


def test_report_soundness_and_recall(benchmark, report):
    def build_rows():
        rows = []
        for seed in range(6):
            database = random_database(num_nulls=2, rows_per_relation=3, seed=seed)
            query = random_full_ra_query(database.schema, seed=seed)
            sound = sound_certain_answers(query, database)
            exact = certain_answers_intersection(query, database, semantics="cwa")
            rows.append(
                [
                    seed,
                    len(sound),
                    len(exact),
                    sound.rows <= exact.rows,
                    f"{len(sound)}/{len(exact)}" if len(exact) else "n/a",
                ]
            )
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    report(
        "E20: sound evaluation — no false positives, measured recall",
        ["seed", "|sound|", "|exact|", "sound ⊆ exact?", "recall"],
        rows,
    )
    assert all(row[3] for row in rows)
