"""Benchmark E30 — the serving tier: concurrent throughput + warm executors.

Two questions, both gated in ``run_all.py --quick --check`` as
``gate:serve``:

* **Concurrent-client throughput** — eight async clients hammering one
  :class:`repro.serve.Server` (whose relation-returning reads all share a
  single *frozen* session lock-free) must produce answers identical to a
  sequential session on the same database, at a rate above a conservative
  floor.  The differential half is the load-bearing part: a frozen plan
  cache or condition kernel that mutates under concurrency shows up as a
  wrong answer here long before it shows up as a crash.
* **Warm-executor speedup** — the ``workers=`` bugfix: a Session now
  holds one :class:`~concurrent.futures.ProcessPoolExecutor` across
  calls instead of forking a fresh pool per ``certain()``.  On a
  workload small enough that pool startup dominates, N calls through an
  injected warm executor must beat N per-call pools by at least
  :data:`WARM_EXECUTOR_MIN_SPEEDUP`.

Absolute throughput depends on the machine; the floor is set an order of
magnitude below what a warmed frozen session sustains so the gate checks
*liveness under concurrency*, not hardware.
"""

import asyncio
import time
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.algebra import parse_ra
from repro.datamodel import Database, Null

# --- throughput gate shape -------------------------------------------------
SERVE_CLIENTS = 8
SERVE_ROUNDS = 5  # each client runs every query this many times
SERVE_POOL_SIZE = 8
# Queries per second, across all clients.  A warmed frozen session answers
# these in low milliseconds; the floor only catches serialization collapse
# (e.g. a lock re-introduced on the shared read path) or outright hangs.
THROUGHPUT_FLOOR_QPS = 10.0

# --- warm-executor gate shape ----------------------------------------------
WARM_WORKERS = 2
WARM_CALLS = 6
WARM_EXECUTOR_MIN_SPEEDUP = 1.5

SERVE_QUERIES = (
    parse_ra("project[#0](R)"),
    parse_ra("project[#0](select[#1 = #2](product(R, S)))"),
)


def serve_database(rows: int = 120) -> Database:
    """The serving workload: a joinable pair with a sprinkle of nulls."""
    r = [(i, i % 7) for i in range(rows)]
    r.append((rows, Null("n1")))
    r.append((rows + 1, Null("n2")))
    s = [(i % 7, "c%d" % i) for i in range(rows // 4)]
    return Database.from_dict({"R": r, "S": s})


# A deliberately tiny enumeration workload: two nulls over a four-constant
# active domain is 16 worlds — one worker chunk, milliseconds of query
# work — so per-call pool forking is the dominant cost by construction.
WARM_QUERY = parse_ra("project[#0](W)")


def warm_database() -> Database:
    return Database.from_dict(
        {"W": [(1, 2), (2, 3), (3, Null("x")), (Null("y"), 5)]}
    )


# ----------------------------------------------------------------------
# Gate: eight async clients vs one sequential session
# ----------------------------------------------------------------------
async def _drive_clients(server, expected):
    """``SERVE_CLIENTS`` coroutines, each replaying the query set in turn."""

    async def client(offset):
        results = []
        for round_index in range(SERVE_ROUNDS):
            for index in range(len(SERVE_QUERIES)):
                pick = (offset + round_index + index) % len(SERVE_QUERIES)
                answer = await server.certain(SERVE_QUERIES[pick])
                results.append((pick, answer))
        return results

    batches = await asyncio.gather(*(client(i) for i in range(SERVE_CLIENTS)))
    mismatches = 0
    for batch in batches:
        for pick, answer in batch:
            if answer != expected[pick]:
                mismatches += 1
    return mismatches


def run_throughput_gate():
    """The concurrent differential + throughput half of ``gate:serve``."""
    import repro
    from repro.serve import Server

    database = serve_database()
    with repro.connect(database, engine="sqlite") as sequential:
        expected = [sequential.query(q).certain() for q in SERVE_QUERIES]

    requests = SERVE_CLIENTS * SERVE_ROUNDS * len(SERVE_QUERIES)
    with Server(
        database,
        pool_size=SERVE_POOL_SIZE,
        engine="sqlite",
        warm=SERVE_QUERIES,
    ) as server:
        started = time.perf_counter()
        mismatches = asyncio.run(_drive_clients(server, expected))
        elapsed = time.perf_counter() - started
        served = server.stats()["served"]

    qps = requests / elapsed if elapsed > 0 else 0.0
    passed = mismatches == 0 and served == requests and qps >= THROUGHPUT_FLOOR_QPS
    return {
        "passed": passed,
        "clients": SERVE_CLIENTS,
        "requests": requests,
        "mismatches": mismatches,
        "seconds": elapsed,
        "qps": qps,
        "note": (
            f"{SERVE_CLIENTS} async clients, {requests} requests, "
            f"{qps:.0f} q/s (floor {THROUGHPUT_FLOOR_QPS:.0f}), "
            f"{mismatches} differential mismatches"
        ),
    }


# ----------------------------------------------------------------------
# Gate: session-warm executor vs a fresh pool per call
# ----------------------------------------------------------------------
def run_warm_executor_gate():
    """The warm-executor half of ``gate:serve``.

    Calls :func:`enumerate_certain_answers` directly so the two paths
    differ *only* in pool lifetime: the cold side takes the default
    per-call ``ProcessPoolExecutor`` (the pre-fix behaviour, still used
    by the deprecated shims), the warm side injects one primed executor
    across all :data:`WARM_CALLS` calls (what ``Session`` now does).
    """
    from repro.semantics.certain import enumerate_certain_answers

    database = warm_database()
    evaluate = WARM_QUERY.evaluate

    def cold_call():
        return enumerate_certain_answers(
            evaluate, database, semantics="cwa", workers=WARM_WORKERS
        )

    answers = []
    started = time.perf_counter()
    for _ in range(WARM_CALLS):
        answers.append(cold_call())
    cold_seconds = time.perf_counter() - started

    with ProcessPoolExecutor(max_workers=WARM_WORKERS) as pool:
        def warm_call():
            return enumerate_certain_answers(
                evaluate,
                database,
                semantics="cwa",
                workers=WARM_WORKERS,
                executor=pool,
            )

        warm_call()  # untimed: forks the workers once, like Session's first call
        started = time.perf_counter()
        for _ in range(WARM_CALLS):
            answers.append(warm_call())
        warm_seconds = time.perf_counter() - started

    # The sequential baseline runs *last*: evaluating in this process
    # caches an unpicklable compiled plan on the expression, which would
    # flip ``_can_pickle(evaluate)`` and silently turn every timed call
    # above into the sequential fallback.
    baseline = enumerate_certain_answers(evaluate, database, semantics="cwa")
    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    correct = all(answer == baseline for answer in answers)
    passed = correct and speedup >= WARM_EXECUTOR_MIN_SPEEDUP
    return {
        "passed": passed,
        "calls": WARM_CALLS,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": speedup,
        "correct": correct,
        "note": (
            f"warm executor {speedup:.1f}x over per-call pools on "
            f"{WARM_CALLS} calls (floor {WARM_EXECUTOR_MIN_SPEEDUP}x), "
            f"answers {'equal' if correct else 'DIVERGED'}"
        ),
    }


# ----------------------------------------------------------------------
# pytest cases
# ----------------------------------------------------------------------
def test_serve_throughput_gate(report):
    verdict = run_throughput_gate()
    report(
        "E30: concurrent serving gate",
        ["clients", "requests", "q/s", "floor", "mismatches"],
        [
            [
                verdict["clients"],
                verdict["requests"],
                f"{verdict['qps']:.0f}",
                f"{THROUGHPUT_FLOOR_QPS:.0f}",
                verdict["mismatches"],
            ]
        ],
    )
    assert verdict["passed"], verdict


def test_warm_executor_gate(report):
    verdict = run_warm_executor_gate()
    report(
        "E30: warm-executor gate",
        ["calls", "per-call pools (s)", "warm executor (s)", "speedup", "floor"],
        [
            [
                verdict["calls"],
                f"{verdict['cold_seconds']:.2f}",
                f"{verdict['warm_seconds']:.2f}",
                f"{verdict['speedup']:.1f}x",
                f"{WARM_EXECUTOR_MIN_SPEEDUP}x",
            ]
        ],
    )
    assert verdict["passed"], verdict


@pytest.mark.parametrize("clients", [1, SERVE_CLIENTS])
def test_server_certain_latency(benchmark, clients):
    """Warm frozen-session dispatch latency, solo vs under concurrency."""
    import repro  # noqa: F401  (keeps the import shape of the gate paths)
    from repro.serve import Server

    database = serve_database()
    query = SERVE_QUERIES[0]

    async def burst(server):
        await asyncio.gather(*(server.certain(query) for _ in range(clients)))

    with Server(
        database, pool_size=SERVE_POOL_SIZE, engine="sqlite", warm=SERVE_QUERIES
    ) as server:
        asyncio.run(burst(server))  # warm the pool threads
        benchmark.group = f"e30 clients={clients}"
        benchmark(lambda: asyncio.run(burst(server)))
