#!/usr/bin/env python
"""Run every benchmark family and emit a single ``BENCH_results.json``.

Unlike the pytest-benchmark modules (``bench_e*.py``), which measure with
statistical rigour but take minutes and scatter their output, this runner
times one representative operation per benchmark family at its largest
default size and writes a single machine-readable JSON file so future PRs
have a perf trajectory to compare against.

For the join-heavy families (e01, e12, e18) it also measures the *seed*
execution paths — the tree-walking interpreter (``engine="interpreter"``)
and the unindexed homomorphism search (``use_index=False``) — and reports
the speedup of the physical evaluation engine over them.  The e21_core
family compares the block-based core algorithm against the greedy oracle
(``algorithm="greedy"``); the oracle is intractable at the gated size, so
it runs in a child process killed at a fixed budget and its recorded time
is a lower bound (making the gated speedup a lower bound too).

Usage::

    python benchmarks/run_all.py                # all families
    python benchmarks/run_all.py --quick        # gated families + speedups only
    python benchmarks/run_all.py --check        # exit 1 unless join-heavy and
                                                # c-table speedups are all >= 3x
    python benchmarks/run_all.py --compare      # exit 1 if any op regressed
                                                # >20% vs the committed snapshot

``--compare`` diffs the fresh run against an earlier report (default: the
committed ``BENCH_results.json``).  To stay meaningful across machines of
different absolute speed, per-op ratios are normalized by the median ratio
over all shared ops before the 20% threshold is applied — a uniformly
slower machine shifts every ratio equally and trips nothing, while a
single op regressing relative to the rest does.  Ops whose fresh *and*
baseline runtimes are below a minimum-runtime floor are reported but never
flagged: at sub-millisecond scale the measured time is mostly dispatch
jitter, which used to flap the gate.  Families flagged on the first pass
are re-measured once before failing, so a transient load spike during one
stretch of the run does not produce a false regression.

The e25 family (SQL backend) contributes two boolean ``gate:`` ops instead
of speedups: ``gate:correctness`` (``engine="sqlite"`` equals the physical
engine on the bench workload) and ``gate:scale`` (SQLite completes a
workload the in-memory path cannot even load under a capped address
space).  The chaos family contributes ``gate:chaos``: the fault and
resume differential suites must pass with zero leaked SQLite temp files
(``docs/robustness.md``).  The cancel family contributes ``gate:cancel``:
a deadline budget must abort a running SQLite statement as a typed
``BudgetExceeded`` within 250 ms of expiry, leaking no temp tables.
The serve family contributes ``gate:serve``: eight concurrent async
clients over one frozen session must match a sequential session
differentially above a throughput floor, and a session-warm worker
executor must beat per-call process pools by >= 1.5x on a
startup-dominated workload (``docs/serving.md``).  The obs family
contributes ``gate:obs``: with tracing compiled into every layer but
disabled, the e01-family query must run within 5% of a
``metrics=False`` session, and ``Query.analyze()`` row counts must
match the interpreter oracle's cardinalities on a randomized workload
across both engines (``docs/observability.md``).
The prob family contributes ``gate:prob``: on a dense join whose
lineage spans 14 independent nulls, exact confidence by decomposition
must match full world enumeration differentially and beat it by >= 10x
(``docs/probability.md``).
``--check`` fails when any gate reports ``passed: false``.

Every family records its wall-clock cost under ``wall_seconds`` in the
report, so the per-gate CI budget is visible in the perf trajectory.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Any, Callable, Dict, Optional

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))


def _pin_hash_seed() -> None:
    """Re-exec with ``PYTHONHASHSEED=0`` when hashing is randomized.

    Hash randomization changes set/dict iteration order per process, which
    swings search-order-sensitive ops (the e12 homomorphism checks) by
    2-3x between otherwise identical runs — far beyond the --compare
    threshold.  Called only from the script entry point so importing this
    module never replaces the host process.
    """
    if os.environ.get("PYTHONHASHSEED") in (None, "random"):
        env = dict(os.environ, PYTHONHASHSEED="0")
        os.execve(sys.executable, [sys.executable, os.path.abspath(__file__)] + sys.argv[1:], env)

from repro.algebra import parse_ra  # noqa: E402
from repro.engine import clear_plan_cache  # noqa: E402

JOIN_HEAVY_THRESHOLD = 3.0
CORE_SPEEDUP_THRESHOLD = 5.0  # block-based core vs greedy oracle (e21_core)
GREEDY_CORE_BUDGET_SECONDS = 20.0
COMPARE_THRESHOLD = 0.20  # fail --compare on >20% normalized slowdown per op
# Ops faster than this (fresh AND baseline) are never flagged by --compare:
# sub-millisecond measurements are dominated by dispatch jitter.
COMPARE_MIN_SECONDS = 1e-3


def measure(fn: Callable[[], Any], target_seconds: float = 0.05, repeats: int = 7) -> Dict[str, Any]:
    """Best per-call seconds of ``fn`` (timeit convention) plus result size."""
    result = fn()  # warm-up (also warms plan/index caches, deliberately)
    single = max(1e-7, _time_once(fn))
    number = max(1, int(target_seconds / single))
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(number):
            result = fn()
        samples.append((time.perf_counter() - start) / number)
    seconds = min(samples)
    record: Dict[str, Any] = {"seconds": seconds, "calls_per_sec": 1.0 / seconds}
    try:
        rows = len(result)
    except TypeError:
        rows = None
    if rows is not None:
        record["rows"] = rows
        record["rows_per_sec"] = rows / seconds if seconds > 0 else None
    return record


def _time_once(fn: Callable[[], Any]) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def measure_bounded(target: Callable[[], Any], budget_seconds: float) -> Dict[str, Any]:
    """One wall-clock-bounded measurement of ``target`` in a child process.

    Used for oracle paths that are intractable at the gated size (the
    greedy core at 40 sources runs for hours): the child is killed at
    ``budget_seconds`` and the budget is recorded as a *lower bound* on the
    true time, so the derived speedup is itself a lower bound — the gate
    stays meaningful while CI time stays bounded.  ``target`` must be a
    module-level function (picklable for multiprocessing).
    """
    import multiprocessing

    process = multiprocessing.get_context("fork").Process(target=target, daemon=True)
    start = time.perf_counter()
    process.start()
    process.join(budget_seconds)
    timed_out = process.is_alive()
    elapsed = max(time.perf_counter() - start, 1e-9)
    if timed_out:
        process.terminate()
        process.join()
    elif process.exitcode != 0:
        # A crash would otherwise masquerade as an ultra-fast measurement
        # and surface as a bogus "0.0x speedup" gate failure downstream.
        raise RuntimeError(
            f"bounded measurement of {target.__name__} crashed "
            f"(exit code {process.exitcode})"
        )
    record: Dict[str, Any] = {"seconds": elapsed, "calls_per_sec": 1.0 / elapsed}
    if timed_out:
        record["timed_out"] = True
        record["note"] = (
            f"killed at the {budget_seconds:.0f}s budget; seconds is a lower bound"
        )
    return record


# ----------------------------------------------------------------------
# Benchmark families.  Each scenario function returns {op name: record};
# op pairs named "engine:X" / "seed:X" contribute a speedup entry.
# ----------------------------------------------------------------------
def scenario_e01() -> Dict[str, Any]:
    """Unpaid orders (Section 1): difference of projections, largest size.

    Runs through the session API: one session per engine, each owning its
    plan cache and backend.  Also runs the SQL-side comparison — the
    three-valued query that loses answers — on both the by-the-book
    Python evaluator and the real SQLite engine behind the backend bridge.
    """
    import repro
    from repro.core import sound_certain_answers
    from repro.sqlnulls import parse_sql
    from repro.workloads import orders_payments

    database = orders_payments(num_orders=40, num_payments=8, null_fraction=0.4, seed=7)
    query = parse_ra("diff(project[o_id](Orders), rename[Paid(o_id)](project[ord](Pay)))")
    sql_query = parse_sql("SELECT o_id FROM Orders WHERE o_id NOT IN (SELECT ord FROM Pay)")
    plan_q = repro.connect(database, engine="plan").query(query)
    seed_q = repro.connect(database, engine="interpreter").query(query)
    python_session = repro.connect(database, engine="plan")
    sqlite_session = repro.connect(database, engine="sqlite")
    return {
        "engine:query": measure(plan_q.answer_object),
        "seed:query": measure(seed_q.answer_object),
        "sound_evaluation": measure(lambda: sound_certain_answers(query, database)),
        "sql3vl_python": measure(lambda: python_session.sql(sql_query)),
        "sql3vl_sqlite": measure(lambda: sqlite_session.sql(sql_query)),
    }


def scenario_e12() -> Dict[str, Any]:
    """Information-ordering checks by homomorphism search, largest size."""
    from repro.datamodel import Valuation
    from repro.homomorphisms.finder import find_homomorphism
    from repro.workloads import random_database

    source = random_database(num_relations=2, arity=2, rows_per_relation=16, num_nulls=3, seed=5)
    valuation = Valuation(
        {n: f"v{i}" for i, n in enumerate(sorted(source.nulls(), key=lambda n: n.name))}
    )
    target = valuation.apply(source)
    return {
        "engine:owa_check": measure(lambda: find_homomorphism(source, target, use_index=True)),
        "seed:owa_check": measure(lambda: find_homomorphism(source, target, use_index=False)),
        "engine:cwa_check": measure(
            lambda: find_homomorphism(source, target, strong_onto=True, use_index=True)
        ),
        "seed:cwa_check": measure(
            lambda: find_homomorphism(source, target, strong_onto=True, use_index=False)
        ),
    }


def scenario_e18() -> Dict[str, Any]:
    """Complexity-shape positive queries at the largest size sweep value."""
    from repro.workloads import random_database

    database = random_database(
        num_relations=2, arity=2, rows_per_relation=40, num_nulls=2, seed=21
    )
    positive = parse_ra("project[#0](select[#1 = #2](product(R0, project[#0](R1))))")
    join_plan = parse_ra("project[a](join(rename[A(a, b)](R0), rename[B(b, c)](R1)))")
    return {
        "engine:product_selection": measure(lambda: positive.evaluate(database, engine="plan")),
        "seed:product_selection": measure(
            lambda: positive.evaluate(database, engine="interpreter")
        ),
        "engine:natural_join": measure(lambda: join_plan.evaluate(database, engine="plan")),
        "seed:natural_join": measure(lambda: join_plan.evaluate(database, engine="interpreter")),
    }


def scenario_e02() -> Dict[str, Any]:
    import repro
    from repro.datamodel import Database, Null, Relation

    query = parse_ra("diff(R, S)")
    database = Database.from_relations(
        [
            Relation.create("R", [(i,) for i in range(200)], attributes=("A",)),
            Relation.create("S", [(Null("s0"),)], attributes=("A",)),
        ]
    )
    handle = repro.connect(database, semantics="cwa").query(query)
    return {
        "naive_difference": measure(handle.answer_object),
        "certain_nonempty_enumeration": measure(handle.boolean),
    }


def scenario_e04() -> Dict[str, Any]:
    from repro.exchange import chase, order_preferences_mapping
    from repro.workloads import chain_mapping, order_preferences_source, random_graph_source

    mapping = order_preferences_mapping()
    source = order_preferences_source(num_orders=60, seed=0)
    chain = chain_mapping(length=3)
    graph = random_graph_source(num_nodes=8, num_edges=20, seed=0)
    return {
        "chase_order_preferences": measure(lambda: chase(mapping, source)),
        "chase_chain_mapping": measure(lambda: chase(chain, graph)),
    }


def scenario_e07() -> Dict[str, Any]:
    """C-table algebra: planned kernel path vs seed interpreter, plus enumeration.

    The planned path runs through a session, so the conditions are
    composed in the *session's* kernel and plans live in the session's
    cache; the seed interpreter path stays as the oracle.
    """
    import repro
    from repro.algebra import CTableDatabase, ctable_evaluate
    from repro.datamodel import Database, Null, Relation
    from repro.semantics import answer_space, default_domain

    # The dense-join workload is owned by the pytest benchmark module so the
    # CI speedup gate and the statistics measure the same thing.
    from bench_e07_ctable_vs_enumeration import DENSE_CASES, DENSE_QUERY, _dense_ctdb

    query = parse_ra("diff(R, S)")
    database = Database.from_relations(
        [
            Relation.create("R", [(i,) for i in range(8)], attributes=("A",)),
            Relation.create("S", [(Null(f"s{i}"),) for i in range(3)], attributes=("A",)),
        ]
    )
    ctdb = CTableDatabase.from_database(database)
    domain = default_domain(database)

    session = repro.connect(engine="plan")
    dense = _dense_ctdb(*DENSE_CASES[-1])  # largest dense-join case
    return {
        "engine:ctable_dense_join": measure(
            lambda: session.evaluate_ctable(DENSE_QUERY, dense)
        ),
        "seed:ctable_dense_join": measure(
            lambda: ctable_evaluate(DENSE_QUERY, dense, engine="interpreter")
        ),
        "ctable_algebra": measure(lambda: session.evaluate_ctable(query, ctdb)),
        "world_enumeration": measure(
            lambda: answer_space(query.evaluate, database, "cwa", domain)
        ),
    }


def scenario_e08() -> Dict[str, Any]:
    import repro
    from repro.workloads import random_database

    query = parse_ra("project[#0](select[#1 = #2](product(R0, project[#0](R1))))")
    database = random_database(num_relations=2, arity=2, rows_per_relation=6, num_nulls=3, seed=11)
    handle = repro.connect(database, semantics="cwa").query(query)
    return {
        "naive_join_query": measure(lambda: handle.certain(method="naive")),
        "enumeration_join_query": measure(lambda: handle.certain(method="enumeration")),
    }


def scenario_e16() -> Dict[str, Any]:
    from repro.algebra import naive_certain_answers
    from repro.workloads import enrolment

    query = parse_ra("divide(Enroll, Courses)")
    database = enrolment(
        num_students=40, num_courses=3, enrol_probability=0.8, null_fraction=0.1, seed=4
    )
    return {"naive_division": measure(lambda: naive_certain_answers(query, database))}


def scenario_e20() -> Dict[str, Any]:
    from repro.core import sound_certain_answers
    from repro.workloads import orders_payments

    query = parse_ra("diff(project[o_id](Orders), rename[Paid(o_id)](project[ord](Pay)))")
    database = orders_payments(num_orders=80, num_payments=40, null_fraction=0.3, seed=13)
    return {"sound_evaluation": measure(lambda: sound_certain_answers(query, database))}


def scenario_e21() -> Dict[str, Any]:
    from repro.exchange import certain_answers_exchange, order_preferences_mapping
    from repro.workloads import order_preferences_source

    mapping = order_preferences_mapping()
    source = order_preferences_source(num_orders=160, seed=0)
    query = parse_ra("project[product](Pref)")
    return {
        "exchange_certain_answers": measure(
            lambda: certain_answers_exchange(mapping, source, query)
        )
    }


def _greedy_core_40() -> None:
    """Child-process target: the greedy core oracle at the gated size."""
    from repro.exchange import core_solution, order_preferences_mapping
    from repro.workloads import order_preferences_source

    core_solution(
        order_preferences_mapping(),
        order_preferences_source(num_orders=40, seed=3),
        algorithm="greedy",
    )


def scenario_e21_core() -> Dict[str, Any]:
    """Core of the canonical solution: block-based path vs the greedy oracle."""
    from repro.exchange import core_solution, order_preferences_mapping
    from repro.workloads import order_preferences_source

    mapping = order_preferences_mapping()
    source_40 = order_preferences_source(num_orders=40, seed=3)
    source_160 = order_preferences_source(num_orders=160, seed=3)
    return {
        "engine:core_solution": measure(lambda: core_solution(mapping, source_40)),
        "seed:core_solution": measure_bounded(_greedy_core_40, GREEDY_CORE_BUDGET_SECONDS),
        "core_solution_160": measure(lambda: core_solution(mapping, source_160)),
    }


def scenario_e22() -> Dict[str, Any]:
    from repro.datamodel import Null
    from repro.graphs import IncompleteGraph, naive_certain_answers_rpq, parse_rpq

    query = parse_rpq("a* . b")
    nodes = [f"v{i}" for i in range(5)]
    edges = [(node, "a", nodes[(i + 1) % 5]) for i, node in enumerate(nodes)]
    edges.append((nodes[0], "b", nodes[2]))
    for j in range(3):
        unknown = Null(f"u{j}")
        edges.append((nodes[j % 5], "a", unknown))
        edges.append((unknown, "b", nodes[(j + 2) % 5]))
    graph = IncompleteGraph(edges=edges)
    return {"naive_rpq": measure(lambda: naive_certain_answers_rpq(query, graph))}


def scenario_e23() -> Dict[str, Any]:
    from repro.constraints import FunctionalDependency
    from repro.cqa import consistent_answers
    from repro.datamodel import Database, Relation

    key = FunctionalDependency("Pay", ("p_id",), ("amount",))
    id_query = parse_ra("project[#0](Pay)")
    rows = []
    for i in range(4):
        rows.append((f"pid{i}", 100))
        rows.append((f"pid{i}", 200))
    rows.extend((f"clean{i}", 10 * i) for i in range(10))
    database = Database.from_relations(
        [Relation.create("Pay", rows, attributes=("p_id", "amount"))]
    )
    return {
        "consistent_answers_projection": measure(
            lambda: consistent_answers(lambda d: id_query.evaluate(d), database, key)
        )
    }


def scenario_e24() -> Dict[str, Any]:
    from repro.datamodel import Database, DatabaseSchema
    from repro.exchange import MappingAtom
    from repro.logic import var
    from repro.views import ViewCollection, ViewDefinition, certain_answers_views

    x, y, z = var("x"), var("y"), var("z")
    base = DatabaseSchema.from_attributes({"Emp": ("name", "dept"), "Dept": ("dept", "city")})
    views = ViewCollection(
        base,
        [
            ViewDefinition("EmpCity", (x, z), [MappingAtom("Emp", (x, y)), MappingAtom("Dept", (y, z))]),
            ViewDefinition("Emps", (x,), [MappingAtom("Emp", (x, y))]),
        ],
    )
    query = parse_ra("project[#0](select[#1 = #2 and #3 = 'city0'](product(Emp, Dept)))")
    size = 90
    extensions = Database(
        views.view_schema(),
        {
            "EmpCity": [(f"p{i}", f"city{i % 3}") for i in range(size)],
            "Emps": [(f"p{i}",) for i in range(size)] + [(f"q{i}",) for i in range(size // 2)],
        },
    )
    return {
        "view_certain_answers": measure(lambda: certain_answers_views(query, views, extensions))
    }


def scenario_e25(include_gates: bool = True) -> Dict[str, Any]:
    """SQL backend through sessions: warm throughput, plus the three gates.

    The workload sizes here fit in memory (for the comparison); the
    ``gate:scale`` op runs the out-of-core check in capped children —
    SQLite must complete a load the in-memory path cannot — and
    ``gate:cursor`` streams the full 600k-row *answer* through
    ``Session.query(...).cursor()`` under the same cap, proving the
    cursor never materializes the result relation.
    ``include_gates=False`` re-measures only the timed ops (the
    ``--compare`` retry path: gates carry no timing, so re-forking the
    capped children to re-check a timing flap would be pure waste).
    """
    import repro
    from bench_e25_backend import (
        MODERATE_SIZES,
        QUERY,
        moderate_database,
        run_cursor_gate,
        run_scale_gate,
    )

    database = moderate_database(MODERATE_SIZES[-1])
    plan_q = repro.connect(database, engine="plan").query(QUERY)
    sqlite_q = repro.connect(database, engine="sqlite").query(QUERY)
    in_memory = plan_q.answer_object()
    through_sqlite = sqlite_q.answer_object()  # loads + compiles once
    ops: Dict[str, Any] = {
        "inmemory_query": measure(plan_q.answer_object),
        "sqlite_warm_query": measure(sqlite_q.answer_object),
    }
    if include_gates:
        ops["gate:correctness"] = {
            "passed": bool(in_memory == through_sqlite),
            "note": "engine='sqlite' equals the physical engine on the e25 workload",
        }
        ops["gate:scale"] = run_scale_gate()
        ops["gate:cursor"] = run_cursor_gate()
    return ops


scenario_e25.timing_only_retry = True


def scenario_chaos() -> Dict[str, Any]:
    """The robustness gate: the chaos differential suite, leak-checked.

    Runs ``tests/properties/test_fault_differential.py`` and
    ``tests/properties/test_resume_differential.py`` in a child pytest
    whose temp directories (``TMPDIR`` + ``SQLITE_TMPDIR``) point at a
    fresh scratch directory, then sweeps it for SQLite spill artifacts
    (``etilqs_*`` anonymous temp files, ``*-journal``/``*-wal`` sidecars).
    ``gate:chaos`` passes only when the suite is green *and* the sweep
    comes back empty — a fault path that forgets to close a spilled
    cursor fails the gate even if every assertion passed.
    """
    import subprocess
    import tempfile

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    suites = [
        os.path.join(repo_root, "tests", "properties", "test_fault_differential.py"),
        os.path.join(repo_root, "tests", "properties", "test_resume_differential.py"),
    ]
    with tempfile.TemporaryDirectory(prefix="chaos-gate-") as scratch:
        env = dict(
            os.environ,
            PYTHONPATH=os.path.join(repo_root, "src"),
            TMPDIR=scratch,
            SQLITE_TMPDIR=scratch,
        )
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", "-q", *suites],
            env=env,
            cwd=repo_root,
            capture_output=True,
            text=True,
            timeout=600,
        )
        leaked = []
        for root, _dirs, files in os.walk(scratch):
            leaked.extend(
                os.path.join(root, name)
                for name in files
                if name.startswith("etilqs")
                or name.endswith(("-journal", "-wal"))
            )
    passed = proc.returncode == 0 and not leaked
    if proc.returncode != 0:
        tail = "\n".join(proc.stdout.strip().splitlines()[-5:])
        note = f"fault differential suite failed (exit {proc.returncode}): {tail}"
    elif leaked:
        note = f"suite green but leaked sqlite temp files: {sorted(leaked)}"
    else:
        note = "fault differential suite green, zero leaked sqlite temp files"
    return {"gate:chaos": {"passed": passed, "note": note}}


def scenario_cancel() -> Dict[str, Any]:
    """The cancellation-latency gate: abort *inside* a running statement.

    A triple cross product over a 300-row relation (~27M intermediate
    rows) keeps a single SQLite statement busy for seconds; a 250 ms
    deadline budget must abort it via the backend progress handler.
    ``gate:cancel`` passes only when the abort arrives as a typed
    :class:`BudgetExceeded` within 250 ms of the deadline's expiry *and*
    the interrupted evaluation left zero ``_repro_tmp%`` temp tables
    behind — an abort that skips teardown fails the gate even though the
    exception was typed correctly.
    """
    import repro
    from repro import Budget, BudgetExceeded
    from repro.algebra import parse_ra
    from repro.datamodel import Database

    deadline = 0.25
    latency_bound = 0.25
    database = Database.from_dict({"R": [(i,) for i in range(300)]})
    session = repro.connect(database, engine="sqlite")
    try:
        query = session.query(parse_ra("project[#0](product(product(R, R), R))"))
        started = time.monotonic()
        try:
            query.certain(
                method="naive", budget=Budget(deadline=deadline), on_budget="raise"
            )
        except BudgetExceeded as error:
            elapsed = time.monotonic() - started
            overshoot = max(0.0, elapsed - deadline)
            leaked = [
                row[0]
                for row in session._backend.connection.execute(
                    "SELECT name FROM sqlite_temp_master "
                    "WHERE type = 'table' AND name LIKE '\\_repro\\_tmp%' ESCAPE '\\'"
                ).fetchall()
            ]
            passed = (
                error.resource == "deadline"
                and overshoot <= latency_bound
                and not leaked
            )
            note = (
                f"in-statement abort {overshoot * 1000:.0f} ms past the "
                f"{deadline * 1000:.0f} ms deadline "
                f"(bound {latency_bound * 1000:.0f} ms), "
                f"{len(leaked)} leaked temp tables"
            )
        else:
            passed = False
            note = "statement finished before the deadline; gate measured nothing"
    finally:
        session.close()
    return {"gate:cancel": {"passed": passed, "note": note}}


def scenario_serve() -> Dict[str, Any]:
    """The serving-tier gate: concurrent differential + warm executors.

    Two halves, both from ``bench_e30_serve``: eight async clients over a
    :class:`repro.serve.Server` (one shared frozen session) must produce
    answers identical to a sequential session above a conservative
    throughput floor, and N ``workers=`` fan-outs through one session-warm
    ``ProcessPoolExecutor`` must beat N per-call pools by at least 1.5x on
    a workload where pool startup dominates.  ``gate:serve`` passes only
    when both halves do.
    """
    from bench_e30_serve import run_throughput_gate, run_warm_executor_gate

    throughput = run_throughput_gate()
    warm = run_warm_executor_gate()
    return {
        "gate:serve": {
            "passed": bool(throughput["passed"] and warm["passed"]),
            "qps": throughput["qps"],
            "mismatches": throughput["mismatches"],
            "warm_speedup": warm["speedup"],
            "note": f"{throughput['note']}; {warm['note']}",
        }
    }


def scenario_obs() -> Dict[str, Any]:
    """The observability gate: disabled-path overhead + honest analyze counts.

    Two halves.  **Overhead**: the e01 unpaid-orders query runs on a
    default session (metrics registry on, tracer off — the shipping
    configuration) and on a ``connect(metrics=False)`` session; with the
    instrumentation compiled into every layer but disabled, the default
    session must stay within 5% (best-of-timing ratio, one re-measure to
    absorb load spikes).  **Honesty**: across a randomized workload (the
    same generators the obs test suite uses at larger scale),
    ``Query.analyze()`` must report exactly the answer cardinality the
    interpreter oracle computes — on the plan engine and the sqlite
    engine.  ``gate:obs`` passes only when both halves do.
    """
    import repro
    from repro.workloads import orders_payments, random_database
    from repro.workloads.generators import random_full_ra_query, random_positive_query

    # The e01 unpaid-orders query at 10x the bench size: at 40 orders the
    # query is ~10 us and any fixed per-call cost (two contextvar sets, a
    # counter, a histogram sample) reads as tens of percent of dispatch
    # jitter; at 400 the evaluation dominates and the ratio measures the
    # instrumentation, not the timer.
    database = orders_payments(num_orders=400, num_payments=80, null_fraction=0.4, seed=7)
    query = parse_ra("diff(project[o_id](Orders), rename[Paid(o_id)](project[ord](Pay)))")
    overhead_limit = 1.05

    def overhead_ratio() -> float:
        enabled_q = repro.connect(database, engine="plan").query(query)
        disabled_q = repro.connect(database, engine="plan", metrics=False).query(query)
        # Interleave the two measurements so a load drift between them
        # cannot masquerade as instrumentation overhead.
        disabled = measure(disabled_q.answer_object)
        enabled = measure(enabled_q.answer_object)
        disabled2 = measure(disabled_q.answer_object)
        enabled2 = measure(enabled_q.answer_object)
        best_on = min(enabled["seconds"], enabled2["seconds"])
        best_off = min(disabled["seconds"], disabled2["seconds"])
        return best_on / best_off

    ratio = overhead_ratio()
    if ratio > overhead_limit:
        ratio = min(ratio, overhead_ratio())  # one retry rules out a load spike
    overhead_ok = ratio <= overhead_limit

    mismatches = 0
    checked = 0
    for seed in range(12):
        workload = random_database(
            num_relations=2, arity=2, rows_per_relation=6, seed=seed % 5
        )
        queries = [
            random_positive_query(workload.schema, depth=3, seed=seed),
            random_full_ra_query(workload.schema, seed=seed),
        ]
        for q in queries:
            expected = len(q.evaluate(workload, engine="interpreter"))
            for engine in ("plan", "sqlite"):
                with repro.connect(workload, engine=engine) as session:
                    report = session.query(q).analyze()
                checked += 1
                if report.rows != expected:
                    mismatches += 1
    analyze_ok = mismatches == 0

    return {
        "gate:obs": {
            "passed": bool(overhead_ok and analyze_ok),
            "overhead_ratio": ratio,
            "analyze_checked": checked,
            "analyze_mismatches": mismatches,
            "note": (
                f"disabled-path overhead {ratio:.3f}x "
                f"(limit {overhead_limit:.2f}x); analyze row counts matched "
                f"the oracle on {checked - mismatches}/{checked} runs"
            ),
        }
    }


def scenario_prob() -> Dict[str, Any]:
    """The confidence gate: exact decomposition vs world enumeration.

    From ``bench_e35_prob``: a dense join whose answers carry lineage
    over 14 independent nulls (16384 worlds).  ``gate:prob`` passes only
    when ``Query.confidence()`` reproduces the world-enumeration
    oracle's probabilities exactly *and* runs at least 10x faster — the
    complexity separation (polynomial decomposition vs exponential
    enumeration on independence-friendly lineage) that justifies the
    subsystem (``docs/probability.md``).
    """
    from bench_e35_prob import run_prob_gate

    result = run_prob_gate()
    return {
        "gate:prob": {
            "passed": result["passed"],
            "speedup": result["speedup"],
            "mismatches": result["mismatches"],
            "note": result["note"],
        }
    }


QUICK_SCENARIOS = {
    "cancel": scenario_cancel,
    "chaos": scenario_chaos,
    "e01": scenario_e01,
    "e07": scenario_e07,
    "e12": scenario_e12,
    "e18": scenario_e18,
    "e21_core": scenario_e21_core,
    "e25": scenario_e25,
    "obs": scenario_obs,
    "prob": scenario_prob,
    "serve": scenario_serve,
}
FULL_SCENARIOS = {
    **QUICK_SCENARIOS,
    "e02": scenario_e02,
    "e04": scenario_e04,
    "e08": scenario_e08,
    "e16": scenario_e16,
    "e20": scenario_e20,
    "e21": scenario_e21,
    "e22": scenario_e22,
    "e23": scenario_e23,
    "e24": scenario_e24,
}
JOIN_HEAVY = ("e01", "e12", "e18")
# Families whose engine:/seed: speedups are gated by --check, with the
# minimum required speedup per family.
GATE_THRESHOLDS = {
    "e01": JOIN_HEAVY_THRESHOLD,
    "e07": JOIN_HEAVY_THRESHOLD,
    "e12": JOIN_HEAVY_THRESHOLD,
    "e18": JOIN_HEAVY_THRESHOLD,
    "e21_core": CORE_SPEEDUP_THRESHOLD,
}
GATED = tuple(GATE_THRESHOLDS)


def compute_speedups(ops: Dict[str, Any]) -> Dict[str, float]:
    speedups = {}
    for name, record in ops.items():
        if not name.startswith("engine:"):
            continue
        op = name.split(":", 1)[1]
        seed = ops.get(f"seed:{op}")
        if seed:
            speedups[op] = seed["seconds"] / record["seconds"]
    return speedups


def compare_against_baseline(
    results: Dict[str, Any], baseline_path: str, threshold: float = COMPARE_THRESHOLD
) -> Optional[list]:
    """Diff the fresh ``results`` against a committed report.

    Ratios (fresh seconds / baseline seconds) are computed per op shared by
    the two runs, then normalized by their median so a uniformly faster or
    slower machine does not drown the signal.  An op counts as a regression
    only when **both** its raw and normalized ratios exceed
    ``1 + threshold``: the normalized ratio absorbs whole-machine drift,
    while the raw ratio keeps an untouched op from being flagged just
    because the median moved (e.g. a PR that legitimately speeds up most
    other ops).  Ops below the per-op minimum-runtime floor
    (``COMPARE_MIN_SECONDS`` on both sides) are printed but exempt from
    flagging — at that scale the "regression" is timer/dispatch noise.
    Returns the list of regressed ``family/op`` names, or ``None`` when
    the baseline is unreadable or shares no ops.
    """
    try:
        with open(baseline_path) as handle:
            baseline = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"--compare: cannot read baseline {baseline_path}: {error}", file=sys.stderr)
        return None
    old_benchmarks = baseline.get("benchmarks", {})
    ratios: Dict[str, float] = {}
    floored: set = set()
    for family, payload in results.items():
        old_ops = old_benchmarks.get(family, {}).get("ops", {})
        for op, record in payload["ops"].items():
            old = old_ops.get(op)
            if not old or not old.get("seconds") or not record.get("seconds"):
                continue  # gate:/meta ops carry no timing
            name = f"{family}/{op}"
            ratios[name] = record["seconds"] / old["seconds"]
            if (
                record["seconds"] < COMPARE_MIN_SECONDS
                and old["seconds"] < COMPARE_MIN_SECONDS
            ):
                floored.add(name)
    if not ratios:
        print("--compare: no shared ops between fresh run and baseline", file=sys.stderr)
        return None
    ordered = sorted(ratios.values())
    median = ordered[len(ordered) // 2]
    print(f"\ncompare vs {baseline_path} (median machine drift {median:.2f}x):")
    regressions = []
    for name in sorted(ratios):
        raw = ratios[name]
        normalized = raw / median if median > 0 else raw
        flag = ""
        if normalized > 1.0 + threshold and raw > 1.0 + threshold:
            if name in floored:
                flag = f"  (below the {COMPARE_MIN_SECONDS * 1e3:.0f}ms floor; not flagged)"
            else:
                flag = "  <-- REGRESSION"
                regressions.append(name)
        print(f"  {name}: {raw:.2f}x raw, {normalized:.2f}x normalized{flag}")
    return regressions


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="gated families + speedups only")
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"exit 1 unless every gated speedup clears its family threshold "
        f"(join-heavy/c-table >= {JOIN_HEAVY_THRESHOLD}x, block core vs greedy "
        f"oracle >= {CORE_SPEEDUP_THRESHOLD}x)",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help=f"diff against --baseline and exit 1 on any op >{COMPARE_THRESHOLD:.0%} "
        "slower after normalizing for machine drift",
    )
    parser.add_argument(
        "--baseline",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_results.json"),
        help="baseline report for --compare (default: the committed BENCH_results.json)",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_results.json"),
        help="path of the JSON report (default: benchmarks/BENCH_results.json)",
    )
    args = parser.parse_args(argv)

    scenarios = QUICK_SCENARIOS if args.quick else FULL_SCENARIOS
    results: Dict[str, Any] = {}
    speedups: Dict[str, Dict[str, float]] = {}
    for name in sorted(scenarios):
        clear_plan_cache()
        print(f"[{name}] running ...", flush=True)
        family_start = time.perf_counter()
        ops = scenarios[name]()
        results[name] = {
            "ops": ops,
            "wall_seconds": time.perf_counter() - family_start,
        }
        family_speedups = compute_speedups(ops)
        if family_speedups:
            speedups[name] = family_speedups
            for op, factor in sorted(family_speedups.items()):
                print(f"  {op}: engine {factor:.1f}x faster than seed path")

    regressions = 0
    compare_broken = False
    if args.compare:
        # Compare before overwriting: the baseline may be the output path.
        regressed = compare_against_baseline(results, args.baseline)
        if regressed:
            # A transient load spike can slow one stretch of the run without
            # touching the rest (so median normalization misses it).  A real
            # regression reproduces; a spike does not: re-measure only the
            # flagged families once and re-compare.
            families = sorted({name.split("/", 1)[0] for name in regressed})
            print(f"\nre-measuring {', '.join(families)} to rule out transient load ...")
            for name in families:
                clear_plan_cache()
                scenario = scenarios[name]
                family_start = time.perf_counter()
                if getattr(scenario, "timing_only_retry", False):
                    # Keep the first pass's gate verdicts (they carry no
                    # timing and are exempt from --compare anyway) instead
                    # of re-forking the expensive gate children.
                    fresh_ops = scenario(include_gates=False)
                    fresh_ops.update(
                        {
                            op: record
                            for op, record in results[name]["ops"].items()
                            if op.startswith("gate:")
                        }
                    )
                else:
                    fresh_ops = scenario()
                results[name] = {
                    "ops": fresh_ops,
                    "wall_seconds": time.perf_counter() - family_start,
                }
                family_speedups = compute_speedups(results[name]["ops"])
                if family_speedups:
                    speedups[name] = family_speedups
            second = compare_against_baseline(results, args.baseline)
            if second is None:
                regressed = None
            else:
                # Only the re-measured families can fail this pass: the new
                # measurements shift the median, and a family that was never
                # flagged (hence never re-measured) must not fail because of
                # that shift alone.
                regressed = [
                    name for name in second if name.split("/", 1)[0] in families
                ]
        if regressed is None:
            compare_broken = True
        else:
            regressions = len(regressed)

    join_heavy_min = min(
        (factor for name in JOIN_HEAVY for factor in speedups.get(name, {}).values()),
        default=None,
    )
    gated_min = min(
        (factor for name in GATED for factor in speedups.get(name, {}).values()),
        default=None,
    )
    # Per-family gate verdicts: every gated family must have measured at
    # least one engine:/seed: speedup, and each must clear that family's
    # threshold (3x for the join-heavy/c-table families, 5x for the
    # block-based core vs the greedy oracle).
    gate_failures = []
    for family, threshold in sorted(GATE_THRESHOLDS.items()):
        family_speedups = speedups.get(family)
        if not family_speedups:
            gate_failures.append(f"{family}: no engine/seed speedup measured")
            continue
        for op, factor in sorted(family_speedups.items()):
            if factor < threshold:
                gate_failures.append(f"{family}/{op}: {factor:.1f}x < {threshold:.0f}x")
    # Boolean gates (the e25 backend correctness + out-of-core scale check):
    # any "gate:" op with passed == False fails --check.
    for family, payload in sorted(results.items()):
        for op, record in sorted(payload["ops"].items()):
            if op.startswith("gate:") and not record.get("passed"):
                gate_failures.append(
                    f"{family}/{op}: {record.get('note', 'gate failed')}"
                )
    report = {
        "meta": {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "quick": args.quick,
            "join_heavy_threshold": JOIN_HEAVY_THRESHOLD,
            "gate_thresholds": GATE_THRESHOLDS,
        },
        "benchmarks": results,
        "speedups": speedups,
        "join_heavy_min_speedup": join_heavy_min,
        "gated_min_speedup": gated_min,
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(f"\nwrote {args.output}")
    if join_heavy_min is not None:
        print(f"minimum join-heavy speedup: {join_heavy_min:.1f}x (threshold {JOIN_HEAVY_THRESHOLD}x)")
    if gated_min is not None:
        print(f"minimum gated speedup: {gated_min:.1f}x")
    failed = False
    if args.check:
        if gate_failures:
            for failure in gate_failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            failed = True
        else:
            print("PASS")
    if args.compare and compare_broken:
        print("FAIL: --compare could not be performed (see message above)", file=sys.stderr)
        failed = True
    if args.compare and regressions:
        print(f"FAIL: {regressions} op(s) regressed vs baseline", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    _pin_hash_seed()
    sys.exit(main())
