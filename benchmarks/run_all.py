#!/usr/bin/env python
"""Run every benchmark family and emit a single ``BENCH_results.json``.

Unlike the pytest-benchmark modules (``bench_e*.py``), which measure with
statistical rigour but take minutes and scatter their output, this runner
times one representative operation per benchmark family at its largest
default size and writes a single machine-readable JSON file so future PRs
have a perf trajectory to compare against.

For the join-heavy families (e01, e12, e18) it also measures the *seed*
execution paths — the tree-walking interpreter (``engine="interpreter"``)
and the unindexed homomorphism search (``use_index=False``) — and reports
the speedup of the physical evaluation engine over them.

Usage::

    python benchmarks/run_all.py                # all families
    python benchmarks/run_all.py --quick        # e01/e12/e18 + speedups only
    python benchmarks/run_all.py --check        # exit 1 unless join-heavy
                                                # speedups are all >= 3x
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Any, Callable, Dict, Optional

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.algebra import parse_ra  # noqa: E402
from repro.engine import clear_plan_cache  # noqa: E402

JOIN_HEAVY_THRESHOLD = 3.0


def measure(fn: Callable[[], Any], target_seconds: float = 0.05, repeats: int = 7) -> Dict[str, Any]:
    """Best per-call seconds of ``fn`` (timeit convention) plus result size."""
    result = fn()  # warm-up (also warms plan/index caches, deliberately)
    single = max(1e-7, _time_once(fn))
    number = max(1, int(target_seconds / single))
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(number):
            result = fn()
        samples.append((time.perf_counter() - start) / number)
    seconds = min(samples)
    record: Dict[str, Any] = {"seconds": seconds, "calls_per_sec": 1.0 / seconds}
    try:
        rows = len(result)
    except TypeError:
        rows = None
    if rows is not None:
        record["rows"] = rows
        record["rows_per_sec"] = rows / seconds if seconds > 0 else None
    return record


def _time_once(fn: Callable[[], Any]) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


# ----------------------------------------------------------------------
# Benchmark families.  Each scenario function returns {op name: record};
# op pairs named "engine:X" / "seed:X" contribute a speedup entry.
# ----------------------------------------------------------------------
def scenario_e01() -> Dict[str, Any]:
    """Unpaid orders (Section 1): difference of projections, largest size."""
    from repro.core import sound_certain_answers
    from repro.workloads import orders_payments

    database = orders_payments(num_orders=40, num_payments=8, null_fraction=0.4, seed=7)
    query = parse_ra("diff(project[o_id](Orders), rename[Paid(o_id)](project[ord](Pay)))")
    return {
        "engine:query": measure(lambda: query.evaluate(database, engine="plan")),
        "seed:query": measure(lambda: query.evaluate(database, engine="interpreter")),
        "sound_evaluation": measure(lambda: sound_certain_answers(query, database)),
    }


def scenario_e12() -> Dict[str, Any]:
    """Information-ordering checks by homomorphism search, largest size."""
    from repro.datamodel import Valuation
    from repro.homomorphisms.finder import find_homomorphism
    from repro.workloads import random_database

    source = random_database(num_relations=2, arity=2, rows_per_relation=16, num_nulls=3, seed=5)
    valuation = Valuation(
        {n: f"v{i}" for i, n in enumerate(sorted(source.nulls(), key=lambda n: n.name))}
    )
    target = valuation.apply(source)
    return {
        "engine:owa_check": measure(lambda: find_homomorphism(source, target, use_index=True)),
        "seed:owa_check": measure(lambda: find_homomorphism(source, target, use_index=False)),
        "engine:cwa_check": measure(
            lambda: find_homomorphism(source, target, strong_onto=True, use_index=True)
        ),
        "seed:cwa_check": measure(
            lambda: find_homomorphism(source, target, strong_onto=True, use_index=False)
        ),
    }


def scenario_e18() -> Dict[str, Any]:
    """Complexity-shape positive queries at the largest size sweep value."""
    from repro.workloads import random_database

    database = random_database(
        num_relations=2, arity=2, rows_per_relation=40, num_nulls=2, seed=21
    )
    positive = parse_ra("project[#0](select[#1 = #2](product(R0, project[#0](R1))))")
    join_plan = parse_ra("project[a](join(rename[A(a, b)](R0), rename[B(b, c)](R1)))")
    return {
        "engine:product_selection": measure(lambda: positive.evaluate(database, engine="plan")),
        "seed:product_selection": measure(
            lambda: positive.evaluate(database, engine="interpreter")
        ),
        "engine:natural_join": measure(lambda: join_plan.evaluate(database, engine="plan")),
        "seed:natural_join": measure(lambda: join_plan.evaluate(database, engine="interpreter")),
    }


def scenario_e02() -> Dict[str, Any]:
    from repro.datamodel import Database, Null, Relation
    from repro.semantics import certain_boolean

    query = parse_ra("diff(R, S)")
    database = Database.from_relations(
        [
            Relation.create("R", [(i,) for i in range(200)], attributes=("A",)),
            Relation.create("S", [(Null("s0"),)], attributes=("A",)),
        ]
    )
    return {
        "naive_difference": measure(lambda: query.evaluate(database)),
        "certain_nonempty_enumeration": measure(
            lambda: certain_boolean(lambda w: bool(query.evaluate(w)), database, "cwa")
        ),
    }


def scenario_e04() -> Dict[str, Any]:
    from repro.exchange import chase, order_preferences_mapping
    from repro.workloads import chain_mapping, order_preferences_source, random_graph_source

    mapping = order_preferences_mapping()
    source = order_preferences_source(num_orders=60, seed=0)
    chain = chain_mapping(length=3)
    graph = random_graph_source(num_nodes=8, num_edges=20, seed=0)
    return {
        "chase_order_preferences": measure(lambda: chase(mapping, source)),
        "chase_chain_mapping": measure(lambda: chase(chain, graph)),
    }


def scenario_e07() -> Dict[str, Any]:
    from repro.algebra import CTableDatabase, ctable_evaluate
    from repro.datamodel import Database, Null, Relation
    from repro.semantics import answer_space, default_domain

    query = parse_ra("diff(R, S)")
    database = Database.from_relations(
        [
            Relation.create("R", [(i,) for i in range(8)], attributes=("A",)),
            Relation.create("S", [(Null(f"s{i}"),) for i in range(3)], attributes=("A",)),
        ]
    )
    ctdb = CTableDatabase.from_database(database)
    domain = default_domain(database)
    return {
        "ctable_algebra": measure(lambda: ctable_evaluate(query, ctdb)),
        "world_enumeration": measure(
            lambda: answer_space(query.evaluate, database, "cwa", domain)
        ),
    }


def scenario_e08() -> Dict[str, Any]:
    from repro.algebra import naive_certain_answers
    from repro.core import certain_answers_intersection
    from repro.workloads import random_database

    query = parse_ra("project[#0](select[#1 = #2](product(R0, project[#0](R1))))")
    database = random_database(num_relations=2, arity=2, rows_per_relation=6, num_nulls=3, seed=11)
    return {
        "naive_join_query": measure(lambda: naive_certain_answers(query, database)),
        "enumeration_join_query": measure(
            lambda: certain_answers_intersection(query, database, "cwa")
        ),
    }


def scenario_e16() -> Dict[str, Any]:
    from repro.algebra import naive_certain_answers
    from repro.workloads import enrolment

    query = parse_ra("divide(Enroll, Courses)")
    database = enrolment(
        num_students=40, num_courses=3, enrol_probability=0.8, null_fraction=0.1, seed=4
    )
    return {"naive_division": measure(lambda: naive_certain_answers(query, database))}


def scenario_e20() -> Dict[str, Any]:
    from repro.core import sound_certain_answers
    from repro.workloads import orders_payments

    query = parse_ra("diff(project[o_id](Orders), rename[Paid(o_id)](project[ord](Pay)))")
    database = orders_payments(num_orders=80, num_payments=40, null_fraction=0.3, seed=13)
    return {"sound_evaluation": measure(lambda: sound_certain_answers(query, database))}


def scenario_e21() -> Dict[str, Any]:
    from repro.exchange import certain_answers_exchange, order_preferences_mapping
    from repro.workloads import order_preferences_source

    mapping = order_preferences_mapping()
    source = order_preferences_source(num_orders=160, seed=0)
    query = parse_ra("project[product](Pref)")
    return {
        "exchange_certain_answers": measure(
            lambda: certain_answers_exchange(mapping, source, query)
        )
    }


def scenario_e22() -> Dict[str, Any]:
    from repro.datamodel import Null
    from repro.graphs import IncompleteGraph, naive_certain_answers_rpq, parse_rpq

    query = parse_rpq("a* . b")
    nodes = [f"v{i}" for i in range(5)]
    edges = [(node, "a", nodes[(i + 1) % 5]) for i, node in enumerate(nodes)]
    edges.append((nodes[0], "b", nodes[2]))
    for j in range(3):
        unknown = Null(f"u{j}")
        edges.append((nodes[j % 5], "a", unknown))
        edges.append((unknown, "b", nodes[(j + 2) % 5]))
    graph = IncompleteGraph(edges=edges)
    return {"naive_rpq": measure(lambda: naive_certain_answers_rpq(query, graph))}


def scenario_e23() -> Dict[str, Any]:
    from repro.constraints import FunctionalDependency
    from repro.cqa import consistent_answers
    from repro.datamodel import Database, Relation

    key = FunctionalDependency("Pay", ("p_id",), ("amount",))
    id_query = parse_ra("project[#0](Pay)")
    rows = []
    for i in range(4):
        rows.append((f"pid{i}", 100))
        rows.append((f"pid{i}", 200))
    rows.extend((f"clean{i}", 10 * i) for i in range(10))
    database = Database.from_relations(
        [Relation.create("Pay", rows, attributes=("p_id", "amount"))]
    )
    return {
        "consistent_answers_projection": measure(
            lambda: consistent_answers(lambda d: id_query.evaluate(d), database, key)
        )
    }


def scenario_e24() -> Dict[str, Any]:
    from repro.datamodel import Database, DatabaseSchema
    from repro.exchange import MappingAtom
    from repro.logic import var
    from repro.views import ViewCollection, ViewDefinition, certain_answers_views

    x, y, z = var("x"), var("y"), var("z")
    base = DatabaseSchema.from_attributes({"Emp": ("name", "dept"), "Dept": ("dept", "city")})
    views = ViewCollection(
        base,
        [
            ViewDefinition("EmpCity", (x, z), [MappingAtom("Emp", (x, y)), MappingAtom("Dept", (y, z))]),
            ViewDefinition("Emps", (x,), [MappingAtom("Emp", (x, y))]),
        ],
    )
    query = parse_ra("project[#0](select[#1 = #2 and #3 = 'city0'](product(Emp, Dept)))")
    size = 90
    extensions = Database(
        views.view_schema(),
        {
            "EmpCity": [(f"p{i}", f"city{i % 3}") for i in range(size)],
            "Emps": [(f"p{i}",) for i in range(size)] + [(f"q{i}",) for i in range(size // 2)],
        },
    )
    return {
        "view_certain_answers": measure(lambda: certain_answers_views(query, views, extensions))
    }


QUICK_SCENARIOS = {"e01": scenario_e01, "e12": scenario_e12, "e18": scenario_e18}
FULL_SCENARIOS = {
    **QUICK_SCENARIOS,
    "e02": scenario_e02,
    "e04": scenario_e04,
    "e07": scenario_e07,
    "e08": scenario_e08,
    "e16": scenario_e16,
    "e20": scenario_e20,
    "e21": scenario_e21,
    "e22": scenario_e22,
    "e23": scenario_e23,
    "e24": scenario_e24,
}
JOIN_HEAVY = ("e01", "e12", "e18")


def compute_speedups(ops: Dict[str, Any]) -> Dict[str, float]:
    speedups = {}
    for name, record in ops.items():
        if not name.startswith("engine:"):
            continue
        op = name.split(":", 1)[1]
        seed = ops.get(f"seed:{op}")
        if seed:
            speedups[op] = seed["seconds"] / record["seconds"]
    return speedups


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="join-heavy families + speedups only")
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"exit 1 unless all join-heavy speedups are >= {JOIN_HEAVY_THRESHOLD}x",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_results.json"),
        help="path of the JSON report (default: benchmarks/BENCH_results.json)",
    )
    args = parser.parse_args(argv)

    scenarios = QUICK_SCENARIOS if args.quick else FULL_SCENARIOS
    results: Dict[str, Any] = {}
    speedups: Dict[str, Dict[str, float]] = {}
    for name in sorted(scenarios):
        clear_plan_cache()
        print(f"[{name}] running ...", flush=True)
        ops = scenarios[name]()
        results[name] = {"ops": ops}
        family_speedups = compute_speedups(ops)
        if family_speedups:
            speedups[name] = family_speedups
            for op, factor in sorted(family_speedups.items()):
                print(f"  {op}: engine {factor:.1f}x faster than seed path")

    join_heavy_min = min(
        (factor for name in JOIN_HEAVY for factor in speedups.get(name, {}).values()),
        default=None,
    )
    report = {
        "meta": {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "quick": args.quick,
            "join_heavy_threshold": JOIN_HEAVY_THRESHOLD,
        },
        "benchmarks": results,
        "speedups": speedups,
        "join_heavy_min_speedup": join_heavy_min,
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(f"\nwrote {args.output}")
    if join_heavy_min is not None:
        print(f"minimum join-heavy speedup: {join_heavy_min:.1f}x (threshold {JOIN_HEAVY_THRESHOLD}x)")
    if args.check:
        if join_heavy_min is None or join_heavy_min < JOIN_HEAVY_THRESHOLD:
            print("FAIL: join-heavy speedup below threshold", file=sys.stderr)
            return 1
        print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
