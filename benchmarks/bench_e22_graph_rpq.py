"""Benchmark E22 — certain answers for regular path queries over incomplete graphs.

The series mirrors the relational story of E8 in the graph data model
(Section 7 "beyond relations"): naive RPQ evaluation is flat in the number
of nulls, while the intersection over valuation images grows exponentially
with it, even though both return the same certain answers.
"""

import pytest

from repro.datamodel import Null
from repro.graphs import IncompleteGraph, certain_answers_rpq, naive_certain_answers_rpq, parse_rpq

QUERY = parse_rpq("a* . b")
SHORT_QUERY = parse_rpq("a . b | b")

NULL_COUNTS = [1, 2, 3]


def _graph(num_nulls):
    """A ring of 5 constant nodes plus ``num_nulls`` unknown nodes hanging off it."""
    nodes = [f"v{i}" for i in range(5)]
    edges = []
    for i, node in enumerate(nodes):
        edges.append((node, "a", nodes[(i + 1) % len(nodes)]))
    edges.append((nodes[0], "b", nodes[2]))
    for j in range(num_nulls):
        unknown = Null(f"u{j}")
        edges.append((nodes[j % len(nodes)], "a", unknown))
        edges.append((unknown, "b", nodes[(j + 2) % len(nodes)]))
    return IncompleteGraph(edges=edges)


@pytest.mark.parametrize("num_nulls", NULL_COUNTS)
def test_naive_rpq_evaluation(benchmark, num_nulls):
    graph = _graph(num_nulls)
    benchmark.group = f"e22 graph nulls={num_nulls}"
    benchmark(naive_certain_answers_rpq, QUERY, graph)


@pytest.mark.parametrize("num_nulls", NULL_COUNTS)
def test_enumeration_rpq_evaluation(benchmark, num_nulls):
    graph = _graph(num_nulls)
    benchmark.group = f"e22 graph nulls={num_nulls}"
    benchmark(certain_answers_rpq, QUERY, graph, "cwa")


@pytest.mark.parametrize("num_nulls", NULL_COUNTS[:2])
def test_naive_rpq_short_query(benchmark, num_nulls):
    graph = _graph(num_nulls)
    benchmark.group = f"e22 short query nulls={num_nulls}"
    benchmark(naive_certain_answers_rpq, SHORT_QUERY, graph)


@pytest.mark.parametrize("num_nulls", NULL_COUNTS[:2])
def test_enumeration_rpq_short_query(benchmark, num_nulls):
    graph = _graph(num_nulls)
    benchmark.group = f"e22 short query nulls={num_nulls}"
    benchmark(certain_answers_rpq, SHORT_QUERY, graph, "cwa")


def test_report_table(benchmark, report):
    def build_rows():
        rows = []
        for num_nulls in NULL_COUNTS:
            graph = _graph(num_nulls)
            naive = naive_certain_answers_rpq(QUERY, graph)
            exact = certain_answers_rpq(QUERY, graph, semantics="cwa")
            rows.append(
                [
                    num_nulls,
                    graph.num_edges(),
                    len(naive),
                    len(exact),
                    naive.rows == exact.rows,
                ]
            )
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    report(
        "E22: graph RPQ certain answers — naive evaluation agrees with enumeration",
        ["graph nulls", "edges", "|naive answer|", "|exact answer|", "equal?"],
        rows,
    )
    assert all(row[4] for row in rows)
