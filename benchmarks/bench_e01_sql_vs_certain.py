"""Benchmark E1 — SQL 3VL evaluation vs naive evaluation vs world enumeration.

Regenerates the cost/correctness picture behind the Section 1 unpaid-orders
example: SQL-style evaluation and naive evaluation both run in time
polynomial in the data, while the intersection-based certain answers
(possible-world enumeration) blow up with the number of nulls — and SQL's
cheap answer is simply wrong.
"""

import pytest

from repro.algebra import parse_ra
from repro.core import certain_answers_intersection, sound_certain_answers
from repro.sqlnulls import parse_sql, run_sql
from repro.workloads import orders_payments

SQL_QUERY = parse_sql("SELECT o_id FROM Orders WHERE o_id NOT IN (SELECT ord FROM Pay)")
RA_QUERY = parse_ra("diff(project[o_id](Orders), rename[Paid(o_id)](project[ord](Pay)))")

SIZES = [(10, 4), (20, 6), (40, 8)]


def _db(num_orders, num_payments):
    return orders_payments(
        num_orders=num_orders, num_payments=num_payments, null_fraction=0.4, seed=7
    )


@pytest.mark.parametrize("num_orders,num_payments", SIZES)
def test_sql_3vl_evaluation(benchmark, num_orders, num_payments):
    database = _db(num_orders, num_payments)
    benchmark.group = f"e01 orders={num_orders}"
    benchmark(run_sql, database, SQL_QUERY)


@pytest.mark.parametrize("num_orders,num_payments", SIZES)
def test_sql_3vl_sqlite_backend(benchmark, num_orders, num_payments):
    # The same criticized query on a real SQL engine (repro.backends):
    # must lose exactly the answers the Python 3VL evaluator loses.
    from repro.datamodel.values import is_null

    database = _db(num_orders, num_payments)
    benchmark.group = f"e01 orders={num_orders}"
    sqlite_rows = benchmark(run_sql, database, SQL_QUERY, "sqlite")
    python_rows = run_sql(database, SQL_QUERY)

    def normalized(rows):
        return sorted(tuple("NULL" if is_null(v) else v for v in row) for row in rows)

    assert normalized(sqlite_rows) == normalized(python_rows)


@pytest.mark.parametrize("num_orders,num_payments", SIZES)
def test_naive_ra_evaluation(benchmark, num_orders, num_payments):
    database = _db(num_orders, num_payments)
    benchmark.group = f"e01 orders={num_orders}"
    benchmark(RA_QUERY.evaluate, database)


@pytest.mark.parametrize("num_orders,num_payments", SIZES)
def test_sound_evaluation(benchmark, num_orders, num_payments):
    database = _db(num_orders, num_payments)
    benchmark.group = f"e01 orders={num_orders}"
    benchmark(sound_certain_answers, RA_QUERY, database)


@pytest.mark.parametrize("num_orders,num_payments", SIZES[:1])
def test_certain_answers_by_enumeration(benchmark, num_orders, num_payments):
    database = _db(num_orders, num_payments)
    benchmark.group = f"e01 orders={num_orders}"
    benchmark(
        certain_answers_intersection,
        RA_QUERY,
        database,
        "cwa",
    )


def test_report_correctness_table(benchmark, report):
    def build_rows():
        rows = []
        for num_orders, num_payments in SIZES:
            database = _db(num_orders, num_payments)
            sql_rows = run_sql(database, SQL_QUERY)
            naive_rows = RA_QUERY.evaluate(database)
            sound = sound_certain_answers(RA_QUERY, database)
            if len(database.nulls()) <= 2:
                certain = str(
                    len(certain_answers_intersection(RA_QUERY, database, semantics="cwa"))
                )
            else:
                certain = "(skipped: too many worlds)"
            rows.append(
                [
                    num_orders,
                    num_payments,
                    len(database.nulls()),
                    len(sql_rows),
                    len(naive_rows),
                    len(sound),
                    certain,
                ]
            )
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    report(
        "E1: unpaid orders — answer sizes per method (SQL loses answers)",
        ["orders", "payments", "nulls", "SQL 3VL", "naive", "sound", "certain (exact)"],
        rows,
    )
    assert rows
