"""Benchmark E8 — naive evaluation vs intersection-of-worlds for UCQs (eq. (4)).

Both methods return the *same* certain answers for positive relational
algebra; the point of the series is the cost gap and where it opens:
naive evaluation is flat in the number of nulls while world enumeration is
exponential in it (crossover at 1–2 nulls already).
"""

import pytest

from repro.algebra import naive_certain_answers, parse_ra
from repro.core import certain_answers_intersection
from repro.workloads import random_database

QUERY = parse_ra("union(project[#0](R0), project[#1](R1))")
JOIN_QUERY = parse_ra("project[#0](select[#1 = #2](product(R0, project[#0](R1))))")

NULL_COUNTS = [1, 2, 3]


def _db(num_nulls, rows=6):
    return random_database(
        num_relations=2, arity=2, rows_per_relation=rows, num_nulls=num_nulls, seed=11
    )


@pytest.mark.parametrize("num_nulls", NULL_COUNTS)
def test_naive_evaluation(benchmark, num_nulls):
    database = _db(num_nulls)
    benchmark.group = f"e08 nulls={num_nulls}"
    benchmark(naive_certain_answers, QUERY, database)


@pytest.mark.parametrize("num_nulls", NULL_COUNTS)
def test_world_enumeration(benchmark, num_nulls):
    database = _db(num_nulls)
    benchmark.group = f"e08 nulls={num_nulls}"
    benchmark(certain_answers_intersection, QUERY, database, "cwa")


@pytest.mark.parametrize("num_nulls", NULL_COUNTS[:2])
def test_naive_evaluation_join_query(benchmark, num_nulls):
    database = _db(num_nulls)
    benchmark.group = f"e08 join nulls={num_nulls}"
    benchmark(naive_certain_answers, JOIN_QUERY, database)


@pytest.mark.parametrize("num_nulls", NULL_COUNTS[:2])
def test_world_enumeration_join_query(benchmark, num_nulls):
    database = _db(num_nulls)
    benchmark.group = f"e08 join nulls={num_nulls}"
    benchmark(certain_answers_intersection, JOIN_QUERY, database, "cwa")


def test_report_table(benchmark, report):
    def build_rows():
        rows = []
        for num_nulls in NULL_COUNTS:
            database = _db(num_nulls)
            naive = naive_certain_answers(QUERY, database)
            exact = certain_answers_intersection(QUERY, database, semantics="cwa")
            rows.append(
                [num_nulls, database.size(), len(naive), len(exact), naive.rows == exact.rows]
            )
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    report(
        "E8: UCQ certain answers — naive evaluation agrees with enumeration",
        ["nulls", "db facts", "|naive answer|", "|exact answer|", "equal?"],
        rows,
    )
    assert all(row[4] for row in rows)
