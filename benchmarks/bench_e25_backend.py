"""Benchmark E25 — the SQL backend: in-memory vs SQLite, and out-of-core scale.

Three questions, per DESIGN-style shape reporting:

* **Warm-cache throughput** — with the backend loaded and the compiled
  plan cached, how does repeated query evaluation through SQLite compare
  to the in-memory physical engine?  (In-memory wins at sizes that fit —
  the backend's value is scale, not per-query latency.)
* **Correctness** — ``engine="sqlite"`` must equal ``engine="plan"`` on
  the bench workload (also gated in ``run_all.py --quick --check``).
* **Scale** — the headline: a workload is sized so that, under a capped
  address space, building the in-memory :class:`Relation` *cannot
  complete* (``MemoryError``) while the SQLite backend — streaming the
  same generator into an on-disk database in batches — loads it and
  answers a query under the same cap.  This is the "evaluate databases
  larger than memory" capability no earlier benchmark could even set up.

The scale check runs each side in a forked child whose ``RLIMIT_AS`` is
its current address-space usage plus :data:`CAP_MARGIN_BYTES`; the
workload needs several times the margin in Python but only a fixed few
megabytes through the streaming SQLite load.
"""

import os
import sys
import tempfile
import time

import pytest

from repro.algebra import parse_ra
from repro.datamodel import Database, Relation

# Rows of the out-of-core workload: ~230 MB as an in-memory relation
# (tuples + interned strings + set), ~25 MB as an on-disk SQLite file.
SCALE_ROWS = 600_000
# Address-space headroom granted to each capped child process.
CAP_MARGIN_BYTES = 128 * 1024 * 1024
# Wall-clock budget for each capped child.
SCALE_BUDGET_SECONDS = 180.0

MODERATE_SIZES = [5_000, 20_000]

QUERY = parse_ra("project[a](join(Big, Small))")


def scale_rows(count):
    """The deterministic row stream of the big relation (never a list)."""
    for i in range(count):
        yield ("k%d" % (i % 1_000), "v%d" % i)


def _scale_schema():
    from repro.datamodel.schema import DatabaseSchema

    return DatabaseSchema.from_attributes({"Big": ("a", "b")})


def moderate_database(rows):
    """An in-memory instance sized to fit comfortably (for comparisons)."""
    big = Relation.create("Big", list(scale_rows(rows)), attributes=("a", "b"))
    small = Relation.create(
        "Small", [("v%d" % (i * 97), "w%d" % i) for i in range(rows // 50)],
        attributes=("b", "c"),
    )
    return Database.from_relations([big, small])


# ----------------------------------------------------------------------
# Capped-child machinery (Linux; used by run_all's e25 scale gate too)
# ----------------------------------------------------------------------
def _cap_address_space(margin_bytes):
    """Limit this process's address space to current usage + margin."""
    import resource

    current = 0
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmSize:"):
                    current = int(line.split()[1]) * 1024
                    break
    except OSError:
        pass
    limit = current + margin_bytes
    resource.setrlimit(resource.RLIMIT_AS, (limit, limit))


def _child_load_in_memory():
    """Child target: try to materialize the scale relation under the cap.

    Exit code 0 means the load failed with ``MemoryError`` (the expected
    outcome — the instance does not fit); 1 means it fit (cap too loose).
    """
    _cap_address_space(CAP_MARGIN_BYTES)
    try:
        relation = Relation.create(
            "Big", scale_rows(SCALE_ROWS), attributes=("a", "b")
        )
    except MemoryError:
        os._exit(0)
    del relation
    os._exit(1)


def _child_load_sqlite():
    """Child target: stream-load and query through SQLite under the cap.

    Exit code 0 means the backend loaded all rows into an on-disk
    database and answered a selective query; anything else is a failure.
    """
    _cap_address_space(CAP_MARGIN_BYTES)
    from repro.algebra.ast import relation as rel
    from repro.algebra.predicates import Attr, eq
    from repro.backends import SQLiteBackend

    path = os.path.join(tempfile.mkdtemp(prefix="repro_e25_"), "scale.sqlite")
    code = 1
    try:
        backend = SQLiteBackend(path)
        backend.create_schema(_scale_schema())
        written = backend.load_rows("Big", scale_rows(SCALE_ROWS))
        if written != SCALE_ROWS:
            code = 2
        else:
            answer = backend.evaluate(rel("Big").select(eq(Attr("a"), "k7")))
            code = 0 if len(answer) == SCALE_ROWS // 1_000 else 3
        backend.close()
    finally:
        # os._exit skips finally blocks, so the temp directory must be
        # gone before the exit call below — not after it.
        try:
            os.remove(path)
            os.rmdir(os.path.dirname(path))
        except OSError:
            pass
    os._exit(code)


def _child_cursor_stream():
    """Child target: stream a 600k-row *answer* through a session cursor.

    Exit code 0 means a Session loaded the scale workload out of core and
    then consumed the full 600k-row answer through ``Query.cursor()``
    under the same address-space cap — which is only possible because the
    cursor never materializes the result ``Relation`` (the materialized
    relation alone needs several times the cap margin; ``gate:scale``
    proves that side).  1/2/3 are load/count/stream failures.
    """
    _cap_address_space(CAP_MARGIN_BYTES)
    import repro
    from repro.algebra.ast import relation as rel

    path = os.path.join(tempfile.mkdtemp(prefix="repro_e25c_"), "cursor.sqlite")
    code = 1
    try:
        with repro.connect(engine="sqlite", backend_path=path) as session:
            session.create_schema(_scale_schema())
            written = session.load_rows("Big", scale_rows(SCALE_ROWS))
            if written != SCALE_ROWS:
                code = 2
            else:
                count = 0
                for _ in session.query(rel("Big")).cursor(batch_size=10_000):
                    count += 1
                code = 0 if count == SCALE_ROWS else 3
    except MemoryError:
        code = 4
    finally:
        try:
            os.remove(path)
            os.rmdir(os.path.dirname(path))
        except OSError:
            pass
    os._exit(code)


def run_cursor_gate(budget_seconds=SCALE_BUDGET_SECONDS):
    """The e25 streaming gate (``gate:cursor`` in ``run_all.py --check``).

    Passes when the capped child streams the full 600k-row answer through
    ``Session.query(...).cursor()``; a cursor that materialized the
    result relation would die on the same ``MemoryError`` the in-memory
    load does in ``gate:scale``.
    """
    if sys.platform not in ("linux", "darwin"):
        return {"passed": True, "note": "skipped: RLIMIT_AS unavailable on this platform"}
    exit_code, seconds = _run_capped(_child_cursor_stream, budget_seconds)
    return {
        "passed": exit_code == 0,
        "rows": SCALE_ROWS,
        "cap_margin_bytes": CAP_MARGIN_BYTES,
        "cursor_exit": exit_code,
        "cursor_seconds": seconds,
        "note": (
            "session cursor streamed the full answer under the memory cap"
            if exit_code == 0
            else f"cursor child exit {exit_code}"
        ),
    }


def _run_capped(target, budget_seconds):
    """Fork ``target``; return ``(exit_code, seconds)``; kill at budget."""
    import multiprocessing

    process = multiprocessing.get_context("fork").Process(target=target, daemon=True)
    start = time.perf_counter()
    process.start()
    process.join(budget_seconds)
    elapsed = time.perf_counter() - start
    if process.is_alive():
        process.terminate()
        process.join()
        return None, elapsed
    return process.exitcode, elapsed


def run_scale_gate(budget_seconds=SCALE_BUDGET_SECONDS):
    """The e25 scale gate, shared with ``run_all.py --quick --check``.

    Passes when the capped in-memory load fails to complete while the
    capped SQLite load completes and answers correctly.
    """
    if sys.platform not in ("linux", "darwin"):
        return {"passed": True, "note": "skipped: RLIMIT_AS unavailable on this platform"}
    memory_code, memory_seconds = _run_capped(_child_load_in_memory, budget_seconds)
    sqlite_code, sqlite_seconds = _run_capped(_child_load_sqlite, budget_seconds)
    in_memory_failed = memory_code != 1  # MemoryError, crash or timeout: did not fit
    sqlite_completed = sqlite_code == 0
    return {
        "passed": bool(in_memory_failed and sqlite_completed),
        "rows": SCALE_ROWS,
        "cap_margin_bytes": CAP_MARGIN_BYTES,
        "in_memory_exit": memory_code,
        "in_memory_seconds": memory_seconds,
        "sqlite_exit": sqlite_code,
        "sqlite_seconds": sqlite_seconds,
        "note": (
            "sqlite streamed the workload under the memory cap; "
            "the in-memory load could not"
            if in_memory_failed and sqlite_completed
            else f"in-memory exit {memory_code}, sqlite exit {sqlite_code}"
        ),
    }


# ----------------------------------------------------------------------
# pytest-benchmark cases
# ----------------------------------------------------------------------
@pytest.mark.parametrize("rows", MODERATE_SIZES)
def test_inmemory_engine_query(benchmark, rows):
    database = moderate_database(rows)
    QUERY.evaluate(database, engine="plan")  # warm plan cache
    benchmark.group = f"e25 rows={rows}"
    benchmark(QUERY.evaluate, database, engine="plan")


@pytest.mark.parametrize("rows", MODERATE_SIZES)
def test_sqlite_backend_warm_query(benchmark, rows):
    database = moderate_database(rows)
    QUERY.evaluate(database, engine="sqlite")  # load + compile once
    benchmark.group = f"e25 rows={rows}"
    benchmark(QUERY.evaluate, database, engine="sqlite")


def test_sqlite_matches_inmemory_on_bench_workload():
    database = moderate_database(MODERATE_SIZES[-1])
    assert QUERY.evaluate(database, engine="sqlite") == QUERY.evaluate(
        database, engine="plan"
    )


def test_cursor_gate_streams_the_scale_answer(report):
    verdict = run_cursor_gate()
    report(
        "E25: session-cursor streaming gate",
        ["rows", "cap margin (MB)", "cursor", "seconds"],
        [
            [
                verdict.get("rows", "-"),
                CAP_MARGIN_BYTES // (1024 * 1024),
                "streamed" if verdict.get("cursor_exit") == 0 else "FAILED",
                f"{verdict.get('cursor_seconds', 0):.1f}",
            ]
        ],
    )
    assert verdict["passed"], verdict


def test_scale_gate_sqlite_completes_where_inmemory_cannot(report):
    verdict = run_scale_gate()
    report(
        "E25: out-of-core scale gate",
        ["rows", "cap margin (MB)", "in-memory", "sqlite", "sqlite seconds"],
        [
            [
                verdict.get("rows", "-"),
                CAP_MARGIN_BYTES // (1024 * 1024),
                "did not fit" if verdict.get("in_memory_exit") != 1 else "FIT (bad)",
                "completed" if verdict.get("sqlite_exit") == 0 else "FAILED",
                f"{verdict.get('sqlite_seconds', 0):.1f}",
            ]
        ],
    )
    assert verdict["passed"], verdict
