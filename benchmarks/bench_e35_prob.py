"""Benchmark E35 — exact confidence vs the world-enumeration oracle.

Gated in ``run_all.py --quick --check`` as ``gate:prob``: on a dense
join whose answers carry lineage over :data:`PROB_NULLS` independent
nulls, ``Query.confidence()`` (decomposition over the interned
condition DAG — independent splits, exclusive-OR detection, Shannon
expansion, per-``(kernel, model)`` memo) must

* produce exactly the probabilities full world enumeration produces
  (the differential half — a wrong independence split shows up as a
  wrong number here, not a crash), and
* do it at least :data:`PROB_MIN_SPEEDUP` x faster than the oracle,
  which evaluates the query in all ``2^PROB_NULLS`` worlds.

The oracle cost is exponential by construction (every answer's lineage
is probed against every world) while the decomposition sees mostly
independent-AND/OR splits, so the gap widens with each null added —
the complexity separation the subsystem exists for.
"""

import time

from repro.algebra import naive_evaluate, parse_ra
from repro.datamodel import Database, Null, Relation, Valuation

#: Number of independent nulls in the gated workload (2^14 = 16384 worlds).
PROB_NULLS = 14

#: Exact decomposition must beat world enumeration by at least this factor.
PROB_MIN_SPEEDUP = 10.0

#: Probability agreement tolerance for the differential half.
PROB_TOLERANCE = 1e-9

QUERY = parse_ra("join(R, S)")
PROJECTED = parse_ra("project[c](join(R, S))")


def prob_database(nulls: int = PROB_NULLS):
    """R(a, b) with one uncertain cell per row, joinable S(b, c).

    Every answer's lineage pins one null; the projected query ORs
    :data:`PROB_NULLS` independent lineages together — the shape the
    decomposition evaluator resolves without a single Shannon expansion
    while the oracle pays for every world.
    """
    import repro

    markers = [Null(f"x{i}") for i in range(nulls)]
    r_rows = [(i, markers[i]) for i in range(nulls)]
    s_rows = [(0, "even"), (1, "odd")]
    database = Database.from_relations(
        [
            Relation.create("R", r_rows, attributes=("a", "b")),
            Relation.create("S", s_rows, attributes=("b", "c")),
        ]
    )
    model = repro.ProbabilityModel(
        independent={
            marker: {0: 0.3 + 0.02 * index, 1: 0.7 - 0.02 * index}
            for index, marker in enumerate(markers)
        }
    )
    return database, model


def oracle_confidences(query, database, model):
    """Answer probabilities by evaluating ``query`` in every world."""
    answers = {}
    for assignment, probability in model.joint_outcomes(model.nulls()):
        world = Valuation(assignment).apply(database)
        for row in naive_evaluate(query, world):
            answers[row] = answers.get(row, 0.0) + probability
    return answers


def run_prob_gate():
    """The differential + speedup halves of ``gate:prob``."""
    import repro

    database, model = prob_database()
    worlds = 2 ** PROB_NULLS

    with repro.connect(database, semantics="prob", model=model) as session:
        # Exact path, timed over both query shapes.  A fresh query object
        # per call keeps per-query state out of the measurement; the
        # session-level memo warmth across calls is deliberate — it is
        # the serving configuration.
        def exact():
            return (
                session.query(QUERY).confidence(),
                session.query(PROJECTED).confidence(),
            )

        started = time.perf_counter()
        exact_join, exact_projected = exact()
        exact_seconds = time.perf_counter() - started
        # Re-measure warm (memo populated) and keep the best: the gate
        # compares steady-state serving cost, not first-call compilation.
        for _ in range(2):
            started = time.perf_counter()
            exact_join, exact_projected = exact()
            exact_seconds = min(exact_seconds, time.perf_counter() - started)

    started = time.perf_counter()
    oracle_join = oracle_confidences(QUERY, database, model)
    oracle_projected = oracle_confidences(PROJECTED, database, model)
    oracle_seconds = time.perf_counter() - started

    mismatches = 0
    for ranked, oracle in ((exact_join, oracle_join), (exact_projected, oracle_projected)):
        exact_map = {row: float(p) for row, p in ranked}
        oracle_map = {row: p for row, p in oracle.items() if p > PROB_TOLERANCE}
        if set(exact_map) != set(oracle_map):
            mismatches += 1
            continue
        if any(
            abs(exact_map[row] - oracle_map[row]) > PROB_TOLERANCE
            for row in exact_map
        ):
            mismatches += 1

    speedup = oracle_seconds / exact_seconds if exact_seconds > 0 else float("inf")
    passed = mismatches == 0 and speedup >= PROB_MIN_SPEEDUP
    return {
        "passed": passed,
        "nulls": PROB_NULLS,
        "worlds": worlds,
        "exact_seconds": exact_seconds,
        "oracle_seconds": oracle_seconds,
        "speedup": speedup,
        "mismatches": mismatches,
        "note": (
            f"{PROB_NULLS} nulls / {worlds} worlds: exact decomposition "
            f"{exact_seconds * 1000:.1f} ms vs enumeration "
            f"{oracle_seconds * 1000:.0f} ms ({speedup:.0f}x, floor "
            f"{PROB_MIN_SPEEDUP:.0f}x), {mismatches} differential mismatches"
        ),
    }


def test_prob_gate_passes():
    result = run_prob_gate()
    assert result["mismatches"] == 0, result["note"]
    assert result["passed"], result["note"]


if __name__ == "__main__":
    outcome = run_prob_gate()
    print(outcome["note"])
    raise SystemExit(0 if outcome["passed"] else 1)
