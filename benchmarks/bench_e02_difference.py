"""Benchmark E2 — the R − S / NOT IN anti-join as |R| grows.

Regenerates the Section 1 observation as a cost/correctness series: SQL's
``NOT IN`` anti-join cost grows with |R| while its answer stays (wrongly)
empty as soon as S contains a null; the certain Boolean answer "R − S is
non-empty" is true whenever |R| > |S| and costs a world enumeration whose
size depends on the number of nulls, not on |R|.
"""

import pytest

from repro.algebra import parse_ra
from repro.datamodel import Database, Null, Relation
from repro.semantics import certain_boolean
from repro.sqlnulls import parse_sql, run_sql

SQL_QUERY = parse_sql("SELECT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)")
RA_QUERY = parse_ra("diff(R, S)")

R_SIZES = [10, 50, 200]


def _db(r_size, s_nulls=1):
    return Database.from_relations(
        [
            Relation.create("R", [(i,) for i in range(r_size)], attributes=("A",)),
            Relation.create("S", [(Null(f"s{i}"),) for i in range(s_nulls)], attributes=("A",)),
        ]
    )


@pytest.mark.parametrize("r_size", R_SIZES)
def test_sql_not_in_antijoin(benchmark, r_size):
    database = _db(r_size)
    benchmark.group = f"e02 |R|={r_size}"
    result = benchmark(run_sql, database, SQL_QUERY)
    assert result == []  # the wrong-but-fast answer


@pytest.mark.parametrize("r_size", R_SIZES)
def test_naive_ra_difference(benchmark, r_size):
    database = _db(r_size)
    benchmark.group = f"e02 |R|={r_size}"
    benchmark(RA_QUERY.evaluate, database)


@pytest.mark.parametrize("r_size", R_SIZES)
def test_certain_nonemptiness_by_enumeration(benchmark, r_size):
    database = _db(r_size)
    benchmark.group = f"e02 |R|={r_size}"
    result = benchmark(
        certain_boolean,
        lambda world: bool(RA_QUERY.evaluate(world)),
        database,
        "cwa",
    )
    assert result is True  # |R| > |S| forces a non-empty difference


def test_report_table(benchmark, report):
    def build_rows():
        rows = []
        for r_size in R_SIZES:
            database = _db(r_size)
            sql_rows = run_sql(database, SQL_QUERY)
            nonempty_certain = certain_boolean(
                lambda world: bool(RA_QUERY.evaluate(world)), database, semantics="cwa"
            )
            rows.append([r_size, 1, len(sql_rows), nonempty_certain])
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    report(
        "E2: R − S with a null in S — SQL answer size vs certain non-emptiness",
        ["|R|", "|S| (all null)", "SQL rows returned", "R−S nonempty certain?"],
        rows,
    )
    assert all(row[2] == 0 and row[3] for row in rows)
