"""Test-time path configuration.

Ensures ``src/`` is importable even when the package has not been
pip-installed (e.g. on offline machines without editable-install support),
so ``pytest tests/`` and ``pytest benchmarks/`` work from a fresh checkout.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
