"""The physical evaluation engine for the incomplete-information algebra.

:func:`repro.algebra.ast.RAExpression.evaluate` routes through this
package by default: expressions are compiled into optimized physical
plans (selection pushdown, hash joins ordered by cardinality estimate,
hash-based set operations, grouped hash division, common-subexpression
memoization) instead of being walked node by node.  The original
interpreter remains available as ``engine="interpreter"`` and serves as
the differential-testing oracle.

:func:`repro.algebra.ctable_algebra.ctable_evaluate` shares the same
logical plans and plan cache through :mod:`repro.engine.ctable`, which
lowers them to operators over conditional rows whose conditions are
composed through the hash-consed kernel
(:mod:`repro.datamodel.condition_kernel`).

See ``docs/engine.md`` for the plan lifecycle, the operator inventory and
how to add an operator, and ``docs/conditions.md`` for the kernel.
"""

from __future__ import annotations

import os

from .ctable import execute_ctable
from .logical import LogicalNode, explain, optimize
from .planner import clear_plan_cache, compile_plan, execute

_ENGINES = ("plan", "interpreter", "sqlite")
_default_engine = os.environ.get("REPRO_ENGINE", "plan")
if _default_engine not in _ENGINES:
    raise ValueError(
        f"REPRO_ENGINE must be one of {_ENGINES}, got {_default_engine!r}"
    )


def get_default_engine() -> str:
    """The engine used when ``evaluate`` is called without ``engine=``."""
    return _default_engine


def execute_sqlite(expression, database):
    """Evaluate through the SQLite backend (``engine="sqlite"``).

    Imported lazily: :mod:`repro.backends` builds on this package's
    planner, so a top-level import here would be circular.
    """
    from ..backends.sqlite import execute as _execute

    return _execute(expression, database)


def set_default_engine(name: str) -> str:
    """Set the process-wide default engine; returns the previous default."""
    global _default_engine
    if name not in _ENGINES:
        raise ValueError(f"unknown engine {name!r}; expected one of {_ENGINES}")
    previous = _default_engine
    _default_engine = name
    return previous


__all__ = [
    "LogicalNode",
    "clear_plan_cache",
    "compile_plan",
    "execute",
    "execute_ctable",
    "execute_sqlite",
    "explain",
    "get_default_engine",
    "optimize",
    "set_default_engine",
]
