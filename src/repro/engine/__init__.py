"""The physical evaluation engine for the incomplete-information algebra.

:func:`repro.algebra.ast.RAExpression.evaluate` routes through this
package by default: expressions are compiled into optimized physical
plans (selection pushdown, hash joins ordered by cardinality estimate,
hash-based set operations, grouped hash division, common-subexpression
memoization) instead of being walked node by node.  The original
interpreter remains available as ``engine="interpreter"`` and serves as
the differential-testing oracle.

:func:`repro.algebra.ctable_algebra.ctable_evaluate` shares the same
logical plans and plan cache through :mod:`repro.engine.ctable`, which
lowers them to operators over conditional rows whose conditions are
composed through the hash-consed kernel
(:mod:`repro.datamodel.condition_kernel`).

See ``docs/engine.md`` for the plan lifecycle, the operator inventory and
how to add an operator, and ``docs/conditions.md`` for the kernel.
"""

from __future__ import annotations

import os
from typing import Optional

from .ctable import execute_ctable
from .logical import LogicalNode, explain, optimize
from .planner import DEFAULT_PLAN_CACHE, PlanCache, clear_plan_cache, compile_plan, execute

_ENGINES = ("plan", "interpreter", "sqlite")
# Resolved lazily from the REPRO_ENGINE environment variable at first use:
# an invalid value must produce a clear error from the evaluation call that
# needed it, not make ``import repro`` itself blow up.
_default_engine: Optional[str] = None


def get_default_engine() -> str:
    """The engine used when ``evaluate`` is called without ``engine=``.

    The initial value comes from the ``REPRO_ENGINE`` environment
    variable (validated here, on first use — not at import time) and
    defaults to ``"plan"``.
    """
    global _default_engine
    if _default_engine is None:
        value = os.environ.get("REPRO_ENGINE", "plan")
        if value not in _ENGINES:
            raise ValueError(
                f"invalid REPRO_ENGINE environment variable: expected one of "
                f"{_ENGINES}, got {value!r}"
            )
        _default_engine = value
    return _default_engine


def execute_sqlite(expression, database):
    """Evaluate through the SQLite backend (``engine="sqlite"``).

    Imported lazily: :mod:`repro.backends` builds on this package's
    planner, so a top-level import here would be circular.
    """
    from ..backends.sqlite import execute as _execute

    return _execute(expression, database)


def set_default_engine(name: str) -> str:
    """Set the process-wide default engine; returns the previous default.

    .. deprecated::
        Process-wide engine state cannot serve two callers with different
        needs; create a :class:`repro.session.Session` with
        ``repro.connect(db, engine=...)`` instead.
    """
    from .._deprecation import warn_deprecated

    warn_deprecated(
        "set_default_engine() (process-wide state)",
        "a per-caller session: repro.connect(db, engine=...)",
    )
    global _default_engine
    if name not in _ENGINES:
        raise ValueError(f"unknown engine {name!r}; expected one of {_ENGINES}")
    try:
        previous = get_default_engine()
    except ValueError:
        # An invalid REPRO_ENGINE must not make the setter itself unusable
        # — assigning a valid engine here is the in-process recovery path.
        previous = "plan"
    _default_engine = name
    return previous


__all__ = [
    "DEFAULT_PLAN_CACHE",
    "LogicalNode",
    "PlanCache",
    "clear_plan_cache",
    "compile_plan",
    "execute",
    "execute_ctable",
    "execute_sqlite",
    "explain",
    "get_default_engine",
    "optimize",
    "set_default_engine",
]
