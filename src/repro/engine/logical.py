"""Logical plans and the logical optimizer.

The optimizer turns an :class:`~repro.algebra.ast.RAExpression` into a
*logical plan*: a tree of small, hashable nodes in which

* every attribute reference has been resolved to a position, so no
  per-row name lookups survive into execution;
* conjunctive selections have been split and pushed towards the leaves
  (only equality-only predicates travel — order comparisons can raise on
  nulls, so they stay exactly where the interpreter would evaluate them);
* chains of Cartesian products and the equality selections above them are
  collapsed into a single n-ary :class:`LMultiJoin`, which the planner
  later orders by cardinality estimate and executes with hash joins;
* natural joins and divisions carry their positional plans
  (:class:`LEquiJoin`, :class:`LDivision`) computed once at optimization
  time;
* renames disappear (they only affect the output schema, which the
  executor takes from the original expression).

Logical nodes are frozen dataclasses, so structurally identical subplans
compare and hash equal — the executor uses this for common-subexpression
memoization.

Every rewrite preserves the positional layout of each node's output, which
is what makes it safe to precompute positions against the original
expression's schemas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Set, Tuple

from ..algebra.ast import (
    ActiveDomain,
    ConstantRelation,
    Delta,
    Difference,
    Division,
    Intersection,
    NaturalJoin,
    Product,
    Projection,
    RAExpression,
    RelationRef,
    Rename,
    Selection,
    Union_,
)
from ..algebra.predicates import (
    Attr,
    Comparison,
    PAnd,
    PNot,
    POr,
    Predicate,
    PTrue,
)
from ..datamodel import Relation
from ..datamodel.schema import DatabaseSchema, RelationSchema


class LogicalNode:
    """Base class of logical-plan nodes."""

    arity: int

    def children(self) -> Tuple["LogicalNode", ...]:
        return ()


@dataclass(frozen=True)
class LScan(LogicalNode):
    """Scan of a base relation."""

    name: str
    arity: int

    def __str__(self) -> str:
        return f"scan({self.name})"


@dataclass(frozen=True)
class LConst(LogicalNode):
    """Scan of a literal relation embedded in the query."""

    relation: Relation
    arity: int

    def __str__(self) -> str:
        return f"const({self.relation.name})"


@dataclass(frozen=True)
class LDelta(LogicalNode):
    """The diagonal Δ over the active domain."""

    arity: int = 2

    def __str__(self) -> str:
        return "Δ"


@dataclass(frozen=True)
class LAdom(LogicalNode):
    """The unary active-domain relation."""

    arity: int = 1

    def __str__(self) -> str:
        return "adom"


@dataclass(frozen=True)
class LFilter(LogicalNode):
    """``σ_predicate`` with a position-resolved predicate."""

    child: LogicalNode
    predicate: Predicate
    arity: int

    def children(self) -> Tuple[LogicalNode, ...]:
        return (self.child,)

    def __str__(self) -> str:
        return f"filter[{self.predicate}]({self.child})"


@dataclass(frozen=True)
class LProject(LogicalNode):
    """``π_positions`` (may repeat and reorder columns; output is a set)."""

    child: LogicalNode
    positions: Tuple[int, ...]
    arity: int

    def children(self) -> Tuple[LogicalNode, ...]:
        return (self.child,)

    def __str__(self) -> str:
        return f"project[{', '.join(map(str, self.positions))}]({self.child})"


@dataclass(frozen=True)
class LEquiJoin(LogicalNode):
    """Hash join on position pairs; keeps left columns plus ``right_keep``."""

    left: LogicalNode
    right: LogicalNode
    pairs: Tuple[Tuple[int, int], ...]
    right_keep: Tuple[int, ...]
    arity: int

    def children(self) -> Tuple[LogicalNode, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        pairs = ", ".join(f"{i}={j}" for i, j in self.pairs)
        return f"hashjoin[{pairs}]({self.left}, {self.right})"


@dataclass(frozen=True)
class LMultiJoin(LogicalNode):
    """An n-ary join: factors, equality pairs and residual predicates.

    The output layout is the concatenation of the factors in declaration
    order; ``pairs`` are equalities between *global* positions of that
    layout (each pair spans two distinct factors), and ``residual`` holds
    pushed-down predicates that are not simple cross-factor equalities.
    The planner picks the actual join order by cardinality estimate and
    restores the declared layout with a final permutation.
    """

    factors: Tuple[LogicalNode, ...]
    pairs: Tuple[Tuple[int, int], ...]
    residual: Tuple[Predicate, ...]
    arity: int

    def children(self) -> Tuple[LogicalNode, ...]:
        return self.factors

    def __str__(self) -> str:
        pairs = ", ".join(f"{i}={j}" for i, j in self.pairs)
        inner = ", ".join(str(f) for f in self.factors)
        suffix = f" where {pairs}" if pairs else ""
        return f"multijoin({inner}){suffix}"


@dataclass(frozen=True)
class LUnion(LogicalNode):
    left: LogicalNode
    right: LogicalNode
    arity: int

    def children(self) -> Tuple[LogicalNode, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"union({self.left}, {self.right})"


@dataclass(frozen=True)
class LDifference(LogicalNode):
    left: LogicalNode
    right: LogicalNode
    arity: int

    def children(self) -> Tuple[LogicalNode, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"diff({self.left}, {self.right})"


@dataclass(frozen=True)
class LIntersection(LogicalNode):
    left: LogicalNode
    right: LogicalNode
    arity: int

    def children(self) -> Tuple[LogicalNode, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"intersect({self.left}, {self.right})"


@dataclass(frozen=True)
class LDivision(LogicalNode):
    """Grouped hash division with precomputed keep/divisor positions."""

    left: LogicalNode
    right: LogicalNode
    keep: Tuple[int, ...]
    divisor: Tuple[int, ...]
    arity: int

    def children(self) -> Tuple[LogicalNode, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"divide({self.left}, {self.right})"


@dataclass(frozen=True)
class LOpaque(LogicalNode):
    """Fallback: evaluate an unsupported subtree with the interpreter."""

    expression: RAExpression
    arity: int

    def __str__(self) -> str:
        return f"interpret({self.expression})"


# ----------------------------------------------------------------------
# Predicate utilities (normalization, position maps)
# ----------------------------------------------------------------------
def normalize_predicate(predicate: Predicate, schema: RelationSchema) -> Predicate:
    """Resolve every attribute reference of ``predicate`` to a position."""
    return map_predicate_positions(predicate, lambda ref: schema.index_of(ref))


def map_predicate_positions(
    predicate: Predicate, mapping: Callable[[object], int]
) -> Predicate:
    """Rebuild ``predicate`` with each ``Attr`` ref passed through ``mapping``."""
    if isinstance(predicate, PTrue):
        return predicate
    if isinstance(predicate, Comparison):
        left = Attr(mapping(predicate.left.ref)) if isinstance(predicate.left, Attr) else predicate.left
        right = Attr(mapping(predicate.right.ref)) if isinstance(predicate.right, Attr) else predicate.right
        return Comparison(left, predicate.op, right)
    if isinstance(predicate, PAnd):
        return PAnd(tuple(map_predicate_positions(op, mapping) for op in predicate.operands))
    if isinstance(predicate, POr):
        return POr(tuple(map_predicate_positions(op, mapping) for op in predicate.operands))
    if isinstance(predicate, PNot):
        return PNot(map_predicate_positions(predicate.operand, mapping))
    raise TypeError(f"unsupported predicate {predicate!r}")


def shift_predicate(predicate: Predicate, offset: int) -> Predicate:
    """Shift every attribute position of a normalized predicate by ``offset``."""
    if offset == 0:
        return predicate
    return map_predicate_positions(predicate, lambda ref: ref + offset)


def predicate_positions(predicate: Predicate) -> Set[int]:
    """The positions referenced by a normalized predicate."""
    return {ref for ref in predicate.attributes() if isinstance(ref, int)}


def split_conjuncts(predicate: Predicate) -> Tuple[Predicate, ...]:
    """Flatten top-level conjunctions into a tuple of conjuncts."""
    if isinstance(predicate, PTrue):
        return ()
    if isinstance(predicate, PAnd):
        result: List[Predicate] = []
        for operand in predicate.operands:
            result.extend(split_conjuncts(operand))
        return tuple(result)
    return (predicate,)


def _cross_equality(predicate: Predicate, split: int) -> "Tuple[int, int] | None":
    """``(i, j)`` when the predicate is ``Attr i = Attr j`` spanning ``split``."""
    if (
        isinstance(predicate, Comparison)
        and predicate.op == "="
        and isinstance(predicate.left, Attr)
        and isinstance(predicate.right, Attr)
    ):
        i, j = predicate.left.ref, predicate.right.ref
        if i > j:
            i, j = j, i
        if i < split <= j:
            return (i, j)
    return None


# ----------------------------------------------------------------------
# The optimizer
# ----------------------------------------------------------------------
def optimize(expression: RAExpression, schema: DatabaseSchema) -> LogicalNode:
    """Compile ``expression`` into an optimized logical plan over ``schema``."""
    return _build(expression, schema, ())


def _wrap_filters(node: LogicalNode, preds: Sequence[Predicate]) -> LogicalNode:
    for pred in preds:
        node = LFilter(node, pred, node.arity)
    return node


def _as_multijoin(node: LogicalNode) -> Tuple[Tuple[LogicalNode, ...], Tuple[Tuple[int, int], ...], Tuple[Predicate, ...]]:
    """View ``node`` as multijoin parts (factors, pairs, residual) for flattening."""
    if isinstance(node, LMultiJoin):
        return node.factors, node.pairs, node.residual
    return (node,), (), ()


#: A multijoin-with-projection view of a plan node: ``(factors, pairs,
#: residual, out_positions)``, meaning the node computes
#: ``π_out_positions`` of ``multijoin(factors) where pairs ∧ residual``
#: over the concatenated factor layout.
_ProjectedMultijoin = Tuple[
    Tuple[LogicalNode, ...],
    Tuple[Tuple[int, int], ...],
    Tuple[Predicate, ...],
    Tuple[int, ...],
]


def _as_projected_multijoin(node: LogicalNode) -> "_ProjectedMultijoin | None":
    """Decompose joins into a multijoin view, or ``None`` for leaves.

    Natural-join *chains* lower to nested :class:`LEquiJoin` /
    ``π(LMultiJoin)`` shapes; this view lets the optimizer flatten them
    into one n-ary multijoin so the planner's greedy cost-based ordering
    applies across the whole chain, not just within ``Product`` chains.
    Dropping the intermediate projections is sound under set semantics:
    the factors' columns are all carried to the top and the final
    projection restores the declared output, so the same combinations
    survive (only intermediate deduplication points move).
    """
    if isinstance(node, LMultiJoin):
        return node.factors, node.pairs, node.residual, tuple(range(node.arity))
    if isinstance(node, LProject):
        # Recurse so a user-written projection *inside* a join chain (a
        # π(join) subtree, or stacked π over π) no longer stops
        # flattening: compose its positions through the child's view.
        inner = _as_projected_multijoin(node.child)
        if inner is None:
            return None
        factors, pairs, residual, out = inner
        return factors, pairs, residual, tuple(out[p] for p in node.positions)
    if isinstance(node, LEquiJoin):
        left = _as_projected_multijoin(node.left) or _trivial_view(node.left)
        right = _as_projected_multijoin(node.right) or _trivial_view(node.right)
        factors, pairs, residual, left_out, right_out = _combine_views(left, right)
        pairs = pairs + tuple(
            (left_out[i], right_out[j]) for i, j in node.pairs
        )
        out = tuple(left_out) + tuple(right_out[k] for k in node.right_keep)
        return factors, pairs, residual, out
    return None


def _trivial_view(node: LogicalNode) -> _ProjectedMultijoin:
    return (node,), (), (), tuple(range(node.arity))


def _combine_views(
    left: _ProjectedMultijoin, right: _ProjectedMultijoin
) -> Tuple[
    Tuple[LogicalNode, ...],
    Tuple[Tuple[int, int], ...],
    Tuple[Predicate, ...],
    Tuple[int, ...],
    Tuple[int, ...],
]:
    """Concatenate two multijoin views, shifting the right side's positions.

    Returns the combined factors/pairs/residual plus each side's output
    map into the combined concatenated layout.
    """
    l_factors, l_pairs, l_residual, l_out = left
    r_factors, r_pairs, r_residual, r_out = right
    shift = sum(factor.arity for factor in l_factors)
    factors = l_factors + r_factors
    pairs = l_pairs + tuple((i + shift, j + shift) for i, j in r_pairs)
    residual = l_residual + tuple(shift_predicate(p, shift) for p in r_residual)
    return factors, pairs, residual, l_out, tuple(p + shift for p in r_out)


def _build(
    expression: RAExpression, schema: DatabaseSchema, preds: Tuple[Predicate, ...]
) -> LogicalNode:
    """Build the plan for ``σ_preds(expression)``, pushing predicates down.

    ``preds`` are normalized, equality-only predicates over the positional
    layout of ``expression``'s output, ordered innermost-first (the order
    in which the interpreter would have applied them).
    """
    if isinstance(expression, Selection):
        child_schema = expression.child.output_schema(schema)
        normalized = normalize_predicate(expression.predicate, child_schema)
        conjuncts = split_conjuncts(normalized)
        if all(c.is_equality_only() for c in conjuncts):
            return _build(expression.child, schema, conjuncts + preds)
        # Order comparisons can raise TypeError on nulls, so they must see
        # exactly the rows the interpreter would show them: freeze the
        # subtree (no predicates cross this filter in either direction).
        inner = _build(expression.child, schema, ())
        return _wrap_filters(LFilter(inner, normalized, inner.arity), preds)

    if isinstance(expression, Projection):
        child_schema = expression.child.output_schema(schema)
        positions = tuple(child_schema.index_of(a) for a in expression.attributes)
        pushed = tuple(
            map_predicate_positions(p, lambda ref: positions[ref]) for p in preds
        )
        child = _build(expression.child, schema, pushed)
        return LProject(child, positions, len(positions))

    if isinstance(expression, Rename):
        # Renaming only changes names, never the layout; positions stay valid.
        expression.output_schema(schema)  # preserve the interpreter's arity check
        return _build(expression.child, schema, preds)

    if isinstance(expression, Product):
        left_arity = expression.left.output_schema(schema).arity
        right_arity = expression.right.output_schema(schema).arity
        left_preds: List[Predicate] = []
        right_preds: List[Predicate] = []
        pairs: List[Tuple[int, int]] = []
        residual: List[Predicate] = []
        for pred in preds:
            positions = predicate_positions(pred)
            if positions and max(positions) < left_arity:
                left_preds.append(pred)
            elif positions and min(positions) >= left_arity:
                right_preds.append(shift_predicate(pred, -left_arity))
            else:
                pair = _cross_equality(pred, left_arity)
                if pair is not None:
                    pairs.append(pair)
                elif not positions:  # constant predicate (e.g. Const = Const)
                    left_preds.append(pred)
                else:
                    residual.append(pred)
        left = _build(expression.left, schema, tuple(left_preds))
        right = _build(expression.right, schema, tuple(right_preds))
        l_factors, l_pairs, l_residual = _as_multijoin(left)
        r_factors, r_pairs, r_residual = _as_multijoin(right)
        shifted_r_pairs = tuple((i + left_arity, j + left_arity) for i, j in r_pairs)
        shifted_r_residual = tuple(shift_predicate(p, left_arity) for p in r_residual)
        return LMultiJoin(
            l_factors + r_factors,
            l_pairs + shifted_r_pairs + tuple(pairs),
            l_residual + shifted_r_residual + tuple(residual),
            left_arity + right_arity,
        )

    if isinstance(expression, NaturalJoin):
        left_schema, right_schema, join_pairs, right_keep = expression._join_plan(schema)
        left_arity = left_schema.arity
        out_to_right = {left_arity + k: right_pos for k, right_pos in enumerate(right_keep)}
        left_preds: List[Predicate] = []
        right_preds: List[Predicate] = []
        above: List[Predicate] = []
        for pred in preds:
            positions = predicate_positions(pred)
            if not positions or max(positions) < left_arity:
                left_preds.append(pred)
            elif min(positions) >= left_arity:
                right_preds.append(
                    map_predicate_positions(pred, lambda ref: out_to_right[ref])
                )
            else:
                above.append(pred)
        left = _build(expression.left, schema, tuple(left_preds))
        right = _build(expression.right, schema, tuple(right_preds))
        left_view = _as_projected_multijoin(left)
        right_view = _as_projected_multijoin(right)
        if left_view is None and right_view is None:
            # A plain two-way join: keep the direct LEquiJoin shape (it
            # avoids materializing the dropped right columns).
            node: LogicalNode = LEquiJoin(
                left,
                right,
                tuple(join_pairs),
                tuple(right_keep),
                left_arity + len(right_keep),
            )
            return _wrap_filters(node, above)
        # At least one side is itself a join: flatten the whole chain into
        # one n-ary multijoin so the planner reorders it by cardinality
        # estimate, and restore the natural-join layout with a projection.
        factors, pairs, residual, left_out, right_out = _combine_views(
            left_view or _trivial_view(left), right_view or _trivial_view(right)
        )
        pairs = pairs + tuple((left_out[i], right_out[j]) for i, j in join_pairs)
        total = sum(factor.arity for factor in factors)
        multijoin = LMultiJoin(factors, pairs, residual, total)
        out_positions = tuple(left_out) + tuple(right_out[k] for k in right_keep)
        node = LProject(multijoin, out_positions, len(out_positions))
        return _wrap_filters(node, above)

    if isinstance(expression, Union_):
        arity = expression.output_schema(schema).arity
        left = _build(expression.left, schema, preds)
        right = _build(expression.right, schema, preds)
        return LUnion(left, right, arity)

    if isinstance(expression, Intersection):
        arity = expression.output_schema(schema).arity
        left = _build(expression.left, schema, preds)
        right = _build(expression.right, schema, preds)
        return LIntersection(left, right, arity)

    if isinstance(expression, Difference):
        arity = expression.output_schema(schema).arity
        left = _build(expression.left, schema, preds)
        right = _build(expression.right, schema, preds)
        return LDifference(left, right, arity)

    if isinstance(expression, Division):
        _, _, keep_positions, divisor_positions = expression._division_plan(schema)
        pushed = tuple(
            map_predicate_positions(p, lambda ref: keep_positions[ref]) for p in preds
        )
        left = _build(expression.left, schema, pushed)
        right = _build(expression.right, schema, ())
        return LDivision(
            left,
            right,
            tuple(keep_positions),
            tuple(divisor_positions),
            len(keep_positions),
        )

    if isinstance(expression, RelationRef):
        node = LScan(expression.name, schema[expression.name].arity)
        return _wrap_filters(node, preds)

    if isinstance(expression, ConstantRelation):
        node = LConst(expression.relation, expression.relation.arity)
        return _wrap_filters(node, preds)

    if isinstance(expression, Delta):
        return _wrap_filters(LDelta(), preds)

    if isinstance(expression, ActiveDomain):
        return _wrap_filters(LAdom(), preds)

    # Unknown node type: fall back to the interpreter for the whole subtree.
    node = LOpaque(expression, expression.output_schema(schema).arity)
    return _wrap_filters(node, preds)


def explain(node: LogicalNode, indent: int = 0) -> str:
    """A readable multi-line rendering of a logical plan (for tests/docs)."""
    pad = "  " * indent
    label = type(node).__name__[1:].lower()
    details = ""
    if isinstance(node, LScan):
        details = f" {node.name}"
    elif isinstance(node, LConst):
        details = f" {node.relation.name}"
    elif isinstance(node, LFilter):
        details = f" [{node.predicate}]"
    elif isinstance(node, LProject):
        details = f" [{', '.join(map(str, node.positions))}]"
    elif isinstance(node, (LEquiJoin, LMultiJoin)):
        pairs = ", ".join(f"{i}={j}" for i, j in node.pairs)
        details = f" [{pairs}]" if pairs else ""
    lines = [f"{pad}{label}{details}"]
    for child in node.children():
        lines.append(explain(child, indent + 1))
    return "\n".join(lines)
