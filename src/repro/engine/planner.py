"""The planner: plan cache, cardinality estimates, lowering, execution.

Plan lifecycle
--------------
1. ``execute(expression, database)`` looks up the expression in the plan
   cache (keyed by the expression and the database schema — both
   immutable and hashable).  On a miss it computes the output schema
   (surfacing exactly the schema errors the interpreter would raise) and
   runs the logical optimizer (:mod:`repro.engine.logical`).
2. The logical plan is *lowered* to a tree of physical operators
   (:mod:`repro.engine.physical`).  Lowering is where cost-based choices
   happen: multijoins are ordered greedily by cardinality estimate
   (smallest estimated factor first, preferring factors connected by an
   equality so a hash join applies), and the declared column layout is
   restored with a final permutation.  The lowered plan is cached next to
   the logical plan together with the base-relation sizes it was costed
   for, so repeated evaluation of the same query on the same (or
   same-sized) data skips planning entirely.
3. The physical plan runs against an :class:`ExecutionContext`; every
   operator memoizes its result under its logical node, giving
   common-subexpression elimination for structurally repeated subplans.
4. The resulting row set becomes a :class:`Relation` through the trusted
   constructor — values are already validated and interned.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Set, Tuple

from ..algebra.ast import RAExpression
from ..datamodel import Database, Relation
from ..datamodel.condition_kernel import DEFAULT_KERNEL, ConditionKernel
from ..datamodel.schema import DatabaseSchema, RelationSchema
from ..obs.analyze import OpStats, instrument
from ..obs.metrics import DISABLED_METRICS, MetricsRegistry
from ..obs.trace import Tracer, current_tracer, span
from .logical import (
    LAdom,
    LConst,
    LDelta,
    LDifference,
    LDivision,
    LEquiJoin,
    LFilter,
    LIntersection,
    LMultiJoin,
    LOpaque,
    LProject,
    LScan,
    LUnion,
    LogicalNode,
    optimize,
)
from .physical import (
    AdomScan,
    ConstScan,
    DeltaScan,
    ExecutionContext,
    Filter,
    HashDifference,
    HashDivision,
    HashIntersection,
    HashJoin,
    HashUnion,
    Interpret,
    NestedProduct,
    PhysicalOperator,
    Project,
    Scan,
    compile_predicate,
)

_PLAN_CACHE_LIMIT = 256


class _CacheEntry:
    __slots__ = ("logical", "out_schema", "sizes", "physical", "ctable_sizes", "ctable_physical")

    def __init__(self, logical: LogicalNode, out_schema: RelationSchema) -> None:
        self.logical = logical
        self.out_schema = out_schema
        self.sizes: Optional[Tuple[int, ...]] = None
        self.physical: Optional[PhysicalOperator] = None
        # The c-table path (repro.engine.ctable) shares the logical plan and
        # caches its own lowering beside the complete-relation one.
        self.ctable_sizes: Optional[Tuple[int, ...]] = None
        self.ctable_physical: Optional[Any] = None


class PlanCache:
    """A bounded ``(expression, schema)`` → plan cache for one evaluation context.

    The process-default instance (:data:`DEFAULT_PLAN_CACHE`) backs the
    module-level :func:`execute` / :func:`compile_plan` /
    :func:`clear_plan_cache` API used by the legacy entry points; every
    :class:`repro.session.Session` owns a private instance, so two
    sessions never share plans — or the condition kernel their
    :meth:`clear` evicts.
    """

    def __init__(
        self,
        limit: int = _PLAN_CACHE_LIMIT,
        kernel: Optional[ConditionKernel] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._cache: "OrderedDict[Tuple[RAExpression, DatabaseSchema], _CacheEntry]" = (
            OrderedDict()
        )
        self._epoch = 0
        self._limit = limit
        self._kernel = kernel if kernel is not None else DEFAULT_KERNEL
        self._frozen = False
        # The owning session's registry; DISABLED for the process default,
        # so counting is one branch when nobody is watching.
        self._metrics = metrics if metrics is not None else DISABLED_METRICS

    @property
    def kernel(self) -> ConditionKernel:
        """The condition kernel this cache's :meth:`clear` evicts."""
        return self._kernel

    @property
    def frozen(self) -> bool:
        """Whether :meth:`freeze` has made the cache read-only."""
        return self._frozen

    def freeze(self) -> None:
        """Make the cache read-only so it can be shared across threads.

        A frozen cache serves hits without LRU reordering, computes
        misses without inserting them, and refuses :meth:`clear` — its
        internal mappings are never mutated again, which under the GIL
        makes concurrent :meth:`execute` calls safe without locks.  Warm
        the working set *before* freezing (misses stay correct but pay
        recompilation on every call).  Freezing is one-way.
        """
        self._frozen = True

    def clear(self) -> None:
        """Drop every cached plan (mainly for tests and benchmarks).

        Also invalidates the per-expression fast-path entries by bumping
        the cache epoch, and ends a usage epoch of the associated
        condition kernel: interned conditions *touched* since the previous
        ``clear`` survive (hot conditions stay canonical across clears),
        everything else is evicted, so long-running services get one reset
        point whose kernel tables stay bounded by the working set instead
        of growing without bound.  A full kernel wipe remains available
        through :meth:`ConditionKernel.clear`.
        """
        if self._frozen:
            from ..resilience import InvalidRequestError

            raise InvalidRequestError("cannot clear a frozen plan cache")
        self._cache.clear()
        self._epoch += 1
        self._kernel.evict()

    def __len__(self) -> int:
        return len(self._cache)

    def compile(self, expression: RAExpression, schema: DatabaseSchema) -> LogicalNode:
        """The optimized logical plan for ``expression`` over ``schema``."""
        return self.entry(expression, schema).logical

    def entry(self, expression: RAExpression, schema: DatabaseSchema) -> _CacheEntry:
        key = (expression, schema)
        entry = self._cache.get(key)
        if self._frozen:
            # Read-only: serve hits without reordering the LRU list and
            # compute misses without publishing them — the mapping never
            # changes after freeze(), so concurrent readers need no lock.
            if entry is None:
                self._metrics.count("plan_cache.misses")
                with span("plan.compile", frozen=True):
                    entry = _CacheEntry(
                        optimize(expression, schema), expression.output_schema(schema)
                    )
            else:
                self._metrics.count("plan_cache.hits")
            return entry
        if entry is None:
            self._metrics.count("plan_cache.misses")
            with span("plan.compile"):
                out_schema = expression.output_schema(schema)
                entry = _CacheEntry(optimize(expression, schema), out_schema)
            self._cache[key] = entry
            if len(self._cache) > self._limit:
                self._cache.popitem(last=False)
                self._metrics.count("plan_cache.evictions")
        else:
            self._metrics.count("plan_cache.hits")
            self._cache.move_to_end(key)
        return entry

    def execute(self, expression: RAExpression, database: Database) -> Relation:
        """Evaluate ``expression`` on ``database`` through the physical engine."""
        schema = database.schema
        # Fast path: the last few (schema, plan) entries are pinned onto the
        # expression object itself, so steady-state evaluation skips hashing
        # the whole expression tree and schema on every call.  The pin
        # records which PlanCache wrote it (weakly — a long-lived expression
        # must not keep a dead session's caches and kernel alive); a
        # different session's cache misses and repins (correct either way —
        # entries always originate from self._cache).
        cached = getattr(expression, "_plan_entries", None)
        entries = None
        if cached is not None and cached[0]() is self and cached[1] == self._epoch:
            entries = cached[2]
        entry = None
        if entries is not None:
            for cached_schema, cached_entry in entries:
                if cached_schema is schema or cached_schema == schema:
                    entry = cached_entry
                    self._metrics.count("plan_cache.hits")
                    break
        if entry is None:
            entry = self.entry(expression, schema)
            if self._frozen:
                entries = None  # never pin from a frozen cache: the pin list
                # is shared mutable state and expressions may be shared too
            elif entries is None:
                entries = []
                try:
                    object.__setattr__(
                        expression,
                        "_plan_entries",
                        (weakref.ref(self), self._epoch, entries),
                    )
                except (AttributeError, TypeError):  # __slots__-restricted subclass
                    entries = None
            if entries is not None:
                entries.append((schema, entry))
                if len(entries) > 4:
                    del entries[0]
        sizes = tuple(len(relation) for relation in database.relations())
        physical = entry.physical
        if physical is None or entry.sizes != sizes:
            self._metrics.count("plan_cache.lowerings")
            with span("plan.lower"):
                physical = lower(entry.logical, database)
            if not self._frozen:
                entry.physical = physical
                entry.sizes = sizes
            # frozen: keep the lowering local — a concurrent reader may be
            # walking entry.physical for a different database size
        ctx = ExecutionContext(database)
        tracer = current_tracer()
        if tracer is None:
            rows = physical.rows(ctx)
        else:
            # Tracing is on: run the plan through analyze probes so each
            # physical operator becomes a span with rows/time/memo facts.
            # The probes wrap fresh clones; cached plans stay pristine.
            with tracer.span("plan.execute") as sp:
                probed, stats_root = instrument(physical)
                rows = probed.rows(ctx)
                sp.set(rows=len(rows))
                _emit_operator_spans(tracer, stats_root, sp.span_id)
        return Relation._from_trusted(entry.out_schema, frozenset(rows))

    def analyze(self, expression: RAExpression, database: Database) -> Tuple[Relation, OpStats]:
        """Evaluate like :meth:`execute` but return per-operator statistics.

        Backs ``Query.explain(analyze=True)``: the physical plan runs
        wrapped in analyze probes, and the resulting :class:`OpStats`
        tree mirrors the plan with rows / wall time / memo hits per node.
        """
        schema = database.schema
        entry = self.entry(expression, schema)
        sizes = tuple(len(relation) for relation in database.relations())
        physical = entry.physical
        if physical is None or entry.sizes != sizes:
            physical = lower(entry.logical, database)
            if not self._frozen:
                entry.physical = physical
                entry.sizes = sizes
        probed, stats_root = instrument(physical)
        ctx = ExecutionContext(database)
        rows = probed.rows(ctx)
        return Relation._from_trusted(entry.out_schema, frozenset(rows)), stats_root

    def stats(self) -> Dict[str, Any]:
        """Cache shape and hit/miss counters (``Session.plan_cache_stats()``)."""
        return {
            "entries": len(self._cache),
            "limit": self._limit,
            "epoch": self._epoch,
            "frozen": self._frozen,
            "hits": self._metrics.counter_value("plan_cache.hits"),
            "misses": self._metrics.counter_value("plan_cache.misses"),
            "evictions": self._metrics.counter_value("plan_cache.evictions"),
            "lowerings": self._metrics.counter_value("plan_cache.lowerings"),
        }


def _emit_operator_spans(tracer: Tracer, root: OpStats, parent_id: int) -> None:
    """Turn an analyze stats tree into per-operator spans (shared nodes once)."""
    visited: Set[int] = set()

    def emit(node: OpStats, parent: int) -> None:
        if id(node) in visited:
            return
        visited.add(id(node))
        span_obj = tracer.record(
            "op." + node.name,
            node.seconds,
            parent_id=parent,
            rows=node.rows,
            calls=node.calls,
            memo_hits=node.memo_hits,
            details=node.details,
        )
        for child in node.children:
            emit(child, span_obj.span_id)

    emit(root, parent_id)


#: The process-default plan cache, shared by all legacy (non-session)
#: entry points and by the process-default Session.
DEFAULT_PLAN_CACHE = PlanCache()

# Alias kept for tests and diagnostics that inspect the default cache's
# underlying mapping directly; ``PlanCache.clear`` empties it in place, so
# the alias never goes stale.
_PLAN_CACHE = DEFAULT_PLAN_CACHE._cache


def clear_plan_cache() -> None:
    """Clear the process-default plan cache; see :meth:`PlanCache.clear`."""
    DEFAULT_PLAN_CACHE.clear()


def compile_plan(expression: RAExpression, schema: DatabaseSchema) -> LogicalNode:
    """The optimized logical plan for ``expression`` over ``schema`` (default cache)."""
    return DEFAULT_PLAN_CACHE.compile(expression, schema)


def _cache_entry(expression: RAExpression, schema: DatabaseSchema) -> _CacheEntry:
    return DEFAULT_PLAN_CACHE.entry(expression, schema)


def execute(expression: RAExpression, database: Database) -> Relation:
    """Evaluate through the physical engine using the process-default cache."""
    return DEFAULT_PLAN_CACHE.execute(expression, database)


# ----------------------------------------------------------------------
# Cardinality estimation
# ----------------------------------------------------------------------
def estimate(node: LogicalNode, database: Database) -> float:
    """A coarse cardinality estimate used only to order joins."""
    if isinstance(node, LScan):
        return float(len(database.relation(node.name)))
    if isinstance(node, LConst):
        return float(len(node.relation))
    if isinstance(node, (LDelta, LAdom)):
        return float(max(1, database.size()))
    if isinstance(node, LFilter):
        return max(1.0, 0.25 * estimate(node.child, database))
    if isinstance(node, LProject):
        return estimate(node.child, database)
    if isinstance(node, LEquiJoin):
        left = estimate(node.left, database)
        right = estimate(node.right, database)
        return max(1.0, 0.1 * left * right) if node.pairs else left * right
    if isinstance(node, LMultiJoin):
        result = 1.0
        for factor in node.factors:
            result *= estimate(factor, database)
        return max(1.0, result * (0.1 ** len(node.pairs)))
    if isinstance(node, LUnion):
        return estimate(node.left, database) + estimate(node.right, database)
    if isinstance(node, LDifference):
        return estimate(node.left, database)
    if isinstance(node, LIntersection):
        return min(estimate(node.left, database), estimate(node.right, database))
    if isinstance(node, LDivision):
        return max(1.0, estimate(node.left, database) / max(1.0, estimate(node.right, database)))
    if isinstance(node, LOpaque):
        return float(max(1, database.size()))
    raise TypeError(f"unsupported logical node {node!r}")


# ----------------------------------------------------------------------
# Lowering
# ----------------------------------------------------------------------
def lower(node: LogicalNode, database: Database) -> PhysicalOperator:
    """Lower a logical plan to physical operators, choosing join orders.

    Structurally equal logical subplans lower to the *same* physical
    operator instance, so common subexpressions are detected here, once per
    plan, and the runtime memo works with cheap integer keys: an operator
    reached through two parents computes its rows on the first visit and
    serves the cached set on the second.
    """
    return _Lowering(database).lower(node)


class _Lowering:
    """Lowering of logical plans to physical operators.

    The traversal, the multijoin ordering and the CSE sharing live here;
    the construction of each concrete operator is delegated to overridable
    factory hooks so other executors over the *same* logical plans (the
    c-table path in :mod:`repro.engine.ctable`) inherit the cost-based
    join ordering while emitting their own operators.
    """

    def __init__(self, database: Database) -> None:
        self.database = database
        self.shared: Dict[LogicalNode, Any] = {}
        self.next_key = 0

    def key(self) -> int:
        self.next_key += 1
        return self.next_key

    # -- operator factory hooks ----------------------------------------
    def make_scan(self, node: LScan) -> Any:
        return Scan(node.name, key=self.key())

    def make_const(self, node: LConst) -> Any:
        return ConstScan(node.relation, key=self.key())

    def make_delta(self, node: LDelta) -> Any:
        return DeltaScan(key=self.key())

    def make_adom(self, node: LAdom) -> Any:
        return AdomScan(key=self.key())

    def make_filter(self, child: Any, predicate: Any) -> Any:
        return Filter(child, compile_predicate(predicate), key=self.key())

    def make_eq_filter(self, child: Any, left: int, right: int) -> Any:
        """A filter asserting equality of two positions of the same row."""
        return Filter(child, lambda row, a=left, b=right: row[a] == row[b], key=self.key())

    def make_project(self, child: Any, positions: Tuple[int, ...]) -> Any:
        return Project(child, positions, key=self.key())

    def make_join(
        self,
        left: Any,
        right: Any,
        left_keys: Tuple[int, ...],
        right_keys: Tuple[int, ...],
        right_keep: Tuple[int, ...],
    ) -> Any:
        return HashJoin(left, right, left_keys, right_keys, right_keep, key=self.key())

    def make_product(self, left: Any, right: Any) -> Any:
        return NestedProduct(left, right, key=self.key())

    def make_union(self, left: Any, right: Any) -> Any:
        return HashUnion(left, right, key=self.key())

    def make_difference(self, left: Any, right: Any) -> Any:
        return HashDifference(left, right, key=self.key())

    def make_intersection(self, left: Any, right: Any) -> Any:
        return HashIntersection(left, right, key=self.key())

    def make_division(
        self, left: Any, right: Any, keep: Tuple[int, ...], divisor: Tuple[int, ...]
    ) -> Any:
        return HashDivision(left, right, keep, divisor, key=self.key())

    def make_opaque(self, node: LOpaque) -> Any:
        return Interpret(node.expression, key=self.key())

    def estimate(self, node: LogicalNode) -> float:
        return estimate(node, self.database)

    # -- traversal -----------------------------------------------------
    def lower(self, node: LogicalNode) -> Any:
        op = self.shared.get(node)
        if op is None:
            op = self._lower(node)
            self.shared[node] = op
        return op

    def _lower(self, node: LogicalNode) -> Any:
        if isinstance(node, LScan):
            return self.make_scan(node)
        if isinstance(node, LConst):
            return self.make_const(node)
        if isinstance(node, LDelta):
            return self.make_delta(node)
        if isinstance(node, LAdom):
            return self.make_adom(node)
        if isinstance(node, LFilter):
            return self.make_filter(self.lower(node.child), node.predicate)
        if isinstance(node, LProject):
            return self.make_project(self.lower(node.child), node.positions)
        if isinstance(node, LEquiJoin):
            left_keys = tuple(i for i, _ in node.pairs)
            right_keys = tuple(j for _, j in node.pairs)
            return self.make_join(
                self.lower(node.left),
                self.lower(node.right),
                left_keys,
                right_keys,
                node.right_keep,
            )
        if isinstance(node, LMultiJoin):
            return self._lower_multijoin(node)
        if isinstance(node, LUnion):
            return self.make_union(self.lower(node.left), self.lower(node.right))
        if isinstance(node, LDifference):
            return self.make_difference(self.lower(node.left), self.lower(node.right))
        if isinstance(node, LIntersection):
            return self.make_intersection(self.lower(node.left), self.lower(node.right))
        if isinstance(node, LDivision):
            return self.make_division(
                self.lower(node.left),
                self.lower(node.right),
                node.keep,
                node.divisor,
            )
        if isinstance(node, LOpaque):
            return self.make_opaque(node)
        raise TypeError(f"unsupported logical node {node!r}")

    def _lower_multijoin(self, node: LMultiJoin) -> Any:
        """Order the factors of a multijoin greedily and emit hash joins.

        Start from the smallest estimated factor, then repeatedly attach
        the smallest factor connected to the placed set by an equality pair
        (hash join); when no factor is connected, fall back to the smallest
        overall (Cartesian product).  A final permutation restores the
        declared layout and the residual predicates run on top of it.
        """
        factors = node.factors
        count = len(factors)
        ops = [self.lower(factor) for factor in factors]
        if count == 1:
            result: Any = ops[0]
            for pred in node.residual:
                result = self.make_filter(result, pred)
            return result

        arities = [factor.arity for factor in factors]
        offsets: List[int] = []
        total = 0
        for arity in arities:
            offsets.append(total)
            total += arity

        def locate(global_pos: int) -> Tuple[int, int]:
            for index in range(count - 1, -1, -1):
                if global_pos >= offsets[index]:
                    return index, global_pos - offsets[index]
            raise IndexError(global_pos)

        estimates = [self.estimate(factor) for factor in factors]
        pending: List[Tuple[int, int]] = list(node.pairs)

        start = min(range(count), key=lambda k: estimates[k])
        placed = {start}
        # global position -> position in the current intermediate layout
        pos_map: Dict[int, int] = {offsets[start] + p: p for p in range(arities[start])}
        width = arities[start]
        current = ops[start]
        remaining = [k for k in range(count) if k != start]

        while remaining:
            connected: Set[int] = set()
            for i, j in pending:
                fi, _ = locate(i)
                fj, _ = locate(j)
                if (fi in placed) != (fj in placed):
                    connected.add(fj if fi in placed else fi)
            candidates = [k for k in remaining if k in connected] or remaining
            pick = min(candidates, key=lambda k: estimates[k])

            applicable: List[Tuple[int, int]] = []
            rest: List[Tuple[int, int]] = []
            for i, j in pending:
                fi, _ = locate(i)
                fj, _ = locate(j)
                if {fi, fj} <= placed | {pick} and pick in (fi, fj) and fi != fj:
                    applicable.append((i, j))
                else:
                    rest.append((i, j))
            pending = rest

            if applicable:
                left_keys = []
                right_keys = []
                for i, j in applicable:
                    fi, pi = locate(i)
                    if fi == pick:  # orient the pair: placed side left, new factor right
                        i, j = j, i
                        fi, pi = locate(i)
                    _, pj = locate(j)
                    left_keys.append(pos_map[i])
                    right_keys.append(pj)
                current = self.make_join(
                    current,
                    ops[pick],
                    tuple(left_keys),
                    tuple(right_keys),
                    tuple(range(arities[pick])),
                )
            else:
                current = self.make_product(current, ops[pick])

            for p in range(arities[pick]):
                pos_map[offsets[pick] + p] = width + p
            width += arities[pick]
            placed.add(pick)
            remaining.remove(pick)

            # Equalities whose endpoints are now both placed but were not
            # usable as a join key (e.g. transitive pairs) become filters.
            still_pending: List[Tuple[int, int]] = []
            for i, j in pending:
                fi, _ = locate(i)
                fj, _ = locate(j)
                if fi in placed and fj in placed:
                    current = self.make_eq_filter(current, pos_map[i], pos_map[j])
                else:
                    still_pending.append((i, j))
            pending = still_pending

        permutation = tuple(pos_map[g] for g in range(total))
        if permutation != tuple(range(total)):
            current = self.make_project(current, permutation)
        for pred in node.residual:
            current = self.make_filter(current, pred)
        return current
