"""The planned c-table evaluation path.

``ctable_evaluate(query, ctdb)`` routes through this module by default:
the query is compiled by the *same* logical optimizer and plan cache as
complete-relation evaluation (:mod:`repro.engine.logical`,
:mod:`repro.engine.planner` — selection pushdown, cardinality-ordered
multijoins, CSE sharing), and the plan is lowered to operators over
*conditional rows* ``(values, condition)`` instead of plain rows.

The operators mirror the Imieliński–Lipski algebra of
:mod:`repro.algebra.ctable_algebra` — the tree-walking ``_evaluate``
there remains the ``engine="interpreter"`` oracle — but compose every
condition through the hash-consed kernel
(:mod:`repro.datamodel.condition_kernel`): equalities are constant-folded
and interned, conjunctions/disjunctions are flattened, deduplicated and
memoized by node identity, and a union-find check kills unsatisfiable
equality conjunctions at construction.  Join keys are partitioned into
constants-vs-null exactly like the interpreter's ``_natural_join``: a
pair of rows whose all-constant keys differ can only produce a ``false``
condition, so it is never enumerated.

The planned path may produce a *syntactically* different c-table than the
interpreter (different row order, differently-shaped conditions); the two
always represent the same set of possible worlds, which is what the
differential property tests assert.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..algebra.ast import RAExpression
from ..algebra.ctable_algebra import _merge_sorted
from ..algebra.predicates import _OPERATORS, Attr, Comparison, PAnd, PNot, POr, Predicate, PTrue
from ..datamodel import ConditionalRow, ConditionalTable
from ..datamodel.condition_kernel import DEFAULT_KERNEL, ConditionKernel
from ..datamodel.conditional import FALSE, TRUE, Condition
from ..datamodel.relations import Relation, Row
from ..datamodel.schema import DatabaseSchema
from ..datamodel.values import is_null
from ..obs.trace import span
from ..resilience import active_budget
from .logical import (
    LAdom,
    LConst,
    LDelta,
    LOpaque,
    LScan,
)
from . import planner as _planner

#: A conditional row in flight: ``(values, condition)`` with the condition
#: already canonical (interned, simplified, never ``FALSE``).
CRow = Tuple[Row, Condition]


class CTableContext:
    """Per-query execution state: the c-table database, schema, CSE memo.

    Also carries the :class:`ConditionKernel` every operator composes its
    conditions through — the process-default one on the legacy path, a
    session-private one when evaluation runs inside a
    :class:`repro.session.Session`.
    """

    __slots__ = ("database", "schema", "memo", "kernel", "budget", "_adom")

    def __init__(
        self,
        database: Any,
        schema: DatabaseSchema,
        kernel: Optional[ConditionKernel] = None,
    ) -> None:
        self.database = database
        self.schema = schema
        self.memo: Dict[Any, List[CRow]] = {}
        self.kernel = kernel if kernel is not None else DEFAULT_KERNEL
        # Snapshot the ambient budget once per query; the quadratic
        # operators check it per outer row (cooperative cancellation).
        self.budget = active_budget()
        self._adom: Optional[List[Any]] = None

    def active_domain(self) -> List[Any]:
        if self._adom is None:
            self._adom = sorted(self.database.active_domain(), key=str)
        return self._adom


class COperator:
    """Base class of conditional-row operators (memoized like physical ones)."""

    __slots__ = ("key",)

    def __init__(self, key: Any = None) -> None:
        self.key = key

    def rows(self, ctx: CTableContext) -> List[CRow]:
        if self.key is not None:
            cached = ctx.memo.get(self.key)
            if cached is not None:
                return cached
        result = self._compute(ctx)
        if self.key is not None:
            ctx.memo[self.key] = result
        return result

    def _compute(self, ctx: CTableContext) -> List[CRow]:
        raise NotImplementedError


class CScan(COperator):
    __slots__ = ("name",)

    def __init__(self, name: str, key: Any = None) -> None:
        super().__init__(key)
        self.name = name

    def _compute(self, ctx: CTableContext) -> List[CRow]:
        rows: List[CRow] = []
        intern = ctx.kernel.intern
        for row in ctx.database.table(self.name):
            condition = intern(row.condition)
            if condition is FALSE:
                continue
            rows.append((row.values, condition))
        return rows


class CConstScan(COperator):
    __slots__ = ("relation",)

    def __init__(self, relation: Relation, key: Any = None) -> None:
        super().__init__(key)
        self.relation = relation

    def _compute(self, ctx: CTableContext) -> List[CRow]:
        return [(row, TRUE) for row in self.relation.rows]


class CDeltaScan(COperator):
    __slots__ = ()

    def _compute(self, ctx: CTableContext) -> List[CRow]:
        return [((value, value), TRUE) for value in ctx.active_domain()]


class CAdomScan(COperator):
    __slots__ = ()

    def _compute(self, ctx: CTableContext) -> List[CRow]:
        return [((value,), TRUE) for value in ctx.active_domain()]


class CFilter(COperator):
    """σ over conditional rows: the predicate becomes part of the condition."""

    __slots__ = ("child", "predicate")

    def __init__(self, child: COperator, predicate: Predicate, key: Any = None) -> None:
        super().__init__(key)
        self.child = child
        self.predicate = predicate

    def _compute(self, ctx: CTableContext) -> List[CRow]:
        predicate = self.predicate
        kernel = ctx.kernel
        rows: List[CRow] = []
        for values, condition in self.child.rows(ctx):
            extra = predicate_condition_positional(predicate, values, kernel)
            combined = kernel.and_(condition, extra)
            if combined is FALSE:
                continue
            rows.append((values, combined))
        return rows


class CEqFilter(COperator):
    """Equality of two positions of the same row, as a condition."""

    __slots__ = ("child", "left", "right")

    def __init__(self, child: COperator, left: int, right: int, key: Any = None) -> None:
        super().__init__(key)
        self.child = child
        self.left = left
        self.right = right

    def _compute(self, ctx: CTableContext) -> List[CRow]:
        left, right = self.left, self.right
        kernel = ctx.kernel
        rows: List[CRow] = []
        for values, condition in self.child.rows(ctx):
            combined = kernel.and_(condition, kernel.eq(values[left], values[right]))
            if combined is FALSE:
                continue
            rows.append((values, combined))
        return rows


class CProject(COperator):
    __slots__ = ("child", "positions")

    def __init__(self, child: COperator, positions: Tuple[int, ...], key: Any = None) -> None:
        super().__init__(key)
        self.child = child
        self.positions = positions

    def _compute(self, ctx: CTableContext) -> List[CRow]:
        positions = self.positions
        return [
            (tuple(values[p] for p in positions), condition)
            for values, condition in self.child.rows(ctx)
        ]


class CHashJoin(COperator):
    """Equi-join over conditional rows with constants-vs-null key partitioning.

    Right rows whose key columns are all constants are hashed by key; rows
    with a null in some key column may equal anything under some valuation
    and are paired with every probe.  An all-constant probe key therefore
    meets only its exact hash bucket plus the null-keyed rows — every other
    pairing would conjoin an equality that folds to ``false``.
    """

    __slots__ = ("left", "right", "left_keys", "right_keys", "right_keep")

    def __init__(
        self,
        left: COperator,
        right: COperator,
        left_keys: Tuple[int, ...],
        right_keys: Tuple[int, ...],
        right_keep: Tuple[int, ...],
        key: Any = None,
    ) -> None:
        super().__init__(key)
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.right_keep = right_keep

    def _compute(self, ctx: CTableContext) -> List[CRow]:
        left_keys = self.left_keys
        right_keys = self.right_keys
        right_keep = self.right_keep
        kernel = ctx.kernel
        right_rows = self.right.rows(ctx)
        if not right_rows:
            return []

        keyed: Dict[Row, List[int]] = {}
        null_key_positions: List[int] = []
        for position, (values, _) in enumerate(right_rows):
            key = tuple(values[j] for j in right_keys)
            if any(is_null(v) for v in key):
                null_key_positions.append(position)
            else:
                keyed.setdefault(key, []).append(position)

        keep_all = right_keep == tuple(range(len(right_rows[0][0])))
        single_key = left_keys[0] if len(left_keys) == 1 else None
        single_right = right_keys[0] if len(right_keys) == 1 else None
        # Dense joins probe the same few key tuples over and over; the
        # composed "right condition ∧ key equalities" only depends on
        # (probe key, right row), so it is cached per pair.
        probe_cache: Dict[Tuple[Row, int], Condition] = {}

        def right_part(l_key: Row, position: int) -> Condition:
            pair = (l_key, position)
            cached = probe_cache.get(pair)
            if cached is None:
                r_values, r_condition = right_rows[position]
                if single_right is not None:
                    equalities = kernel.eq(l_key[0], r_values[single_right])
                else:
                    equalities = kernel.conjunction(
                        kernel.eq(l_key[k], r_values[j]) for k, j in enumerate(right_keys)
                    )
                cached = kernel.and_(r_condition, equalities)
                probe_cache[pair] = cached
            return cached

        rows: List[CRow] = []
        append = rows.append
        budget = ctx.budget
        for l_values, l_condition in self.left.rows(ctx):
            if budget is not None:
                budget.check()
            if single_key is not None:
                probe = l_values[single_key]
                l_key: Row = (probe,)
                constant_probe = not is_null(probe)
            else:
                l_key = tuple(l_values[i] for i in left_keys)
                constant_probe = bool(left_keys) and not any(is_null(v) for v in l_key)
            if constant_probe:
                # Exact hash bucket: the key equalities fold to TRUE by
                # construction, so only the row conditions are conjoined.
                bucket = keyed.get(l_key)
                if bucket:
                    for position in bucket:
                        r_values, r_condition = right_rows[position]
                        condition = kernel.and_(l_condition, r_condition)
                        if condition is FALSE:
                            continue
                        if keep_all:
                            values = l_values + r_values
                        else:
                            values = l_values + tuple(r_values[p] for p in right_keep)
                        append((values, condition))
                candidates: Iterable[int] = null_key_positions
            else:
                candidates = range(len(right_rows))
            for position in candidates:
                part = right_part(l_key, position)
                if part is FALSE:
                    continue
                condition = kernel.and_(l_condition, part)
                if condition is FALSE:
                    continue
                r_values = right_rows[position][0]
                if keep_all:
                    values = l_values + r_values
                else:
                    values = l_values + tuple(r_values[p] for p in right_keep)
                append((values, condition))
        return rows


class CProduct(COperator):
    __slots__ = ("left", "right")

    def __init__(self, left: COperator, right: COperator, key: Any = None) -> None:
        super().__init__(key)
        self.left = left
        self.right = right

    def _compute(self, ctx: CTableContext) -> List[CRow]:
        right_rows = self.right.rows(ctx)
        kernel = ctx.kernel
        budget = ctx.budget
        rows: List[CRow] = []
        for l_values, l_condition in self.left.rows(ctx):
            if budget is not None:
                budget.check()
            for r_values, r_condition in right_rows:
                condition = kernel.and_(l_condition, r_condition)
                if condition is FALSE:
                    continue
                rows.append((l_values + r_values, condition))
        return rows


class CUnion(COperator):
    __slots__ = ("left", "right")

    def __init__(self, left: COperator, right: COperator, key: Any = None) -> None:
        super().__init__(key)
        self.left = left
        self.right = right

    def _compute(self, ctx: CTableContext) -> List[CRow]:
        return list(self.left.rows(ctx)) + list(self.right.rows(ctx))


class CMembershipIndex:
    """Hash index over conditional rows for building membership conditions.

    The kernel-side counterpart of the interpreter's ``_MembershipIndex``:
    all-constant rows are keyed by their value tuple, so a constant probe
    only meets its exact matches plus the rows mentioning a null (which may
    coincide with anything under some valuation).
    """

    __slots__ = ("rows", "keyed", "null_rows", "kernel")

    def __init__(self, rows: List[CRow], kernel: Optional[ConditionKernel] = None) -> None:
        self.rows = rows
        self.kernel = kernel if kernel is not None else DEFAULT_KERNEL
        self.keyed: Dict[Row, List[int]] = {}
        self.null_rows: List[int] = []
        for position, (values, _) in enumerate(rows):
            if any(is_null(v) for v in values):
                self.null_rows.append(position)
            else:
                self.keyed.setdefault(values, []).append(position)

    def condition(self, values: Row) -> Condition:
        """The condition "``values`` is a tuple of the indexed rows"."""
        kernel = self.kernel
        if any(is_null(v) for v in values):
            relevant: Iterable[int] = range(len(self.rows))
        else:
            relevant = _merge_sorted(self.keyed.get(values, ()), self.null_rows)
        disjuncts: List[Condition] = []
        for position in relevant:
            r_values, r_condition = self.rows[position]
            disjunct = kernel.and_(r_condition, kernel.row_equality(values, r_values))
            if disjunct is TRUE:
                return TRUE
            if disjunct is FALSE:
                continue
            disjuncts.append(disjunct)
        return kernel.disjunction(disjuncts)


class CIntersection(COperator):
    __slots__ = ("left", "right")

    def __init__(self, left: COperator, right: COperator, key: Any = None) -> None:
        super().__init__(key)
        self.left = left
        self.right = right

    def _compute(self, ctx: CTableContext) -> List[CRow]:
        kernel = ctx.kernel
        membership = CMembershipIndex(self.right.rows(ctx), kernel)
        rows: List[CRow] = []
        for values, condition in self.left.rows(ctx):
            combined = kernel.and_(condition, membership.condition(values))
            if combined is FALSE:
                continue
            rows.append((values, combined))
        return rows


class CDifference(COperator):
    __slots__ = ("left", "right")

    def __init__(self, left: COperator, right: COperator, key: Any = None) -> None:
        super().__init__(key)
        self.left = left
        self.right = right

    def _compute(self, ctx: CTableContext) -> List[CRow]:
        kernel = ctx.kernel
        membership = CMembershipIndex(self.right.rows(ctx), kernel)
        rows: List[CRow] = []
        for values, condition in self.left.rows(ctx):
            combined = kernel.and_(condition, kernel.not_(membership.condition(values)))
            if combined is FALSE:
                continue
            rows.append((values, combined))
        return rows


class CDivision(COperator):
    """``R ÷ S`` over conditional rows.

    Inlines the standard rewriting ``π_A(R) − π_A(reorder(π_A(R) × S) − R)``
    (the same one ``expand_division`` hands the interpreter) with both
    differences realized as kernel membership conditions, so no
    intermediate expression tree or c-table is materialized.
    """

    __slots__ = ("left", "right", "keep", "divisor")

    def __init__(
        self,
        left: COperator,
        right: COperator,
        keep: Tuple[int, ...],
        divisor: Tuple[int, ...],
        key: Any = None,
    ) -> None:
        super().__init__(key)
        self.left = left
        self.right = right
        self.keep = keep
        self.divisor = divisor

    def _compute(self, ctx: CTableContext) -> List[CRow]:
        keep = self.keep
        divisor = self.divisor
        kernel = ctx.kernel
        left_rows = self.left.rows(ctx)
        right_rows = self.right.rows(ctx)
        arity = len(keep) + len(divisor)

        candidates: List[CRow] = [
            (tuple(values[p] for p in keep), condition) for values, condition in left_rows
        ]
        left_membership = CMembershipIndex(left_rows, kernel)

        # reorder(candidate × divisor-row) back into R's column layout,
        # then keep the pairs that may be *missing* from R.
        budget = ctx.budget
        missing: List[CRow] = []
        for c_values, c_condition in candidates:
            if budget is not None:
                budget.check()
            for s_values, s_condition in right_rows:
                full = [None] * arity
                for k_index, p in enumerate(keep):
                    full[p] = c_values[k_index]
                for d_index, p in enumerate(divisor):
                    full[p] = s_values[d_index]
                pair_condition = kernel.and_(c_condition, s_condition)
                if pair_condition is FALSE:
                    continue
                absent = kernel.not_(left_membership.condition(tuple(full)))
                miss_condition = kernel.and_(pair_condition, absent)
                if miss_condition is FALSE:
                    continue
                missing.append((c_values, miss_condition))

        bad_membership = CMembershipIndex(missing, kernel)
        rows: List[CRow] = []
        for c_values, c_condition in candidates:
            combined = kernel.and_(c_condition, kernel.not_(bad_membership.condition(c_values)))
            if combined is FALSE:
                continue
            rows.append((c_values, combined))
        return rows


class CInterpret(COperator):
    """Fallback: run an unsupported subtree on the c-table interpreter."""

    __slots__ = ("expression",)

    def __init__(self, expression: RAExpression, key: Any = None) -> None:
        super().__init__(key)
        self.expression = expression

    def _compute(self, ctx: CTableContext) -> List[CRow]:
        from ..algebra.ctable_algebra import _evaluate

        table = _evaluate(self.expression, ctx.database, ctx.schema)
        intern = ctx.kernel.intern
        rows: List[CRow] = []
        for row in table:
            condition = intern(row.condition)
            if condition is FALSE:
                continue
            rows.append((row.values, condition))
        return rows


# ----------------------------------------------------------------------
# Predicate → condition translation over position-resolved predicates
# ----------------------------------------------------------------------
def predicate_condition_positional(
    predicate: Predicate, values: Row, kernel: Optional[ConditionKernel] = None
) -> Condition:
    """The kernel condition expressing ``predicate`` on a (possibly null) row.

    The positional counterpart of
    :func:`repro.algebra.ctable_algebra.predicate_condition`: attribute
    references have already been resolved to positions by the logical
    optimizer, and the resulting condition is canonical in ``kernel``
    (the process-default kernel when omitted).
    """
    if kernel is None:
        kernel = DEFAULT_KERNEL
    if isinstance(predicate, PTrue):
        return TRUE
    if isinstance(predicate, Comparison):
        left = predicate.left
        right = predicate.right
        left_value = values[left.ref] if isinstance(left, Attr) else left.value
        right_value = values[right.ref] if isinstance(right, Attr) else right.value
        if predicate.op == "=":
            return kernel.eq(left_value, right_value)
        if predicate.op == "!=":
            return kernel.not_(kernel.eq(left_value, right_value))
        if is_null(left_value) or is_null(right_value):
            raise ValueError(
                f"order comparison {predicate.op!r} on nulls is not expressible as a "
                "c-table condition (conditions are equality-based)"
            )
        return TRUE if _OPERATORS[predicate.op](left_value, right_value) else FALSE
    if isinstance(predicate, PAnd):
        return kernel.conjunction(
            predicate_condition_positional(op, values, kernel) for op in predicate.operands
        )
    if isinstance(predicate, POr):
        return kernel.disjunction(
            predicate_condition_positional(op, values, kernel) for op in predicate.operands
        )
    if isinstance(predicate, PNot):
        return kernel.not_(predicate_condition_positional(predicate.operand, values, kernel))
    raise TypeError(f"unsupported predicate {predicate!r}")


# ----------------------------------------------------------------------
# Lowering: reuse the planner's traversal and join ordering
# ----------------------------------------------------------------------
class _CTableSizes:
    """Duck-typed stand-in for a :class:`Database` in cardinality estimates."""

    __slots__ = ("_tables",)

    def __init__(self, database: Any) -> None:
        self._tables = {table.name: table for table in database}

    def relation(self, name: str) -> Any:
        return self._tables[name]

    def size(self) -> int:
        return sum(len(table) for table in self._tables.values())


class _CTableLowering(_planner._Lowering):
    """Lower logical plans to conditional-row operators.

    Inherits the traversal, CSE sharing and greedy multijoin ordering of
    the complete-relation lowering; only the operator factories differ.
    """

    def make_scan(self, node: LScan) -> COperator:
        return CScan(node.name, key=self.key())

    def make_const(self, node: LConst) -> COperator:
        return CConstScan(node.relation, key=self.key())

    def make_delta(self, node: LDelta) -> COperator:
        return CDeltaScan(key=self.key())

    def make_adom(self, node: LAdom) -> COperator:
        return CAdomScan(key=self.key())

    def make_filter(self, child: COperator, predicate: Predicate) -> COperator:
        return CFilter(child, predicate, key=self.key())

    def make_eq_filter(self, child: COperator, left: int, right: int) -> COperator:
        return CEqFilter(child, left, right, key=self.key())

    def make_project(self, child: COperator, positions: Tuple[int, ...]) -> COperator:
        return CProject(child, positions, key=self.key())

    def make_join(
        self,
        left: COperator,
        right: COperator,
        left_keys: Tuple[int, ...],
        right_keys: Tuple[int, ...],
        right_keep: Tuple[int, ...],
    ) -> COperator:
        return CHashJoin(left, right, left_keys, right_keys, right_keep, key=self.key())

    def make_product(self, left: COperator, right: COperator) -> COperator:
        return CProduct(left, right, key=self.key())

    def make_union(self, left: COperator, right: COperator) -> COperator:
        return CUnion(left, right, key=self.key())

    def make_difference(self, left: COperator, right: COperator) -> COperator:
        return CDifference(left, right, key=self.key())

    def make_intersection(self, left: COperator, right: COperator) -> COperator:
        return CIntersection(left, right, key=self.key())

    def make_division(
        self, left: COperator, right: COperator, keep: Tuple[int, ...], divisor: Tuple[int, ...]
    ) -> COperator:
        return CDivision(left, right, keep, divisor, key=self.key())

    def make_opaque(self, node: LOpaque) -> COperator:
        return CInterpret(node.expression, key=self.key())


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def execute_ctable(
    expression: RAExpression,
    database: Any,
    plan_cache: Optional["_planner.PlanCache"] = None,
    kernel: Optional[ConditionKernel] = None,
) -> ConditionalTable:
    """Evaluate an RA expression over a :class:`CTableDatabase` via the planner.

    Shares the logical plan cache of :func:`repro.engine.planner.execute`
    (keyed by ``(expression, schema)``); the c-table lowering is cached
    beside the complete-relation one, keyed by the base table sizes it was
    cost-ordered for.  The result carries the conjunction of all base
    tables' global conditions, exactly like the interpreter path.

    ``plan_cache`` and ``kernel`` select the evaluation state to use; both
    default to the process-wide instances.  Sessions pass their own, so
    concurrent sessions share neither plans nor interned conditions.
    """
    state = active_budget()
    if state is not None:
        state.check()
    if plan_cache is None:
        plan_cache = _planner.DEFAULT_PLAN_CACHE
    if kernel is None:
        kernel = plan_cache.kernel
    schema = database.schema
    entry = plan_cache.entry(expression, schema)
    global_condition = kernel.conjunction(
        kernel.intern(table.global_condition) for table in database
    )
    if global_condition is FALSE:
        # No valuation satisfies the database; skip query evaluation entirely.
        return ConditionalTable(entry.out_schema, (), FALSE)

    sizes = tuple(len(table) for table in database)
    if entry.ctable_physical is None or entry.ctable_sizes != sizes:
        lowering = _CTableLowering(_CTableSizes(database))
        entry.ctable_physical = lowering.lower(entry.logical)
        entry.ctable_sizes = sizes

    ctx = CTableContext(database, schema, kernel)
    with span("ctable.execute") as sp:
        crows = entry.ctable_physical.rows(ctx)
        sp.set(rows=len(crows))
    make_row = ConditionalRow._from_trusted
    rows = [make_row(values, condition) for values, condition in crows]
    return ConditionalTable(entry.out_schema, rows, global_condition)
