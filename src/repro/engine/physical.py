"""Physical operators and the execution context.

Operators work on plain row sets (tuples of interned values) — no
intermediate :class:`~repro.datamodel.relations.Relation` objects, no
per-row schema lookups, no re-validation of values.  Each operator
materializes its result, mirroring the interpreter's semantics (set
semantics everywhere) while replacing its nested loops and per-row name
resolution with hash-based algorithms and precompiled predicate closures.

The shared :class:`ExecutionContext` carries the database, a per-query
memo table for common-subexpression elimination (keyed by the hashable
logical node that produced an operator) and the lazily computed active
domain.

Operator inventory
------------------
``Scan``            base-relation scan (returns the stored frozenset)
``ConstScan``       literal relation embedded in the query
``DeltaScan``       the diagonal Δ over the active domain
``AdomScan``        the unary active-domain relation
``Filter``          σ with a precompiled row predicate
``Project``         π by positions (set-based dedup)
``HashJoin``        equi-join; builds (or reuses a relation's cached)
                    hash index on the right input
``NestedProduct``   Cartesian product (only when no equality is usable)
``HashUnion``       set union
``HashDifference``  set difference
``HashIntersection``set intersection
``HashDivision``    grouped hash division
``Interpret``       fallback to the tree-walking interpreter
"""

from __future__ import annotations

from typing import AbstractSet, Any, Callable, Dict, FrozenSet, List, Optional, Tuple

from ..algebra.predicates import (
    _OPERATORS,
    Attr,
    Comparison,
    PAnd,
    PNot,
    POr,
    Predicate,
    PTrue,
)
from ..datamodel import Database, Relation, is_null
from ..datamodel.relations import Row

Rows = AbstractSet[Row]
RowPredicate = Callable[[Row], bool]


class ExecutionContext:
    """Per-query execution state: database, CSE memo, cached active domain."""

    __slots__ = ("database", "memo", "_adom")

    def __init__(self, database: Database) -> None:
        self.database = database
        self.memo: Dict[Any, Rows] = {}
        self._adom: Optional[FrozenSet[Any]] = None

    def active_domain(self) -> FrozenSet[Any]:
        if self._adom is None:
            self._adom = frozenset(self.database.active_domain())
        return self._adom


class PhysicalOperator:
    """Base class of physical operators.

    ``key`` is the logical node the operator was lowered from; when set,
    results are memoized in the execution context so structurally equal
    subplans run once per query (common-subexpression elimination).
    """

    __slots__ = ("key",)

    def __init__(self, key: Any = None) -> None:
        self.key = key

    def rows(self, ctx: ExecutionContext) -> Rows:
        if self.key is not None:
            cached = ctx.memo.get(self.key)
            if cached is not None:
                return cached
        result = self._compute(ctx)
        if self.key is not None:
            ctx.memo[self.key] = result
        return result

    def _compute(self, ctx: ExecutionContext) -> Rows:
        raise NotImplementedError


class Scan(PhysicalOperator):
    __slots__ = ("name",)

    def __init__(self, name: str, key: Any = None) -> None:
        super().__init__(key)
        self.name = name

    def _compute(self, ctx: ExecutionContext) -> Rows:
        return ctx.database.relation(self.name).rows


class ConstScan(PhysicalOperator):
    __slots__ = ("relation",)

    def __init__(self, relation: Relation, key: Any = None) -> None:
        super().__init__(key)
        self.relation = relation

    def _compute(self, ctx: ExecutionContext) -> Rows:
        return self.relation.rows


class DeltaScan(PhysicalOperator):
    __slots__ = ()

    def _compute(self, ctx: ExecutionContext) -> Rows:
        return {(value, value) for value in ctx.active_domain()}


class AdomScan(PhysicalOperator):
    __slots__ = ()

    def _compute(self, ctx: ExecutionContext) -> Rows:
        return {(value,) for value in ctx.active_domain()}


class Filter(PhysicalOperator):
    __slots__ = ("child", "predicate")

    def __init__(self, child: PhysicalOperator, predicate: RowPredicate, key: Any = None) -> None:
        super().__init__(key)
        self.child = child
        self.predicate = predicate

    def _compute(self, ctx: ExecutionContext) -> Rows:
        predicate = self.predicate
        return {row for row in self.child.rows(ctx) if predicate(row)}


class Project(PhysicalOperator):
    __slots__ = ("child", "positions")

    def __init__(self, child: PhysicalOperator, positions: Tuple[int, ...], key: Any = None) -> None:
        super().__init__(key)
        self.child = child
        self.positions = positions

    def _compute(self, ctx: ExecutionContext) -> Rows:
        positions = self.positions
        rows = self.child.rows(ctx)
        # Specialized row builders: a generator expression per row costs
        # more than the projection itself at arities 1 and 2.
        if len(positions) == 1:
            p = positions[0]
            return {(row[p],) for row in rows}
        if len(positions) == 2:
            p, q = positions
            return {(row[p], row[q]) for row in rows}
        return {tuple(row[p] for p in positions) for row in rows}


class HashJoin(PhysicalOperator):
    """Equi-join: hash the right input on its key positions, probe with the left.

    Output rows are ``left_row + (right_row[p] for p in right_keep)``; pass
    the full range of right positions as ``right_keep`` to emulate a
    filtered Cartesian product.  When the right input is a base-relation
    scan the relation's cached positional index is reused across queries.
    """

    __slots__ = ("left", "right", "left_keys", "right_keys", "right_keep")

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_keys: Tuple[int, ...],
        right_keys: Tuple[int, ...],
        right_keep: Tuple[int, ...],
        key: Any = None,
    ) -> None:
        super().__init__(key)
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.right_keep = right_keep

    def _right_index(self, ctx: ExecutionContext) -> Dict[Row, List[Row]]:
        if isinstance(self.right, Scan):
            return ctx.database.relation(self.right.name).index_on(self.right_keys)
        right_keys = self.right_keys
        index: Dict[Row, List[Row]] = {}
        if len(right_keys) == 1:
            k = right_keys[0]
            for row in self.right.rows(ctx):
                index.setdefault((row[k],), []).append(row)
            return index
        for row in self.right.rows(ctx):
            index.setdefault(tuple(row[p] for p in right_keys), []).append(row)
        return index

    def _compute(self, ctx: ExecutionContext) -> Rows:
        index = self._right_index(ctx)
        left_keys = self.left_keys
        right_keep = self.right_keep
        single_key = left_keys[0] if len(left_keys) == 1 else None
        keep_all: Optional[bool] = None
        result = set()
        add = result.add
        for l_row in self.left.rows(ctx):
            if single_key is not None:
                matches = index.get((l_row[single_key],))
            else:
                matches = index.get(tuple(l_row[p] for p in left_keys))
            if matches:
                if keep_all is None:
                    keep_all = right_keep == tuple(range(len(matches[0])))
                if keep_all:
                    for r_row in matches:
                        add(l_row + r_row)
                else:
                    for r_row in matches:
                        add(l_row + tuple(r_row[p] for p in right_keep))
        return result


class NestedProduct(PhysicalOperator):
    __slots__ = ("left", "right")

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator, key: Any = None) -> None:
        super().__init__(key)
        self.left = left
        self.right = right

    def _compute(self, ctx: ExecutionContext) -> Rows:
        right_rows = self.right.rows(ctx)
        return {l_row + r_row for l_row in self.left.rows(ctx) for r_row in right_rows}


class HashUnion(PhysicalOperator):
    __slots__ = ("left", "right")

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator, key: Any = None) -> None:
        super().__init__(key)
        self.left = left
        self.right = right

    def _compute(self, ctx: ExecutionContext) -> Rows:
        left = self.left.rows(ctx)
        right = self.right.rows(ctx)
        return (left if isinstance(left, (set, frozenset)) else set(left)) | (
            right if isinstance(right, (set, frozenset)) else set(right)
        )


class HashDifference(PhysicalOperator):
    __slots__ = ("left", "right")

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator, key: Any = None) -> None:
        super().__init__(key)
        self.left = left
        self.right = right

    def _compute(self, ctx: ExecutionContext) -> Rows:
        left = self.left.rows(ctx)
        right = self.right.rows(ctx)
        return (left if isinstance(left, (set, frozenset)) else set(left)) - (
            right if isinstance(right, (set, frozenset)) else set(right)
        )


class HashIntersection(PhysicalOperator):
    __slots__ = ("left", "right")

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator, key: Any = None) -> None:
        super().__init__(key)
        self.left = left
        self.right = right

    def _compute(self, ctx: ExecutionContext) -> Rows:
        left = self.left.rows(ctx)
        right = self.right.rows(ctx)
        return (left if isinstance(left, (set, frozenset)) else set(left)) & (
            right if isinstance(right, (set, frozenset)) else set(right)
        )


class HashDivision(PhysicalOperator):
    """Grouped hash division ``R ÷ S`` on precomputed positions."""

    __slots__ = ("left", "right", "keep", "divisor")

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        keep: Tuple[int, ...],
        divisor: Tuple[int, ...],
        key: Any = None,
    ) -> None:
        super().__init__(key)
        self.left = left
        self.right = right
        self.keep = keep
        self.divisor = divisor

    def _compute(self, ctx: ExecutionContext) -> Rows:
        keep = self.keep
        divisor = self.divisor
        divisor_rows = set(self.right.rows(ctx))
        groups: Dict[Row, set] = {}
        for row in self.left.rows(ctx):
            groups.setdefault(tuple(row[p] for p in keep), set()).add(
                tuple(row[p] for p in divisor)
            )
        if not divisor_rows:
            return set(groups)
        return {group for group, values in groups.items() if divisor_rows <= values}


class Interpret(PhysicalOperator):
    """Evaluate an unsupported subtree with the tree-walking interpreter."""

    __slots__ = ("expression",)

    def __init__(self, expression: Any, key: Any = None) -> None:
        super().__init__(key)
        self.expression = expression

    def _compute(self, ctx: ExecutionContext) -> Rows:
        return self.expression._interpret(ctx.database).rows


# ----------------------------------------------------------------------
# Predicate compilation
# ----------------------------------------------------------------------
def compile_predicate(predicate: Predicate) -> RowPredicate:
    """Compile a position-resolved predicate into a plain row closure.

    The closures reproduce :meth:`Predicate.holds` exactly — including the
    ``TypeError`` on order comparisons involving nulls — minus the per-row
    attribute-name resolution.
    """
    if isinstance(predicate, PTrue):
        return lambda row: True
    if isinstance(predicate, Comparison):
        return _compile_comparison(predicate)
    if isinstance(predicate, PAnd):
        operands = tuple(compile_predicate(op) for op in predicate.operands)
        return lambda row: all(op(row) for op in operands)
    if isinstance(predicate, POr):
        operands = tuple(compile_predicate(op) for op in predicate.operands)
        return lambda row: any(op(row) for op in operands)
    if isinstance(predicate, PNot):
        operand = compile_predicate(predicate.operand)
        return lambda row: not operand(row)
    raise TypeError(f"unsupported predicate {predicate!r}")


def _compile_comparison(predicate: Comparison) -> RowPredicate:
    op = predicate.op
    operator = _OPERATORS[op]
    left, right = predicate.left, predicate.right
    left_pos = left.ref if isinstance(left, Attr) else None
    right_pos = right.ref if isinstance(right, Attr) else None
    left_const = None if left_pos is not None else left.value
    right_const = None if right_pos is not None else right.value

    if op == "=":
        if left_pos is not None and right_pos is not None:
            return lambda row: row[left_pos] == row[right_pos]
        if left_pos is not None:
            return lambda row: row[left_pos] == right_const
        if right_pos is not None:
            return lambda row: left_const == row[right_pos]
        result = left_const == right_const
        return lambda row: result
    if op == "!=":
        if left_pos is not None and right_pos is not None:
            return lambda row: row[left_pos] != row[right_pos]
        if left_pos is not None:
            return lambda row: row[left_pos] != right_const
        if right_pos is not None:
            return lambda row: left_const != row[right_pos]
        result = left_const != right_const
        return lambda row: result

    def ordered(row: Row) -> bool:
        lhs = row[left_pos] if left_pos is not None else left_const
        rhs = row[right_pos] if right_pos is not None else right_const
        if is_null(lhs) or is_null(rhs):
            raise TypeError(
                f"order comparison {op!r} is undefined on nulls under naive "
                "evaluation; use SQL three-valued evaluation instead"
            )
        return operator(lhs, rhs)

    return ordered
